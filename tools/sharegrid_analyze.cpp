// sharegrid_analyze: include-graph-aware static analysis for project
// conventions (the successor to the old per-line sharegrid_lint).
//
// Usage:
//   sharegrid_analyze [--format=text|json] [--baseline=FILE] <root>...
//
// Roots are files or directories (the ctest registration passes the repo's
// src/ plus the checked-in baseline). Exit status 0 = clean, 1 = violations
// or stale baseline entries, 2 = usage or I/O error.
//
// Rule logic lives in the tools/analyze/ library so tests can run every
// rule on in-memory fixtures (tests/analyze_test.cpp); this binary only
// loads files, parses flags, and prints. See docs/static-analysis.md for
// the rule table, the baseline workflow, and the Clang/GCC gating matrix.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"

namespace {

namespace fs = std::filesystem;
using sharegrid::analyze::SourceFile;

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool wants_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" ||
         path.filename().string() == "CMakeLists.txt";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  std::string format = "text";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::cerr << "sharegrid_analyze: unknown format '" << format
                  << "' (expected text or json)\n";
        return 2;
      }
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "sharegrid_analyze: unknown flag '" << arg
                << "'\nusage: sharegrid_analyze [--format=text|json] "
                   "[--baseline=FILE] <root>...\n";
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) roots.emplace_back("src");

  std::vector<SourceFile> files;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file() || !wants_file(entry.path())) continue;
        SourceFile file{entry.path().string(), {}};
        if (!read_file(entry.path(), &file.content)) {
          std::cerr << "sharegrid_analyze: cannot read " << entry.path()
                    << "\n";
          return 2;
        }
        files.push_back(std::move(file));
      }
    } else if (fs::is_regular_file(root, ec)) {
      SourceFile file{root.string(), {}};
      if (!read_file(root, &file.content)) {
        std::cerr << "sharegrid_analyze: cannot read " << root << "\n";
        return 2;
      }
      files.push_back(std::move(file));
    } else {
      std::cerr << "sharegrid_analyze: cannot read " << root << "\n";
      return 2;
    }
  }
  // Scan order must not depend on directory iteration order.
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });

  std::vector<sharegrid::analyze::BaselineEntry> baseline;
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, &text)) {
      std::cerr << "sharegrid_analyze: cannot read baseline "
                << baseline_path << "\n";
      return 2;
    }
    baseline = sharegrid::analyze::parse_baseline(text);
  }

  const sharegrid::analyze::Report report =
      sharegrid::analyze::analyze(files, baseline);
  if (format == "json")
    write_json(report, std::cout);
  else
    write_text(report, std::cout);
  return report.clean() ? 0 : 1;
}
