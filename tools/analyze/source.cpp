#include "analyze/source.hpp"

#include <cctype>

namespace sharegrid::analyze {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines(1);
  for (const char c : text) {
    if (c == '\n')
      lines.emplace_back();
    else
      lines.back() += c;
  }
  return lines;
}

bool is_identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

namespace {

/// True when the quote at @p quote_pos opens a raw string literal: directly
/// preceded by R (with an optional u8/u/U/L encoding prefix) that is itself
/// a full token, not the tail of an identifier like FOOBAR".
bool is_raw_string_opener(const std::string& text, std::size_t quote_pos) {
  if (quote_pos == 0 || text[quote_pos - 1] != 'R') return false;
  std::size_t start = quote_pos - 1;  // position of R
  if (start >= 1) {
    const char p = text[start - 1];
    if (p == 'u' || p == 'U' || p == 'L') {
      start -= 1;
    } else if (p == '8' && start >= 2 && text[start - 2] == 'u') {
      start -= 2;
    }
  }
  return start == 0 || !is_identifier_char(text[start - 1]);
}

/// True when the newline at @p nl is spliced onto the previous line by a
/// trailing backslash (C++ translation phase 2; tolerates \r\n).
bool is_line_splice(const std::string& text, std::size_t nl) {
  if (nl == 0) return false;
  std::size_t p = nl - 1;
  if (text[p] == '\r') {
    if (p == 0) return false;
    --p;
  }
  return text[p] == '\\';
}

}  // namespace

std::vector<std::string> strip_comments_and_literals(const std::string& text) {
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  std::vector<std::string> lines(1);
  State state = State::kCode;
  // For kRawString: the closing sequence )delim" the scanner is looking for.
  std::string raw_terminator;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      // A backslash-newline splice continues a // comment onto the next
      // physical line; without the check, code after a spliced comment is
      // scanned as if it were live (and vice versa).
      if (state == State::kLineComment && !is_line_splice(text, i))
        state = State::kCode;
      lines.emplace_back();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          lines.back() += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          lines.back() += "  ";
          ++i;
        } else if (c == '"' && is_raw_string_opener(text, i)) {
          // R"delim( ... )delim" — no escapes inside; only the exact
          // )delim" sequence terminates, so a plain '"' scan would cut the
          // literal short and leak its tail into the code stream.
          state = State::kRawString;
          raw_terminator.assign(1, ')');
          for (std::size_t j = i + 1;
               j < text.size() && text[j] != '(' && text[j] != '\n' &&
               raw_terminator.size() <= 17;  // delimiters are <= 16 chars
               ++j)
            raw_terminator += text[j];
          raw_terminator += '"';
          lines.back() += '"';
        } else if (c == '"') {
          state = State::kString;
          lines.back() += '"';
        } else if (c == '\'') {
          state = State::kChar;
          lines.back() += '\'';
        } else {
          lines.back() += c;
        }
        break;
      case State::kLineComment:
        lines.back() += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          lines.back() += "  ";
          ++i;
        } else {
          lines.back() += ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          lines.back() += "  ";
          if (next != '\n') ++i;
        } else if (c == quote) {
          state = State::kCode;
          lines.back() += quote;
        } else {
          lines.back() += ' ';
        }
        break;
      }
      case State::kRawString:
        if (text.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          // Blank the ) and delimiter, keep the closing quote visible.
          lines.back().append(raw_terminator.size() - 1, ' ');
          lines.back() += '"';
          i += raw_terminator.size() - 1;
          state = State::kCode;
        } else {
          lines.back() += ' ';
        }
        break;
    }
  }
  return lines;
}

bool has_token(const std::string& line, const std::string& name, char follow,
               bool reject_member_access) {
  std::size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    const std::size_t start = pos;
    const bool boundary = pos == 0 || !is_identifier_char(line[pos - 1]);
    std::size_t after = pos + name.size();
    pos += name.size();
    if (!boundary) continue;
    if (reject_member_access && start > 0) {
      if (line[start - 1] == '.') continue;
      if (start > 1 && line[start - 2] == '-' && line[start - 1] == '>')
        continue;
    }
    if (follow == '\0') {
      // Right boundary too: `steady_clock` must not match `steady_clocks`.
      if (after >= line.size() || !is_identifier_char(line[after]))
        return true;
      continue;
    }
    while (after < line.size() && line[after] == ' ') ++after;
    if (after < line.size() && line[after] == follow) return true;
  }
  return false;
}

bool allows(const std::string& raw_line, const std::string& rule) {
  for (const char* marker :
       {"sharegrid-analyze: allow(", "sharegrid-lint: allow("}) {
    const std::size_t pos = raw_line.find(marker);
    if (pos == std::string::npos) continue;
    const std::size_t open = raw_line.find('(', pos);
    const std::size_t close = raw_line.find(')', open);
    if (close == std::string::npos) continue;
    if (raw_line.substr(open + 1, close - open - 1) == rule) return true;
  }
  return false;
}

std::string canonical_path(const std::string& path) {
  // Find the last "src" path component and return everything after it.
  std::size_t best = std::string::npos;
  std::size_t pos = 0;
  while ((pos = path.find("src", pos)) != std::string::npos) {
    const bool starts = pos == 0 || path[pos - 1] == '/';
    const bool ends = pos + 3 == path.size() || path[pos + 3] == '/';
    if (starts && ends && pos + 3 < path.size()) best = pos + 4;
    pos += 3;
  }
  return best == std::string::npos ? path : path.substr(best);
}

}  // namespace sharegrid::analyze
