#include "analyze/include_graph.hpp"

#include <algorithm>

namespace sharegrid::analyze {

std::string layer_of(const std::string& canonical) {
  const std::size_t slash = canonical.find('/');
  if (slash == std::string::npos) return "";
  const std::string layer = canonical.substr(0, slash);
  return allowed_layer_deps().count(layer) != 0 ? layer : "";
}

const std::map<std::string, std::set<std::string>>& allowed_layer_deps() {
  // Keep this table, the header diagram, and DESIGN.md D11 in sync.
  static const std::map<std::string, std::set<std::string>> deps = {
      {"util", {"util"}},
      {"audit", {"audit", "util"}},
      {"net", {"net", "audit", "util"}},
      {"core", {"core", "audit", "util"}},
      {"lp", {"lp", "audit", "util"}},
      {"sim", {"sim", "audit", "util"}},
      {"http", {"http", "audit", "util"}},
      {"l4", {"l4", "core", "audit", "util"}},
      {"workload", {"workload", "core", "audit", "util"}},
      {"sched", {"sched", "core", "lp", "audit", "util"}},
      {"coord",
       {"coord", "sched", "sim", "core", "lp", "net", "audit", "util"}},
      {"live",
       {"live", "coord", "sched", "sim", "core", "lp", "net", "http", "l4",
        "audit", "util"}},
      {"nodes",
       {"nodes", "coord", "sched", "sim", "core", "lp", "http", "l4",
        "workload", "audit", "util"}},
      {"experiments",
       {"experiments", "nodes", "live", "coord", "sched", "sim", "core", "lp",
        "net", "http", "l4", "workload", "audit", "util"}},
  };
  return deps;
}

namespace {

/// DFS state for cycle detection.
enum class Mark { kUnvisited, kOnStack, kDone };

struct CycleFinder {
  const std::map<std::string, std::size_t>& index;  // canonical -> file idx
  const std::vector<AnalyzedFile>& files;
  std::vector<Mark> marks;
  std::vector<std::size_t> stack;  // file indices on the current DFS path
  std::vector<Violation>* out;

  void visit(std::size_t file_index) {
    marks[file_index] = Mark::kOnStack;
    stack.push_back(file_index);
    for (const Include& include : files[file_index].includes) {
      const auto it = index.find(include.target);
      if (it == index.end()) continue;  // outside the scanned set
      const std::size_t next = it->second;
      if (marks[next] == Mark::kDone) continue;
      if (marks[next] == Mark::kOnStack) {
        report(file_index, next, include.line);
        continue;
      }
      visit(next);
    }
    stack.pop_back();
    marks[file_index] = Mark::kDone;
  }

  /// A back edge from @p from to @p to closes a cycle; print the whole
  /// chain so the offending edge is obvious without re-tracing by hand.
  void report(std::size_t from, std::size_t to, std::size_t line) {
    std::string chain;
    bool in_cycle = false;
    for (const std::size_t node : stack) {
      if (node == to) in_cycle = true;
      if (!in_cycle) continue;
      chain += files[node].canonical;
      chain += " -> ";
    }
    chain += files[to].canonical;
    out->push_back({files[from].path, line, "layer-dag",
                    "include cycle: " + chain +
                        "; break the cycle with a forward declaration or by "
                        "moving the shared piece down a layer"});
  }
};

std::string describe_allowed(const std::string& layer) {
  const auto& allowed = allowed_layer_deps().at(layer);
  std::string list;
  for (const std::string& dep : allowed) {
    if (!list.empty()) list += ", ";
    list += dep;
  }
  return list;
}

}  // namespace

void check_layer_dag(const std::vector<AnalyzedFile>& files,
                     std::vector<Violation>* out) {
  // Edge rule: every quoted include must stay within the including layer's
  // allowed set.
  for (const AnalyzedFile& file : files) {
    const std::string from = layer_of(file.canonical);
    if (from.empty()) continue;
    const std::set<std::string>& allowed = allowed_layer_deps().at(from);
    for (const Include& include : file.includes) {
      const std::string to = layer_of(include.target);
      if (to.empty() || allowed.count(to) != 0) continue;
      if (include.line - 1 < file.raw_lines.size() &&
          allows(file.raw_lines[include.line - 1], "layer-dag"))
        continue;
      out->push_back(
          {file.path, include.line, "layer-dag",
           "layer '" + from + "' must not include layer '" + to +
               "' (offending include chain: " + file.canonical + " -> " +
               include.target + "); '" + from + "' may only depend on {" +
               describe_allowed(from) +
               "} — see the DAG in DESIGN.md D11, and move the shared piece "
               "down a layer if both sides genuinely need it"});
    }
  }

  // Cycle rule: any include cycle among the scanned files, regardless of
  // layers (a within-layer cycle is just as much a build hazard).
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < files.size(); ++i)
    if (!files[i].is_cmake) index.emplace(files[i].canonical, i);
  CycleFinder finder{index, files,
                     std::vector<Mark>(files.size(), Mark::kUnvisited),
                     {},
                     out};
  for (std::size_t i = 0; i < files.size(); ++i)
    if (!files[i].is_cmake && finder.marks[i] == Mark::kUnvisited)
      finder.visit(i);
}

}  // namespace sharegrid::analyze
