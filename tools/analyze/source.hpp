// Source-text core of sharegrid_analyze: line splitting, comment/literal
// stripping, token matching, and suppression parsing.
//
// Everything operates on in-memory text so tests can feed fixture snippets
// without touching the filesystem (tests/analyze_test.cpp); the tool binary
// loads files and hands them to analyze() in tools/analyze/analyzer.hpp.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sharegrid::analyze {

/// One file handed to the analyzer: a path (used for layer assignment,
/// exemptions, and reporting) plus its full text.
struct SourceFile {
  std::string path;
  std::string content;
};

/// @p text split on newlines (no trailing-newline special case: "a\n" is
/// one line "a" plus one empty line, matching the stripper's output shape).
std::vector<std::string> split_lines(const std::string& text);

/// Per-line source text with comments and literal contents blanked out
/// (replaced by spaces) so token scans cannot match inside them. Handles
/// line and block comments, string/char literals with escapes, raw string
/// literals (R"delim(...)delim", including encoding prefixes u8/u/U/L), and
/// backslash-newline splices that continue a // comment onto the next line.
std::vector<std::string> strip_comments_and_literals(const std::string& text);

bool is_identifier_char(char c);

/// True when @p name occurs in @p line starting at an identifier boundary
/// and followed (after optional spaces) by @p follow ('\0' = any). With
/// @p reject_member_access, occurrences qualified by `.` or `->` are
/// skipped (so a `time()` ban does not hit `event.time()`).
bool has_token(const std::string& line, const std::string& name, char follow,
               bool reject_member_access = false);

/// The raw (unstripped) line may carry an inline suppression for @p rule:
/// a trailing `// sharegrid-analyze: allow(<rule>)`. The historical
/// `sharegrid-lint: allow(<rule>)` spelling is honoured too.
bool allows(const std::string& raw_line, const std::string& rule);

/// Project-relative path used for layer assignment, rule exemptions, and
/// baseline matching: the components after the last "src" path component
/// ("/root/repo/src/net/tcp.hpp" -> "net/tcp.hpp"). Paths with no "src"
/// component are returned unchanged, so fixture paths like "sched/a.hpp"
/// work as-is.
std::string canonical_path(const std::string& path);

}  // namespace sharegrid::analyze
