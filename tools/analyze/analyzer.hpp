// Orchestration layer of sharegrid_analyze: runs every rule over a set of
// in-memory files, applies the baseline suppressions, and renders the
// result as text or JSON.
//
// The baseline exists so a new rule can land before every violation it
// finds is fixed: known violations are listed (with a justifying comment)
// in tools/analyze/baseline.txt and stop failing the gate, while *new*
// violations of the same rule still do. Stale entries — baseline lines no
// violation matches any more — fail the run, so the file can only shrink.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "analyze/rules.hpp"

namespace sharegrid::analyze {

/// One baseline suppression: a (rule, canonical path) pair.
struct BaselineEntry {
  std::string rule;
  std::string path;  ///< canonical (src-relative) path
};

/// Parses baseline text: one `<rule> <path>` entry per line, '#' comments
/// and blank lines ignored.
std::vector<BaselineEntry> parse_baseline(const std::string& text);

struct Report {
  std::vector<Violation> violations;   ///< surviving (non-baselined)
  std::size_t suppressed = 0;          ///< violations a baseline entry ate
  std::vector<BaselineEntry> stale;    ///< entries that matched nothing
  std::size_t files_scanned = 0;

  /// The gate: violations or stale baseline entries fail the run.
  bool clean() const { return violations.empty() && stale.empty(); }
};

/// Runs every rule over @p files (sources, headers, CMakeLists.txt) with
/// @p baseline applied. Violations are sorted by (file, line).
Report analyze(const std::vector<SourceFile>& files,
               const std::vector<BaselineEntry>& baseline = {});

/// Human-readable report: one `path:line: [rule] message` per violation,
/// stale entries, and a trailing summary line.
void write_text(const Report& report, std::ostream& out);

/// Machine-readable report for editor/CI integration:
/// {"violations": [{file, line, rule, message}...], "stale_baseline": [...],
///  "files_scanned": N, "suppressed": N, "clean": bool}.
void write_json(const Report& report, std::ostream& out);

}  // namespace sharegrid::analyze
