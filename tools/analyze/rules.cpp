#include "analyze/rules.hpp"

#include <algorithm>

namespace sharegrid::analyze {
namespace {

struct TokenRule {
  std::string rule;
  std::string name;
  char follow;  // '\0' = no requirement
  bool reject_member_access;
  std::string message;
};

const std::vector<TokenRule>& token_rules() {
  static const std::vector<TokenRule> rules = {
      {"no-raw-assert", "assert", '(', false,
       "raw assert(); use SHAREGRID_EXPECTS/ENSURES/ASSERT so the violation "
       "throws ContractViolation instead of aborting"},
      {"no-raw-assert", "abort", '(', false,
       "abort() call; throw ContractViolation (util/assert.hpp) so tests and "
       "long simulations can observe the failure"},
      {"no-stdout", "std::cout", '\0', false,
       "std::cout in library code; return data or throw — printing belongs "
       "in bench/, examples/, and tools/"},
      {"no-stdout", "printf", '(', false,
       "printf in library code; return data or throw — printing belongs in "
       "bench/, examples/, and tools/"},
      {"no-stdout", "puts", '(', false,
       "puts in library code; return data or throw — printing belongs in "
       "bench/, examples/, and tools/"},
      {"no-raw-rng", "rand", '(', false,
       "rand(); determinism is load-bearing (DESIGN.md D4) — draw from a "
       "seeded sharegrid::Rng"},
      {"no-raw-rng", "srand", '(', false,
       "srand(); determinism is load-bearing (DESIGN.md D4) — seed a "
       "sharegrid::Rng instead of the global C stream"},
      {"no-raw-rng", "random_device", '\0', false,
       "std::random_device is unseeded, non-deterministic entropy; thread a "
       "seeded sharegrid::Rng through instead"},
      {"no-unordered-iteration", "unordered_map", '\0', false,
       "std::unordered_map iterates in hash order, which varies across "
       "libraries and runs — determinism is load-bearing (DESIGN.md D4); use "
       "std::map, a sorted vector, or an index-keyed flat container"},
      {"no-unordered-iteration", "unordered_set", '\0', false,
       "std::unordered_set iterates in hash order, which varies across "
       "libraries and runs — determinism is load-bearing (DESIGN.md D4); use "
       "std::set, a sorted vector, or an index-keyed flat container"},
      {"no-unordered-iteration", "unordered_multimap", '\0', false,
       "std::unordered_multimap iterates in hash order (DESIGN.md D4); use "
       "an ordered or flat container"},
      {"no-unordered-iteration", "unordered_multiset", '\0', false,
       "std::unordered_multiset iterates in hash order (DESIGN.md D4); use "
       "an ordered or flat container"},
  };
  return rules;
}

/// Wall-clock tokens banned outside src/live/ and util/time.hpp: simulated
/// time is the only time source the deterministic layers may read
/// (DESIGN.md D4). Member calls like `event.time()` are not wall clocks and
/// are skipped via reject_member_access.
const std::vector<TokenRule>& wall_clock_rules() {
  static const std::vector<TokenRule> rules = {
      {"no-wall-clock", "steady_clock", '\0', false,
       "steady_clock outside src/live/; deterministic layers take SimTime "
       "from util/time.hpp — only the live drivers own a wall clock "
       "(DESIGN.md D4)"},
      {"no-wall-clock", "system_clock", '\0', false,
       "system_clock outside src/live/; deterministic layers take SimTime "
       "from util/time.hpp — only the live drivers own a wall clock "
       "(DESIGN.md D4)"},
      {"no-wall-clock", "high_resolution_clock", '\0', false,
       "high_resolution_clock outside src/live/; deterministic layers take "
       "SimTime from util/time.hpp (DESIGN.md D4)"},
      {"no-wall-clock", "time", '(', true,
       "time() outside src/live/; deterministic layers take SimTime from "
       "util/time.hpp — only the live drivers own a wall clock "
       "(DESIGN.md D4)"},
      {"no-wall-clock", "gettimeofday", '(', false,
       "gettimeofday() outside src/live/ (DESIGN.md D4); take SimTime from "
       "util/time.hpp"},
      {"no-wall-clock", "clock_gettime", '(', false,
       "clock_gettime() outside src/live/ (DESIGN.md D4); take SimTime from "
       "util/time.hpp"},
  };
  return rules;
}

bool wall_clock_exempt(const std::string& canonical) {
  return canonical.rfind("live/", 0) == 0 || canonical == "util/time.hpp";
}

/// Files allowed to own a WindowScheduler by value: the control plane
/// (src/coord/) and the class's own definition/test-support files.
bool may_own_window_scheduler(const AnalyzedFile& file) {
  const std::string& c = file.canonical;
  const std::size_t slash = c.find_last_of('/');
  const std::string name = slash == std::string::npos ? c : c.substr(slash + 1);
  if (name.rfind("window_scheduler", 0) == 0) return true;
  return c.rfind("coord/", 0) == 0;
}

/// Flags `WindowScheduler` tokens that are not mere references, pointers, or
/// qualified-name uses — i.e. by-value declarations and constructor calls —
/// in files outside src/coord/. Owning a window scheduler directly bypasses
/// coord::ControlPlane and forks the window loop the sim and live drivers
/// are meant to share (DESIGN.md D10).
void check_window_scheduler_ownership(const AnalyzedFile& file,
                                      std::vector<Violation>* out) {
  if (may_own_window_scheduler(file)) return;
  static const std::string kName = "WindowScheduler";
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    bool hit = false;
    std::size_t pos = 0;
    while (!hit && (pos = line.find(kName, pos)) != std::string::npos) {
      const bool boundary = pos == 0 || !is_identifier_char(line[pos - 1]);
      std::size_t after = pos + kName.size();
      pos += kName.size();
      if (!boundary) continue;
      if (after < line.size() && is_identifier_char(line[after])) continue;
      while (after < line.size() && line[after] == ' ') ++after;
      const char next = after < line.size() ? line[after] : '\0';
      hit = next != '&' && next != '*' && next != ':';
    }
    if (!hit) continue;
    if (i < file.raw_lines.size() &&
        allows(file.raw_lines[i], "coord-owns-windows"))
      continue;
    out->push_back(
        {file.path, i + 1, "coord-owns-windows",
         "direct WindowScheduler ownership outside src/coord/; obtain "
         "windows through a coord::ControlPlane member so the sim and live "
         "drivers keep sharing one window loop (DESIGN.md D10)"});
  }
}

/// A mutex member declaration found in a stripped code line.
struct MutexMember {
  std::size_t line = 0;  ///< 1-based
  std::string name;
  std::string type;      ///< as written: "std::mutex" or "util::Mutex" ...
};

/// Scans a stripped line for `std::mutex name;` / `util::Mutex name;` /
/// `Mutex name;` member declarations (optionally `mutable`). References,
/// pointers, and template arguments (`lock_guard<std::mutex>`) don't match
/// because the type token must be followed directly by the member name.
void find_mutex_members(const AnalyzedFile& file,
                        std::vector<MutexMember>* out) {
  static const std::vector<std::string> kTypes = {"std::mutex", "util::Mutex",
                                                  "Mutex"};
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    for (const std::string& type : kTypes) {
      std::size_t pos = 0;
      while ((pos = line.find(type, pos)) != std::string::npos) {
        const std::size_t start = pos;
        std::size_t after = pos + type.size();
        pos += type.size();
        const bool boundary =
            start == 0 || (!is_identifier_char(line[start - 1]) &&
                           line[start - 1] != ':');
        if (!boundary) continue;
        if (after < line.size() && is_identifier_char(line[after])) continue;
        while (after < line.size() && line[after] == ' ') ++after;
        std::size_t name_end = after;
        while (name_end < line.size() && is_identifier_char(line[name_end]))
          ++name_end;
        if (name_end == after) continue;  // reference/pointer/template use
        std::size_t semi = name_end;
        while (semi < line.size() && line[semi] == ' ') ++semi;
        if (semi < line.size() && line[semi] != ';') continue;  // fn param etc.
        out->push_back({i + 1, line.substr(after, name_end - after), type});
      }
    }
  }
}

/// True when @p name appears as an argument of any SHAREGRID_* thread-safety
/// annotation anywhere in the file.
bool named_in_annotation(const AnalyzedFile& file, const std::string& name) {
  static const std::vector<std::string> kAnnotations = {
      "SHAREGRID_GUARDED_BY",  "SHAREGRID_PT_GUARDED_BY",
      "SHAREGRID_REQUIRES",    "SHAREGRID_EXCLUDES",
      "SHAREGRID_ACQUIRE",     "SHAREGRID_RELEASE",
      "SHAREGRID_TRY_ACQUIRE",
  };
  for (const std::string& line : file.code) {
    for (const std::string& annotation : kAnnotations) {
      std::size_t pos = 0;
      while ((pos = line.find(annotation, pos)) != std::string::npos) {
        const std::size_t open = line.find('(', pos + annotation.size());
        pos += annotation.size();
        if (open == std::string::npos) continue;
        const std::size_t close = line.find(')', open);
        const std::string args =
            line.substr(open + 1, close == std::string::npos
                                      ? std::string::npos
                                      : close - open - 1);
        if (has_token(args, name, '\0')) return true;
      }
    }
  }
  return false;
}

/// mutex-annotated: every mutex member must be named by at least one
/// thread-safety annotation, so annotation coverage is enforced even under
/// compilers that ignore the attributes (GCC).
void check_mutex_annotated(const AnalyzedFile& file,
                           std::vector<Violation>* out) {
  std::vector<MutexMember> members;
  find_mutex_members(file, &members);
  for (const MutexMember& member : members) {
    if (named_in_annotation(file, member.name)) continue;
    if (member.line - 1 < file.raw_lines.size() &&
        allows(file.raw_lines[member.line - 1], "mutex-annotated"))
      continue;
    out->push_back(
        {file.path, member.line, "mutex-annotated",
         member.type + " " + member.name +
             " is not named by any SHAREGRID_GUARDED_BY/REQUIRES/EXCLUDES "
             "annotation; declare what it guards (util/thread_annotations."
             "hpp) so Clang's -Wthread-safety can check the locking "
             "discipline"});
  }
}

/// nodiscard-status: a function returning lp::Status must be [[nodiscard]] —
/// a dropped Status silently turns an infeasible or iteration-limited solve
/// into a bogus plan. Matches `Status name(`-shaped declarations and accepts
/// [[nodiscard]] on the same or the preceding line.
void check_nodiscard_status(const AnalyzedFile& file,
                            std::vector<Violation>* out) {
  static const std::string kName = "Status";
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    bool hit = false;
    std::size_t pos = 0;
    while (!hit && (pos = line.find(kName, pos)) != std::string::npos) {
      const std::size_t start = pos;
      std::size_t after = pos + kName.size();
      pos += kName.size();
      const bool boundary = start == 0 || !is_identifier_char(line[start - 1]);
      if (!boundary) continue;
      // `Status::kOptimal`, `StatusCode`, `SolveStatus` are not return types.
      if (after < line.size() &&
          (is_identifier_char(line[after]) || line[after] == ':'))
        continue;
      while (after < line.size() && line[after] == ' ') ++after;
      std::size_t name_end = after;
      while (name_end < line.size() && is_identifier_char(line[name_end]))
        ++name_end;
      if (name_end == after) continue;  // `Status s = ...`, `Status;` etc.
      std::size_t paren = name_end;
      while (paren < line.size() && line[paren] == ' ') ++paren;
      hit = paren < line.size() && line[paren] == '(';
      // `Status foo(...)` found — a declaration or definition either way.
    }
    if (!hit) continue;
    const bool marked =
        line.find("[[nodiscard]]") != std::string::npos ||
        (i > 0 && file.code[i - 1].find("[[nodiscard]]") != std::string::npos);
    if (marked) continue;
    if (i < file.raw_lines.size() && allows(file.raw_lines[i], "nodiscard-status"))
      continue;
    out->push_back(
        {file.path, i + 1, "nodiscard-status",
         "function returning lp::Status is not [[nodiscard]]; a dropped "
         "Status turns kInfeasible/kIterationLimit into a silently wrong "
         "plan — mark the declaration [[nodiscard]]"});
  }
}

}  // namespace

AnalyzedFile AnalyzedFile::parse(const SourceFile& file) {
  AnalyzedFile out;
  out.path = file.path;
  out.canonical = canonical_path(file.path);
  out.raw_lines = split_lines(file.content);
  const std::size_t slash = file.path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? file.path : file.path.substr(slash + 1);
  out.is_cmake = name == "CMakeLists.txt";
  const std::size_t dot = name.find_last_of('.');
  const std::string ext = dot == std::string::npos ? "" : name.substr(dot);
  out.is_header = ext == ".hpp";
  out.is_source = ext == ".cpp";
  if (out.is_cmake) return out;  // cmake text is scanned raw
  out.code = strip_comments_and_literals(file.content);
  // Quoted includes: the directive must survive stripping (i.e. not be
  // commented out), but the target is read from the raw line because the
  // stripper blanks string contents.
  for (std::size_t i = 0; i < out.code.size(); ++i) {
    const std::string& code = out.code[i];
    std::size_t pos = code.find_first_not_of(' ');
    if (pos == std::string::npos || code[pos] != '#') continue;
    pos = code.find_first_not_of(' ', pos + 1);
    if (pos == std::string::npos || code.compare(pos, 7, "include") != 0)
      continue;
    const std::string& raw = out.raw_lines[i];
    const std::size_t open = raw.find('"');
    if (open == std::string::npos) continue;  // <system> include
    const std::size_t close = raw.find('"', open + 1);
    if (close == std::string::npos) continue;
    out.includes.push_back({i + 1, raw.substr(open + 1, close - open - 1)});
  }
  return out;
}

void check_source_rules(const AnalyzedFile& file, std::vector<Violation>* out) {
  if (file.is_header) {
    bool has_pragma = false;
    for (const std::string& line : file.code)
      if (line.find("#pragma once") != std::string::npos) has_pragma = true;
    if (!has_pragma)
      out->push_back({file.path, 1, "pragma-once",
                      "header is missing #pragma once; every sharegrid header "
                      "guards with it"});
  }

  const bool clock_exempt = wall_clock_exempt(file.canonical);
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    for (const TokenRule& rule : token_rules()) {
      if (!has_token(file.code[i], rule.name, rule.follow,
                     rule.reject_member_access))
        continue;
      if (i < file.raw_lines.size() && allows(file.raw_lines[i], rule.rule))
        continue;
      out->push_back({file.path, i + 1, rule.rule, rule.message});
    }
    if (!clock_exempt) {
      for (const TokenRule& rule : wall_clock_rules()) {
        if (!has_token(file.code[i], rule.name, rule.follow,
                       rule.reject_member_access))
          continue;
        if (i < file.raw_lines.size() && allows(file.raw_lines[i], rule.rule))
          continue;
        out->push_back({file.path, i + 1, rule.rule, rule.message});
      }
    }
  }

  check_window_scheduler_ownership(file, out);
  check_mutex_annotated(file, out);
  check_nodiscard_status(file, out);
}

void check_cmake_rules(const AnalyzedFile& file, const std::string& text,
                       std::vector<Violation>* out) {
  bool compiled_target = false;
  std::size_t target_line = 0;
  for (const std::string& command :
       {std::string("add_library"), std::string("add_executable")}) {
    std::size_t pos = 0;
    while ((pos = text.find(command, pos)) != std::string::npos) {
      const std::size_t open = text.find('(', pos + command.size());
      if (open == std::string::npos) break;
      const std::size_t close = text.find(')', open);
      const std::string args = text.substr(
          open + 1,
          close == std::string::npos ? std::string::npos : close - open - 1);
      if (args.find("INTERFACE") == std::string::npos &&
          args.find("ALIAS") == std::string::npos &&
          args.find("IMPORTED") == std::string::npos) {
        compiled_target = true;
        target_line =
            1 + static_cast<std::size_t>(std::count(
                    text.begin(),
                    text.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
      }
      pos = open;
    }
  }
  if (compiled_target && text.find("sharegrid_warnings") == std::string::npos) {
    out->push_back({file.path, target_line, "warnings-linked",
                    "defines a compiled target but never links "
                    "sharegrid_warnings; the target escapes -Werror and the "
                    "SHAREGRID_SANITIZE wiring"});
  }
}

}  // namespace sharegrid::analyze
