// Include-graph rules for sharegrid_analyze: the layering DAG and include
// cycle detection (DESIGN.md D11).
//
// The dependency DAG, by layer (a directory directly under src/):
//
//           util
//            │
//          audit                    (compiled-out hook library)
//        ┌───┼────┬──────┬────┐
//      core  lp  sim   http  net   l4
//        │    │    │           │  (l4, workload also sit on core)
//     workload│    │           │
//        └──sched  │           │
//             └─ coord ────────┘
//          ┌─────┼──────┐
//        nodes  live    │
//          └─────┴─ experiments
//
// Concretely: util is the bottom; core/lp/sim/http/net are peers over
// util+audit (net: raw loopback TCP + framing); l4 and workload
// additionally see core; sched builds on core+lp; coord on sched+sim+net
// (the socket snapshot transport lives in coord and speaks net frames);
// nodes and live are peer composition roots (nodes: sim-side, live:
// wall-clock side, also over net); experiments tops everything. An include
// that jumps *up* this order — or sideways between peers — is a layer-dag
// violation, and any include cycle among the scanned files is reported with
// the full chain.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/rules.hpp"

namespace sharegrid::analyze {

/// Layer (first path component of the canonical path) when it is one of the
/// known src/ layers, "" otherwise.
std::string layer_of(const std::string& canonical);

/// The allowed-dependency map: layer -> set of layers it may include
/// (always contains itself). Exposed for the documentation test that keeps
/// DESIGN.md D11 and this table in sync.
const std::map<std::string, std::set<std::string>>& allowed_layer_deps();

/// layer-dag: checks every quoted include of every file against the DAG and
/// reports upward or sideways edges; then detects include cycles among the
/// scanned files and reports each with its full chain.
void check_layer_dag(const std::vector<AnalyzedFile>& files,
                     std::vector<Violation>* out);

}  // namespace sharegrid::analyze
