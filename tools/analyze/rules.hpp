// Rule logic for sharegrid_analyze (see docs/static-analysis.md for the
// rule table and rationale).
//
// Per-file rules operate on one AnalyzedFile; the include-graph rules
// (layer-dag) see every file at once and live in include_graph.hpp. All
// rules append to a caller-owned Violation vector so the orchestration in
// analyzer.cpp stays a flat loop.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/source.hpp"

namespace sharegrid::analyze {

struct Violation {
  std::string file;  ///< path as given by the caller
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// A quoted #include directive ("project/header.hpp" form).
struct Include {
  std::size_t line = 0;   ///< 1-based line of the directive
  std::string target;     ///< path between the quotes
};

/// A SourceFile parsed once and shared by every rule.
struct AnalyzedFile {
  std::string path;                   ///< as given
  std::string canonical;              ///< canonical_path(path)
  std::vector<std::string> raw_lines;
  std::vector<std::string> code;      ///< comment/literal-stripped lines
  std::vector<Include> includes;      ///< quoted includes, in order
  bool is_header = false;
  bool is_source = false;             ///< .cpp
  bool is_cmake = false;              ///< CMakeLists.txt

  static AnalyzedFile parse(const SourceFile& file);
};

/// All single-file source rules: no-raw-assert, no-stdout, no-raw-rng,
/// pragma-once, coord-owns-windows, no-wall-clock, no-unordered-iteration,
/// mutex-annotated, nodiscard-status.
void check_source_rules(const AnalyzedFile& file, std::vector<Violation>* out);

/// warnings-linked: a CMakeLists.txt defining a compiled target must link
/// sharegrid_warnings.
void check_cmake_rules(const AnalyzedFile& file, const std::string& text,
                       std::vector<Violation>* out);

}  // namespace sharegrid::analyze
