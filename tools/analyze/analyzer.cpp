#include "analyze/analyzer.hpp"

#include <algorithm>
#include <ostream>
#include <tuple>

#include "analyze/include_graph.hpp"

namespace sharegrid::analyze {

std::vector<BaselineEntry> parse_baseline(const std::string& text) {
  std::vector<BaselineEntry> entries;
  for (const std::string& line : split_lines(text)) {
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    const std::size_t space = line.find_first_of(" \t", start);
    if (space == std::string::npos) continue;  // malformed; ignore
    const std::size_t path_start = line.find_first_not_of(" \t", space);
    if (path_start == std::string::npos) continue;
    const std::size_t path_end = line.find_first_of(" \t", path_start);
    entries.push_back({line.substr(start, space - start),
                       line.substr(path_start, path_end == std::string::npos
                                                   ? std::string::npos
                                                   : path_end - path_start)});
  }
  return entries;
}

Report analyze(const std::vector<SourceFile>& files,
               const std::vector<BaselineEntry>& baseline) {
  Report report;
  std::vector<AnalyzedFile> parsed;
  parsed.reserve(files.size());
  for (const SourceFile& file : files) parsed.push_back(AnalyzedFile::parse(file));

  std::vector<Violation> violations;
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    const AnalyzedFile& file = parsed[i];
    if (file.is_cmake) {
      check_cmake_rules(file, files[i].content, &violations);
      ++report.files_scanned;
    } else if (file.is_header || file.is_source) {
      check_source_rules(file, &violations);
      ++report.files_scanned;
    }
  }
  check_layer_dag(parsed, &violations);

  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });

  // Baseline pass: drop matching violations, then flag entries that matched
  // nothing (the violation was fixed; the entry must be deleted too).
  std::vector<bool> used(baseline.size(), false);
  for (const Violation& violation : violations) {
    const std::string canonical = canonical_path(violation.file);
    bool matched = false;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      if (baseline[i].rule == violation.rule &&
          baseline[i].path == canonical) {
        used[i] = true;
        matched = true;
      }
    }
    if (matched)
      ++report.suppressed;
    else
      report.violations.push_back(violation);
  }
  for (std::size_t i = 0; i < baseline.size(); ++i)
    if (!used[i]) report.stale.push_back(baseline[i]);
  return report;
}

void write_text(const Report& report, std::ostream& out) {
  for (const Violation& v : report.violations) {
    out << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message
        << "\n";
  }
  for (const BaselineEntry& entry : report.stale) {
    out << "stale baseline entry: '" << entry.rule << " " << entry.path
        << "' matches no violation — the issue is fixed, delete the entry\n";
  }
  if (!report.clean()) {
    out << report.violations.size() << " violation(s), " << report.stale.size()
        << " stale baseline entr(ies) in " << report.files_scanned
        << " file(s)";
    if (report.suppressed != 0)
      out << " (" << report.suppressed << " baselined)";
    out << "\n";
  } else {
    out << "sharegrid_analyze: OK (" << report.files_scanned << " files";
    if (report.suppressed != 0)
      out << ", " << report.suppressed << " baselined violation(s)";
    out << ")\n";
  }
}

namespace {

void write_json_string(const std::string& s, std::ostream& out) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void write_json(const Report& report, std::ostream& out) {
  out << "{\"violations\":[";
  for (std::size_t i = 0; i < report.violations.size(); ++i) {
    const Violation& v = report.violations[i];
    if (i != 0) out << ",";
    out << "{\"file\":";
    write_json_string(v.file, out);
    out << ",\"line\":" << v.line << ",\"rule\":";
    write_json_string(v.rule, out);
    out << ",\"message\":";
    write_json_string(v.message, out);
    out << "}";
  }
  out << "],\"stale_baseline\":[";
  for (std::size_t i = 0; i < report.stale.size(); ++i) {
    if (i != 0) out << ",";
    out << "{\"rule\":";
    write_json_string(report.stale[i].rule, out);
    out << ",\"path\":";
    write_json_string(report.stale[i].path, out);
    out << "}";
  }
  out << "],\"files_scanned\":" << report.files_scanned
      << ",\"suppressed\":" << report.suppressed
      << ",\"clean\":" << (report.clean() ? "true" : "false") << "}\n";
}

}  // namespace sharegrid::analyze
