#!/usr/bin/env python3
"""Folds a fresh google-benchmark JSON run of bench/micro_lp into
BENCH_lp.json, which keeps two sections side by side:

  baseline : the explicit-bound-row engine (one tableau row per finite
             upper bound), frozen for before/after comparison
  current  : the bounded-variable (implicit-bound) engine, refreshed by
             SHAREGRID_CI_QUICK_BENCH=1 tools/ci.sh

The warm-start benchmarks label themselves "W/S warm solves"; this script
also acts as the warm-hit-rate regression gate: if a fresh BM_LpResolveWarm
run warm-starts a smaller fraction of its solves than the frozen baseline
section records (beyond a small slack), it exits nonzero and leaves
BENCH_lp.json untouched — a hit-rate drop means the warm path is silently
falling back to cold solves and the headline numbers are lying.

Usage: tools/update_lp_bench.py FRESH_JSON [--section current|baseline]
"""
import argparse
import json
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BENCH = REPO / "BENCH_lp.json"

KEEP_CONTEXT = ("date", "host_name", "num_cpus", "mhz_per_cpu",
                "cpu_scaling_enabled", "library_build_type")
# "label" carries the warm-hit counters ("3528/3584 warm solves") and the
# tableau row counts; dropping it would blind the regression gate.
KEEP_BENCH = ("name", "iterations", "real_time", "cpu_time", "time_unit",
              "label")

# A fresh warm-hit rate may fall this far below the recorded baseline before
# the gate trips (the counters are deterministic, but refresh cadence can
# shift the ratio by a solve or two at short benchmark runs).
RATE_SLACK = 0.02

WARM_LABEL = re.compile(r"(\d+)/(\d+) warm solves")


def condense(raw):
    """Keeps just the fields a before/after comparison needs."""
    for key in ("context", "benchmarks"):
        if key not in raw:
            raise SystemExit(
                f"update_lp_bench: fresh JSON has no '{key}' section — is "
                "this really --benchmark_out of bench/micro_lp?")
    nameless = sum(1 for b in raw["benchmarks"] if "name" not in b)
    if nameless:
        raise SystemExit(
            f"update_lp_bench: {nameless} benchmark entr"
            f"{'y' if nameless == 1 else 'ies'} in the fresh JSON carry no "
            "'name' field; refusing to fold an unattributable run")
    return {
        "context": {k: raw["context"][k]
                    for k in KEEP_CONTEXT if k in raw["context"]},
        "benchmarks": [{k: b[k] for k in KEEP_BENCH if k in b}
                       for b in raw["benchmarks"]
                       if b.get("run_type", "iteration") == "iteration"],
    }


def check_coverage(fresh, reference, section):
    """The fresh run must measure every benchmark the checked-in section
    records: a silently dropped BM_* point (renamed benchmark, filtered run,
    crashed binary) would otherwise vanish from BENCH_lp.json without anyone
    noticing. Returns a list of messages naming each absent entry."""
    fresh_names = {b["name"] for b in fresh.get("benchmarks", [])}
    problems = []
    for b in reference.get("benchmarks", []):
        name = b.get("name")
        if name is not None and name not in fresh_names:
            problems.append(
                f"benchmark '{name}' is recorded in the checked-in "
                f"'{section}' section but absent from the fresh run — "
                "run bench/micro_lp unfiltered or drop the entry on purpose")
    return problems


def warm_rates(section):
    """name -> warm_solves / solves for benchmarks carrying the warm label."""
    rates = {}
    for b in section.get("benchmarks", []):
        m = WARM_LABEL.fullmatch(b.get("label", ""))
        if m and int(m.group(2)) > 0:
            rates[b["name"]] = int(m.group(1)) / int(m.group(2))
    return rates


def check_warm_rate(fresh, reference):
    """Returns a list of regression messages (empty when the gate passes)."""
    ref_rates = warm_rates(reference)
    problems = []
    for name, rate in warm_rates(fresh).items():
        ref = ref_rates.get(name)
        if ref is not None and rate < ref - RATE_SLACK:
            problems.append(
                f"{name}: warm-hit rate {rate:.3f} regressed below the "
                f"checked-in {ref:.3f} (slack {RATE_SLACK})")
    return problems


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", type=pathlib.Path)
    parser.add_argument("--section", default="current",
                        choices=("current", "baseline"))
    args = parser.parse_args()

    with open(args.fresh) as f:
        fresh = condense(json.load(f))

    doc = {}
    if BENCH.exists():
        with open(BENCH) as f:
            doc = json.load(f)
    doc.setdefault(
        "comment",
        "Per-window LP re-solve cost, before (explicit bound rows) and after "
        "(bounded-variable simplex, implicit bounds); see "
        "docs/lp-performance.md")

    problems = []
    if args.section in doc:
        problems += check_coverage(fresh, doc[args.section], args.section)
    if args.section == "current":
        # Gate warm-hit rates against the frozen baseline *and* the previous
        # current section: the baseline predates the larger problem sizes, so
        # without the second check their rates would never be gated at all.
        for reference in ("baseline", "current"):
            if reference in doc:
                problems += check_warm_rate(fresh, doc[reference])
    if problems:
        for p in problems:
            print(f"update_lp_bench: {p}", file=sys.stderr)
        return 1

    doc[args.section] = fresh

    with open(BENCH, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"updated {BENCH.relative_to(REPO)} section '{args.section}' "
          f"({len(fresh['benchmarks'])} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
