#!/usr/bin/env bash
# Pre-PR gate: warnings-as-errors build + tests, then the same suite under
# ASan/UBSan and TSan with the runtime invariant auditor compiled in.
# See docs/static-analysis.md. Usage:
#
#   tools/ci.sh                      # all stages
#   SHAREGRID_CI_SKIP_TSAN=1 tools/ci.sh   # skip the (slow) TSan stage
#   SHAREGRID_CI_SKIP_CLANG=1 tools/ci.sh  # skip the Clang -Wthread-safety stage
#   SHAREGRID_CI_QUICK_BENCH=1 tools/ci.sh # also refresh BENCH_lp.json
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${SHAREGRID_CI_JOBS:-$(nproc)}"

# Temp files registered here are removed on any exit, including a failing
# bench or python step aborting the script via `set -e` mid-stage.
TMP_FILES=()
cleanup() { ((${#TMP_FILES[@]})) && rm -f -- "${TMP_FILES[@]}"; return 0; }
trap cleanup EXIT

run_stage() {
  local preset="$1"
  echo
  echo "=== [${preset}] configure + build + ctest ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${JOBS}"
  ctest --preset "${preset}"
}

run_stage relwithdebinfo   # -Werror + sharegrid_analyze + figure shapes

# Cross-process control plane: fork a 3-redirector fleet over loopback TCP
# and require plan convergence (bitwise vs InProcessTransport), then the
# churn phases — a leaf killed and RESTARTED (the root must prune it and
# re-admit the higher-incarnation restart at a round boundary) and the root
# killed (the survivors must elect the lowest live member and resume rounds
# with monotone tags). ctest already runs the binary once; rerunning it
# standalone keeps the multi-process stage visible in the CI log and gates
# directly on its exit code.
echo
echo "=== [multi-process] 3-process loopback fleet (coord::SocketTransport) ==="
./build-relwithdebinfo/examples/multi_process_demo \
  examples/scenarios/multi_process.ini

run_stage debug-asan       # ASan+UBSan, SHAREGRID_AUDIT=ON

# Clang thread-safety stage: the SHAREGRID_GUARDED_BY/REQUIRES/EXCLUDES
# annotations (util/thread_annotations.hpp) are no-ops under GCC, so only a
# Clang build actually checks the locking discipline. CMake adds
# -Wthread-safety to sharegrid_warnings whenever the compiler is Clang, so a
# plain warnings-as-errors build is the whole stage.
if [[ "${SHAREGRID_CI_SKIP_CLANG:-0}" == "1" ]]; then
  echo "=== [clang-thread-safety] skipped (SHAREGRID_CI_SKIP_CLANG=1) ==="
elif ! command -v clang++ >/dev/null 2>&1; then
  echo "=== [clang-thread-safety] FAILED: clang++ not found ===" >&2
  echo "Install clang to run the -Wthread-safety analysis, or set" >&2
  echo "SHAREGRID_CI_SKIP_CLANG=1 to acknowledge skipping it. The" >&2
  echo "annotations are unchecked under GCC, so skipping silently would" >&2
  echo "let locking-discipline regressions through." >&2
  exit 1
else
  echo
  echo "=== [clang-thread-safety] configure + build (clang++, -Wthread-safety) ==="
  cmake -B build-clang -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++
  cmake --build build-clang -j "${JOBS}"
fi

if [[ "${SHAREGRID_CI_SKIP_TSAN:-0}" == "1" ]]; then
  echo "=== [debug-tsan] skipped (SHAREGRID_CI_SKIP_TSAN=1) ==="
else
  run_stage debug-tsan     # TSan, SHAREGRID_AUDIT=ON
  # The worker-pool plan solves are the one truly multi-threaded subsystem:
  # rerun them standalone so a TSan report can't hide in the big ctest log.
  echo "=== [debug-tsan] parallel plan solves (worker pool) ==="
  ./build-tsan/tests/sharegrid_tests \
    --gtest_filter='MultiProviderScheduler.*:WorkerPool.*:AuditParallelPlanMatch.*'
  # The unified control plane is the other concurrency surface: the live
  # L4/L7 services drive it through the mutex-guarded WallClockAdmission
  # facade, and the SocketTransport runs background receive threads feeding
  # a mutex-guarded inbox drained by poll(). Rerun the control-plane,
  # live-service, socket-transport, and TCP tests standalone under TSan so a
  # report can't hide in the big ctest log (docs/control-plane.md).
  echo "=== [debug-tsan] control plane + live drivers + socket transport ==="
  ./build-tsan/tests/sharegrid_tests \
    --gtest_filter='ControlPlane.*:ControlPlaneAudit.*:WallClockAdmission.*:L7Service.*:Tcp.*:SocketTransport.*:SocketTransportWire.*:SocketTransportAudit.*'
  # The sharded simulation engine runs cluster domains on worker-pool lanes
  # with hand-rolled epoch barriers — exactly the code TSan exists for.
  # Rerun the engine and the cluster-partitioned scenario tests standalone;
  # the scenario tests also exercise the serial-as-oracle audit rerun
  # (SHAREGRID_AUDIT is ON in this build), so a racy lane would show up both
  # as a TSan report and as a bitwise divergence.
  echo "=== [debug-tsan] sharded simulation lanes ==="
  ./build-tsan/tests/sharegrid_tests \
    --gtest_filter='ShardedSimulator.*:ClusteredScenario.*'
  # Chaos stage: the forked fleet with a leaf kill + restart and a root
  # kill + election, under TSan. Session teardown is where the receive
  # threads, the inbox mutex, and poll() meet — abrupt process death
  # exercises exactly the shutdown/reclaim interleavings a clean run never
  # hits, and the audit hooks (single-root, lease monotone) are armed in
  # this build.
  echo "=== [debug-tsan] multi-process chaos (leaf restart + root election) ==="
  ./build-tsan/examples/multi_process_demo examples/scenarios/multi_process.ini
fi

# Opt-in: refresh the checked-in warm-vs-cold LP re-solve numbers (see
# docs/lp-performance.md). Off by default — benchmark timings on loaded CI
# machines are noise, so the stage only runs when explicitly requested.
if [[ "${SHAREGRID_CI_QUICK_BENCH:-0}" == "1" ]]; then
  echo
  echo "=== [quick-bench] micro_lp warm-vs-cold re-solve ==="
  # Refreshes only the 'current' (implicit-bound engine) section of
  # BENCH_lp.json; the frozen explicit-bound-row 'baseline' section stays for
  # comparison. update_lp_bench.py fails the stage if the warm-hit rate
  # regresses below the checked-in baseline.
  LP_JSON="$(mktemp -t lp_bench.XXXXXX.json)"
  TMP_FILES+=("${LP_JSON}")
  # The unfiltered BM_LpResolve sweep includes the n = 64 and n = 128
  # revised-simplex scaling points; update_lp_bench.py fails the stage if any
  # recorded benchmark is missing from the run or a warm-hit rate regresses
  # below the checked-in sections (baseline *and* previous current).
  ./build-relwithdebinfo/bench/micro_lp \
    --benchmark_filter='BM_LpResolve|BM_LpCold' \
    --benchmark_out="${LP_JSON}" --benchmark_out_format=json
  python3 tools/update_lp_bench.py "${LP_JSON}" --section current

  echo
  echo "=== [quick-bench] LP suite under ASan (eta-file audits armed) ==="
  # Timing numbers only count if the engine that produced them is clean:
  # rerun the LP-facing tests in the audit-enabled ASan build alongside the
  # bench refresh, so a refactorization or warm-path bug can't slip into
  # BENCH_lp.json on a machine that skipped the full debug-asan stage.
  ./build-asan/tests/sharegrid_tests \
    --gtest_filter='Simplex.*:RevisedSimplex.*:SolveContext.*:Problem.*:AuditSimplex.*:SchedulerWarmStart.*:Regression.*'

  echo
  echo "=== [quick-bench] micro_sim event-engine + sharded scenario ==="
  # Same split for BENCH_sim.json: 'current' is the timing wheel + sharded
  # runner + flat flow tables, the frozen priority-queue 'baseline' section
  # stays for comparison. The BM_Scenario filter picks up BM_ScenarioSharded
  # (1/2/4/8 lanes) alongside the classic L4/L7 points.
  SIM_JSON="$(mktemp -t sim_bench.XXXXXX.json)"
  TMP_FILES+=("${SIM_JSON}")
  ./build-relwithdebinfo/bench/micro_sim \
    --benchmark_filter='BM_Simulator|BM_Scenario' \
    --benchmark_out="${SIM_JSON}" --benchmark_out_format=json

  echo
  echo "=== [quick-bench] micro_flow NAT-table map-vs-flat churn ==="
  # The connection-table container swap (std::map -> open-addressing
  # FlatHashMap) is recorded in the same section; update_sim_bench.py's
  # coverage gate keeps both pairs from silently vanishing.
  FLOW_JSON="$(mktemp -t flow_bench.XXXXXX.json)"
  TMP_FILES+=("${FLOW_JSON}")
  ./build-relwithdebinfo/bench/micro_flow \
    --benchmark_filter='BM_FlowTable' \
    --benchmark_out="${FLOW_JSON}" --benchmark_out_format=json
  python3 tools/update_sim_bench.py "${SIM_JSON}" "${FLOW_JSON}" \
    --section current
fi

echo
echo "ci.sh: all stages passed"
