#!/usr/bin/env bash
# Pre-PR gate: warnings-as-errors build + tests, then the same suite under
# ASan/UBSan and TSan with the runtime invariant auditor compiled in.
# See docs/static-analysis.md. Usage:
#
#   tools/ci.sh                      # all three stages
#   SHAREGRID_CI_SKIP_TSAN=1 tools/ci.sh   # skip the (slow) TSan stage
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${SHAREGRID_CI_JOBS:-$(nproc)}"

run_stage() {
  local preset="$1"
  echo
  echo "=== [${preset}] configure + build + ctest ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${JOBS}"
  ctest --preset "${preset}"
}

run_stage relwithdebinfo   # -Werror + lint + figure shapes
run_stage debug-asan       # ASan+UBSan, SHAREGRID_AUDIT=ON

if [[ "${SHAREGRID_CI_SKIP_TSAN:-0}" == "1" ]]; then
  echo "=== [debug-tsan] skipped (SHAREGRID_CI_SKIP_TSAN=1) ==="
else
  run_stage debug-tsan     # TSan, SHAREGRID_AUDIT=ON
fi

echo
echo "ci.sh: all stages passed"
