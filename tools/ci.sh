#!/usr/bin/env bash
# Pre-PR gate: warnings-as-errors build + tests, then the same suite under
# ASan/UBSan and TSan with the runtime invariant auditor compiled in.
# See docs/static-analysis.md. Usage:
#
#   tools/ci.sh                      # all three stages
#   SHAREGRID_CI_SKIP_TSAN=1 tools/ci.sh   # skip the (slow) TSan stage
#   SHAREGRID_CI_QUICK_BENCH=1 tools/ci.sh # also refresh BENCH_lp.json
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${SHAREGRID_CI_JOBS:-$(nproc)}"

run_stage() {
  local preset="$1"
  echo
  echo "=== [${preset}] configure + build + ctest ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${JOBS}"
  ctest --preset "${preset}"
}

run_stage relwithdebinfo   # -Werror + lint + figure shapes
run_stage debug-asan       # ASan+UBSan, SHAREGRID_AUDIT=ON

if [[ "${SHAREGRID_CI_SKIP_TSAN:-0}" == "1" ]]; then
  echo "=== [debug-tsan] skipped (SHAREGRID_CI_SKIP_TSAN=1) ==="
else
  run_stage debug-tsan     # TSan, SHAREGRID_AUDIT=ON
fi

# Opt-in: refresh the checked-in warm-vs-cold LP re-solve numbers (see
# docs/lp-performance.md). Off by default — benchmark timings on loaded CI
# machines are noise, so the stage only runs when explicitly requested.
if [[ "${SHAREGRID_CI_QUICK_BENCH:-0}" == "1" ]]; then
  echo
  echo "=== [quick-bench] micro_lp warm-vs-cold re-solve ==="
  ./build-relwithdebinfo/bench/micro_lp \
    --benchmark_filter='BM_LpResolve' \
    --benchmark_out=BENCH_lp.json --benchmark_out_format=json
fi

echo
echo "ci.sh: all stages passed"
