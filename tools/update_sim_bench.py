#!/usr/bin/env python3
"""Folds fresh google-benchmark JSON runs into BENCH_sim.json, which keeps
two sections side by side:

  baseline : the pre-timing-wheel engine (std::priority_queue of
             std::function events), frozen for before/after comparison
  current  : the timing-wheel engine + sharded scenario runner + flat
             flow tables, refreshed by SHAREGRID_CI_QUICK_BENCH=1 tools/ci.sh

Multiple FRESH_JSON files concatenate (micro_sim and micro_flow are separate
binaries but share the section); the context is taken from the first file.

The update is coverage-gated: every benchmark name already recorded in the
target section must appear in the fresh runs, so a renamed benchmark, an
over-narrow --benchmark_filter, or a crashed binary cannot silently drop a
measurement from the checked-in history.

Usage: tools/update_sim_bench.py FRESH_JSON... [--section current|baseline]
"""
import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BENCH = REPO / "BENCH_sim.json"

KEEP_CONTEXT = ("date", "host_name", "num_cpus", "mhz_per_cpu",
                "cpu_scaling_enabled", "library_build_type")
KEEP_BENCH = ("name", "iterations", "real_time", "cpu_time", "time_unit",
              "items_per_second")


def condense(raw):
    """Keeps just the fields a before/after comparison needs."""
    return {
        "context": {k: raw["context"][k]
                    for k in KEEP_CONTEXT if k in raw["context"]},
        "benchmarks": [{k: b[k] for k in KEEP_BENCH if k in b}
                       for b in raw["benchmarks"]
                       if b.get("run_type", "iteration") == "iteration"],
    }


def check_coverage(fresh, reference, section):
    """Every benchmark recorded in the checked-in section must be present in
    the fresh runs. Returns a list of messages naming each absent entry."""
    fresh_names = {b["name"] for b in fresh.get("benchmarks", [])}
    problems = []
    for b in reference.get("benchmarks", []):
        name = b.get("name")
        if name is not None and name not in fresh_names:
            problems.append(
                f"benchmark '{name}' is recorded in the checked-in "
                f"'{section}' section but absent from the fresh runs — "
                "run the benches unfiltered or drop the entry on purpose")
    return problems


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", type=pathlib.Path, nargs="+")
    parser.add_argument("--section", default="current",
                        choices=("current", "baseline"))
    args = parser.parse_args()

    fresh = None
    for path in args.fresh:
        with open(path) as f:
            part = condense(json.load(f))
        if fresh is None:
            fresh = part
        else:
            fresh["benchmarks"] += part["benchmarks"]

    doc = {}
    if BENCH.exists():
        with open(BENCH) as f:
            doc = json.load(f)
    doc.setdefault(
        "comment",
        "Simulator event-engine throughput, before (priority-queue engine) "
        "and after (hierarchical timing wheel); see docs/sim-performance.md")

    if args.section in doc:
        problems = check_coverage(fresh, doc[args.section], args.section)
        if problems:
            for p in problems:
                print(f"update_sim_bench: {p}", file=sys.stderr)
            return 1
    doc[args.section] = fresh

    with open(BENCH, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"updated {BENCH.relative_to(REPO)} section '{args.section}' "
          f"({len(fresh['benchmarks'])} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
