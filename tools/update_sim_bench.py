#!/usr/bin/env python3
"""Folds a fresh google-benchmark JSON run of bench/micro_sim into
BENCH_sim.json, which keeps two sections side by side:

  baseline : the pre-timing-wheel engine (std::priority_queue of
             std::function events), frozen for before/after comparison
  current  : the timing-wheel engine, refreshed by
             SHAREGRID_CI_QUICK_BENCH=1 tools/ci.sh

Usage: tools/update_sim_bench.py FRESH_JSON [--section current|baseline]
"""
import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BENCH = REPO / "BENCH_sim.json"

KEEP_CONTEXT = ("date", "host_name", "num_cpus", "mhz_per_cpu",
                "cpu_scaling_enabled", "library_build_type")
KEEP_BENCH = ("name", "iterations", "real_time", "cpu_time", "time_unit",
              "items_per_second")


def condense(raw):
    """Keeps just the fields a before/after comparison needs."""
    return {
        "context": {k: raw["context"][k]
                    for k in KEEP_CONTEXT if k in raw["context"]},
        "benchmarks": [{k: b[k] for k in KEEP_BENCH if k in b}
                       for b in raw["benchmarks"]
                       if b.get("run_type", "iteration") == "iteration"],
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", type=pathlib.Path)
    parser.add_argument("--section", default="current",
                        choices=("current", "baseline"))
    args = parser.parse_args()

    with open(args.fresh) as f:
        fresh = condense(json.load(f))

    doc = {}
    if BENCH.exists():
        with open(BENCH) as f:
            doc = json.load(f)
    doc.setdefault(
        "comment",
        "Simulator event-engine throughput, before (priority-queue engine) "
        "and after (hierarchical timing wheel); see docs/sim-performance.md")
    doc[args.section] = fresh

    with open(BENCH, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"updated {BENCH.relative_to(REPO)} section '{args.section}' "
          f"({len(fresh['benchmarks'])} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
