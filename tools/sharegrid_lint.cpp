// sharegrid_lint: fast file-level lint for project conventions.
//
// Usage: sharegrid_lint <root>... (roots are files or directories; the ctest
// registration passes the repo's src/). Exit status 0 = clean, 1 =
// violations (printed one per line as path:line: [rule] message), 2 = usage
// or I/O error.
//
// Rules (see docs/static-analysis.md for rationale):
//   no-raw-assert     assert()/abort() calls — contracts must throw
//                     ContractViolation via SHAREGRID_EXPECTS/ENSURES/ASSERT
//                     so tests can assert on misuse and long simulations
//                     fail loudly but cleanly (static_assert is fine).
//   no-stdout         std::cout / printf / puts in library code — libraries
//                     report through return values and exceptions; printing
//                     belongs to the bench/example/tool binaries.
//   no-raw-rng        rand()/srand()/random_device — determinism is
//                     load-bearing (DESIGN.md D4); all randomness must flow
//                     through the seeded sharegrid::Rng.
//   pragma-once       every header starts its include guard with
//                     #pragma once.
//   warnings-linked   every CMakeLists.txt that defines a non-INTERFACE
//                     target links sharegrid_warnings, so no target escapes
//                     -Werror or the sanitizer wiring.
//   coord-owns-windows direct WindowScheduler construction outside
//                     src/coord/ — enforcement windows must be obtained
//                     through a coord::ControlPlane member so the sim and
//                     live drivers keep sharing one window loop
//                     (DESIGN.md D10); references/pointers are fine.
//
// Matching is token-aware, not grep: comments and string/char literals are
// stripped first, and banned names must start at an identifier boundary.
// A line can opt out with a trailing  // sharegrid-lint: allow(<rule>).
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  fs::path file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Per-line source text with comments and literal contents blanked out
/// (replaced by spaces), so token scans cannot match inside them.
std::vector<std::string> strip_comments_and_literals(const std::string& text) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  std::vector<std::string> lines(1);
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      lines.emplace_back();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          lines.back() += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          lines.back() += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          lines.back() += '"';
        } else if (c == '\'') {
          state = State::kChar;
          lines.back() += '\'';
        } else {
          lines.back() += c;
        }
        break;
      case State::kLineComment:
        lines.back() += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          lines.back() += "  ";
          ++i;
        } else {
          lines.back() += ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          lines.back() += "  ";
          if (next != '\n') ++i;
        } else if (c == quote) {
          state = State::kCode;
          lines.back() += quote;
        } else {
          lines.back() += ' ';
        }
        break;
      }
    }
  }
  return lines;
}

bool is_identifier_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when @p name occurs in @p line starting at an identifier boundary
/// and followed (after optional spaces) by @p follow ('\0' = any).
bool has_token(const std::string& line, const std::string& name, char follow) {
  std::size_t pos = 0;
  while ((pos = line.find(name, pos)) != std::string::npos) {
    const bool boundary = pos == 0 || !is_identifier_char(line[pos - 1]);
    std::size_t after = pos + name.size();
    if (boundary) {
      if (follow == '\0') return true;
      while (after < line.size() && line[after] == ' ') ++after;
      if (after < line.size() && line[after] == follow) return true;
    }
    pos += name.size();
  }
  return false;
}

/// The raw (unstripped) line may carry a lint suppression for @p rule.
bool allows(const std::string& raw_line, const std::string& rule) {
  const std::size_t pos = raw_line.find("sharegrid-lint: allow(");
  if (pos == std::string::npos) return false;
  const std::size_t open = raw_line.find('(', pos);
  const std::size_t close = raw_line.find(')', open);
  if (close == std::string::npos) return false;
  return raw_line.substr(open + 1, close - open - 1) == rule;
}

struct TokenRule {
  std::string rule;
  std::string name;
  char follow;  // '\0' = no requirement
  std::string message;
};

const std::vector<TokenRule>& token_rules() {
  static const std::vector<TokenRule> rules = {
      {"no-raw-assert", "assert", '(',
       "raw assert(); use SHAREGRID_EXPECTS/ENSURES/ASSERT so the violation "
       "throws ContractViolation instead of aborting"},
      {"no-raw-assert", "abort", '(',
       "abort() call; throw ContractViolation (util/assert.hpp) so tests and "
       "long simulations can observe the failure"},
      {"no-stdout", "std::cout", '\0',
       "std::cout in library code; return data or throw — printing belongs "
       "in bench/, examples/, and tools/"},
      {"no-stdout", "printf", '(',
       "printf in library code; return data or throw — printing belongs in "
       "bench/, examples/, and tools/"},
      {"no-stdout", "puts", '(',
       "puts in library code; return data or throw — printing belongs in "
       "bench/, examples/, and tools/"},
      {"no-raw-rng", "rand", '(',
       "rand(); determinism is load-bearing (DESIGN.md D4) — draw from a "
       "seeded sharegrid::Rng"},
      {"no-raw-rng", "srand", '(',
       "srand(); determinism is load-bearing (DESIGN.md D4) — seed a "
       "sharegrid::Rng instead of the global C stream"},
      {"no-raw-rng", "random_device", '\0',
       "std::random_device is unseeded, non-deterministic entropy; thread a "
       "seeded sharegrid::Rng through instead"},
  };
  return rules;
}

/// Files allowed to own a WindowScheduler by value: the control plane
/// (src/coord/) and the class's own definition/test-support files.
bool may_own_window_scheduler(const fs::path& path) {
  if (path.filename().string().rfind("window_scheduler", 0) == 0) return true;
  for (const auto& part : path)
    if (part == "coord") return true;
  return false;
}

/// Flags `WindowScheduler` tokens that are not mere references, pointers, or
/// qualified-name uses — i.e. by-value declarations and constructor calls —
/// in files outside src/coord/. Owning a window scheduler directly bypasses
/// coord::ControlPlane and forks the window loop the sim and live drivers
/// are meant to share (DESIGN.md D10).
void lint_window_scheduler_ownership(const fs::path& path,
                                     const std::vector<std::string>& code,
                                     const std::vector<std::string>& raw_lines,
                                     std::vector<Violation>* out) {
  if (may_own_window_scheduler(path)) return;
  static const std::string kName = "WindowScheduler";
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    bool hit = false;
    std::size_t pos = 0;
    while (!hit && (pos = line.find(kName, pos)) != std::string::npos) {
      const bool boundary = pos == 0 || !is_identifier_char(line[pos - 1]);
      std::size_t after = pos + kName.size();
      pos += kName.size();
      if (!boundary) continue;
      if (after < line.size() && is_identifier_char(line[after])) continue;
      while (after < line.size() && line[after] == ' ') ++after;
      const char next = after < line.size() ? line[after] : '\0';
      hit = next != '&' && next != '*' && next != ':';
    }
    if (!hit) continue;
    if (i < raw_lines.size() && allows(raw_lines[i], "coord-owns-windows"))
      continue;
    out->push_back(
        {path, i + 1, "coord-owns-windows",
         "direct WindowScheduler ownership outside src/coord/; obtain "
         "windows through a coord::ControlPlane member so the sim and live "
         "drivers keep sharing one window loop (DESIGN.md D10)"});
  }
}

void lint_source(const fs::path& path, std::vector<Violation>* out) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::vector<std::string> raw_lines(1);
  for (const char c : text) {
    if (c == '\n')
      raw_lines.emplace_back();
    else
      raw_lines.back() += c;
  }
  const std::vector<std::string> code = strip_comments_and_literals(text);

  if (path.extension() == ".hpp" &&
      text.find("#pragma once") == std::string::npos) {
    out->push_back({path, 1, "pragma-once",
                    "header is missing #pragma once; every sharegrid header "
                    "guards with it"});
  }

  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const TokenRule& rule : token_rules()) {
      if (!has_token(code[i], rule.name, rule.follow)) continue;
      if (i < raw_lines.size() && allows(raw_lines[i], rule.rule)) continue;
      out->push_back({path, i + 1, rule.rule, rule.message});
    }
  }

  lint_window_scheduler_ownership(path, code, raw_lines, out);
}

/// A CMakeLists.txt that defines a compiled target must link
/// sharegrid_warnings (which also carries the sanitizer flags).
void lint_cmake(const fs::path& path, std::vector<Violation>* out) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  bool compiled_target = false;
  std::size_t target_line = 0;
  for (const std::string& command : {std::string("add_library"),
                                     std::string("add_executable")}) {
    std::size_t pos = 0;
    while ((pos = text.find(command, pos)) != std::string::npos) {
      const std::size_t open = text.find('(', pos + command.size());
      if (open == std::string::npos) break;
      const std::size_t close = text.find(')', open);
      const std::string args =
          text.substr(open + 1, close == std::string::npos
                                    ? std::string::npos
                                    : close - open - 1);
      if (args.find("INTERFACE") == std::string::npos &&
          args.find("ALIAS") == std::string::npos &&
          args.find("IMPORTED") == std::string::npos) {
        compiled_target = true;
        target_line =
            1 + static_cast<std::size_t>(
                    std::count(text.begin(), text.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
      }
      pos = open;
    }
  }
  if (compiled_target && text.find("sharegrid_warnings") == std::string::npos) {
    out->push_back({path, target_line, "warnings-linked",
                    "defines a compiled target but never links "
                    "sharegrid_warnings; the target escapes -Werror and the "
                    "SHAREGRID_SANITIZE wiring"});
  }
}

void lint_path(const fs::path& path, std::vector<Violation>* out,
               std::size_t* files_scanned) {
  const std::string ext = path.extension().string();
  const std::string name = path.filename().string();
  if (ext == ".hpp" || ext == ".cpp") {
    lint_source(path, out);
    ++*files_scanned;
  } else if (name == "CMakeLists.txt") {
    lint_cmake(path, out);
    ++*files_scanned;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) roots.emplace_back(argv[i]);
  if (roots.empty()) roots.emplace_back("src");

  std::vector<Violation> violations;
  std::size_t files_scanned = 0;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file())
          lint_path(entry.path(), &violations, &files_scanned);
      }
    } else if (fs::is_regular_file(root, ec)) {
      lint_path(root, &violations, &files_scanned);
    } else {
      std::cerr << "sharegrid_lint: cannot read " << root << "\n";
      return 2;
    }
  }

  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line) < std::tie(b.file, b.line);
            });
  for (const Violation& v : violations) {
    std::cout << v.file.string() << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  if (!violations.empty()) {
    std::cout << violations.size() << " violation(s) in " << files_scanned
              << " file(s)\n";
    return 1;
  }
  std::cout << "sharegrid_lint: OK (" << files_scanned << " files)\n";
  return 0;
}
