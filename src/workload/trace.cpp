#include "workload/trace.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sharegrid::workload {

RequestTrace RequestTrace::synthesize(
    const ActivityPlan& plan,
    const std::vector<core::PrincipalId>& client_principals,
    const std::vector<double>& rates, const ReplySizeDistribution& sizes,
    std::uint64_t seed, bool weighted) {
  SHAREGRID_EXPECTS(client_principals.size() == plan.client_count());
  SHAREGRID_EXPECTS(rates.size() == plan.client_count());

  Rng master(seed);
  std::vector<TraceEntry> all;
  for (std::size_t c = 0; c < plan.client_count(); ++c) {
    SHAREGRID_EXPECTS(rates[c] > 0.0);
    Rng rng = master.split();
    const double mean_gap_sec = 1.0 / rates[c];
    for (const ActiveInterval& interval : plan.intervals(c)) {
      SimTime t = interval.start;
      while (true) {
        t += std::max<SimDuration>(1, seconds(rng.exponential(mean_gap_sec)));
        if (t >= interval.end) break;
        TraceEntry entry;
        entry.time = t;
        entry.principal = client_principals[c];
        const SampledRequest sample = sizes.sample(rng);
        entry.reply_bytes = sample.reply_bytes;
        entry.weight = weighted ? sample.weight : 1.0;
        all.push_back(entry);
      }
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.time < b.time;
                   });
  RequestTrace trace;
  trace.entries_ = std::move(all);
  return trace;
}

void RequestTrace::append(TraceEntry entry) {
  SHAREGRID_EXPECTS(entry.time >= 0);
  SHAREGRID_EXPECTS(entries_.empty() || entries_.back().time <= entry.time);
  SHAREGRID_EXPECTS(entry.principal != core::kNoPrincipal);
  entries_.push_back(entry);
}

std::vector<std::size_t> RequestTrace::counts_by_principal() const {
  std::vector<std::size_t> counts;
  for (const TraceEntry& e : entries_) {
    if (e.principal >= counts.size()) counts.resize(e.principal + 1, 0);
    ++counts[e.principal];
  }
  return counts;
}

double RequestTrace::rate_of(core::PrincipalId principal,
                             SimTime horizon) const {
  SHAREGRID_EXPECTS(horizon > 0);
  std::size_t count = 0;
  for (const TraceEntry& e : entries_)
    if (e.principal == principal && e.time < horizon) ++count;
  return static_cast<double>(count) / to_seconds(horizon);
}

}  // namespace sharegrid::workload
