#include "workload/activity_plan.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sharegrid::workload {

ActivityPlan::ActivityPlan(std::size_t client_count)
    : intervals_(client_count) {
  SHAREGRID_EXPECTS(client_count > 0);
}

void ActivityPlan::add_interval(std::size_t client, SimTime start,
                                SimTime end) {
  SHAREGRID_EXPECTS(client < intervals_.size());
  SHAREGRID_EXPECTS(start >= 0 && end > start);
  auto& list = intervals_[client];
  SHAREGRID_EXPECTS(list.empty() || list.back().end <= start);
  list.push_back({start, end});
}

void ActivityPlan::always_active(std::size_t client, SimTime horizon) {
  add_interval(client, 0, horizon);
}

void ActivityPlan::add_phase(std::string name, SimTime start, SimTime end) {
  SHAREGRID_EXPECTS(end > start);
  SHAREGRID_EXPECTS(phases_.empty() || phases_.back().end <= start);
  phases_.push_back({std::move(name), start, end});
}

const std::vector<ActiveInterval>& ActivityPlan::intervals(
    std::size_t client) const {
  SHAREGRID_EXPECTS(client < intervals_.size());
  return intervals_[client];
}

bool ActivityPlan::active_at(std::size_t client, SimTime t) const {
  for (const auto& iv : intervals(client))
    if (t >= iv.start && t < iv.end) return true;
  return false;
}

SimTime ActivityPlan::horizon() const {
  SimTime latest = 0;
  for (const auto& list : intervals_)
    for (const auto& iv : list) latest = std::max(latest, iv.end);
  for (const auto& ph : phases_) latest = std::max(latest, ph.end);
  return latest;
}

}  // namespace sharegrid::workload
