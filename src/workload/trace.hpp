// Request traces: precomputed open-loop arrival sequences.
//
// The WebBench-style ClientMachine is closed-loop: its offered rate reacts
// to service (slots, retries). That realism couples measurements to the
// scheduler under test. A RequestTrace fixes the workload instead — every
// arrival's time, principal, and size is determined up front — so two
// schedulers can be compared on byte-identical input, and an experiment can
// be replayed exactly from its recorded trace.
#pragma once

#include <cstdint>
#include <vector>

#include "core/principal.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "workload/activity_plan.hpp"
#include "workload/reply_size.hpp"

namespace sharegrid::workload {

/// One request arrival in a trace.
struct TraceEntry {
  SimTime time = 0;
  core::PrincipalId principal = core::kNoPrincipal;
  double weight = 1.0;
  double reply_bytes = 6144.0;
};

/// Time-ordered, immutable-after-build arrival sequence.
class RequestTrace {
 public:
  /// Synthesizes a Poisson open-loop trace: each client c of
  /// @p client_principals generates at @p rates[c] req/s while
  /// @p plan marks it active. Sizes come from @p sizes (weight kept at 1
  /// unless @p weighted). Deterministic in @p seed.
  static RequestTrace synthesize(const ActivityPlan& plan,
                                 const std::vector<core::PrincipalId>& client_principals,
                                 const std::vector<double>& rates,
                                 const ReplySizeDistribution& sizes,
                                 std::uint64_t seed, bool weighted = false);

  /// Appends an entry; must not go backwards in time.
  void append(TraceEntry entry);

  const std::vector<TraceEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Arrival count per principal (index = PrincipalId; grows as needed).
  std::vector<std::size_t> counts_by_principal() const;

  /// Average arrival rate of one principal over [0, horizon).
  double rate_of(core::PrincipalId principal, SimTime horizon) const;

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace sharegrid::workload
