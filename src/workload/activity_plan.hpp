// Phase schedules: which client machines are active when (§5).
//
// Every experiment in the paper runs in phases — client machines switch on
// and off at known times and the figures show how admission adapts. An
// ActivityPlan holds per-client active intervals plus named phase boundaries
// used for reporting per-phase averages.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace sharegrid::workload {

/// Half-open activity interval [start, end) for one client machine.
struct ActiveInterval {
  SimTime start = 0;
  SimTime end = 0;
};

/// A named reporting phase [start, end).
struct Phase {
  std::string name;
  SimTime start = 0;
  SimTime end = 0;
};

/// Per-client on/off schedule plus reporting phases.
class ActivityPlan {
 public:
  explicit ActivityPlan(std::size_t client_count);

  /// Marks client @p client active during [start, end). Intervals for one
  /// client must be added in order and must not overlap.
  void add_interval(std::size_t client, SimTime start, SimTime end);

  /// Convenience: active for the whole experiment [0, horizon).
  void always_active(std::size_t client, SimTime horizon);

  /// Appends a reporting phase; phases must be added in time order.
  void add_phase(std::string name, SimTime start, SimTime end);

  std::size_t client_count() const { return intervals_.size(); }
  const std::vector<ActiveInterval>& intervals(std::size_t client) const;
  const std::vector<Phase>& phases() const { return phases_; }

  /// True when @p client is active at time @p t.
  bool active_at(std::size_t client, SimTime t) const;

  /// Latest end time across all intervals and phases (the experiment
  /// horizon).
  SimTime horizon() const;

 private:
  std::vector<std::vector<ActiveInterval>> intervals_;
  std::vector<Phase> phases_;
};

}  // namespace sharegrid::workload
