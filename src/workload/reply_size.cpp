#include "workload/reply_size.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace sharegrid::workload {

double bounded_pareto_mean(double lo, double hi, double alpha) {
  SHAREGRID_EXPECTS(lo > 0.0 && hi > lo && alpha > 0.0);
  if (std::abs(alpha - 1.0) < 1e-12) {
    // alpha = 1 limit: E = lo*hi/(hi-lo) * ln(hi/lo).
    return lo * hi / (hi - lo) * std::log(hi / lo);
  }
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return la / (1.0 - la / ha) * (alpha / (alpha - 1.0)) *
         (1.0 / std::pow(lo, alpha - 1.0) - 1.0 / std::pow(hi, alpha - 1.0));
}

double solve_pareto_alpha(double lo, double hi, double mean) {
  SHAREGRID_EXPECTS(lo < mean && mean < hi);
  // The bounded-Pareto mean decreases monotonically in alpha: alpha -> 0
  // pushes mass to the tail (mean -> geometric-ish high value), alpha -> inf
  // concentrates at lo. Bisect on that monotone map.
  double a_lo = 1e-3;
  double a_hi = 64.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (a_lo + a_hi);
    if (bounded_pareto_mean(lo, hi, mid) > mean)
      a_lo = mid;
    else
      a_hi = mid;
  }
  return 0.5 * (a_lo + a_hi);
}

ReplySizeDistribution::ReplySizeDistribution(const ReplySizeSpec& spec)
    : spec_(spec),
      alpha_(solve_pareto_alpha(spec.min_bytes, spec.max_bytes,
                                spec.mean_bytes)) {
  SHAREGRID_EXPECTS(spec_.dynamic_fraction >= 0.0 &&
                    spec_.dynamic_fraction <= 1.0);
}

SampledRequest ReplySizeDistribution::sample(Rng& rng) const {
  SampledRequest out;
  out.request_class = rng.chance(spec_.dynamic_fraction)
                          ? RequestClass::kDynamic
                          : RequestClass::kStatic;
  out.reply_bytes =
      rng.bounded_pareto(spec_.min_bytes, spec_.max_bytes, alpha_);
  out.weight = std::max(0.1, out.reply_bytes / spec_.mean_bytes);
  return out;
}

}  // namespace sharegrid::workload
