// Synthetic web workload in the image of WebBench (§5): a mix of static and
// dynamic page requests whose reply sizes range from 200 bytes to 500 KB
// with a 6 KB average. Sizes follow a bounded Pareto distribution (the
// standard heavy-tailed model for web replies) whose shape parameter is
// solved numerically so the configured mean holds exactly.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace sharegrid::workload {

/// Request class within the WebBench mix.
enum class RequestClass : std::uint8_t { kStatic, kDynamic };

/// Parameters of the reply-size model.
struct ReplySizeSpec {
  double min_bytes = 200.0;
  double max_bytes = 500.0 * 1024.0;
  double mean_bytes = 6.0 * 1024.0;
  /// Fraction of requests that are dynamic (CGI-style); WebBench's standard
  /// mix is predominantly static.
  double dynamic_fraction = 0.2;
};

/// Mean of a bounded Pareto(lo, hi, alpha) distribution.
double bounded_pareto_mean(double lo, double hi, double alpha);

/// Solves for the shape alpha giving the requested mean on [lo, hi] by
/// bisection. Requires lo < mean < hi.
double solve_pareto_alpha(double lo, double hi, double mean);

/// One sampled request of the mix.
struct SampledRequest {
  RequestClass request_class = RequestClass::kStatic;
  double reply_bytes = 0.0;
  /// Scheduling weight: reply size relative to the mean, so a 500 KB reply
  /// counts as ~85 small requests ("large requests are treated as multiple
  /// small ones", §4). Clamped below so tiny replies still cost something.
  double weight = 1.0;
};

/// Samples reply sizes / classes; deterministic given the Rng stream.
class ReplySizeDistribution {
 public:
  explicit ReplySizeDistribution(const ReplySizeSpec& spec = {});

  SampledRequest sample(Rng& rng) const;

  double alpha() const { return alpha_; }
  const ReplySizeSpec& spec() const { return spec_; }

 private:
  ReplySizeSpec spec_;
  double alpha_;
};

}  // namespace sharegrid::workload
