// Runtime invariant auditor (correctness tooling layer).
//
// The paper's enforcement guarantees rest on exact numeric invariants: flow
// conservation through the transitive MI/OI/MT/OT computation (§3.1.1,
// Formulae 1-4), the entitlement decomposition partitioning server capacity
// (DESIGN.md D1), LP solutions being primal feasible, and per-window quota +
// error-carry conservation (§3.1.2, DESIGN.md D5). This module checks them
// mechanically at runtime.
//
// Two layers:
//  - Non-template checks (implemented in invariant_auditor.cpp) operate on
//    util-level types only (Matrix, vectors, doubles), so sharegrid_audit
//    depends on nothing above sharegrid_util and every subsystem may link it
//    without a dependency cycle.
//  - Template checks are duck-typed over the calling subsystem's own types
//    (AgreementGraph/AccessLevels, lp::Problem/Solution, the L4 flow maps)
//    and instantiate only in translation units where those types are
//    complete, again keeping this header dependency-free.
//
// Call sites wrap invocations in SHAREGRID_AUDIT_HOOK(...), which compiles
// to nothing unless the build defines SHAREGRID_AUDIT (CMake option
// SHAREGRID_AUDIT=ON, on by default in the debug-asan/debug-tsan presets).
// Tests call the audit functions directly; they are always compiled.
//
// Every violation throws sharegrid::ContractViolation whose message starts
// with "[audit] <invariant>:" followed by the offending numbers and a hint
// about what likely broke — messages are meant to be actionable, not merely
// true. Messages are built lazily (require() takes a callable): several
// hooks sit on per-admission/per-pivot hot paths, and a passing check must
// cost arithmetic only, never string formatting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/matrix.hpp"

namespace sharegrid::audit {

/// Absolute + relative tolerance for floating-point identity checks.
struct Tolerance {
  double abs = 1e-7;
  double rel = 1e-7;

  bool close(double a, double b) const {
    return std::abs(a - b) <= abs + rel * std::max(std::abs(a), std::abs(b));
  }
};

/// Throws ContractViolation with the auditor's message format.
[[noreturn]] void fail(const std::string& invariant, const std::string& detail);

/// fail() unless @p ok; @p message is invoked only on failure so passing
/// checks never pay for string formatting.
template <class MessageFn>
inline void require(bool ok, const char* invariant, MessageFn&& message) {
  if (!ok) fail(invariant, std::forward<MessageFn>(message)());
}

/// Compact numeric formatting for audit messages ("0.300000012" -> "0.3").
std::string num(double value);

// ---------------------------------------------------------------------------
// lp/simplex: tableau consistency and anti-cycling progress.
// ---------------------------------------------------------------------------

/// Checks that the tableau is in proper basic form: every basic column is a
/// unit column (1 in its own row, 0 elsewhere) and every basic value lies
/// within its variable's bounds — at least 0, and with the bounded-variable
/// simplex also at most upper[basis[i]], i.e. the current basic solution
/// stays primal feasible on *both* sides. @p upper holds the per-column
/// shifted upper bounds (kInfinity when unbounded); an empty vector means
/// all-infinite, which preserves the historical rhs >= 0 check. Invoked
/// after tableau construction and after every pivot/bound flip. The check
/// scales its tolerance by the largest |rhs| entry: conservative-mode LPs
/// carry saturated demands around 1e9, where rounding dwarfs any absolute
/// epsilon.
void audit_simplex_basis(const Matrix& a, const std::vector<double>& rhs,
                         const std::vector<std::size_t>& basis,
                         const std::vector<double>& upper, double tol);

/// Bland's rule guarantees the objective never regresses even on degenerate
/// pivots; a decrease means the anti-cycling pricing is broken (or the
/// tableau lost numerical coherence) and the solver may loop forever.
void audit_bland_progress(double objective_before, double objective_after,
                          double tol);

/// Checks the incrementally-maintained reduced costs against a from-scratch
/// recomputation d_j = c_j - sum_i c_basis[i] * a(i, j). The solver applies
/// an O(cols) eta update per pivot instead of the full O(rows * cols)
/// recompute; drift here silently mis-prices entering columns, which can
/// stall the solve or terminate it at a non-optimal vertex.
void audit_reduced_costs(const Matrix& a, const std::vector<std::size_t>& basis,
                         const std::vector<double>& costs,
                         const std::vector<double>& incremental, double tol);

/// Warm-start entry: the cached basis re-applied to a new window's data must
/// form a proper primal-feasible basic tableau (delegates to
/// audit_simplex_basis) and must not keep any artificial column basic —
/// artificials are meaningless outside phase 1, and a basic artificial means
/// the solver is about to optimize a point that never satisfied the original
/// constraints.
void audit_warm_start_entry(const Matrix& a, const std::vector<double>& rhs,
                            const std::vector<std::size_t>& basis,
                            const std::vector<double>& upper,
                            std::size_t first_artificial, double tol);

// ---------------------------------------------------------------------------
// lp/solve_context: revised-simplex (eta-file) consistency. These mirror the
// tableau checks above for a solver that stores no tableau: basis coherence
// is checked one FTRAN image at a time, and the product-form inverse is
// cross-checked against a from-scratch rebuild at every refactorization.
// ---------------------------------------------------------------------------

/// Checks that every basic value lies within its variable's bounds: at least
/// 0, and at most upper[basis[i]] where finite — the primal-feasibility half
/// of the old tableau check, usable without any tableau. The tolerance
/// scales by the largest |rhs| entry (conservative-mode LPs carry saturated
/// demands around 1e9, where rounding dwarfs any absolute epsilon).
void audit_basic_values(const std::vector<double>& rhs,
                        const std::vector<std::size_t>& basis,
                        const std::vector<double>& upper, double tol);

/// Checks that @p ftran_image — the FTRAN of the column basic in @p row
/// through the current eta file — is that row's unit vector: 1 in its own
/// row, 0 elsewhere. This is the revised-simplex statement of "basic columns
/// are eliminated"; drift here means the eta file no longer inverts the
/// basis and every ratio test is reading garbage.
void audit_unit_column(std::size_t row, const std::vector<double>& ftran_image,
                       double tol);

/// Checks the incrementally-maintained reduced costs against a from-scratch
/// BTRAN recomputation (the caller supplies both vectors; the solver applies
/// an eta update per pivot instead of recomputing, and drift silently
/// mis-prices entering columns). Comparison is entrywise with the tolerance
/// scaled per entry by the magnitudes involved.
void audit_reduced_cost_sync(const std::vector<double>& incremental,
                             const std::vector<double>& reference, double tol);

/// Checks that no artificial column is basic — the warm re-entry
/// precondition. Artificials are meaningless outside phase 1; a basic
/// artificial means the solver is about to optimize a point that never
/// satisfied the original constraints.
void audit_no_artificial_basic(const std::vector<std::size_t>& basis,
                               std::size_t first_artificial);

/// Cross-checks the eta-updated basic values carried across pivots against
/// values recomputed from scratch (B^-1 b minus the at-upper columns) at a
/// refactorization, aligned per basic variable. Divergence beyond the
/// scaled tolerance means the product-form updates drifted from the matrix
/// they claim to invert — plans produced between refactorizations would be
/// quietly wrong.
void audit_eta_consistency(const std::vector<double>& eta_values,
                           const std::vector<double>& fresh_values, double tol);

/// Cross-checks a SolveContext's cumulative counters (duck-typed over
/// lp::SolveStats to keep this header dependency-free). Every solve is
/// either warm or cold — exactly one of the two counters moves per solve()
/// — and every cold solve has at most one recorded cause (layout mismatch,
/// periodic refresh, unrepairable column, rejected rhs); a cause recorded
/// twice for one failed warm attempt would overstate miss rates and trip
/// the CI warm-hit-rate gate on healthy runs.
template <class Stats>
void audit_solve_stats(const Stats& s) {
  require(s.warm_solves + s.cold_solves == s.solves, "lp.stats-solve-split",
          [&] {
            return std::to_string(s.warm_solves) + " warm + " +
                   std::to_string(s.cold_solves) + " cold != " +
                   std::to_string(s.solves) +
                   " total solves; a solve path returned without exactly one "
                   "of the two counters being bumped";
          });
  require(s.structure_misses + s.refreshes + s.repair_rejections +
                  s.rhs_rejections <=
              s.cold_solves,
          "lp.stats-cold-causes", [&] {
            return "cold-solve causes (" + std::to_string(s.structure_misses) +
                   " structure misses + " + std::to_string(s.refreshes) +
                   " refreshes + " + std::to_string(s.repair_rejections) +
                   " repair rejections + " + std::to_string(s.rhs_rejections) +
                   " rhs rejections) exceed " + std::to_string(s.cold_solves) +
                   " cold solves; some failed warm attempt was counted under "
                   "two causes";
          });
}

/// Checks that a returned kOptimal solution satisfies the *original* problem:
/// variable bounds, every constraint in its stated relation, and an objective
/// value consistent with the returned variable values.
template <class Problem, class Solution>
void audit_lp_solution(const Problem& problem, const Solution& solution,
                       double tol) {
  if (!solution.optimal()) return;
  const std::size_t n = problem.num_vars();
  require(solution.values.size() == n, "lp.solution-shape", [&] {
    return "solution has " + std::to_string(solution.values.size()) +
           " values for a problem with " + std::to_string(n) +
           " variables; the solver dropped or invented variables";
  });

  const auto& lo = problem.lower_bounds();
  const auto& hi = problem.upper_bounds();
  for (std::size_t j = 0; j < n; ++j) {
    const double x = solution.values[j];
    const double bound_tol = tol * (1.0 + std::abs(x));
    require(x >= lo[j] - bound_tol && x <= hi[j] + bound_tol,
            "lp.variable-bounds", [&] {
              return "x[" + std::to_string(j) + "] = " + num(x) +
                     " violates bounds [" + num(lo[j]) + ", " + num(hi[j]) +
                     "]; the bound rows were lost in the standard-form "
                     "translation";
            });
  }

  std::size_t row = 0;
  for (const auto& c : problem.constraints()) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : c.terms) lhs += coeff * solution.values[var];
    using Rel = std::decay_t<decltype(c.relation)>;
    const double row_tol = tol * (1.0 + std::abs(lhs) + std::abs(c.rhs));
    const bool ok =
        (c.relation == Rel::kLessEq && lhs <= c.rhs + row_tol) ||
        (c.relation == Rel::kGreaterEq && lhs >= c.rhs - row_tol) ||
        (c.relation == Rel::kEqual && std::abs(lhs - c.rhs) <= row_tol);
    require(ok, "lp.primal-feasibility", [&] {
      return "constraint #" + std::to_string(row) + " has lhs " + num(lhs) +
             " vs rhs " + num(c.rhs) +
             "; the solver returned kOptimal for an infeasible point — "
             "phase-1 termination or the feasibility test is broken";
    });
    ++row;
  }

  double objective = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    objective += problem.objective()[j] * solution.values[j];
  require(std::abs(objective - solution.objective) <=
              tol * (1.0 + std::abs(objective)),
          "lp.objective-consistency", [&] {
            return "reported objective " + num(solution.objective) +
                   " but the values imply " + num(objective) +
                   "; objective bookkeeping diverged from the tableau";
          });
}

// ---------------------------------------------------------------------------
// sched/window_scheduler: quota + error-carry conservation (DESIGN.md D5).
// ---------------------------------------------------------------------------

/// Per-window conservation: for every (principal, server) cell the window
/// must satisfy  quota + consumed == slice + debt  exactly (within fp
/// noise), with consumed >= 0 and debt <= 0. Any drift means admissions are
/// being created or destroyed relative to the LP plan.
void audit_window_conservation(const Matrix& quota, const Matrix& consumed,
                               const Matrix& debt, const Matrix& slices,
                               double tol);

/// The integer-quota error carry must stay in [0, 1): anything else breaks
/// the "long-run admitted == planned within 1 request" guarantee.
void audit_quota_carry(double carry);

// ---------------------------------------------------------------------------
// coord/control_plane: snapshot ordering and cross-redirector quota safety.
// ---------------------------------------------------------------------------

/// Snapshot rounds delivered to one control-plane member must be strictly
/// increasing (gaps are fine — abandoned tree rounds). A repeat or a
/// regression means a transport replayed or reordered an aggregate, and the
/// member would plan window k against data older than what it already used.
void audit_control_plane_snapshot(bool has_previous,
                                  std::uint64_t previous_round,
                                  std::uint64_t round);

/// Round tags a transport is about to deliver must be strictly increasing
/// per process (the wire-level twin of audit_control_plane_snapshot): the
/// SocketTransport rejects stale/duplicate round tags before delivery, and
/// this hook pins that the filter actually held — a violation means the
/// validation path let a replayed or reordered aggregate through.
void audit_round_tag_monotone(bool has_previous, std::uint64_t previous_round,
                              std::uint64_t round);

/// Lease adoptions a follower is about to apply must be monotone: the lease
/// incarnation never decreases, and one incarnation never names two roots. A
/// regression means the stale-lease filter let a superseded (zombie) root's
/// lease through; a same-incarnation root change is split brain — two
/// aggregation points could both open rounds and the fleet would plan
/// against two diverging aggregate streams.
void audit_lease_monotone(bool has_previous, std::uint64_t previous_incarnation,
                          std::size_t previous_root,
                          std::uint64_t incarnation, std::size_t root);

/// A process about to acquire the root lease (lowest-live-member election)
/// must have observed the previous lease expire — acquiring next to a live
/// lease is split brain — and must fence the old root with a strictly higher
/// incarnation than anything it has seen, or the zombie's in-flight rounds
/// would be indistinguishable from the new root's.
void audit_root_acquire(bool lease_known, std::int64_t now_usec,
                        std::int64_t lease_expiry_usec,
                        std::uint64_t new_incarnation,
                        std::uint64_t highest_seen);

/// One member's window slices against its own plan: every cell must satisfy
/// 0 <= slice(i, k) <= plan_rate(i, k) * share_cap * window_sec. share_cap
/// is 1/R in the conservative no-snapshot phase (§5.1 phase 1: nobody may
/// take more than their redirector-count slice) and 1 once snapshots flow
/// (the proportional share can legitimately reach 1).
void audit_control_plane_member_slices(const Matrix& slices,
                                       const Matrix& plan_rate,
                                       double share_cap, double window_sec,
                                       double tol);

/// Cross-member conservation in the conservative no-snapshot phase: the
/// redirectors' slices of cell (i, k) must sum to at most the full plan cell
/// plan_rate(i, k) * window_sec — the 1/R split may never hand out more
/// total quota than one redirector owning the whole plan would. Only valid
/// before the first snapshot (afterwards local drift over a lagged snapshot
/// legitimately pushes the share sum past 1; see
/// WindowScheduler::compute_slices).
void audit_control_plane_slice_sum(const Matrix& slice_sum,
                                   const Matrix& plan_rate, double window_sec,
                                   double tol);

// ---------------------------------------------------------------------------
// core/flow + core/entitlement: Formulae 1-4 and the capacity partition.
// ---------------------------------------------------------------------------

/// Audits a complete AccessLevels result against its source graph:
///  - transfer-matrix sanity: MT diagonal 1, OT diagonal 0, all entries
///    non-negative, and MT(j,i) <= 1 (a substochastic path measure: the lb
///    issued by any principal sum to at most 1, Formula 1);
///  - value consistency: M_i / O_i equal the capacity-weighted column sums
///    of MT / OT (Formulae 3-4);
///  - the Figure 5(b) split: MC_i = M_i (1 - L_i), OC_i = O_i + M_i L_i,
///    with L_i in [0, 1], which conserves MC_i + OC_i = M_i + O_i;
///  - entitlement row sums recover the access levels (DESIGN.md D1);
///  - when @p expect_exact_partition (acyclic agreement graphs): the
///    mandatory entitlements of each server column partition its capacity,
///    sum_i EM(i,k) = V_k.
template <class Graph, class Levels>
void audit_access_levels(const Graph& graph, const Levels& levels,
                         bool expect_exact_partition, Tolerance tol = {}) {
  const std::size_t n = graph.size();
  require(levels.size() == n && levels.mandatory_transfer.rows() == n &&
              levels.mandatory_transfer.cols() == n &&
              levels.optional_transfer.rows() == n &&
              levels.optional_transfer.cols() == n &&
              levels.mandatory_entitlement.rows() == n &&
              levels.optional_entitlement.rows() == n,
          "flow.shape", [&] {
            return "access-level result shapes disagree with a graph of " +
                   std::to_string(n) + " principals";
          });

  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      const double mt = levels.mandatory_transfer(j, i);
      const double ot = levels.optional_transfer(j, i);
      if (i == j) {
        require(tol.close(mt, 1.0) && std::abs(ot) <= tol.abs,
                "flow.transfer-diagonal", [&] {
                  return "principal " + graph.name(j) + ": MT(j,j) = " +
                         num(mt) + ", OT(j,j) = " + num(ot) +
                         " (must be 1 and 0: a principal fully owns its own "
                         "capacity and gains no optional value from itself)";
                });
        continue;
      }
      require(mt >= -tol.abs && ot >= -tol.abs, "flow.transfer-negative",
              [&] {
                return "MT(" + graph.name(j) + ", " + graph.name(i) + ") = " +
                       num(mt) + ", OT = " + num(ot) +
                       "; negative transfer means a path contributed negative "
                       "value — check agreement bounds 0 <= lb <= ub";
              });
      require(mt <= 1.0 + tol.abs + tol.rel, "flow.mandatory-transfer-bound",
              [&] {
                return "MT(" + graph.name(j) + ", " + graph.name(i) + ") = " +
                       num(mt) +
                       " exceeds 1; the path walk double-counted a simple "
                       "path or an owner issued lower bounds summing past 1 "
                       "(Formula 1)";
              });
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    double m = 0.0, o = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      m += graph.capacity(j) * levels.mandatory_transfer(j, i);
      o += graph.capacity(j) * levels.optional_transfer(j, i);
    }
    require(tol.close(m, levels.mandatory_value[i]),
            "flow.mandatory-value-conservation", [&] {
              return "principal " + graph.name(i) + ": stored M_i = " +
                     num(levels.mandatory_value[i]) +
                     " but capacity-weighted MT column sums to " + num(m) +
                     " (Formula 3); values were not recomputed after a "
                     "transfer or capacity change";
            });
    require(tol.close(o, levels.optional_value[i]),
            "flow.optional-value-conservation", [&] {
              return "principal " + graph.name(i) + ": stored O_i = " +
                     num(levels.optional_value[i]) +
                     " but capacity-weighted OT column sums to " + num(o) +
                     " (Formula 4); values were not recomputed after a "
                     "transfer or capacity change";
            });

    const double ceded = graph.issued_lower_bound(i);
    require(ceded >= -tol.abs && ceded <= 1.0 + tol.abs, "flow.ceded-range",
            [&] {
              return "principal " + graph.name(i) +
                     " issues lower bounds summing to " + num(ceded) +
                     "; outside [0, 1] the Figure 5(b) split is meaningless";
            });
    const double mc = levels.mandatory_value[i] * (1.0 - ceded);
    const double oc =
        levels.optional_value[i] + levels.mandatory_value[i] * ceded;
    require(tol.close(mc, levels.mandatory_capacity[i]) &&
                tol.close(oc, levels.optional_capacity[i]),
            "flow.access-level-split", [&] {
              return "principal " + graph.name(i) + ": stored (MC, OC) = (" +
                     num(levels.mandatory_capacity[i]) + ", " +
                     num(levels.optional_capacity[i]) +
                     ") but the L_i = " + num(ceded) + " split of (M, O) "
                     "gives (" + num(mc) + ", " + num(oc) +
                     "); the mandatory/optional conversion lost value";
            });

    double em_row = 0.0, eo_row = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      em_row += levels.mandatory_entitlement(i, k);
      eo_row += levels.optional_entitlement(i, k);
    }
    require(tol.close(em_row, levels.mandatory_capacity[i]),
            "flow.entitlement-row-sum", [&] {
              return "principal " + graph.name(i) + ": EM row sums to " +
                     num(em_row) + " but MC_i = " +
                     num(levels.mandatory_capacity[i]) +
                     "; the per-server decomposition no longer adds up to "
                     "the access level the schedulers promise (DESIGN.md D1)";
            });
    require(tol.close(eo_row, levels.optional_capacity[i]),
            "flow.entitlement-row-sum", [&] {
              return "principal " + graph.name(i) + ": EO row sums to " +
                     num(eo_row) + " but OC_i = " +
                     num(levels.optional_capacity[i]) +
                     "; the per-server decomposition no longer adds up to "
                     "the access level the schedulers promise (DESIGN.md D1)";
            });
  }

  if (expect_exact_partition) {
    for (std::size_t k = 0; k < n; ++k) {
      double em_col = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        em_col += levels.mandatory_entitlement(i, k);
      require(tol.close(em_col, graph.capacity(k)),
              "flow.entitlement-partition", [&] {
                return "server column " + graph.name(k) + ": EM sums to " +
                       num(em_col) + " but capacity is " +
                       num(graph.capacity(k)) +
                       "; on an acyclic agreement graph the mandatory "
                       "entitlements must exactly partition each server's "
                       "capacity or the schedulers' lower bounds are "
                       "infeasible";
              });
    }
  }
}

// ---------------------------------------------------------------------------
// sim/simulator: timing-wheel event engine (DESIGN.md D4/D8).
// ---------------------------------------------------------------------------

/// The simulated clock may only move forward: the wheel hands events out in
/// nondecreasing time order, so a backwards step means a cascade mis-filed
/// an event into an already-passed bucket.
void audit_sim_clock_monotone(std::int64_t now, std::int64_t next);

/// Conservation across cascades: every scheduled event is either executed or
/// still pending, exactly once. @p inserted counts schedule calls, @p popped
/// executions, @p size the wheel's O(1) size counter, and @p walked the
/// events actually found by walking every slot and the overflow list.
void audit_sim_event_conservation(std::uint64_t inserted, std::uint64_t popped,
                                  std::size_t size, std::uint64_t walked);

// ---------------------------------------------------------------------------
// sched/multi_provider_scheduler: parallel solves match the serial order.
// ---------------------------------------------------------------------------

/// A plan solved on the worker pool must be *bitwise* equal to the shadow
/// plan solved serially from the same inputs — not merely close: both run
/// the identical deterministic pipeline (DESIGN.md D7), so any difference
/// means the parallel path leaked state between providers (a shared
/// SolveContext, a data race, or a nondeterministic merge order), and
/// serial/parallel runs would diverge event-for-event downstream.
template <class Plan>
void audit_parallel_plan_match(const Plan& parallel, const Plan& serial,
                               std::size_t provider) {
  require(parallel.rate.rows() == serial.rate.rows() &&
              parallel.rate.cols() == serial.rate.cols() &&
              parallel.demand.size() == serial.demand.size(),
          "parallel.plan-shape", [&] {
            return "provider #" + std::to_string(provider) +
                   ": pooled and serial plans have different shapes; the "
                   "merge assembled columns from the wrong provider";
          });
  for (std::size_t i = 0; i < parallel.rate.rows(); ++i) {
    for (std::size_t k = 0; k < parallel.rate.cols(); ++k) {
      require(parallel.rate(i, k) == serial.rate(i, k),
              "parallel.plan-divergence", [&] {
                return "provider #" + std::to_string(provider) + " rate(" +
                       std::to_string(i) + ", " + std::to_string(k) +
                       ") = " + num(parallel.rate(i, k)) +
                       " pooled but " + num(serial.rate(i, k)) +
                       " serial; the per-provider solves are sharing state "
                       "and runs are no longer order-independent";
              });
    }
  }
  for (std::size_t i = 0; i < parallel.demand.size(); ++i) {
    require(parallel.demand[i] == serial.demand[i],
            "parallel.demand-divergence", [&] {
              return "provider #" + std::to_string(provider) + " demand[" +
                     std::to_string(i) + "] = " + num(parallel.demand[i]) +
                     " pooled but " + num(serial.demand[i]) + " serial";
            });
  }
  require(parallel.theta == serial.theta &&
              parallel.lp_fallback == serial.lp_fallback,
          "parallel.plan-divergence", [&] {
            return "provider #" + std::to_string(provider) +
                   ": theta/fallback flags disagree between the pooled and "
                   "serial solves";
          });
}

// ---------------------------------------------------------------------------
// l4/connection_table: no orphaned NAT entries.
// ---------------------------------------------------------------------------

/// Every active NAT flow must carry a matching affinity hint for the same
/// server: establish() writes both, so a table entry whose hint is missing
/// or points elsewhere is orphaned state — reply packets would be rewritten
/// toward a server the affinity logic no longer remembers. (A hint without
/// a live flow is fine: hints deliberately outlive connections.)
template <class FlowMap>
void audit_connection_table(const FlowMap& table, const FlowMap& affinity) {
  std::size_t index = 0;
  for (const auto& [key, server] : table) {
    const auto hint = affinity.find(key);
    require(hint != affinity.end(), "l4.orphaned-nat-entry", [&] {
      return "active flow #" + std::to_string(index) +
             " has no affinity hint; establish() must record both the NAT "
             "mapping and the hint atomically";
    });
    require(hint->second == server, "l4.affinity-mismatch", [&] {
      return "active flow #" + std::to_string(index) + " is NATed to host " +
             std::to_string(server.host) +
             " but its affinity hint names host " +
             std::to_string(hint->second.host) +
             "; a re-establish updated one map but not the other";
    });
    ++index;
  }
}

// ---------------------------------------------------------------------------
// experiments/sharded_scenario: sharded run matches the serial oracle.
// ---------------------------------------------------------------------------

/// A cluster-partitioned scenario run with sim_shards > 1 must be *bitwise*
/// equal to the same scenario re-run with sim_shards = 1 — the serial run IS
/// the oracle. The engine promises shard-count invariance by construction
/// (conservative lookahead + source-ordered barrier delivery, DESIGN.md
/// D13); any mismatch here means an event leaked across an epoch boundary,
/// a barrier delivered out of order, or the per-cluster merge ran in a
/// nondeterministic order. Duck-typed over ScenarioResult.
template <class Result>
void audit_shard_merge_match(const Result& sharded, const Result& serial) {
  require(sharded.total_admitted == serial.total_admitted &&
              sharded.total_rejected_or_queued ==
                  serial.total_rejected_or_queued &&
              sharded.coordination_messages == serial.coordination_messages,
          "shard.total-divergence", [&] {
            return "admitted " + std::to_string(sharded.total_admitted) + "/" +
                   std::to_string(serial.total_admitted) + ", rejected " +
                   std::to_string(sharded.total_rejected_or_queued) + "/" +
                   std::to_string(serial.total_rejected_or_queued) +
                   ", coordination " +
                   std::to_string(sharded.coordination_messages) + "/" +
                   std::to_string(serial.coordination_messages) +
                   " (sharded/serial); the lanes dropped or duplicated work";
          });
  const std::size_t principals = serial.metrics.principal_count();
  require(sharded.metrics.principal_count() == principals,
          "shard.metrics-shape", [&] {
            return "sharded run reports " +
                   std::to_string(sharded.metrics.principal_count()) +
                   " principals, serial " + std::to_string(principals);
          });
  for (std::size_t p = 0; p < principals; ++p) {
    const auto compare_series = [&](const auto& lhs, const auto& rhs,
                                    const char* what) {
      const std::size_t bins = std::max(lhs.bin_count(), rhs.bin_count());
      for (std::size_t b = 0; b < bins; ++b) {
        require(lhs.events_in_bin(b) == rhs.events_in_bin(b),
                "shard.series-divergence", [&] {
                  return std::string(what) + "[principal " +
                         std::to_string(p) + "] bin " + std::to_string(b) +
                         ": " + std::to_string(lhs.events_in_bin(b)) +
                         " sharded but " + std::to_string(rhs.events_in_bin(b)) +
                         " serial; some cluster saw a different event stream";
                });
      }
    };
    compare_series(sharded.metrics.offered(p), serial.metrics.offered(p),
                   "offered");
    compare_series(sharded.metrics.served(p), serial.metrics.served(p),
                   "served");
    compare_series(sharded.metrics.rejected(p), serial.metrics.rejected(p),
                   "rejected");
    compare_series(sharded.metrics.reply_bytes(p),
                   serial.metrics.reply_bytes(p), "reply_bytes");
    const auto& lat_s = sharded.metrics.latency(p);
    const auto& lat_o = serial.metrics.latency(p);
    require(lat_s.count() == lat_o.count() && lat_s.mean() == lat_o.mean() &&
                lat_s.min() == lat_o.min() && lat_s.max() == lat_o.max(),
            "shard.latency-divergence", [&] {
              return "latency[principal " + std::to_string(p) + "]: n=" +
                     std::to_string(lat_s.count()) + " mean=" +
                     num(lat_s.mean()) + " sharded but n=" +
                     std::to_string(lat_o.count()) + " mean=" +
                     num(lat_o.mean()) +
                     " serial; the per-cluster merge order is not fixed";
            });
  }
  require(sharded.server_backlog_sec.count() ==
                  serial.server_backlog_sec.count() &&
              sharded.server_backlog_sec.mean() ==
                  serial.server_backlog_sec.mean() &&
              sharded.server_backlog_sec.max() ==
                  serial.server_backlog_sec.max(),
          "shard.backlog-divergence", [&] {
            return "backlog probe: n=" +
                   std::to_string(sharded.server_backlog_sec.count()) +
                   " max=" + num(sharded.server_backlog_sec.max()) +
                   " sharded but n=" +
                   std::to_string(serial.server_backlog_sec.count()) +
                   " max=" + num(serial.server_backlog_sec.max()) + " serial";
          });
}

}  // namespace sharegrid::audit

// Expands audit calls only in SHAREGRID_AUDIT builds; in normal builds the
// hook (and everything computed inside its parentheses) vanishes entirely.
#if defined(SHAREGRID_AUDIT)
#define SHAREGRID_AUDIT_HOOK(call) \
  do {                             \
    call;                          \
  } while (false)
#else
#define SHAREGRID_AUDIT_HOOK(call) ((void)0)
#endif
