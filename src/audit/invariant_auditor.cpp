#include "audit/invariant_auditor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sharegrid::audit {

void fail(const std::string& invariant, const std::string& detail) {
  throw ContractViolation("[audit] " + invariant + ": " + detail);
}

std::string num(double value) {
  std::ostringstream os;
  os.precision(9);
  os << value;
  return os.str();
}

void audit_simplex_basis(const Matrix& a, const std::vector<double>& rhs,
                         const std::vector<std::size_t>& basis,
                         const std::vector<double>& upper, double tol) {
  const std::size_t m = rhs.size();
  require(a.rows() == m && basis.size() == m, "simplex.tableau-shape", [&] {
    return "tableau has " + std::to_string(a.rows()) + " rows, " +
           std::to_string(rhs.size()) + " rhs entries, and " +
           std::to_string(basis.size()) + " basis entries";
  });
  require(upper.empty() || upper.size() == a.cols(), "simplex.tableau-shape",
          [&] {
            return "upper-bound vector has " + std::to_string(upper.size()) +
                   " entries for a tableau with " + std::to_string(a.cols()) +
                   " columns (pass an empty vector for all-unbounded)";
          });
  // Feasibility tolerance must scale with the data: conservative-mode LPs
  // carry saturated demands around 1e9, where rounding dwarfs any absolute
  // epsilon.
  double scale = 1.0;
  for (const double r : rhs) scale = std::max(scale, std::abs(r));
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t col = basis[i];
    require(col < a.cols(), "simplex.basis-column-range", [&] {
      return "row " + std::to_string(i) + " claims basic column " +
             std::to_string(col) + " of " + std::to_string(a.cols());
    });
    for (std::size_t r = 0; r < m; ++r) {
      const double expected = r == i ? 1.0 : 0.0;
      require(std::abs(a(r, col) - expected) <= tol, "simplex.basis-not-unit",
              [&] {
                return "basic column " + std::to_string(col) + " has a(" +
                       std::to_string(r) + ", col) = " + num(a(r, col)) +
                       " (expected " + num(expected) +
                       "); a pivot failed to eliminate the column and the "
                       "basic solution read off the rhs is meaningless";
              });
    }
    require(rhs[i] >= -tol * scale, "simplex.primal-infeasible-rhs", [&] {
      return "rhs[" + std::to_string(i) + "] = " + num(rhs[i]) +
             " went negative mid-solve; the ratio test admitted a pivot "
             "that left the basic solution infeasible";
    });
    if (!upper.empty()) {
      const double ub = upper[col];
      require(!std::isfinite(ub) || rhs[i] <= ub + tol * scale,
              "simplex.primal-above-upper", [&] {
                return "rhs[" + std::to_string(i) + "] = " + num(rhs[i]) +
                       " exceeds the basic variable's upper bound " + num(ub) +
                       "; the bounded ratio test missed the upper-bound "
                       "leaving candidate and the basic solution violates a "
                       "box constraint";
              });
    }
  }
}

void audit_bland_progress(double objective_before, double objective_after,
                          double tol) {
  require(objective_after >=
              objective_before - tol * (1.0 + std::abs(objective_before)),
          "simplex.bland-regress", [&] {
            return "objective fell from " + num(objective_before) + " to " +
                   num(objective_after) +
                   " under Bland's rule; anti-cycling pricing admitted a "
                   "negative-gain pivot, so termination is no longer "
                   "guaranteed";
          });
}

void audit_reduced_costs(const Matrix& a, const std::vector<std::size_t>& basis,
                         const std::vector<double>& costs,
                         const std::vector<double>& incremental, double tol) {
  require(incremental.size() == costs.size() && costs.size() == a.cols(),
          "simplex.reduced-cost-shape", [&] {
            return "maintained reduced costs have " +
                   std::to_string(incremental.size()) + " entries, costs " +
                   std::to_string(costs.size()) + ", tableau " +
                   std::to_string(a.cols()) + " columns";
          });
  // Scale the comparison by the magnitudes involved: income LPs price
  // columns in currency units that can dwarf the rate-scale tolerances, and
  // degenerate-coefficient problems produce reduced costs around 1e12 whose
  // from-scratch recomputation itself carries relative rounding error.
  double scale = 1.0;
  for (const double c : costs) scale = std::max(scale, std::abs(c));
  for (std::size_t j = 0; j < costs.size(); ++j) {
    double exact = costs[j];
    double column_scale = scale;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double term = costs[basis[i]] * a(i, j);
      exact -= term;
      column_scale = std::max(column_scale, std::abs(term));
    }
    require(std::abs(exact - incremental[j]) <= tol * column_scale,
            "simplex.reduced-cost-drift", [&] {
              return "column " + std::to_string(j) +
                     ": maintained reduced cost " + num(incremental[j]) +
                     " but recomputation gives " + num(exact) +
                     "; the per-pivot eta update diverged from the tableau "
                     "and pricing decisions are no longer trustworthy";
            });
  }
}

void audit_warm_start_entry(const Matrix& a, const std::vector<double>& rhs,
                            const std::vector<std::size_t>& basis,
                            const std::vector<double>& upper,
                            std::size_t first_artificial, double tol) {
  for (std::size_t i = 0; i < basis.size(); ++i) {
    require(basis[i] < first_artificial, "simplex.warm-artificial-basic", [&] {
      return "row " + std::to_string(i) + " enters a warm start with basic "
             "column " + std::to_string(basis[i]) + " >= first artificial " +
             std::to_string(first_artificial) +
             "; the cached basis was not clean and must not be reused";
    });
  }
  audit_simplex_basis(a, rhs, basis, upper, tol);
}

void audit_basic_values(const std::vector<double>& rhs,
                        const std::vector<std::size_t>& basis,
                        const std::vector<double>& upper, double tol) {
  require(basis.size() == rhs.size(), "simplex.basis-shape", [&] {
    return std::to_string(rhs.size()) + " basic values but " +
           std::to_string(basis.size()) + " basis entries";
  });
  double scale = 1.0;
  for (const double r : rhs) scale = std::max(scale, std::abs(r));
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    const std::size_t col = basis[i];
    require(col < upper.size(), "simplex.basis-column-range", [&] {
      return "row " + std::to_string(i) + " claims basic column " +
             std::to_string(col) + " of " + std::to_string(upper.size());
    });
    require(rhs[i] >= -tol * scale, "simplex.primal-infeasible-rhs", [&] {
      return "rhs[" + std::to_string(i) + "] = " + num(rhs[i]) +
             " went negative mid-solve; the ratio test admitted a pivot "
             "that left the basic solution infeasible";
    });
    const double ub = upper[col];
    require(!std::isfinite(ub) || rhs[i] <= ub + tol * scale,
            "simplex.primal-above-upper", [&] {
              return "rhs[" + std::to_string(i) + "] = " + num(rhs[i]) +
                     " exceeds the basic variable's upper bound " + num(ub) +
                     "; the bounded ratio test missed the upper-bound "
                     "leaving candidate and the basic solution violates a "
                     "box constraint";
            });
  }
}

void audit_unit_column(std::size_t row, const std::vector<double>& ftran_image,
                       double tol) {
  for (std::size_t r = 0; r < ftran_image.size(); ++r) {
    const double expected = r == row ? 1.0 : 0.0;
    require(std::abs(ftran_image[r] - expected) <= tol,
            "simplex.basis-not-unit", [&] {
              return "basic column of row " + std::to_string(row) +
                     " FTRANs to " + num(ftran_image[r]) + " at row " +
                     std::to_string(r) + " (expected " + num(expected) +
                     "); the eta file no longer inverts the basis and the "
                     "basic solution read off the rhs is meaningless";
            });
  }
}

void audit_reduced_cost_sync(const std::vector<double>& incremental,
                             const std::vector<double>& reference, double tol) {
  require(incremental.size() == reference.size(),
          "simplex.reduced-cost-shape", [&] {
            return "maintained reduced costs have " +
                   std::to_string(incremental.size()) +
                   " entries but the recomputation has " +
                   std::to_string(reference.size());
          });
  // Scale per entry: income LPs price columns in currency units that can
  // dwarf the rate-scale tolerances, and degenerate-coefficient problems
  // produce reduced costs around 1e12 whose from-scratch recomputation
  // itself carries relative rounding error.
  for (std::size_t j = 0; j < incremental.size(); ++j) {
    const double scale =
        1.0 + std::max(std::abs(incremental[j]), std::abs(reference[j]));
    require(std::abs(incremental[j] - reference[j]) <= tol * scale,
            "simplex.reduced-cost-drift", [&] {
              return "column " + std::to_string(j) +
                     ": maintained reduced cost " + num(incremental[j]) +
                     " but recomputation gives " + num(reference[j]) +
                     "; the per-pivot eta update diverged from the "
                     "factorization and pricing decisions are no longer "
                     "trustworthy";
            });
  }
}

void audit_no_artificial_basic(const std::vector<std::size_t>& basis,
                               std::size_t first_artificial) {
  for (std::size_t i = 0; i < basis.size(); ++i) {
    require(basis[i] < first_artificial, "simplex.warm-artificial-basic", [&] {
      return "row " + std::to_string(i) + " enters a warm start with basic "
             "column " + std::to_string(basis[i]) + " >= first artificial " +
             std::to_string(first_artificial) +
             "; the cached basis was not clean and must not be reused";
    });
  }
}

void audit_eta_consistency(const std::vector<double>& eta_values,
                           const std::vector<double>& fresh_values,
                           double tol) {
  require(eta_values.size() == fresh_values.size(), "simplex.eta-rhs-shape",
          [&] {
            return std::to_string(eta_values.size()) +
                   " eta-updated basic values but " +
                   std::to_string(fresh_values.size()) + " recomputed ones";
          });
  double scale = 1.0;
  for (const double v : fresh_values) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < eta_values.size(); ++i) {
    require(std::abs(eta_values[i] - fresh_values[i]) <= tol * scale,
            "simplex.eta-rhs-drift", [&] {
              return "basic value " + std::to_string(i) +
                     " carried across pivots as " + num(eta_values[i]) +
                     " but recomputing B^-1 b from scratch at the "
                     "refactorization gives " + num(fresh_values[i]) +
                     "; the product-form eta updates drifted from the basis "
                     "they claim to invert";
            });
  }
}

void audit_window_conservation(const Matrix& quota, const Matrix& consumed,
                               const Matrix& debt, const Matrix& slices,
                               double tol) {
  require(quota.rows() == consumed.rows() && quota.rows() == debt.rows() &&
              quota.rows() == slices.rows() &&
              quota.cols() == consumed.cols() && quota.cols() == debt.cols() &&
              quota.cols() == slices.cols(),
          "window.matrix-shape",
          [&] { return std::string("quota/consumed/debt/slice shapes disagree"); });
  for (std::size_t i = 0; i < quota.rows(); ++i) {
    for (std::size_t k = 0; k < quota.cols(); ++k) {
      require(consumed(i, k) >= -tol, "window.negative-consumption", [&] {
        return "cell (" + std::to_string(i) + ", " + std::to_string(k) +
               ") recorded consumed = " + num(consumed(i, k)) +
               "; admissions can only add to consumption";
      });
      require(debt(i, k) <= tol, "window.positive-debt", [&] {
        return "cell (" + std::to_string(i) + ", " + std::to_string(k) +
               ") carried debt = " + num(debt(i, k)) +
               " into the window; only borrow (<= 0) may carry over — "
               "positive carry would stack unused quota across windows";
      });
      const double lhs = quota(i, k) + consumed(i, k);
      const double rhs = slices(i, k) + debt(i, k);
      require(std::abs(lhs - rhs) <=
                  tol * (1.0 + std::max(std::abs(lhs), std::abs(rhs))),
              "window.quota-conservation", [&] {
                return "cell (" + std::to_string(i) + ", " +
                       std::to_string(k) + "): quota " + num(quota(i, k)) +
                       " + consumed " + num(consumed(i, k)) + " != slice " +
                       num(slices(i, k)) + " + debt " + num(debt(i, k)) +
                       "; admissions are being created or destroyed relative "
                       "to the LP plan (DESIGN.md D5)";
              });
    }
  }
}

void audit_sim_clock_monotone(std::int64_t now, std::int64_t next) {
  require(next >= now, "sim.clock-monotone", [&] {
    return "event due at t=" + std::to_string(next) +
           " would move the clock backwards from t=" + std::to_string(now) +
           "; a wheel cascade filed an event into an already-passed bucket";
  });
}

void audit_sim_event_conservation(std::uint64_t inserted, std::uint64_t popped,
                                  std::size_t size, std::uint64_t walked) {
  require(walked == size, "sim.event-size-counter", [&] {
    return "wheel size counter says " + std::to_string(size) +
           " pending events but walking the slots found " +
           std::to_string(walked) +
           "; a cascade dropped or duplicated a node";
  });
  require(inserted == popped + size, "sim.event-conservation", [&] {
    return std::to_string(inserted) + " events scheduled but " +
           std::to_string(popped) + " executed + " + std::to_string(size) +
           " pending; an event was lost or ran twice across a cascade";
  });
}

void audit_control_plane_snapshot(bool has_previous,
                                  std::uint64_t previous_round,
                                  std::uint64_t round) {
  if (!has_previous) return;
  require(round > previous_round, "coord.snapshot-monotone", [&] {
    return "snapshot round " + std::to_string(round) +
           " delivered after round " + std::to_string(previous_round) +
           "; the transport replayed or reordered an aggregate and the "
           "member would plan against data older than what it already used";
  });
}

void audit_round_tag_monotone(bool has_previous, std::uint64_t previous_round,
                              std::uint64_t round) {
  if (!has_previous) return;
  require(round > previous_round, "coord.round-tag-monotone", [&] {
    return "transport about to deliver round tag " + std::to_string(round) +
           " after already delivering " + std::to_string(previous_round) +
           "; the wire-side round filter let a replayed or reordered "
           "aggregate through";
  });
}

void audit_lease_monotone(bool has_previous, std::uint64_t previous_incarnation,
                          std::size_t previous_root,
                          std::uint64_t incarnation, std::size_t root) {
  if (!has_previous) return;
  require(incarnation >= previous_incarnation, "coord.lease-monotone", [&] {
    return "adopting lease incarnation " + std::to_string(incarnation) +
           " from process " + std::to_string(root) +
           " after already holding incarnation " +
           std::to_string(previous_incarnation) + " from process " +
           std::to_string(previous_root) +
           "; the stale-lease filter let a superseded root's lease through "
           "and a zombie's rounds would no longer be fenced";
  });
  require(incarnation > previous_incarnation || root == previous_root,
          "coord.lease-monotone", [&] {
            return "lease incarnation " + std::to_string(incarnation) +
                   " claimed by process " + std::to_string(root) +
                   " but the same incarnation was already held by process " +
                   std::to_string(previous_root) +
                   "; two roots share one incarnation — split brain, two "
                   "aggregation points could both open rounds";
          });
}

void audit_root_acquire(bool lease_known, std::int64_t now_usec,
                        std::int64_t lease_expiry_usec,
                        std::uint64_t new_incarnation,
                        std::uint64_t highest_seen) {
  require(!lease_known || now_usec >= lease_expiry_usec, "coord.single-root",
          [&] {
            return "acquiring the root lease at t=" +
                   std::to_string(now_usec) +
                   "usec while the observed lease is live until t=" +
                   std::to_string(lease_expiry_usec) +
                   "usec; a second root next to a live one is split brain";
          });
  require(new_incarnation > highest_seen, "coord.single-root", [&] {
    return "acquiring the root lease with incarnation " +
           std::to_string(new_incarnation) +
           " but incarnation " + std::to_string(highest_seen) +
           " has already been observed; a non-increasing incarnation cannot "
           "fence the previous root's in-flight rounds";
  });
}

void audit_control_plane_member_slices(const Matrix& slices,
                                       const Matrix& plan_rate,
                                       double share_cap, double window_sec,
                                       double tol) {
  require(slices.rows() == plan_rate.rows() &&
              slices.cols() == plan_rate.cols(),
          "coord.slice-shape",
          [&] { return std::string("slice/plan shapes disagree"); });
  for (std::size_t i = 0; i < slices.rows(); ++i) {
    for (std::size_t k = 0; k < slices.cols(); ++k) {
      const double cap = plan_rate(i, k) * share_cap * window_sec;
      require(slices(i, k) >= -tol &&
                  slices(i, k) <= cap + tol * (1.0 + std::abs(cap)),
              "coord.member-slice-cap", [&] {
                return "cell (" + std::to_string(i) + ", " +
                       std::to_string(k) + ") slice = " + num(slices(i, k)) +
                       " but plan " + num(plan_rate(i, k)) + " * share cap " +
                       num(share_cap) + " * window " + num(window_sec) +
                       " allows at most " + num(cap) +
                       "; a redirector is granting itself more than its "
                       "share of the plan";
              });
    }
  }
}

void audit_control_plane_slice_sum(const Matrix& slice_sum,
                                   const Matrix& plan_rate, double window_sec,
                                   double tol) {
  require(slice_sum.rows() == plan_rate.rows() &&
              slice_sum.cols() == plan_rate.cols(),
          "coord.slice-shape",
          [&] { return std::string("slice-sum/plan shapes disagree"); });
  for (std::size_t i = 0; i < slice_sum.rows(); ++i) {
    for (std::size_t k = 0; k < slice_sum.cols(); ++k) {
      const double cap = plan_rate(i, k) * window_sec;
      require(slice_sum(i, k) <= cap + tol * (1.0 + std::abs(cap)),
              "coord.slice-conservation", [&] {
                return "cell (" + std::to_string(i) + ", " +
                       std::to_string(k) +
                       "): redirector slices sum to " + num(slice_sum(i, k)) +
                       " but the full plan cell is only " + num(cap) +
                       "; the conservative 1/R split is over-admitting "
                       "across redirectors (§5.1 phase 1)";
              });
    }
  }
}

void audit_quota_carry(double carry) {
  require(carry >= 0.0 && carry < 1.0, "window.carry-range", [&] {
    return "integer-quota error carry is " + num(carry) +
           ", outside [0, 1); the floor/remainder bookkeeping drifted and "
           "long-run admitted counts will diverge from the plan";
  });
}

}  // namespace sharegrid::audit
