// End-point (per-server, uncoordinated) SLA enforcement — the baseline the
// paper's Figure 1 argues against (§1).
//
// Each server independently caps every principal at its agreed share of that
// server's own capacity, redistributing unused share to still-hungry
// principals (water-filling). Because each server only sees its own incoming
// mix, the aggregate allocation can violate the global SLA when load is
// skewed across redirectors; bench/fig01_motivation demonstrates exactly the
// paper's (A:30, B:70) violation of B's 80% guarantee.
#pragma once

#include <vector>

#include "util/assert.hpp"

namespace sharegrid::sched {

/// Water-filling allocator for a single server enforcing shares locally.
class EndpointEnforcer {
 public:
  /// @param capacity  this server's capacity (requests/sec).
  /// @param shares    per-principal agreed shares; must sum to <= 1.
  EndpointEnforcer(double capacity, std::vector<double> shares);

  /// Allocates this server's capacity against the demand it sees locally.
  /// Guarantees: allocation_i <= demand_i, sum <= capacity, and any
  /// principal held below its demand receives at least share_i * capacity
  /// (unused shares are redistributed proportionally).
  std::vector<double> allocate(const std::vector<double>& demand) const;

  double capacity() const { return capacity_; }

 private:
  double capacity_;
  std::vector<double> shares_;
};

}  // namespace sharegrid::sched
