#include "sched/multi_provider_scheduler.hpp"

#include <utility>

#include "audit/invariant_auditor.hpp"
#include "util/assert.hpp"

namespace sharegrid::sched {

MultiProviderScheduler::MultiProviderScheduler(
    const core::AgreementGraph& graph, const core::AccessLevels& levels,
    std::vector<core::PrincipalId> providers, std::vector<double> prices,
    std::shared_ptr<WorkerPool> pool, bool work_conserving)
    : providers_(std::move(providers)), pool_(std::move(pool)) {
  const std::size_t n = graph.size();
  const std::size_t count = providers_.size();
  SHAREGRID_EXPECTS(count > 0);
  SHAREGRID_EXPECTS(prices.size() == n);
  per_provider_.reserve(count);
  shadow_.reserve(count);
  for (const core::PrincipalId k : providers_) {
    SHAREGRID_EXPECTS(k < n);
    per_provider_.push_back(std::make_unique<IncomeScheduler>(
        IncomeScheduler::EntitlementColumns{}, graph, levels, k, prices,
        work_conserving));
    shadow_.push_back(std::make_unique<IncomeScheduler>(
        IncomeScheduler::EntitlementColumns{}, graph, levels, k, prices,
        work_conserving));
  }

  // Split each customer's demand by its entitlement share at each provider;
  // a customer entitled nowhere offers its demand evenly (it can still be
  // admitted through a provider's optional headroom stage).
  weights_ = Matrix(n, count, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double total = 0.0;
    for (std::size_t p = 0; p < count; ++p)
      total += levels.mandatory_entitlement(i, providers_[p]) +
               levels.optional_entitlement(i, providers_[p]);
    for (std::size_t p = 0; p < count; ++p) {
      weights_(i, p) =
          total > 0.0
              ? (levels.mandatory_entitlement(i, providers_[p]) +
                 levels.optional_entitlement(i, providers_[p])) /
                    total
              : 1.0 / static_cast<double>(count);
    }
  }
}

void MultiProviderScheduler::set_solver_options(
    const lp::SolverOptions& options) {
  const util::MutexLock lock(mutex_);
  for (auto& scheduler : per_provider_) scheduler->set_solver_options(options);
  for (auto& scheduler : shadow_) scheduler->set_solver_options(options);
}

lp::SolveStats MultiProviderScheduler::solver_stats() const {
  const util::MutexLock lock(mutex_);
  lp::SolveStats total;
  for (const auto& scheduler : per_provider_) total += scheduler->solver_stats();
  return total;
}

Plan MultiProviderScheduler::plan(const std::vector<double>& demand) const {
  const std::size_t n = weights_.rows();
  const std::size_t count = providers_.size();
  SHAREGRID_EXPECTS(demand.size() == n);
  const util::MutexLock lock(mutex_);

  std::vector<std::vector<double>> split(count,
                                         std::vector<double>(n, 0.0));
  for (std::size_t p = 0; p < count; ++p)
    for (std::size_t i = 0; i < n; ++i)
      split[p][i] = demand[i] * weights_(i, p);

  // Fan out: each solve touches only its own slot, its scheduler's own
  // warm-start contexts, and its own read-only demand vector.
  std::vector<Plan> results(count);
  auto solve = [&](std::size_t p) {
    results[p] = per_provider_[p]->plan(split[p]);
  };
  if (pool_ != nullptr) {
    pool_->run_indexed(count, solve);
  } else {
    for (std::size_t p = 0; p < count; ++p) solve(p);
  }

  // The shadow solve replays the identical window on serial contexts; both
  // pipelines are deterministic (DESIGN.md D7), so the plans must match
  // bitwise — any drift means the pooled solves leaked state across threads.
  SHAREGRID_AUDIT_HOOK([&] {
    for (std::size_t p = 0; p < count; ++p)
      audit::audit_parallel_plan_match(results[p], shadow_[p]->plan(split[p]),
                                       p);
  }());

  // Merge in provider index order: each per-provider plan fills only its own
  // column, so the merged plan is independent of solve completion order.
  Plan out;
  out.demand = demand;
  out.rate = Matrix(n, n, 0.0);
  for (std::size_t p = 0; p < count; ++p) {
    const core::PrincipalId k = providers_[p];
    for (std::size_t i = 0; i < n; ++i)
      out.rate(i, k) = results[p].rate(i, k);
    out.lp_fallback = out.lp_fallback || results[p].lp_fallback;
  }
  return out;
}

double MultiProviderScheduler::income(const Plan& plan) const {
  double total = 0.0;
  for (std::size_t p = 0; p < providers_.size(); ++p) {
    // Each provider prices only the column it planned.
    Plan column;
    column.demand = plan.demand;
    column.rate = Matrix(plan.rate.rows(), plan.rate.cols(), 0.0);
    const core::PrincipalId k = providers_[p];
    for (std::size_t i = 0; i < plan.rate.rows(); ++i)
      column.rate(i, k) = plan.rate(i, k);
    total += per_provider_[p]->income(column);
  }
  return total;
}

}  // namespace sharegrid::sched
