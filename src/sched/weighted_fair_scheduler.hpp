// Weighted-fair baseline scheduler: proportional sharing without agreement
// semantics.
//
// Most request-distribution front-ends the paper surveys (§6: weighted
// round-robin and variants) divide capacity among active flows in
// proportion to static weights. That enforces *relative* shares of the
// moment's active set, but not the paper's [lb, ub] contracts: there is no
// mandatory floor under overload (a flood of cheap traffic dilutes everyone)
// and no upper bound (an idle system lets any flow take 100%, even past its
// contract). bench/abl_baselines demonstrates both failure modes against the
// LP schedulers.
#pragma once

#include <vector>

#include "sched/scheduler.hpp"

namespace sharegrid::sched {

/// Water-filling proportional scheduler over one capacity pool.
class WeightedFairScheduler final : public Scheduler {
 public:
  /// @param capacity  total pool capacity (requests/sec).
  /// @param weights   per-principal weights (>= 0; zero = best effort only).
  WeightedFairScheduler(double capacity, std::vector<double> weights);

  Plan plan(const std::vector<double>& demand) const override;
  std::size_t size() const override { return weights_.size(); }

 private:
  double capacity_;
  std::vector<double> weights_;
};

}  // namespace sharegrid::sched
