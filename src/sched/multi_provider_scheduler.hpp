// Multi-provider plan assembly: several resource owners, one plan (§3.1.2
// scaled out; ROADMAP "parallel multi-server plan solves", DESIGN.md D8).
//
// Each provider's income LP is independent of the others': its bounds come
// from the entitlement decomposition columns EM(·, k) / EO(·, k), which
// partition every server's capacity across principals (DESIGN.md D1), and
// its objective touches only its own admission variables. So the per-window
// solve decomposes exactly — one IncomeScheduler per provider, each with its
// own warm-start SolveContext — and the per-provider solves can run
// concurrently on a WorkerPool without changing any result.
//
// Determinism contract: customer demand is split across providers by fixed
// entitlement-share weights, each provider solves the same LP sequence it
// would solve alone, and the per-provider plans are merged column-by-column
// in provider index order. Completion order never influences the output, so
// serial and parallel runs (and runs on pools of different sizes) produce
// bitwise-identical plans; the SHAREGRID_AUDIT build re-solves every window
// serially on shadow contexts and asserts exact equality.
#pragma once

#include <memory>
#include <vector>

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "sched/income_scheduler.hpp"
#include "sched/scheduler.hpp"
#include "util/matrix.hpp"
#include "util/thread_annotations.hpp"
#include "util/worker_pool.hpp"

namespace sharegrid::sched {

/// Income maximization across several providers, one LP per provider,
/// optionally fanned out on a worker pool.
class MultiProviderScheduler final : public Scheduler {
 public:
  /// @param graph      agreement graph; capacities give each provider's pool.
  /// @param levels     access levels precomputed from @p graph.
  /// @param providers  ids of the resource-owning providers (each with
  ///                   capacity > 0); plans fill exactly these columns.
  /// @param prices     price per extra request, indexed by principal id.
  /// @param pool       worker pool for the per-provider solves; nullptr runs
  ///                   them serially. Shared so scheduler rebuilds (capacity
  ///                   events) reuse the same threads.
  MultiProviderScheduler(const core::AgreementGraph& graph,
                         const core::AccessLevels& levels,
                         std::vector<core::PrincipalId> providers,
                         std::vector<double> prices,
                         std::shared_ptr<WorkerPool> pool = nullptr,
                         bool work_conserving = true);

  Plan plan(const std::vector<double>& demand) const override
      SHAREGRID_EXCLUDES(mutex_);
  std::size_t size() const override { return weights_.rows(); }

  const std::vector<core::PrincipalId>& providers() const {
    return providers_;
  }

  /// Income implied by a plan, summed over all providers.
  double income(const Plan& plan) const;

  /// Overrides the LP solver tuning for every per-provider stage solve.
  void set_solver_options(const lp::SolverOptions& options)
      SHAREGRID_EXCLUDES(mutex_);

  /// Cumulative warm/cold solver statistics across all providers.
  lp::SolveStats solver_stats() const SHAREGRID_EXCLUDES(mutex_);

 private:
  std::vector<core::PrincipalId> providers_;
  /// The per-provider solvers hold their own warm-start state behind their
  /// own mutexes; mutex_ additionally serializes whole windows (below), so
  /// the unique_ptr vectors themselves are read-only after construction.
  std::vector<std::unique_ptr<IncomeScheduler>> per_provider_;
  /// Serial shadow solvers fed the identical window sequence; audit builds
  /// compare their plans bitwise against the pooled ones.
  std::vector<std::unique_ptr<IncomeScheduler>> shadow_;
  std::shared_ptr<WorkerPool> pool_;
  /// weights_(i, p): fraction of customer i's demand offered to provider p —
  /// i's entitlement share at that provider, fixed at construction.
  Matrix weights_;

  /// Serializes plan() so every window feeds the warm-start contexts in the
  /// same order regardless of caller concurrency.
  mutable util::Mutex mutex_;
};

}  // namespace sharegrid::sched
