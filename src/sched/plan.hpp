// Scheduling plans: the output of the per-window optimization (§3.1.2).
//
// A plan says, in requests/second, how much of each principal's queue should
// be forwarded to each server over the next time window. Redirectors apply
// plans proportionally to their local queues (§3.2): the fraction
// x_ik / n_i is the same at every redirector because all of them solve the
// same LP on the same global queue lengths.
#pragma once

#include <vector>

#include "core/principal.hpp"
#include "util/assert.hpp"
#include "util/matrix.hpp"

namespace sharegrid::sched {

/// Per-window allocation: rate(i, k) = requests/sec from principal i's queue
/// scheduled onto principal k's server.
struct Plan {
  Matrix rate;  ///< (principal, server) requests/sec.
  /// Queue lengths (requests/sec of demand) the plan was computed against.
  std::vector<double> demand;
  /// Community metric: the max-min fraction theta (1.0 when not applicable).
  double theta = 1.0;
  /// True when the scheduler could not produce a fresh plan this window
  /// (the LP solver hit its iteration budget) and fell back to the previous
  /// window's allocation — or an empty one when no window succeeded yet.
  bool lp_fallback = false;

  std::size_t size() const { return demand.size(); }

  /// Total admitted rate for principal i across all servers.
  double admitted(core::PrincipalId i) const { return rate.row_sum(i); }

  /// Total load placed on server k across all principals.
  double server_load(core::PrincipalId k) const { return rate.col_sum(k); }

  /// Fraction of principal i's queue the plan admits, in [0, 1];
  /// 1 when the principal has no demand (nothing to hold back).
  double admit_fraction(core::PrincipalId i) const {
    SHAREGRID_EXPECTS(i < demand.size());
    if (demand[i] <= 0.0) return 1.0;
    const double f = admitted(i) / demand[i];
    return f < 0.0 ? 0.0 : (f > 1.0 ? 1.0 : f);
  }
};

}  // namespace sharegrid::sched
