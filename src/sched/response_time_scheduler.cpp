#include "sched/response_time_scheduler.hpp"

#include <algorithm>
#include <utility>

#include "lp/solve_context.hpp"
#include "util/assert.hpp"

namespace sharegrid::sched {

using lp::Problem;
using lp::Relation;
using lp::Sense;

ResponseTimeScheduler::ResponseTimeScheduler(const core::AgreementGraph& graph,
                                             core::AccessLevels levels,
                                             ResponseTimeOptions options)
    : levels_(std::move(levels)), options_(std::move(options)) {
  SHAREGRID_EXPECTS(levels_.size() == graph.size());
  SHAREGRID_EXPECTS(options_.locality_caps.empty() ||
                    options_.locality_caps.size() == graph.size());
  capacities_.reserve(graph.size());
  for (core::PrincipalId k = 0; k < graph.size(); ++k)
    capacities_.push_back(graph.capacity(k));
}

void ResponseTimeScheduler::set_solver_options(
    const lp::SolverOptions& options) {
  const util::MutexLock lock(mutex_);
  solver_options_ = options;
}

lp::SolveStats ResponseTimeScheduler::solver_stats() const {
  const util::MutexLock lock(mutex_);
  lp::SolveStats total = stage1_context_.stats();
  total += retry_context_.stats();
  total += stage2_context_.stats();
  return total;
}

/// No fresh plan this window: reuse the previous window's allocation (an
/// empty one if no window ever succeeded) against the current demand.
Plan ResponseTimeScheduler::fallback_plan(std::vector<double> demand) const {
  Plan out;
  if (has_last_plan_) {
    out = last_plan_;
  } else {
    out.rate = Matrix(capacities_.size(), capacities_.size(), 0.0);
    out.theta = 0.0;
  }
  out.demand = std::move(demand);
  out.lp_fallback = true;
  return out;
}

Plan ResponseTimeScheduler::plan(const std::vector<double>& raw_demand) const {
  const std::size_t n = capacities_.size();
  SHAREGRID_EXPECTS(raw_demand.size() == n);
  const util::MutexLock lock(mutex_);

  // Clamp demands to 100x the total capacity: far above anything real
  // backlogs reach (so demand *ratios*, which drive the max-min split,
  // survive), yet small enough that theta-row coefficients times the solver
  // tolerance stay orders of magnitude below one request — a raw 1e9
  // "saturated" demand would otherwise leave request-sized noise in the
  // solution, admitting traffic to servers whose true allocation is zero.
  double total_capacity = 0.0;
  for (double v : capacities_) total_capacity += v;
  const double demand_cap = 100.0 * total_capacity + 1.0;
  std::vector<double> demand = raw_demand;
  for (double& d : demand) {
    SHAREGRID_EXPECTS(d >= 0.0);
    d = std::min(d, demand_cap);
  }

  Plan out;
  out.demand = demand;
  out.rate = Matrix(n, n, 0.0);

  // Variable layout: x_ik at i*n + k, theta at n*n.
  const std::size_t theta_var = n * n;
  auto var = [n](std::size_t i, std::size_t k) { return i * n + k; };

  auto build = [&](bool with_floors) {
    Problem p(n * n + 1, Sense::kMaximize);
    // Per-pair entitlement ceilings: x_ik <= EM(i,k) + EO(i,k). The
    // mandatory guarantee is enforced on each principal's *total* admitted
    // rate below, not per pair: a per-pair floor (the paper's literal
    // constraint) can force requests onto a remote server even when the
    // principal's own server could absorb them, needlessly displacing other
    // principals (see DESIGN.md D1).
    // These n² boxes never become tableau rows: the bounded-variable ratio
    // test handles them implicitly (DESIGN.md D9), and the many zero-width
    // boxes — pairs with no entitlement — are fixed variables the solver
    // skips outright. Entitlement drift between windows is a data-only
    // rewrite, so it stays on the warm path.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < n; ++k) {
        const double em = levels_.mandatory_entitlement(i, k);
        const double eo = levels_.optional_entitlement(i, k);
        p.set_bounds(var(i, k), 0.0, em + eo);
      }
    }
    p.set_bounds(theta_var, 0.0, 1.0);
    // Mandatory floors: sum_k x_ik >= min(MC_i, n_i) — the agreement lower
    // bound, clipped to available demand (the paper's "drop the lower bound
    // if the queue is not large enough").
    if (with_floors) {
      for (std::size_t i = 0; i < n; ++i) {
        const double floor = std::min(levels_.mandatory_capacity[i], demand[i]);
        if (floor <= 0.0) continue;
        std::vector<std::pair<std::size_t, double>> terms;
        for (std::size_t k = 0; k < n; ++k) terms.emplace_back(var(i, k), 1.0);
        p.add_constraint(std::move(terms), Relation::kGreaterEq,
                         floor * (1.0 - 1e-9));
      }
    }

    // Server capacity: sum_i x_ik <= V_k.
    for (std::size_t k = 0; k < n; ++k) {
      std::vector<std::pair<std::size_t, double>> terms;
      for (std::size_t i = 0; i < n; ++i) terms.emplace_back(var(i, k), 1.0);
      p.add_constraint(std::move(terms), Relation::kLessEq, capacities_[k]);
    }
    // Queue limits: sum_k x_ik <= n_i.
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::pair<std::size_t, double>> terms;
      for (std::size_t k = 0; k < n; ++k) terms.emplace_back(var(i, k), 1.0);
      p.add_constraint(std::move(terms), Relation::kLessEq, demand[i]);
    }
    // Locality caps: sum_i x_ik <= c_k.
    if (!options_.locality_caps.empty()) {
      for (std::size_t k = 0; k < n; ++k) {
        std::vector<std::pair<std::size_t, double>> terms;
        for (std::size_t i = 0; i < n; ++i)
          terms.emplace_back(var(i, k), 1.0);
        p.add_constraint(std::move(terms), Relation::kLessEq,
                         options_.locality_caps[k]);
      }
    }
    // Theta definition: sum_k x_ik >= theta * n_i for demanding principals.
    for (std::size_t i = 0; i < n; ++i) {
      if (demand[i] <= 0.0) continue;
      std::vector<std::pair<std::size_t, double>> terms;
      for (std::size_t k = 0; k < n; ++k) terms.emplace_back(var(i, k), 1.0);
      terms.emplace_back(theta_var, -demand[i]);
      p.add_constraint(std::move(terms), Relation::kGreaterEq, 0.0);
    }
    return p;
  };

  // Stage 1: maximize theta. Mandatory floors can conflict with locality
  // caps; when they do, fall back to a floorless program (best effort).
  // Each stage solves through its own warm-start context: successive
  // windows share the program layout, so the previous optimal basis usually
  // re-enters phase 2 directly. An iteration-limited solve means no fresh
  // plan this window — reuse the previous one rather than crash mid-window.
  bool floors = true;
  Problem p1 = build(floors);
  p1.set_objective(theta_var, 1.0);
  lp::Solution s1 = stage1_context_.solve(p1, solver_options_);
  if (s1.status == lp::Status::kIterationLimit)
    return fallback_plan(std::move(demand));
  if (!s1.optimal() && !options_.locality_caps.empty()) {
    floors = false;
    Problem retry = build(floors);
    retry.set_objective(theta_var, 1.0);
    s1 = retry_context_.solve(retry, solver_options_);
    if (s1.status == lp::Status::kIterationLimit)
      return fallback_plan(std::move(demand));
  }
  SHAREGRID_ENSURES(s1.optimal());
  const double theta = s1.values[theta_var];
  out.theta = theta;

  const lp::Solution* final_solution = &s1;
  lp::Solution s2;
  if (options_.work_conserving) {
    // Stage 2: at fixed theta, maximize the total admitted rate so spare
    // capacity flows to whoever can still use it. The tiny bonus on local
    // placement (x_ii) breaks ties among the many total-rate-equal routings:
    // without it the chosen vertex depends on the pivot path, so a
    // warm-started solve can land on a different alternate optimum than a
    // cold one and closed-loop simulations stop being reproducible. 1e-6 is
    // far above the solver tolerance and costs at most 1e-6 of a request of
    // total admitted rate.
    Problem p2 = build(floors);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = 0; k < n; ++k)
        p2.set_objective(var(i, k), k == i ? 1.0 + 1e-6 : 1.0);
    // Tiny slack below theta guards against round-off infeasibility.
    p2.set_bounds(theta_var, std::max(0.0, theta - 1e-9), 1.0);
    s2 = stage2_context_.solve(p2, solver_options_);
    if (s2.status == lp::Status::kIterationLimit) {
      // Stage 1 already produced a feasible max-min plan; degrade to it
      // (giving up only work conservation) but still flag the window.
      out.lp_fallback = true;
    } else {
      SHAREGRID_ENSURES(s2.optimal());
      final_solution = &s2;
    }
  }

  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < n; ++k)
      out.rate(i, k) = std::max(0.0, final_solution->values[var(i, k)]);
  last_plan_ = out;
  last_plan_.lp_fallback = false;
  has_last_plan_ = true;
  return out;
}

}  // namespace sharegrid::sched
