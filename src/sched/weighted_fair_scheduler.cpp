#include "sched/weighted_fair_scheduler.hpp"

#include <numeric>

#include "util/assert.hpp"

namespace sharegrid::sched {

WeightedFairScheduler::WeightedFairScheduler(double capacity,
                                             std::vector<double> weights)
    : capacity_(capacity), weights_(std::move(weights)) {
  SHAREGRID_EXPECTS(capacity > 0.0);
  SHAREGRID_EXPECTS(!weights_.empty());
  double total = 0.0;
  for (double w : weights_) {
    SHAREGRID_EXPECTS(w >= 0.0);
    total += w;
  }
  SHAREGRID_EXPECTS(total > 0.0);
}

Plan WeightedFairScheduler::plan(const std::vector<double>& demand) const {
  const std::size_t n = weights_.size();
  SHAREGRID_EXPECTS(demand.size() == n);
  for (double d : demand) SHAREGRID_EXPECTS(d >= 0.0);

  Plan out;
  out.demand = demand;
  out.rate = Matrix(n, n, 0.0);

  // Water-filling: offer each unsatisfied principal its weight-share of the
  // remaining capacity; satisfied principals release surplus for another
  // round. Identical structure to EndpointEnforcer, but as a Scheduler so
  // it can drive redirectors in end-to-end comparisons.
  std::vector<double> alloc(n, 0.0);
  std::vector<bool> satisfied(n, false);
  double remaining = capacity_;
  for (std::size_t round = 0; round < n && remaining > 1e-12; ++round) {
    double active_weight = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      if (!satisfied[i] && demand[i] > 0.0) active_weight += weights_[i];
    if (active_weight <= 0.0) break;

    bool someone_finished = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (satisfied[i] || demand[i] <= 0.0) continue;
      const double offer = remaining * weights_[i] / active_weight;
      if (demand[i] - alloc[i] <= offer + 1e-12) {
        alloc[i] = demand[i];
        satisfied[i] = true;
        someone_finished = true;
      }
    }
    if (!someone_finished) {
      for (std::size_t i = 0; i < n; ++i) {
        if (satisfied[i] || demand[i] <= 0.0) continue;
        alloc[i] += remaining * weights_[i] / active_weight;
      }
      remaining = 0.0;
      break;
    }
    remaining =
        capacity_ - std::accumulate(alloc.begin(), alloc.end(), 0.0);
  }

  // Single shared pool: attribute everything to server column 0 (the node
  // layer spreads across the pool's machines).
  for (std::size_t i = 0; i < n; ++i) out.rate(i, 0) = alloc[i];
  return out;
}

}  // namespace sharegrid::sched
