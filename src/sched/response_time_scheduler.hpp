// Community-context scheduler: minimize the maximum global response time
// (§3.1.2, "Global Response Time").
//
// Maximizes theta = min_i (admitted_i / n_i) subject to server capacities,
// agreement entitlements, and optional per-server locality caps, as a linear
// program. A second lexicographic stage maximizes total admitted rate at the
// optimal theta so the plan is work-conserving (spare capacity is never left
// idle merely because theta is already pinned by the worst-off principal).
#pragma once

#include <optional>
#include <vector>

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "lp/solve_context.hpp"
#include "sched/scheduler.hpp"
#include "util/thread_annotations.hpp"

namespace sharegrid::sched {

/// Configuration for ResponseTimeScheduler.
struct ResponseTimeOptions {
  /// Per-server locality caps c_k (requests/sec a redirector may push to
  /// server k per window); empty = unlimited (the paper's base model).
  std::vector<double> locality_caps;
  /// Run the work-conserving second stage (on by default).
  bool work_conserving = true;
};

/// Max-min fairness over agreement entitlements via two-stage LP.
class ResponseTimeScheduler final : public Scheduler {
 public:
  /// @param graph   agreement graph (capacities in requests/sec).
  /// @param levels  access levels precomputed from @p graph.
  ResponseTimeScheduler(const core::AgreementGraph& graph,
                        core::AccessLevels levels,
                        ResponseTimeOptions options = {});

  Plan plan(const std::vector<double>& demand) const override;
  std::size_t size() const override { return capacities_.size(); }

  const core::AccessLevels& levels() const { return levels_; }

  /// Overrides the LP solver tuning for every stage solve (tests use this to
  /// force Status::kIterationLimit and exercise the fallback path).
  void set_solver_options(const lp::SolverOptions& options);

  /// Cumulative warm/cold solver statistics across all LP stages.
  lp::SolveStats solver_stats() const;

 private:
  Plan fallback_plan(std::vector<double> demand) const
      SHAREGRID_REQUIRES(mutex_);

  std::vector<double> capacities_;
  core::AccessLevels levels_;
  ResponseTimeOptions options_;

  // Warm-start solver caches, one per LP stage so each stage re-enters from
  // its own previous basis (the stage programs have different layouts).
  // plan() stays const — these only affect solve speed and the
  // iteration-limit fallback — and the mutex serializes concurrent callers.
  mutable util::Mutex mutex_;
  mutable lp::SolverOptions solver_options_ SHAREGRID_GUARDED_BY(mutex_);
  mutable lp::SolveContext stage1_context_ SHAREGRID_GUARDED_BY(mutex_);
  mutable lp::SolveContext retry_context_ SHAREGRID_GUARDED_BY(mutex_);
  mutable lp::SolveContext stage2_context_ SHAREGRID_GUARDED_BY(mutex_);
  mutable Plan last_plan_ SHAREGRID_GUARDED_BY(mutex_);
  mutable bool has_last_plan_ SHAREGRID_GUARDED_BY(mutex_) = false;
};

}  // namespace sharegrid::sched
