#include "sched/window_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "audit/invariant_auditor.hpp"
#include "util/assert.hpp"

namespace sharegrid::sched {

std::uint64_t QuotaCarry::take(double amount) {
  SHAREGRID_EXPECTS(amount >= 0.0);
  carry_ += amount;
  const double whole = std::floor(carry_ + 1e-9);
  carry_ -= whole;
  if (carry_ < 0.0) carry_ = 0.0;
  SHAREGRID_AUDIT_HOOK(audit::audit_quota_carry(carry_));
  return static_cast<std::uint64_t>(whole);
}

ArrivalEstimator::ArrivalEstimator(double alpha) : alpha_(alpha) {
  SHAREGRID_EXPECTS(std::isfinite(alpha));
  SHAREGRID_EXPECTS(alpha > 0.0 && alpha <= 1.0);
}

void ArrivalEstimator::observe(double arrivals, SimDuration window) {
  SHAREGRID_EXPECTS(arrivals >= 0.0);
  SHAREGRID_EXPECTS(window > 0);
  const double instantaneous = arrivals / to_seconds(window);
  if (!primed_) {
    rate_ = instantaneous;
    primed_ = true;
    return;
  }
  rate_ = alpha_ * instantaneous + (1.0 - alpha_) * rate_;
}

WindowScheduler::WindowScheduler(const Scheduler* scheduler, SimDuration window,
                                 std::size_t redirector_count,
                                 StalePolicy stale_policy)
    : scheduler_(scheduler),
      window_(window),
      redirector_count_(redirector_count),
      stale_policy_(stale_policy) {
  SHAREGRID_EXPECTS(scheduler != nullptr);
  SHAREGRID_EXPECTS(window > 0);
  SHAREGRID_EXPECTS(redirector_count >= 1);
  const std::size_t n = scheduler_->size();
  demand_scratch_.resize(n);
  share_scratch_.resize(n);
  quota_ = Matrix(n, n, 0.0);
  debt_ = Matrix(n, n, 0.0);
  consumed_ = Matrix(n, n, 0.0);
  slices_ = Matrix(n, n, 0.0);
}

void WindowScheduler::compute_slices(const std::vector<double>& local_demand,
                                     const GlobalDemand& global) {
  const std::size_t n = scheduler_->size();
  SHAREGRID_EXPECTS(local_demand.size() == n);
  SHAREGRID_EXPECTS(!global.valid || global.demand.size() == n);

  // Build the demand estimate and this redirector's share of each
  // principal's global queue.
  std::vector<double>& demand = demand_scratch_;
  std::vector<double>& share = share_scratch_;
  if (!global.valid && stale_policy_ == StalePolicy::kConservative) {
    // Conservative mode: assume everyone is saturated, which pins every
    // principal to its mandatory entitlement, and admit only a 1/R slice.
    // The magnitude is irrelevant as long as it exceeds anything a plan
    // could grant.
    constexpr double kSaturated = 1e9;
    for (std::size_t i = 0; i < n; ++i) {
      demand[i] = kSaturated;
      share[i] = 1.0 / static_cast<double>(redirector_count_);
    }
  } else if (!global.valid) {
    // Optimistic mode: pretend the local view is the whole system.
    for (std::size_t i = 0; i < n; ++i) {
      demand[i] = local_demand[i];
      share[i] = local_demand[i] > 0.0 ? 1.0 : 0.0;
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      // The snapshot can lag local truth (it is at least one propagation
      // delay old); never let it hide demand this redirector can see.
      demand[i] = std::max(global.demand[i], local_demand[i]);
      // The share denominator, however, must be the *snapshot*: every
      // redirector divides by the same number, so the slices sum to
      // (current total / snapshot total) ~ 1. Clipping the denominator
      // with the local view would bias the sum below 1 whenever any
      // node's local estimate spikes, silently under-delivering mandatory
      // quota when a principal's clients span redirectors.
      if (global.demand[i] > 1e-9) {
        share[i] = std::min(1.0, local_demand[i] / global.demand[i]);
      } else {
        share[i] = local_demand[i] > 0.0 ? 1.0 : 0.0;
      }
    }
  }

  plan_ = scheduler_->plan(demand);
  if (plan_.lp_fallback) ++plan_fallbacks_;

  const double window_sec = to_seconds(window_);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < n; ++k)
      slices_(i, k) = plan_.rate(i, k) * share[i] * window_sec;
}

void WindowScheduler::begin_window(const std::vector<double>& local_demand,
                                   const GlobalDemand& global) {
  compute_slices(local_demand, global);
  const std::size_t n = scheduler_->size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      // Debt from a large borrowed request reduces this window's quota;
      // unused positive quota does NOT accumulate (window semantics).
      debt_(i, k) = std::min(0.0, quota_(i, k));
      consumed_(i, k) = 0.0;
      quota_(i, k) = slices_(i, k) + debt_(i, k);
    }
  }
  SHAREGRID_AUDIT_HOOK(audit::audit_window_conservation(
      quota_, consumed_, debt_, slices_, /*tol=*/1e-9));
}

void WindowScheduler::replan(const std::vector<double>& local_demand,
                             const GlobalDemand& global) {
  compute_slices(local_demand, global);
  const std::size_t n = scheduler_->size();
  // Fresh slices against the same window's debt and consumption: quota can
  // only grow if the *plan* grew, never because consumption was forgotten.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < n; ++k)
      quota_(i, k) = slices_(i, k) + debt_(i, k) - consumed_(i, k);
  SHAREGRID_AUDIT_HOOK(audit::audit_window_conservation(
      quota_, consumed_, debt_, slices_, /*tol=*/1e-9));
}

std::optional<core::PrincipalId> WindowScheduler::try_admit(
    core::PrincipalId i, double weight) {
  SHAREGRID_EXPECTS(i < quota_.rows());
  SHAREGRID_EXPECTS(weight > 0.0);
  // Send to the server with the most remaining quota: a cheap balance
  // heuristic that keeps per-window placement close to the plan's ratios.
  // The threshold is well above LP solver noise so a column whose true
  // allocation is zero can never be "admitted to" on rounding residue.
  std::size_t best = quota_.cols();
  double best_quota = 1e-3;
  for (std::size_t k = 0; k < quota_.cols(); ++k) {
    if (quota_(i, k) > best_quota) {
      best_quota = quota_(i, k);
      best = k;
    }
  }
  if (best == quota_.cols()) return std::nullopt;
  quota_(i, best) -= weight;
  consumed_(i, best) += weight;
  SHAREGRID_AUDIT_HOOK(audit::audit_window_conservation(
      quota_, consumed_, debt_, slices_, /*tol=*/1e-9));
  return best;
}

double WindowScheduler::remaining_quota(core::PrincipalId i) const {
  SHAREGRID_EXPECTS(i < quota_.rows());
  double total = 0.0;
  for (std::size_t k = 0; k < quota_.cols(); ++k) total += quota_(i, k);
  return total;
}

}  // namespace sharegrid::sched
