// Virtual-time fair queuing — the related-work baseline the paper builds on
// and departs from (§6: Demers et al. fair queuing, Zhang's VirtualClock,
// BVT/SMART CPU schedulers).
//
// Classic proportional sharing keeps an explicit queue per flow and serves
// the packet/request with the smallest virtual finish time: flow f with
// weight w_f gets a w_f-proportional share of whatever is active. The paper
// notes it chose a *credit-based* implementation instead because explicit
// virtual-time queues (a) need the queue to be materialized at the
// scheduler, which does not fit client-side implicit queuing, and (b) have
// no notion of mandatory/optional bands or coordination across nodes.
//
// This implementation exists as a baseline: bench/abl_baselines contrasts
// its proportional behaviour with agreement enforcement, and the tests pin
// the classic fairness properties.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "util/assert.hpp"

namespace sharegrid::sched {

/// Weighted fair queue over flows 0..n-1 with start-time fair queuing
/// (SFQ-style) virtual time: enqueue tags each item with
///   start  = max(V, finish of the flow's previous item)
///   finish = start + cost / weight
/// and dequeue serves the smallest finish tag, advancing V to its start.
class VirtualClockQueue {
 public:
  /// @param weights  per-flow service weights (> 0).
  explicit VirtualClockQueue(std::vector<double> weights);

  /// Enqueues one item for @p flow with service cost @p cost (> 0), tagged
  /// with @p payload for identification on dequeue.
  void enqueue(std::size_t flow, double cost, std::uint64_t payload);

  /// True when no items are queued.
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Number of items queued for one flow.
  std::size_t flow_backlog(std::size_t flow) const;

  struct Item {
    std::size_t flow = 0;
    double cost = 0.0;
    std::uint64_t payload = 0;
  };

  /// Removes and returns the item with the smallest virtual finish time.
  Item dequeue();

  /// Current virtual time (monotone; advances on dequeue).
  double virtual_time() const { return virtual_time_; }

 private:
  struct Tagged {
    double start = 0.0;
    double finish = 0.0;
    std::uint64_t seq = 0;  // FIFO tie-break
    Item item;
  };
  struct Later {
    bool operator()(const Tagged& a, const Tagged& b) const {
      return a.finish != b.finish ? a.finish > b.finish : a.seq > b.seq;
    }
  };

  std::vector<double> weights_;
  std::vector<double> last_finish_;   // per flow
  std::vector<std::size_t> backlog_;  // per flow
  std::priority_queue<Tagged, std::vector<Tagged>, Later> heap_;
  double virtual_time_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace sharegrid::sched
