// Per-redirector window driver: turns fractional scheduler plans into
// integer per-window admission quotas (§3.1.2 queuing + §3.2 distribution).
//
// Every time window the redirector:
//   1. forms a global demand estimate from the latest combining-tree snapshot
//      and its own local queues;
//   2. asks the shared Scheduler for a plan on that global estimate;
//   3. takes its proportional slice (local_i / global_i, §3.2) of each
//      plan cell and converts it to an integer quota with error-carrying
//      accumulators so long-run admitted rates match the plan exactly
//      (DESIGN.md D5).
//
// When no snapshot has arrived yet the driver is *conservative* (paper §5.1,
// Figure 8 phase 1): it assumes every principal is saturated — pinning each
// to its mandatory level — and takes only a 1/R slice of that, where R is
// the number of redirectors.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/principal.hpp"
#include "sched/plan.hpp"
#include "sched/scheduler.hpp"
#include "util/matrix.hpp"
#include "util/time.hpp"

namespace sharegrid::sched {

/// Integer-quota accumulator: take(x) returns floor(carry + x) and retains
/// the fractional remainder, so sum(take(x_t)) tracks sum(x_t) within 1.
class QuotaCarry {
 public:
  std::uint64_t take(double amount);

  /// Drops the banked fraction. Call whenever the quantity being integerized
  /// is superseded — e.g. across a mid-window replan(): fractional credit
  /// earned against the old plan must not combine with the new plan's
  /// fractions, or the two could round up to an extra admission the LP never
  /// granted (take(0.6), replan, take(0.6) must yield 0 + 0, not 0 + 1).
  void reset() { carry_ = 0.0; }

 private:
  double carry_ = 0.0;
};

/// EWMA estimator of per-principal offered load (requests/sec), used in the
/// credit-based L7 mode where queues are implicit (§4.1, DESIGN.md D3).
class ArrivalEstimator {
 public:
  /// @param alpha  EWMA weight of the newest window. Must be finite and in
  ///               (0, 1]: NaN or out-of-range weights would silently poison
  ///               every downstream demand estimate, so construction throws.
  explicit ArrivalEstimator(double alpha = 0.3);

  /// Records the arrivals observed in one window of length @p window.
  void observe(double arrivals, SimDuration window);

  /// Current rate estimate in requests/sec.
  double rate() const { return rate_; }

 private:
  double alpha_;
  double rate_ = 0.0;
  bool primed_ = false;
};

/// Snapshot of global per-principal demand (requests/sec), as distributed by
/// the combining tree. `valid` is false before the first aggregate arrives.
struct GlobalDemand {
  std::vector<double> demand;
  bool valid = false;
};

/// What a redirector assumes before the first global aggregate arrives.
enum class StalePolicy {
  /// Assume every principal is saturated and take a 1/R slice of the plan —
  /// each principal gets at most mandatory/R (the paper's behaviour,
  /// Figure 8 phase 1). Can never over-admit, at the cost of under-using an
  /// idle system.
  kConservative,
  /// Assume local queues are the whole system (share = 1, demand = local).
  /// Uses an idle system fully but over-admits by up to a factor of R when
  /// other redirectors carry load — the ablation bench quantifies the
  /// resulting overload.
  kOptimistic,
};

/// Per-redirector admission state for one time window.
class WindowScheduler {
 public:
  /// @param scheduler        shared planning logic (not owned).
  /// @param window           scheduling window length (paper: 100 ms).
  /// @param redirector_count R, for the conservative no-snapshot slice.
  /// @param stale_policy     behaviour before the first global aggregate.
  WindowScheduler(const Scheduler* scheduler, SimDuration window,
                  std::size_t redirector_count,
                  StalePolicy stale_policy = StalePolicy::kConservative);

  /// Starts a new window. @p local_demand is this redirector's own queue
  /// state in requests/sec; @p global is the latest combining-tree snapshot.
  void begin_window(const std::vector<double>& local_demand,
                    const GlobalDemand& global);

  /// Mid-window re-plan: recomputes this window's quotas against fresher
  /// demand estimates while preserving everything already consumed this
  /// window (and any debt carried into it), so a demand spike can open
  /// quota without letting repeated re-plans over-admit. Used by the live
  /// service when a cold estimator starved the current window.
  void replan(const std::vector<double>& local_demand,
              const GlobalDemand& global);

  /// Attempts to admit one request of principal @p i costing @p weight
  /// scheduling units (large requests are treated as multiple small ones,
  /// §4). On success returns the id of the principal whose server should
  /// process it. Admission requires strictly positive remaining quota; the
  /// full weight is then deducted, possibly borrowing from the next window
  /// (negative quota carries over), so long-run rates match the plan.
  std::optional<core::PrincipalId> try_admit(core::PrincipalId i,
                                             double weight = 1.0);

  /// Remaining admission quota (scheduling units) for principal i in this
  /// window; can be negative after a large borrow.
  double remaining_quota(core::PrincipalId i) const;

  SimDuration window() const { return window_; }
  const Plan& last_plan() const { return plan_; }
  /// This window's plan slices in scheduling units (quota + consumed ==
  /// slices + debt); exposed for the control-plane conservation audits.
  const Matrix& slices() const { return slices_; }

  /// Windows (including re-plans) whose plan was a stale fallback because
  /// the LP solver hit its iteration budget (Plan::lp_fallback).
  std::uint64_t plan_fallbacks() const { return plan_fallbacks_; }

 private:
  const Scheduler* scheduler_;
  SimDuration window_;
  std::size_t redirector_count_;
  StalePolicy stale_policy_;

  /// Recomputes slices_ for the current demand/share state, reusing the
  /// member scratch buffers — windows fire ten times a second per
  /// redirector, and steady state should not touch the heap (DESIGN.md D8).
  void compute_slices(const std::vector<double>& local_demand,
                      const GlobalDemand& global);

  std::vector<double> demand_scratch_;
  std::vector<double> share_scratch_;

  Matrix quota_;     // (i, k) units remaining this window
  Matrix debt_;      // (i, k) borrow carried into this window (<= 0)
  Matrix consumed_;  // (i, k) units admitted since the window began
  Matrix slices_;    // (i, k) this window's plan slice (audit reference:
                     // quota + consumed == slices + debt at all times)
  Plan plan_;
  std::uint64_t plan_fallbacks_ = 0;
};

}  // namespace sharegrid::sched
