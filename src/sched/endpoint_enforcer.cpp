#include "sched/endpoint_enforcer.hpp"

#include <algorithm>
#include <numeric>

namespace sharegrid::sched {

EndpointEnforcer::EndpointEnforcer(double capacity, std::vector<double> shares)
    : capacity_(capacity), shares_(std::move(shares)) {
  SHAREGRID_EXPECTS(capacity > 0.0);
  double total = 0.0;
  for (double s : shares_) {
    SHAREGRID_EXPECTS(s >= 0.0);
    total += s;
  }
  SHAREGRID_EXPECTS(total <= 1.0 + 1e-9);
}

std::vector<double> EndpointEnforcer::allocate(
    const std::vector<double>& demand) const {
  SHAREGRID_EXPECTS(demand.size() == shares_.size());
  const std::size_t n = shares_.size();
  std::vector<double> alloc(n, 0.0);
  std::vector<bool> satisfied(n, false);

  // Progressive filling: grant each unsatisfied principal its share of the
  // remaining capacity; principals whose demand is met release the surplus,
  // which is re-divided among the rest by share weight.
  double remaining = capacity_;
  for (std::size_t round = 0; round < n; ++round) {
    double active_weight = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      if (!satisfied[i]) active_weight += shares_[i];
    if (active_weight <= 0.0 || remaining <= 1e-12) break;

    bool someone_finished = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (satisfied[i]) continue;
      const double offer = remaining * shares_[i] / active_weight;
      if (demand[i] - alloc[i] <= offer + 1e-12) {
        // Demand met; mark satisfied so the surplus recirculates.
        alloc[i] = demand[i];
        satisfied[i] = true;
        someone_finished = true;
      }
    }
    if (!someone_finished) {
      // Everyone still hungry: split the remainder by share and stop.
      for (std::size_t i = 0; i < n; ++i) {
        if (satisfied[i]) continue;
        alloc[i] += remaining * shares_[i] / active_weight;
      }
      remaining = 0.0;
      break;
    }
    // Recompute remaining capacity after this round's satisfactions.
    double used = std::accumulate(alloc.begin(), alloc.end(), 0.0);
    remaining = capacity_ - used;
  }
  return alloc;
}

}  // namespace sharegrid::sched
