// Hot-swappable scheduler indirection.
//
// Agreements are interpreted dynamically (§2.2): when a principal's physical
// resources change — a server degrades, recovers, or is re-provisioned — the
// flow analysis and the window LP must be rebuilt against the new
// capacities, while redirectors keep planning every 100 ms. Redirectors hold
// a stable pointer to a SwappableScheduler; the experiment harness replaces
// the inner scheduler at event time and the very next window plans against
// the new agreement valuations.
#pragma once

#include <memory>
#include <utility>

#include "sched/scheduler.hpp"
#include "util/assert.hpp"

namespace sharegrid::sched {

/// Scheduler decorator whose implementation can be replaced between windows.
class SwappableScheduler final : public Scheduler {
 public:
  explicit SwappableScheduler(std::unique_ptr<Scheduler> inner)
      : inner_(std::move(inner)) {
    SHAREGRID_EXPECTS(inner_ != nullptr);
  }

  /// Replaces the implementation. The principal count must not change —
  /// queues and metrics are indexed by principal id.
  void replace(std::unique_ptr<Scheduler> inner) {
    SHAREGRID_EXPECTS(inner != nullptr);
    SHAREGRID_EXPECTS(inner->size() == inner_->size());
    inner_ = std::move(inner);
  }

  Plan plan(const std::vector<double>& demand) const override {
    return inner_->plan(demand);
  }
  std::size_t size() const override { return inner_->size(); }

 private:
  std::unique_ptr<Scheduler> inner_;
};

}  // namespace sharegrid::sched
