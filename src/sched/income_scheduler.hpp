// Service-provider scheduler: maximize provider income (§3.1.2, "Total
// Income of Provider").
//
// A single provider owns a set of servers and has an SLA [lb_i, ub_i] with
// each customer i; the customer pays p_i per request processed beyond its
// mandatory level MC_i. Each window the scheduler picks per-customer
// admission rates x_i maximizing sum_i p_i * (x_i - MC_i) subject to
// aggregate capacity and the agreement bounds, then spreads each customer's
// admitted rate across the provider's servers in proportion to capacity.
#pragma once

#include <vector>

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "lp/solve_context.hpp"
#include "sched/scheduler.hpp"
#include "util/thread_annotations.hpp"

namespace sharegrid::sched {

/// Provider-income maximization via LP.
class IncomeScheduler final : public Scheduler {
 public:
  /// @param graph     agreement graph; the provider is @p provider and every
  ///                  other principal is a customer.
  /// @param levels    access levels precomputed from @p graph.
  /// @param provider  id of the resource-owning provider.
  /// @param prices    price per extra request, indexed by principal id; the
  ///                  provider's own entry is ignored.
  /// @param work_conserving  when true (default), a second lexicographic
  ///                  stage maximizes total admitted rate at the optimal
  ///                  income, so zero-price traffic soaks up capacity the
  ///                  paying customers leave idle (serving it costs the
  ///                  provider nothing and helps the community metric).
  IncomeScheduler(const core::AgreementGraph& graph,
                  core::AccessLevels levels, core::PrincipalId provider,
                  std::vector<double> prices, bool work_conserving = true);

  /// Tag selecting the per-server entitlement columns as the bound source.
  struct EntitlementColumns {};

  /// Multi-provider variant: customer i's bounds against @p provider come
  /// from the entitlement decomposition columns EM(i, provider) /
  /// EO(i, provider) rather than the global access levels MC_i / OC_i, so
  /// one IncomeScheduler per provider partitions the community capacity
  /// without any server being promised twice (DESIGN.md D1).
  IncomeScheduler(EntitlementColumns, const core::AgreementGraph& graph,
                  const core::AccessLevels& levels, core::PrincipalId provider,
                  std::vector<double> prices, bool work_conserving = true);

  Plan plan(const std::vector<double>& demand) const override;
  std::size_t size() const override { return prices_.size(); }

  core::PrincipalId provider() const { return provider_; }

  /// Income implied by a plan: sum of p_i * max(0, admitted_i - MC_i).
  double income(const Plan& plan) const;

  /// Overrides the LP solver tuning for every stage solve (tests use this to
  /// force Status::kIterationLimit and exercise the fallback path).
  void set_solver_options(const lp::SolverOptions& options);

  /// Cumulative warm/cold solver statistics across both LP stages.
  lp::SolveStats solver_stats() const;

 private:
  Plan fallback_plan(std::vector<double> demand) const
      SHAREGRID_REQUIRES(mutex_);

  core::PrincipalId provider_;
  std::vector<double> prices_;
  bool work_conserving_;
  std::vector<double> mandatory_;  // MC_i
  std::vector<double> optional_;   // OC_i
  double provider_capacity_ = 0.0;

  // Warm-start solver caches (see Scheduler doc): per-stage contexts plus
  // the previous plan for iteration-limit fallback, guarded for concurrent
  // plan() callers.
  mutable util::Mutex mutex_;
  mutable lp::SolverOptions solver_options_ SHAREGRID_GUARDED_BY(mutex_);
  mutable lp::SolveContext stage1_context_ SHAREGRID_GUARDED_BY(mutex_);
  mutable lp::SolveContext stage2_context_ SHAREGRID_GUARDED_BY(mutex_);
  mutable Plan last_plan_ SHAREGRID_GUARDED_BY(mutex_);
  mutable bool has_last_plan_ SHAREGRID_GUARDED_BY(mutex_) = false;
};

}  // namespace sharegrid::sched
