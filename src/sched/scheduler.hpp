// Scheduler interface: one plan per time window from global queue lengths.
#pragma once

#include <vector>

#include "sched/plan.hpp"

namespace sharegrid::sched {

/// Computes admission plans from (estimated) global per-principal demand.
///
/// Implementations behave as functions of their configuration plus the
/// demand argument, so one instance may be shared by every redirector in a
/// simulation (or called concurrently from multiple threads). They may keep
/// internal solver caches — warm-start bases, previous plans for
/// iteration-limit fallback (Plan::lp_fallback) — but must serialize access
/// to them so concurrent plan() calls stay safe; the caches influence only
/// how fast a plan is found, never which allocations are feasible.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// @param demand  global queue length per principal, expressed as
  ///                requests/second of offered load.
  virtual Plan plan(const std::vector<double>& demand) const = 0;

  /// Number of principals the scheduler was configured with.
  virtual std::size_t size() const = 0;
};

}  // namespace sharegrid::sched
