#include "sched/virtual_clock.hpp"

#include <algorithm>

namespace sharegrid::sched {

VirtualClockQueue::VirtualClockQueue(std::vector<double> weights)
    : weights_(std::move(weights)),
      last_finish_(weights_.size(), 0.0),
      backlog_(weights_.size(), 0) {
  SHAREGRID_EXPECTS(!weights_.empty());
  for (double w : weights_) SHAREGRID_EXPECTS(w > 0.0);
}

void VirtualClockQueue::enqueue(std::size_t flow, double cost,
                                std::uint64_t payload) {
  SHAREGRID_EXPECTS(flow < weights_.size());
  SHAREGRID_EXPECTS(cost > 0.0);
  Tagged tagged;
  // SFQ start tag: an idle flow restarts at the system virtual time, a
  // backlogged flow continues where its previous item finished — this is
  // what prevents an idle flow from banking credit.
  tagged.start = std::max(virtual_time_, last_finish_[flow]);
  tagged.finish = tagged.start + cost / weights_[flow];
  tagged.seq = next_seq_++;
  tagged.item = {flow, cost, payload};
  last_finish_[flow] = tagged.finish;
  ++backlog_[flow];
  heap_.push(tagged);
}

std::size_t VirtualClockQueue::flow_backlog(std::size_t flow) const {
  SHAREGRID_EXPECTS(flow < weights_.size());
  return backlog_[flow];
}

VirtualClockQueue::Item VirtualClockQueue::dequeue() {
  SHAREGRID_EXPECTS(!heap_.empty());
  const Tagged tagged = heap_.top();
  heap_.pop();
  virtual_time_ = std::max(virtual_time_, tagged.start);
  --backlog_[tagged.item.flow];
  return tagged.item;
}

}  // namespace sharegrid::sched
