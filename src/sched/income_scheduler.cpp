#include "sched/income_scheduler.hpp"

#include <algorithm>
#include <utility>

#include "lp/solve_context.hpp"
#include "util/assert.hpp"

namespace sharegrid::sched {

using lp::Problem;
using lp::Relation;
using lp::Sense;

IncomeScheduler::IncomeScheduler(const core::AgreementGraph& graph,
                                 core::AccessLevels levels,
                                 core::PrincipalId provider,
                                 std::vector<double> prices,
                                 bool work_conserving)
    : provider_(provider),
      prices_(std::move(prices)),
      work_conserving_(work_conserving) {
  SHAREGRID_EXPECTS(provider < graph.size());
  SHAREGRID_EXPECTS(prices_.size() == graph.size());
  SHAREGRID_EXPECTS(levels.size() == graph.size());
  for (double p : prices_) SHAREGRID_EXPECTS(p >= 0.0);
  mandatory_ = levels.mandatory_capacity;
  optional_ = levels.optional_capacity;
  provider_capacity_ = graph.capacity(provider);
  SHAREGRID_EXPECTS(provider_capacity_ > 0.0);
}

IncomeScheduler::IncomeScheduler(EntitlementColumns,
                                 const core::AgreementGraph& graph,
                                 const core::AccessLevels& levels,
                                 core::PrincipalId provider,
                                 std::vector<double> prices,
                                 bool work_conserving)
    : provider_(provider),
      prices_(std::move(prices)),
      work_conserving_(work_conserving) {
  SHAREGRID_EXPECTS(provider < graph.size());
  SHAREGRID_EXPECTS(prices_.size() == graph.size());
  SHAREGRID_EXPECTS(levels.size() == graph.size());
  for (double p : prices_) SHAREGRID_EXPECTS(p >= 0.0);
  const std::size_t n = graph.size();
  mandatory_.resize(n);
  optional_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    mandatory_[i] = levels.mandatory_entitlement(i, provider);
    optional_[i] = levels.optional_entitlement(i, provider);
  }
  provider_capacity_ = graph.capacity(provider);
  SHAREGRID_EXPECTS(provider_capacity_ > 0.0);
}

void IncomeScheduler::set_solver_options(const lp::SolverOptions& options) {
  const util::MutexLock lock(mutex_);
  solver_options_ = options;
}

lp::SolveStats IncomeScheduler::solver_stats() const {
  const util::MutexLock lock(mutex_);
  lp::SolveStats total = stage1_context_.stats();
  total += stage2_context_.stats();
  return total;
}

/// No fresh plan this window: reuse the previous window's allocation (an
/// empty one if no window ever succeeded) against the current demand.
Plan IncomeScheduler::fallback_plan(std::vector<double> demand) const {
  Plan out;
  if (has_last_plan_) {
    out = last_plan_;
  } else {
    out.rate = Matrix(prices_.size(), prices_.size(), 0.0);
  }
  out.demand = std::move(demand);
  out.lp_fallback = true;
  return out;
}

Plan IncomeScheduler::plan(const std::vector<double>& demand) const {
  const std::size_t n = prices_.size();
  SHAREGRID_EXPECTS(demand.size() == n);
  for (double d : demand) SHAREGRID_EXPECTS(d >= 0.0);
  const util::MutexLock lock(mutex_);

  // One variable per principal: the rate admitted to the provider's pool.
  auto build = [&] {
    Problem p(n, Sense::kMaximize);
    for (std::size_t i = 0; i < n; ++i) {
      // Mandatory level is honoured up to available demand; the ceiling is
      // the agreement upper bound. The boxes are implicit (DESIGN.md D9), so
      // this whole program is a single capacity row regardless of n, and
      // per-window demand drift only rewrites bound data — no re-prepare.
      const double lo = std::min(mandatory_[i], demand[i]);
      const double hi =
          std::min(mandatory_[i] + optional_[i], std::max(lo, demand[i]));
      p.set_bounds(i, lo, hi);
    }
    std::vector<std::pair<std::size_t, double>> cap_terms;
    for (std::size_t i = 0; i < n; ++i) cap_terms.emplace_back(i, 1.0);
    p.add_constraint(std::move(cap_terms), Relation::kLessEq,
                     provider_capacity_);
    return p;
  };

  // Stage 1: maximize income. The objective is sum p_i * (x_i - MC_i); the
  // -p_i*MC_i terms are constant and do not affect the argmax.
  Problem p1 = build();
  for (std::size_t i = 0; i < n; ++i) p1.set_objective(i, prices_[i]);
  const lp::Solution s1 = stage1_context_.solve(p1, solver_options_);
  if (s1.status == lp::Status::kIterationLimit) return fallback_plan(demand);
  SHAREGRID_ENSURES(s1.optimal());

  Plan out;
  out.demand = demand;
  out.rate = Matrix(n, n, 0.0);

  const lp::Solution* final_solution = &s1;
  lp::Solution s2;
  if (work_conserving_) {
    // Stage 2: at the optimal income, maximize total admitted rate so
    // zero-price demand can use capacity the paying customers leave idle.
    // The tiny index-graded bonus breaks ties among equal-price principals:
    // without it the vertex depends on the pivot path, so warm-started and
    // cold solves can disagree on who gets the idle capacity even though
    // both are optimal.
    Problem p2 = build();
    for (std::size_t i = 0; i < n; ++i)
      p2.set_objective(
          i, 1.0 + 1e-6 * static_cast<double>(n - i) / static_cast<double>(n));
    std::vector<std::pair<std::size_t, double>> income_terms;
    for (std::size_t i = 0; i < n; ++i)
      if (prices_[i] > 0.0) income_terms.emplace_back(i, prices_[i]);
    if (!income_terms.empty()) {
      double income_star = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        income_star += prices_[i] * s1.values[i];
      p2.add_constraint(std::move(income_terms), Relation::kGreaterEq,
                        income_star * (1.0 - 1e-9) - 1e-9);
    }
    s2 = stage2_context_.solve(p2, solver_options_);
    if (s2.status == lp::Status::kIterationLimit) {
      // Stage 1 already maximized income; degrade to its solution (giving
      // up only work conservation) but still flag the window.
      out.lp_fallback = true;
    } else {
      SHAREGRID_ENSURES(s2.optimal());
      final_solution = &s2;
    }
  }

  for (std::size_t i = 0; i < n; ++i)
    out.rate(i, provider_) = std::max(0.0, final_solution->values[i]);
  last_plan_ = out;
  last_plan_.lp_fallback = false;
  has_last_plan_ = true;
  return out;
}

double IncomeScheduler::income(const Plan& plan) const {
  double total = 0.0;
  for (std::size_t i = 0; i < prices_.size(); ++i)
    total += prices_[i] * std::max(0.0, plan.admitted(i) - mandatory_[i]);
  return total;
}

}  // namespace sharegrid::sched
