// A live (real-socket) Layer-7 redirector service (§4.1 made concrete).
//
// Runs the same admission logic as the simulated L7 redirector — window
// scheduler, credit-based quotas, 302 redirects — against real HTTP over
// loopback TCP, with wall-clock scheduling windows. One acceptor thread
// serves connections sequentially (the service demonstrates correctness of
// the enforcement stack outside the simulator; it is not tuned for
// concurrency).
//
// Per request:
//   - parse the request head; malformed -> 400;
//   - /org/<principal>/... resolves the principal; unknown -> 404;
//   - within quota -> 302 Location: http://<backend>/<target>;
//   - out of quota -> 302 back to this service (implicit queuing: the
//     client is expected to retry, exactly like the paper's WebBench proxy).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/agreement_graph.hpp"
#include "live/wall_clock_admission.hpp"
#include "net/tcp.hpp"

namespace sharegrid::live {

/// Wall-clock Layer-7 redirector over loopback TCP.
class L7Service {
 public:
  /// A backend server a principal's requests can be redirected to.
  struct Backend {
    std::string host_port;  ///< e.g. "127.0.0.1:8081" (used in Location)
    core::PrincipalId owner = core::kNoPrincipal;
  };

  struct Config {
    /// Scheduling window in wall-clock microseconds (paper: 100 ms).
    std::int64_t window_usec = 100000;
    std::vector<Backend> backends;
  };

  /// @param scheduler  planning logic (not owned; must outlive the service).
  /// @param graph      used to resolve principal names from URLs (copied).
  L7Service(const sched::Scheduler* scheduler, core::AgreementGraph graph,
            Config config);
  ~L7Service();

  L7Service(const L7Service&) = delete;
  L7Service& operator=(const L7Service&) = delete;

  /// Binds an ephemeral loopback port and starts the acceptor thread.
  void start();

  /// Stops accepting and joins the thread. Idempotent.
  void stop();

  /// Listening port (valid after start()).
  std::uint16_t port() const { return port_; }

  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t self_redirected() const { return self_redirected_; }
  std::uint64_t bad_requests() const { return bad_requests_; }

 private:
  void accept_loop();
  void serve(net::Socket connection);

  const sched::Scheduler* scheduler_;
  core::AgreementGraph graph_;
  Config config_;
  WallClockAdmission admission_;

  net::Socket listener_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::uint16_t port_ = 0;

  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> self_redirected_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
};

}  // namespace sharegrid::live
