#include "live/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/assert.hpp"

namespace sharegrid::live {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw ContractViolation("tcp: " + what + ": " + std::strerror(errno));
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::set_read_timeout(int fd) {
  timeval tv{};
  tv.tv_sec = 5;  // generous for loopback; prevents test hangs
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

Socket Socket::listen_on_loopback(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    fail("bind");
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    fail("listen");
  }
  set_read_timeout(fd);
  return Socket(fd);
}

Socket Socket::connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  sockaddr_in addr = loopback(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    fail("connect");
  }
  set_read_timeout(fd);
  return Socket(fd);
}

Socket Socket::accept() const {
  SHAREGRID_EXPECTS(valid());
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) fail("accept");
  set_read_timeout(fd);
  return Socket(fd);
}

std::uint16_t Socket::local_port() const {
  SHAREGRID_EXPECTS(valid());
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    fail("getsockname");
  return ntohs(addr.sin_port);
}

std::string Socket::read_http_head() const {
  SHAREGRID_EXPECTS(valid());
  std::string buffer;
  char chunk[1024];
  while (buffer.size() < 64 * 1024) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // peer closed, error, or timeout
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.find("\r\n\r\n") != std::string::npos ||
        buffer.find("\n\n") != std::string::npos)
      break;
  }
  return buffer;
}

std::string Socket::read_some() const {
  SHAREGRID_EXPECTS(valid());
  char chunk[16 * 1024];
  const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
  if (n <= 0) return {};
  return std::string(chunk, static_cast<std::size_t>(n));
}

void Socket::write_all(std::string_view data) const {
  SHAREGRID_EXPECTS(valid());
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) fail("send");
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace sharegrid::live
