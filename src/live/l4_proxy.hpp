// A live user-space Layer-4-style proxy (§4.2 without the kernel).
//
// The paper's L4 prototype is an in-kernel LVS/NAT module; raw sockets and
// netfilter hooks need privileges a reproduction cannot assume (DESIGN.md
// §4). This proxy keeps the scheduling-visible semantics at the socket
// layer: admission happens per *connection* at accept time (the SYN
// analogue), an admitted connection is pinned to one backend for its whole
// lifetime (affinity), bytes are relayed verbatim in both directions with
// no application-layer parsing, and over-quota connections are refused by
// closing them (the paper's kernel queue defers packets; a blocking
// userspace proxy signals the client to retry instead).
//
// One listening port per principal plays the role of the virtual service
// address: the proxy infers the organization from the port the client
// dialed, exactly as an L4 switch keys on the destination VIP.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "live/wall_clock_admission.hpp"
#include "net/tcp.hpp"
#include "util/thread_annotations.hpp"

namespace sharegrid::live {

/// Wall-clock connection-level admission proxy over loopback TCP.
class L4Proxy {
 public:
  /// One virtual service: connections to the proxy's port for this service
  /// are relayed to `backend_port` when admitted.
  struct Service {
    core::PrincipalId principal = core::kNoPrincipal;
    std::uint16_t backend_port = 0;  ///< where the real server listens
    core::PrincipalId owner = core::kNoPrincipal;  ///< backend's owner
  };

  struct Config {
    std::int64_t window_usec = 100000;
    std::vector<Service> services;
  };

  L4Proxy(const sched::Scheduler* scheduler, Config config);
  ~L4Proxy();

  L4Proxy(const L4Proxy&) = delete;
  L4Proxy& operator=(const L4Proxy&) = delete;

  /// Binds one ephemeral loopback port per service and starts acceptors.
  void start();
  void stop();

  /// The virtual-service port for services[index] (valid after start()).
  std::uint16_t service_port(std::size_t index) const;

  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t refused() const { return refused_; }

 private:
  void accept_loop(std::size_t service_index) SHAREGRID_EXCLUDES(relays_mutex_);
  /// Blocking bidirectional byte relay until either side closes.
  static void relay(net::Socket client, net::Socket backend);

  const sched::Scheduler* scheduler_;
  Config config_;
  WallClockAdmission admission_;

  std::vector<net::Socket> listeners_;
  std::vector<std::thread> acceptors_;
  /// Relay threads are spawned by concurrent acceptors and joined by stop().
  std::vector<std::thread> relays_ SHAREGRID_GUARDED_BY(relays_mutex_);
  util::Mutex relays_mutex_;
  std::atomic<bool> running_{false};

  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> refused_{0};
};

}  // namespace sharegrid::live
