// Minimal RAII TCP sockets for the live (non-simulated) Layer-7 service.
//
// Loopback-only by design: the live service exists to demonstrate that the
// scheduling stack drives a real HTTP redirector (as the paper's prototype
// did), not to be an internet-facing server. Reads carry a timeout so tests
// can never hang on a stuck peer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sharegrid::live {

/// RAII wrapper over a connected or listening TCP socket on 127.0.0.1.
class Socket {
 public:
  Socket() = default;
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Creates a listening socket bound to 127.0.0.1:@p port (0 = ephemeral).
  static Socket listen_on_loopback(std::uint16_t port = 0, int backlog = 16);

  /// Connects to 127.0.0.1:@p port.
  static Socket connect_loopback(std::uint16_t port);

  /// Blocks until a peer connects; the returned socket has the same read
  /// timeout applied.
  Socket accept() const;

  /// Port this socket is bound to (listening sockets).
  std::uint16_t local_port() const;

  /// Reads until the HTTP header terminator (blank line) or EOF; returns
  /// everything read. Empty result means the peer closed immediately or the
  /// read timed out. Capped at 64 KiB.
  std::string read_http_head() const;

  /// Reads whatever is available (up to 16 KiB); empty on peer close,
  /// error, or read timeout. For protocol-agnostic relaying.
  std::string read_some() const;

  /// Writes the whole buffer (throws ContractViolation on error).
  void write_all(std::string_view data) const;

  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  explicit Socket(int fd) : fd_(fd) {}
  static void set_read_timeout(int fd);

  int fd_ = -1;
};

}  // namespace sharegrid::live
