// Wall-clock admission facade shared by the live L7 service and L4 proxy.
//
// The window loop itself — demand estimators, snapshot exchange, plan solve,
// proportional slices, integer quotas — is coord::ControlPlane, the same
// implementation the DES experiments run (DESIGN.md D10). This facade is the
// thin live-side driver: it owns the steady_clock, serializes every call
// behind one mutex, rolls elapsed windows through a WallClockDriver, and
// runs multi-redirector snapshot exchange over an InProcessTransport (the
// cross-process coord::SocketTransport plugs into the same seam). A demand-
// spike fast path re-plans the current window when a cold estimator would
// otherwise starve a principal whose load just appeared, bounded by the
// control plane's per-window re-plan budget.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "coord/control_plane.hpp"
#include "coord/snapshot_transport.hpp"
#include "coord/window_driver.hpp"
#include "sched/scheduler.hpp"
#include "util/thread_annotations.hpp"

namespace sharegrid::live {

/// Thread-safe, wall-clock-driven admission facade over the control plane.
class WallClockAdmission {
 public:
  struct Config {
    /// Scheduling window in wall-clock microseconds (paper: 100 ms).
    std::int64_t window_usec = 100000;
    /// Redirector instances sharing this process (one control-plane member
    /// each); their demand vectors are combined through the in-process
    /// transport every `snapshot_period_windows` windows.
    std::size_t redirector_count = 1;
    /// Mid-window spike re-plans allowed per member per window; fractional
    /// rates are error-carried, 0 disables the fast path.
    double spike_replan_limit = 1.0;
    /// Snapshot exchange cadence in windows (>= 1).
    std::int64_t snapshot_period_windows = 1;
    /// Idle-gap bound: at most this many windows advance per poll.
    std::int64_t max_catchup = 16;
    /// Observability hooks (optional), forwarded to the control plane.
    std::function<void()> on_spike_replan;
    std::function<void()> on_replan_suppressed;
  };

  /// @param scheduler planning logic (not owned).
  WallClockAdmission(const sched::Scheduler* scheduler, Config config)
      : transport_(config.redirector_count, scheduler->size()),
        plane_(scheduler, plane_config(config)),
        driver_(&plane_, &transport_, driver_options(config)),
        epoch_(std::chrono::steady_clock::now()) {
    for (std::size_t r = 0; r < config.redirector_count; ++r)
      members_.push_back(plane_.add_member());
    plane_.connect(&transport_);
    transport_.start();
  }

  /// Single-member shorthand (the historical live-node constructor).
  WallClockAdmission(const sched::Scheduler* scheduler,
                     std::int64_t window_usec)
      : WallClockAdmission(scheduler, single_node(window_usec)) {}

  /// Resets the window clock (call when the service starts serving).
  void reset_clock() SHAREGRID_EXCLUDES(mutex_) {
    const util::MutexLock lock(mutex_);
    driver_.reset(now_usec());
  }

  /// Records one arrival for @p principal at member @p member_index and
  /// attempts admission; returns the resource owner to route to, or nullopt
  /// when out of quota. Out-of-quota requests try the demand-spike fast path
  /// once, within the per-window re-plan budget.
  std::optional<core::PrincipalId> try_admit(std::size_t member_index,
                                             core::PrincipalId principal)
      SHAREGRID_EXCLUDES(mutex_) {
    const util::MutexLock lock(mutex_);
    driver_.poll(now_usec());
    coord::ControlPlane::Member* member = members_[member_index];
    member->record_arrival(principal, 1.0);
    if (const auto owner = member->try_admit(principal)) return owner;
    if (!member->spike_replan()) return std::nullopt;
    return member->try_admit(principal);
  }

  /// Member-0 shorthand for single-redirector services.
  std::optional<core::PrincipalId> try_admit(core::PrincipalId principal) {
    return try_admit(0, principal);
  }

  std::size_t member_count() const { return members_.size(); }
  /// Introspection for tests/metrics. plane() and member() return references
  /// into control-plane state the mutex protects — read them only while no
  /// other thread can be inside try_admit.
  const coord::ControlPlane& plane() const { return plane_; }
  const coord::ControlPlane::Member& member(std::size_t i) const {
    return *members_[i];
  }
  std::uint64_t windows_begun() const SHAREGRID_EXCLUDES(mutex_) {
    const util::MutexLock lock(mutex_);
    return driver_.windows_begun();
  }
  std::uint64_t snapshot_rounds() const SHAREGRID_EXCLUDES(mutex_) {
    const util::MutexLock lock(mutex_);
    return transport_.rounds_completed();
  }

 private:
  static Config single_node(std::int64_t window_usec) {
    Config config;
    config.window_usec = window_usec;
    return config;
  }

  static coord::ControlPlaneConfig plane_config(const Config& config) {
    SHAREGRID_EXPECTS(config.window_usec > 0);
    coord::ControlPlaneConfig plane;
    plane.window = config.window_usec;  // SimTime ticks are microseconds
    plane.redirector_count = config.redirector_count;
    plane.spike_replan_limit = config.spike_replan_limit;
    plane.on_spike_replan = config.on_spike_replan;
    plane.on_replan_suppressed = config.on_replan_suppressed;
    return plane;
  }

  static coord::WallClockDriver::Options driver_options(
      const Config& config) {
    coord::WallClockDriver::Options options;
    options.window_usec = config.window_usec;
    options.max_catchup = config.max_catchup;
    options.snapshot_period_windows = config.snapshot_period_windows;
    return options;
  }

  std::int64_t now_usec() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Serializes every admission/clock call. transport_, plane_, and the
  /// Member objects behind members_ are reached through references the
  /// control plane hands out, so the analysis cannot tie them to the mutex
  /// (see the accessor caveat above); driver_ is accessed directly and is.
  mutable util::Mutex mutex_;
  coord::InProcessTransport transport_;
  coord::ControlPlane plane_;
  coord::WallClockDriver driver_ SHAREGRID_GUARDED_BY(mutex_);
  std::vector<coord::ControlPlane::Member*> members_;  // set in ctor only
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace sharegrid::live
