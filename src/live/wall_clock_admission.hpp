// Wall-clock window admission shared by the live L7 service and L4 proxy.
//
// Bridges the simulation-oriented WindowScheduler to real time: scheduling
// windows advance with std::chrono::steady_clock, arrivals feed EWMA demand
// estimators, and a demand-spike fast path re-plans the current window when
// a cold estimator would otherwise starve a principal whose load just
// appeared. Thread-safe; a single live node is its own global view.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "sched/window_scheduler.hpp"

namespace sharegrid::live {

/// Thread-safe, wall-clock-driven admission facade over WindowScheduler.
class WallClockAdmission {
 public:
  /// @param scheduler    planning logic (not owned).
  /// @param window_usec  scheduling window in wall-clock microseconds.
  WallClockAdmission(const sched::Scheduler* scheduler,
                     std::int64_t window_usec)
      : window_usec_(window_usec),
        window_(scheduler, window_usec, /*redirector_count=*/1),
        estimators_(scheduler->size(), sched::ArrivalEstimator(0.3)),
        arrivals_(scheduler->size(), 0.0),
        window_start_(std::chrono::steady_clock::now()) {
    SHAREGRID_EXPECTS(window_usec > 0);
  }

  /// Resets the window clock (call when the service starts serving).
  void reset_clock() {
    std::lock_guard<std::mutex> lock(mutex_);
    window_start_ = std::chrono::steady_clock::now();
  }

  /// Records one arrival for @p principal and attempts admission; returns
  /// the resource owner to route to, or nullopt when out of quota.
  std::optional<core::PrincipalId> try_admit(core::PrincipalId principal) {
    std::lock_guard<std::mutex> lock(mutex_);
    roll_windows();
    arrivals_[principal] += 1.0;
    if (const auto owner = window_.try_admit(principal)) return owner;

    // Demand-spike fast path: the window's quota came from the previous
    // window's estimates, which starve a principal whose load just
    // appeared. Re-plan against demand including arrivals seen so far;
    // replan() preserves consumption, so sustained over-demand still
    // bounces.
    const double window_sec = static_cast<double>(window_usec_) / 1e6;
    std::vector<double> demand(estimators_.size(), 0.0);
    for (std::size_t i = 0; i < estimators_.size(); ++i)
      demand[i] = std::max(estimators_[i].rate(), arrivals_[i] / window_sec);
    window_.replan(demand, {demand, true});
    return window_.try_admit(principal);
  }

 private:
  /// Advances elapsed wall-clock windows (bounded catch-up on idle gaps).
  void roll_windows() {
    const auto now = std::chrono::steady_clock::now();
    auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                       now - window_start_)
                       .count() /
                   window_usec_;
    if (!first_window_done_) elapsed = std::max<std::int64_t>(elapsed, 1);
    elapsed = std::min<std::int64_t>(elapsed, 16);
    for (std::int64_t w = 0; w < elapsed; ++w) {
      std::vector<double> demand(estimators_.size(), 0.0);
      for (std::size_t i = 0; i < estimators_.size(); ++i) {
        estimators_[i].observe(arrivals_[i], window_usec_);
        arrivals_[i] = 0.0;
        demand[i] = estimators_[i].rate();
      }
      // A single live node is its own global view.
      window_.begin_window(demand, {demand, true});
      first_window_done_ = true;
    }
    if (elapsed > 0) window_start_ = now;
  }

  std::int64_t window_usec_;
  std::mutex mutex_;
  sched::WindowScheduler window_;
  std::vector<sched::ArrivalEstimator> estimators_;
  std::vector<double> arrivals_;
  std::chrono::steady_clock::time_point window_start_;
  bool first_window_done_ = false;
};

}  // namespace sharegrid::live
