#include "live/l7_service.hpp"


#include <algorithm>
#include <utility>

#include "http/message.hpp"
#include "util/assert.hpp"

namespace sharegrid::live {

L7Service::L7Service(const sched::Scheduler* scheduler,
                     core::AgreementGraph graph, Config config)
    : scheduler_(scheduler),
      graph_(std::move(graph)),
      config_(std::move(config)),
      admission_(scheduler, config_.window_usec) {
  SHAREGRID_EXPECTS(scheduler != nullptr);
  SHAREGRID_EXPECTS(!config_.backends.empty());
  for (const Backend& backend : config_.backends)
    SHAREGRID_EXPECTS(backend.owner < scheduler->size());
}

L7Service::~L7Service() { stop(); }

void L7Service::start() {
  SHAREGRID_EXPECTS(!running_.load());
  listener_ = net::Socket::listen_on_loopback();
  port_ = listener_.local_port();
  admission_.reset_clock();
  running_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void L7Service::stop() {
  if (!running_.exchange(false)) return;
  // Poke the blocking accept() with a throwaway connection, then join.
  try {
    net::Socket::connect_loopback(port_);
  } catch (const ContractViolation&) {
    // Listener already gone; the acceptor will exit via its own error path.
  }
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();
}

void L7Service::accept_loop() {
  while (running_.load()) {
    try {
      net::Socket connection = listener_.accept();
      if (!running_.load()) break;  // the stop() poke
      serve(std::move(connection));
    } catch (const ContractViolation&) {
      // accept/read failures (including timeouts) are per-connection
      // events; keep serving until stop().
    }
  }
}

void L7Service::serve(net::Socket connection) {
  const std::string head = connection.read_http_head();
  const auto request = http::parse_request(head);
  const std::string self_host = "127.0.0.1:" + std::to_string(port_);

  if (!request) {
    ++bad_requests_;
    http::Response bad;
    bad.status = 400;
    bad.reason = "Bad Request";
    connection.write_all(bad.serialize());
    return;
  }
  const auto principal_name = http::principal_from_target(request->target);
  const core::PrincipalId principal =
      principal_name ? graph_.find(*principal_name) : core::kNoPrincipal;
  if (principal == core::kNoPrincipal) {
    ++bad_requests_;
    http::Response missing;
    missing.status = 404;
    missing.reason = "Unknown Principal";
    connection.write_all(missing.serialize());
    return;
  }

  const auto owner = admission_.try_admit(principal);
  if (!owner) {
    ++self_redirected_;
    connection.write_all(
        http::make_self_redirect(*request, self_host).serialize());
    return;
  }

  // Pick any backend owned by the principal the plan routed to.
  const Backend* chosen = nullptr;
  for (const Backend& backend : config_.backends) {
    if (backend.owner == *owner) {
      chosen = &backend;
      break;
    }
  }
  // The plan can only route to resource owners, and every owner with
  // capacity has a backend in a well-formed config; fall back to self-
  // redirect if not (misconfiguration, not a scheduling failure).
  if (chosen == nullptr) {
    ++self_redirected_;
    connection.write_all(
        http::make_self_redirect(*request, self_host).serialize());
    return;
  }
  ++admitted_;
  connection.write_all(
      http::make_server_redirect(*request, chosen->host_port).serialize());
}

}  // namespace sharegrid::live
