#include "live/l4_proxy.hpp"


#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace sharegrid::live {

L4Proxy::L4Proxy(const sched::Scheduler* scheduler, Config config)
    : scheduler_(scheduler),
      config_(std::move(config)),
      admission_(scheduler, config_.window_usec) {
  SHAREGRID_EXPECTS(scheduler != nullptr);
  SHAREGRID_EXPECTS(!config_.services.empty());
  for (const Service& service : config_.services) {
    SHAREGRID_EXPECTS(service.principal < scheduler->size());
    SHAREGRID_EXPECTS(service.owner < scheduler->size());
    SHAREGRID_EXPECTS(service.backend_port > 0);
  }
}

L4Proxy::~L4Proxy() { stop(); }

void L4Proxy::start() {
  SHAREGRID_EXPECTS(!running_.load());
  listeners_.reserve(config_.services.size());
  for (std::size_t i = 0; i < config_.services.size(); ++i)
    listeners_.push_back(net::Socket::listen_on_loopback());
  admission_.reset_clock();
  running_.store(true);
  for (std::size_t i = 0; i < config_.services.size(); ++i)
    acceptors_.emplace_back([this, i] { accept_loop(i); });
}

void L4Proxy::stop() {
  if (!running_.exchange(false)) return;
  for (const net::Socket& listener : listeners_) {
    try {
      net::Socket::connect_loopback(listener.local_port());  // unblock accept()
    } catch (const ContractViolation&) {
    }
  }
  for (std::thread& t : acceptors_)
    if (t.joinable()) t.join();
  acceptors_.clear();
  {
    const util::MutexLock lock(relays_mutex_);
    for (std::thread& t : relays_)
      if (t.joinable()) t.join();
    relays_.clear();
  }
  listeners_.clear();
}

std::uint16_t L4Proxy::service_port(std::size_t index) const {
  SHAREGRID_EXPECTS(index < listeners_.size());
  return listeners_[index].local_port();
}

void L4Proxy::accept_loop(std::size_t service_index) {
  const Service& service = config_.services[service_index];
  while (running_.load()) {
    try {
      net::Socket client = listeners_[service_index].accept();
      if (!running_.load()) break;

      // The SYN analogue: admit or refuse the whole connection.
      if (!admission_.try_admit(service.principal)) {
        ++refused_;
        continue;  // closing the socket tells the client to retry
      }
      ++admitted_;
      net::Socket backend = net::Socket::connect_loopback(service.backend_port);
      // Pin the connection to its backend for its whole lifetime
      // (affinity) and relay bytes until either side closes.
      const util::MutexLock lock(relays_mutex_);
      relays_.emplace_back(
          [client = std::move(client), backend = std::move(backend)]() mutable {
            relay(std::move(client), std::move(backend));
          });
    } catch (const ContractViolation&) {
      // per-connection failure (backend down, timeout); keep serving
    }
  }
}

void L4Proxy::relay(net::Socket client, net::Socket backend) {
  // Half-duplex request/response pump: enough for the HTTP-style workloads
  // the paper targets, with no application-layer parsing whatsoever. A
  // relay ends on close *or* timeout: a connection idle past the receive
  // timeout is torn down rather than parked forever.
  while (true) {
    const net::ReadResult request = client.read_some();
    if (request.status != net::ReadStatus::kData) break;
    backend.write_all(request.data);
    const net::ReadResult reply = backend.read_some();
    if (reply.status != net::ReadStatus::kData) break;
    client.write_all(reply.data);
  }
}

}  // namespace sharegrid::live
