// Minimal HTTP/1.x message model for the Layer-7 redirector (§4.1).
//
// The redirector needs exactly three things from HTTP: parse an incoming
// request line + headers, extract the principal that owns the target URL,
// and emit a 302 redirect pointing either at an assigned server (admission)
// or at the redirector itself (implicit queuing — the client retries).
// Parsing and serialization round-trip; tests exercise malformed inputs.
#pragma once

#include <map>
#include <optional>
#include <string>

namespace sharegrid::http {

/// Parsed HTTP request (request line + headers; bodies are not modeled —
// the paper's workload is GET-dominated web traffic).
struct Request {
  std::string method = "GET";
  std::string target = "/";  ///< origin-form target, e.g. /org/acme/index.html
  std::string version = "HTTP/1.1";
  /// Header names are stored lower-cased (field names are case-insensitive).
  std::map<std::string, std::string> headers;

  std::string serialize() const;
};

/// HTTP response (status line + headers).
struct Response {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  std::map<std::string, std::string> headers;

  std::string serialize() const;

  /// 302 redirect to @p location.
  static Response redirect(const std::string& location);
};

/// Parses a serialized request; nullopt on malformed input.
std::optional<Request> parse_request(const std::string& text);

/// Parses a serialized response; nullopt on malformed input.
std::optional<Response> parse_response(const std::string& text);

/// Extracts the owning principal's name from a request target of the form
/// /org/<principal>/...; nullopt when the target does not follow the
/// convention. The request URL "signifies the service being requested" (§4).
std::optional<std::string> principal_from_target(const std::string& target);

/// Builds the redirect a Layer-7 redirector sends for an admitted request:
/// same target, host replaced by the assigned server.
Response make_server_redirect(const Request& request,
                              const std::string& server_host);

/// Builds the self-redirect used for implicit queuing: the client will retry
/// the same URL against the redirector itself (§4.1).
Response make_self_redirect(const Request& request,
                            const std::string& redirector_host);

}  // namespace sharegrid::http
