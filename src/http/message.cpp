#include "http/message.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <string_view>
#include <vector>

namespace sharegrid::http {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

/// Splits a message into lines on CRLF (tolerating bare LF); returns false
/// when there is no terminating blank line.
bool split_lines(const std::string& text, std::vector<std::string>& lines) {
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) return false;  // header section unterminated
    std::string line = text.substr(pos, nl - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    pos = nl + 1;
    if (line.empty()) return true;  // blank line ends the header section
    lines.push_back(std::move(line));
  }
  return false;
}

/// Parses "Name: value" header lines into @p headers (names lower-cased).
bool parse_headers(const std::vector<std::string>& lines, std::size_t first,
                   std::map<std::string, std::string>& headers) {
  for (std::size_t i = first; i < lines.size(); ++i) {
    const std::size_t colon = lines[i].find(':');
    if (colon == std::string::npos || colon == 0) return false;
    headers[lower(trim(lines[i].substr(0, colon)))] =
        trim(lines[i].substr(colon + 1));
  }
  return true;
}

}  // namespace

std::string Request::serialize() const {
  std::ostringstream os;
  os << method << ' ' << target << ' ' << version << "\r\n";
  for (const auto& [name, value] : headers) os << name << ": " << value << "\r\n";
  os << "\r\n";
  return os.str();
}

std::string Response::serialize() const {
  std::ostringstream os;
  os << version << ' ' << status << ' ' << reason << "\r\n";
  for (const auto& [name, value] : headers) os << name << ": " << value << "\r\n";
  os << "\r\n";
  return os.str();
}

Response Response::redirect(const std::string& location) {
  Response r;
  r.status = 302;
  r.reason = "Found";
  r.headers["location"] = location;
  return r;
}

std::optional<Request> parse_request(const std::string& text) {
  std::vector<std::string> lines;
  if (!split_lines(text, lines) || lines.empty()) return std::nullopt;

  std::istringstream rl(lines[0]);
  Request req;
  if (!(rl >> req.method >> req.target >> req.version)) return std::nullopt;
  std::string extra;
  if (rl >> extra) return std::nullopt;
  if (req.version.rfind("HTTP/", 0) != 0) return std::nullopt;
  if (req.target.empty() || req.target[0] != '/') return std::nullopt;

  if (!parse_headers(lines, 1, req.headers)) return std::nullopt;
  return req;
}

std::optional<Response> parse_response(const std::string& text) {
  std::vector<std::string> lines;
  if (!split_lines(text, lines) || lines.empty()) return std::nullopt;

  std::istringstream sl(lines[0]);
  Response resp;
  if (!(sl >> resp.version >> resp.status)) return std::nullopt;
  if (resp.version.rfind("HTTP/", 0) != 0) return std::nullopt;
  if (resp.status < 100 || resp.status > 599) return std::nullopt;
  std::getline(sl, resp.reason);
  resp.reason = trim(resp.reason);

  if (!parse_headers(lines, 1, resp.headers)) return std::nullopt;
  return resp;
}

std::optional<std::string> principal_from_target(const std::string& target) {
  // Expected form: /org/<principal>/rest...
  constexpr std::string_view prefix = "/org/";
  if (target.rfind(prefix, 0) != 0) return std::nullopt;
  const std::size_t start = prefix.size();
  const std::size_t end = target.find('/', start);
  const std::string name = end == std::string::npos
                               ? target.substr(start)
                               : target.substr(start, end - start);
  if (name.empty()) return std::nullopt;
  return name;
}

Response make_server_redirect(const Request& request,
                              const std::string& server_host) {
  return Response::redirect("http://" + server_host + request.target);
}

Response make_self_redirect(const Request& request,
                            const std::string& redirector_host) {
  return Response::redirect("http://" + redirector_host + request.target);
}

}  // namespace sharegrid::http
