// Minimal INI-style configuration reader for scenario files.
//
// Grammar (deliberately small, fully covered by tests):
//   - `# comment` and `; comment` lines (or trailing after values)
//   - `[section]` headers; repeated section names are allowed and create
//     separate section instances, in file order (used for [client] blocks)
//   - `key = value` pairs; whitespace around keys/values is trimmed
//   - values can be read as string, double, bool (true/false/1/0), or a
//     comma-separated list of doubles
//
// Parse errors carry line numbers so scenario-file typos are diagnosable.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sharegrid {

/// One `[section]` instance with its key/value pairs.
struct IniSection {
  std::string name;
  std::size_t line = 0;  ///< line number of the header (1-based)
  std::map<std::string, std::string> values;

  bool has(const std::string& key) const { return values.count(key) > 0; }

  /// Typed getters: nullopt when the key is absent; throws
  /// ContractViolation when present but malformed.
  std::optional<std::string> get_string(const std::string& key) const;
  std::optional<double> get_double(const std::string& key) const;
  std::optional<bool> get_bool(const std::string& key) const;
  std::optional<std::vector<double>> get_double_list(
      const std::string& key) const;

  /// Required-field variants: throw with a helpful message when absent.
  std::string require_string(const std::string& key) const;
  double require_double(const std::string& key) const;
};

/// A parsed INI document: sections in file order, plus any key/value pairs
/// that appeared before the first section header (the "global" section).
struct IniDocument {
  IniSection global;
  std::vector<IniSection> sections;

  /// All sections with the given name, in file order.
  std::vector<const IniSection*> all(const std::string& name) const;

  /// The single section with the given name; nullopt when absent, throws
  /// when duplicated.
  const IniSection* unique(const std::string& name) const;
};

/// Parses INI text. Throws ContractViolation (with a line number) on
/// malformed lines.
IniDocument parse_ini(const std::string& text);

/// Reads and parses an INI file; throws ContractViolation when unreadable.
IniDocument parse_ini_file(const std::string& path);

}  // namespace sharegrid
