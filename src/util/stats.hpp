// Streaming and batch descriptive statistics used by benches and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace sharegrid {

/// Welford streaming accumulator for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);

  /// Folds another accumulator into this one (Chan et al.'s parallel
  /// variance combination). Deterministic for a fixed merge order; merging
  /// in a different order than samples arrived gives an equally valid but
  /// not bit-identical m2, so callers wanting reproducibility must fix the
  /// order (e.g. cluster index).
  void merge_from(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set via linear interpolation; @p q in [0, 1].
/// Copies and sorts; intended for end-of-run reporting, not hot paths.
double percentile(std::vector<double> values, double q);

}  // namespace sharegrid
