// Binned event counting for throughput time series.
//
// Every figure in the paper's evaluation plots requests/second per principal
// against time. RateSeries accumulates discrete events into fixed-width time
// bins and reports per-bin rates and interval averages.
#pragma once

#include <cstddef>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace sharegrid {

/// Counts events into fixed-width time bins and reports rates in events/sec.
class RateSeries {
 public:
  /// @param bin_width  width of each bin (default 1 s, matching the paper's
  ///                   plots).
  explicit RateSeries(SimDuration bin_width = kSecond) : bin_width_(bin_width) {
    SHAREGRID_EXPECTS(bin_width > 0);
  }

  /// Records @p count events at time @p t (bins grow on demand).
  void record(SimTime t, std::uint64_t count = 1) {
    SHAREGRID_EXPECTS(t >= 0);
    const auto bin = static_cast<std::size_t>(t / bin_width_);
    if (bin >= bins_.size()) bins_.resize(bin + 1, 0);
    bins_[bin] += count;
  }

  SimDuration bin_width() const { return bin_width_; }
  std::size_t bin_count() const { return bins_.size(); }

  /// Events recorded in bin @p i (0 for bins never touched).
  std::uint64_t events_in_bin(std::size_t i) const {
    return i < bins_.size() ? bins_[i] : 0;
  }

  /// Rate (events/sec) in bin @p i.
  double rate_in_bin(std::size_t i) const {
    return static_cast<double>(events_in_bin(i)) /
           (static_cast<double>(bin_width_) / static_cast<double>(kSecond));
  }

  /// Total events in [from, to).
  std::uint64_t events_between(SimTime from, SimTime to) const;

  /// Average rate (events/sec) over [from, to).
  double average_rate(SimTime from, SimTime to) const {
    SHAREGRID_EXPECTS(to > from);
    return static_cast<double>(events_between(from, to)) /
           to_seconds(to - from);
  }

  std::uint64_t total_events() const;

  /// Adds @p other's bins into this series (bin widths must match). Counts
  /// are integers, so merging per-cluster series in any grouping yields the
  /// same totals — bit-exactness for free.
  void merge_from(const RateSeries& other) {
    SHAREGRID_EXPECTS(other.bin_width_ == bin_width_);
    if (other.bins_.size() > bins_.size()) bins_.resize(other.bins_.size(), 0);
    for (std::size_t i = 0; i < other.bins_.size(); ++i)
      bins_[i] += other.bins_[i];
  }

 private:
  SimDuration bin_width_;
  std::vector<std::uint64_t> bins_;
};

}  // namespace sharegrid
