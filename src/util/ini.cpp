#include "util/ini.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace sharegrid {
namespace {

[[noreturn]] void fail(const std::string& message, std::size_t line) {
  throw ContractViolation("ini: " + message + " at line " +
                          std::to_string(line));
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Strips a trailing `# ...` or `; ...` comment (not inside the value of a
/// quoted string — this grammar has none, so a bare scan suffices).
std::string strip_comment(const std::string& s) {
  const std::size_t pos = s.find_first_of("#;");
  return pos == std::string::npos ? s : s.substr(0, pos);
}

double parse_double(const std::string& text, const std::string& key) {
  const std::string t = trim(text);
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(t, &consumed);
  } catch (const std::exception&) {
    throw ContractViolation("ini: key '" + key + "' is not a number: '" + t +
                            "'");
  }
  if (consumed != t.size())
    throw ContractViolation("ini: key '" + key +
                            "' has trailing junk after number: '" + t + "'");
  return value;
}

}  // namespace

std::optional<std::string> IniSection::get_string(
    const std::string& key) const {
  const auto it = values.find(key);
  if (it == values.end()) return std::nullopt;
  return it->second;
}

std::optional<double> IniSection::get_double(const std::string& key) const {
  const auto raw = get_string(key);
  if (!raw) return std::nullopt;
  return parse_double(*raw, key);
}

std::optional<bool> IniSection::get_bool(const std::string& key) const {
  const auto raw = get_string(key);
  if (!raw) return std::nullopt;
  if (*raw == "true" || *raw == "1") return true;
  if (*raw == "false" || *raw == "0") return false;
  throw ContractViolation("ini: key '" + key + "' is not a bool: '" + *raw +
                          "'");
}

std::optional<std::vector<double>> IniSection::get_double_list(
    const std::string& key) const {
  const auto raw = get_string(key);
  if (!raw) return std::nullopt;
  std::vector<double> out;
  std::stringstream ss(*raw);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(parse_double(item, key));
  return out;
}

std::string IniSection::require_string(const std::string& key) const {
  const auto v = get_string(key);
  if (!v)
    throw ContractViolation("ini: section [" + name + "] (line " +
                            std::to_string(line) + ") is missing key '" +
                            key + "'");
  return *v;
}

double IniSection::require_double(const std::string& key) const {
  require_string(key);  // presence check with the better message
  return *get_double(key);
}

std::vector<const IniSection*> IniDocument::all(const std::string& name) const {
  std::vector<const IniSection*> out;
  for (const auto& s : sections)
    if (s.name == name) out.push_back(&s);
  return out;
}

const IniSection* IniDocument::unique(const std::string& name) const {
  const auto matches = all(name);
  if (matches.empty()) return nullptr;
  if (matches.size() > 1)
    throw ContractViolation("ini: section [" + name +
                            "] appears more than once");
  return matches.front();
}

IniDocument parse_ini(const std::string& text) {
  IniDocument doc;
  doc.global.name = "";
  IniSection* current = &doc.global;

  std::istringstream stream(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    const std::string line = trim(strip_comment(raw));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') fail("unterminated section header", line_no);
      const std::string name = trim(line.substr(1, line.size() - 2));
      if (name.empty()) fail("empty section name", line_no);
      doc.sections.push_back({name, line_no, {}});
      current = &doc.sections.back();
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) fail("expected 'key = value'", line_no);
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) fail("empty key", line_no);
    if (current->values.count(key) > 0)
      fail("duplicate key '" + key + "'", line_no);
    current->values[key] = value;
  }
  return doc;
}

IniDocument parse_ini_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ContractViolation("ini: cannot read file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_ini(buffer.str());
}

}  // namespace sharegrid
