// Thread-safety annotations + annotated locking primitives.
//
// Locking discipline in this codebase is declared in the types: every
// mutex-protected member says which mutex guards it (SHAREGRID_GUARDED_BY),
// and every function that needs or refuses a lock says so
// (SHAREGRID_REQUIRES / SHAREGRID_EXCLUDES). Under Clang the macros expand
// to the capability attributes consumed by -Wthread-safety, so acquiring the
// wrong mutex — or none — is a compile error; under GCC they expand to
// nothing and the `mutex-annotated` rule in tools/sharegrid_analyze still
// enforces that every mutex member is named by at least one annotation
// (docs/static-analysis.md has the full gating matrix).
//
// The analysis only understands lock/unlock operations that are themselves
// annotated. libstdc++'s std::mutex / std::lock_guard carry no annotations,
// so this header also provides the thin annotated primitives the library
// uses instead: Mutex (a capability wrapping std::mutex), MutexLock (a
// scoped capability replacing std::lock_guard), and CondVar (a condition
// variable whose wait() declares that the caller holds the mutex).
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define SHAREGRID_THREAD_ATTRIBUTE(x) __attribute__((x))
#else
#define SHAREGRID_THREAD_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability (argument names it in diagnostics).
#define SHAREGRID_CAPABILITY(x) SHAREGRID_THREAD_ATTRIBUTE(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define SHAREGRID_SCOPED_CAPABILITY SHAREGRID_THREAD_ATTRIBUTE(scoped_lockable)

/// Member may only be read or written while holding the named mutex.
#define SHAREGRID_GUARDED_BY(x) SHAREGRID_THREAD_ATTRIBUTE(guarded_by(x))

/// Pointee may only be accessed while holding the named mutex.
#define SHAREGRID_PT_GUARDED_BY(x) SHAREGRID_THREAD_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the listed mutexes to be held on entry (and exit).
#define SHAREGRID_REQUIRES(...) \
  SHAREGRID_THREAD_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function must NOT be called with the listed mutexes held (it acquires
/// them itself; holding one on entry would self-deadlock).
#define SHAREGRID_EXCLUDES(...) \
  SHAREGRID_THREAD_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function acquires the listed mutexes (or `this` when empty) and leaves
/// them held.
#define SHAREGRID_ACQUIRE(...) \
  SHAREGRID_THREAD_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the listed mutexes (or `this` when empty).
#define SHAREGRID_RELEASE(...) \
  SHAREGRID_THREAD_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function acquires the mutex only when it returns the given value.
#define SHAREGRID_TRY_ACQUIRE(...) \
  SHAREGRID_THREAD_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Escape hatch: the function's locking is correct for reasons the analysis
/// cannot follow. Every use needs a comment saying why.
#define SHAREGRID_NO_THREAD_SAFETY_ANALYSIS \
  SHAREGRID_THREAD_ATTRIBUTE(no_thread_safety_analysis)

namespace sharegrid::util {

/// Annotated mutex: std::mutex declared as a Clang capability so
/// -Wthread-safety can track what it guards. Same semantics and cost.
class SHAREGRID_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SHAREGRID_ACQUIRE() { mutex_.lock(); }
  void unlock() SHAREGRID_RELEASE() { mutex_.unlock(); }
  bool try_lock() SHAREGRID_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  // The wrapped handle is only ever touched through the annotated
  // lock()/unlock() above, so it is exempt from the mutex-annotated rule.
  std::mutex mutex_;  // sharegrid-analyze: allow(mutex-annotated)
};

/// Annotated scoped lock: std::lock_guard over Mutex, visible to the
/// analysis as a scoped capability (held from construction to destruction).
class SHAREGRID_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SHAREGRID_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() SHAREGRID_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable over Mutex. wait() declares the lock requirement, so
/// waiting without the mutex held is a compile error under Clang. Callers
/// re-check their predicate in a loop around wait(), which keeps the
/// predicate reads inside the annotated critical section (a wait(pred)
/// overload would hide them in a lambda the analysis cannot see into).
class CondVar {
 public:
  /// Atomically releases @p mutex, blocks, and re-acquires before returning.
  /// Annotated REQUIRES: the caller holds the mutex across the call from the
  /// analysis's point of view; the internal release/re-acquire is invisible
  /// by design, hence the analysis opt-out on the body.
  void wait(Mutex& mutex) SHAREGRID_REQUIRES(mutex)
      SHAREGRID_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mutex);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  // condition_variable_any works with any BasicLockable, which lets the
  // annotated Mutex be the thing waited on (std::condition_variable would
  // force an unannotated std::unique_lock<std::mutex> into every wait site).
  std::condition_variable_any cv_;
};

}  // namespace sharegrid::util
