// Always-on lightweight metrics (the perf-counters idea): named counters and
// gauges that hot paths bump unconditionally, cheap enough to leave compiled
// into every build — scenario runs report event/plan/redirect totals without
// a bench build or an audit flag.
//
// Registration (counter()/gauge() lookup-or-create) takes a mutex and is
// expected once per call site; updates are lock-free relaxed atomics, so
// sharded simulator lanes may bump the same counter concurrently. Counters
// are NOT part of any deterministic output the audits pin — they are
// operator telemetry, reported in registration order.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <ostream>
#include <string>

#include "util/flat_map.hpp"
#include "util/table.hpp"
#include "util/thread_annotations.hpp"

namespace sharegrid::util {

/// Monotonically increasing event count. add() is a relaxed atomic add —
/// safe from any thread, never a synchronization point.
class MetricCounter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (queue depth, shard count, ...). set() overwrites;
/// set_max() ratchets upward for high-water marks.
class MetricGauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void set_max(std::int64_t v) {
    std::int64_t seen = value_.load(std::memory_order_relaxed);
    while (seen < v &&
           !value_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Registry of named counters/gauges. Lookup-or-create by name; the returned
/// references stay valid for the registry's lifetime (deque storage), so call
/// sites cache them. Reporting renders a TextTable in registration order.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under @p name, creating it (with
  /// @p help) on first use. Subsequent calls ignore @p help.
  MetricCounter& counter(const std::string& name, const std::string& help = "")
      SHAREGRID_EXCLUDES(mutex_);

  /// Gauge analogue of counter(). A name registers as either a counter or a
  /// gauge, never both (contract violation otherwise).
  MetricGauge& gauge(const std::string& name, const std::string& help = "")
      SHAREGRID_EXCLUDES(mutex_);

  /// Number of registered metrics.
  std::size_t size() const SHAREGRID_EXCLUDES(mutex_);

  /// Zeroes every metric (names stay registered). Scenario runners call this
  /// between runs so totals are per-run.
  void reset() SHAREGRID_EXCLUDES(mutex_);

  /// Metrics in registration order as (metric, value, help) rows.
  TextTable to_table() const SHAREGRID_EXCLUDES(mutex_);

  /// Renders to_table() to @p os; prints nothing when empty.
  void report(std::ostream& os) const SHAREGRID_EXCLUDES(mutex_);

 private:
  enum class Kind { kCounter, kGauge };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    MetricCounter counter;
    MetricGauge gauge;
  };

  Entry& lookup_or_create(const std::string& name, const std::string& help,
                          Kind kind) SHAREGRID_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  // Deque keeps entry addresses stable across registration, so the
  // references handed out by counter()/gauge() outlive later inserts.
  std::deque<Entry> entries_ SHAREGRID_GUARDED_BY(mutex_);
  FlatMap<std::string, std::size_t> index_ SHAREGRID_GUARDED_BY(mutex_);
};

/// Process-wide registry the simulator/redirector/scheduler hot paths report
/// into. Totals are cumulative for the process; runners that want per-run
/// numbers call reset() up front (experiments::run_scenario does).
MetricsRegistry& global_metrics();

}  // namespace sharegrid::util
