// Deterministic pseudo-random number generation (design decision D4).
//
// All stochastic behaviour in sharegrid flows from Rng instances that are
// seeded explicitly; the library never reads wall-clock entropy. The generator
// is xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64, which is both
// fast and high quality for simulation workloads.
#pragma once

#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace sharegrid {

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions if callers prefer.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Re-initializes the state; same seed => same stream.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) word = splitmix64(seed);
  }

  /// Next raw 64-bit value.
  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    SHAREGRID_EXPECTS(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection.
  std::uint64_t bounded(std::uint64_t bound) {
    SHAREGRID_EXPECTS(bound > 0);
    std::uint64_t x = operator()();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = operator()();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Bounded Pareto variate on [lo, hi] with shape alpha (> 0); used for
  /// heavy-tailed web reply sizes.
  double bounded_pareto(double lo, double hi, double alpha);

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p) {
    SHAREGRID_EXPECTS(p >= 0.0 && p <= 1.0);
    return uniform() < p;
  }

  /// Derives an independent child stream (for per-component RNGs).
  Rng split() { return Rng(operator()()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_[4];
};

}  // namespace sharegrid
