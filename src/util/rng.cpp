#include "util/rng.hpp"

#include <cmath>

namespace sharegrid {

double Rng::exponential(double mean) {
  SHAREGRID_EXPECTS(mean > 0.0);
  // Inverse-CDF; 1 - uniform() is in (0, 1] so log() is finite.
  return -mean * std::log(1.0 - uniform());
}

double Rng::bounded_pareto(double lo, double hi, double alpha) {
  SHAREGRID_EXPECTS(lo > 0.0 && hi > lo && alpha > 0.0);
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  // Inverse CDF of the bounded Pareto distribution.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

}  // namespace sharegrid
