// Flat, cache-conscious associative containers for hot-path state.
//
// The paper-scale experiments keep per-connection and per-round state in
// node-based std::map, whose every lookup chases red-black-tree pointers and
// whose every insert/erase allocates. At the million-client scale the
// ROADMAP targets, those maps dominate the redirector packet path. Two
// replacements, both with contiguous storage (the shape of Ceph's
// mini_flat_map.h / bitset_set.h):
//
//  * FlatMap      — a sorted std::vector with binary search. Ordered, zero
//    per-node overhead, ideal for small maps (registry indexes, config
//    tables) that are read often and mutated rarely.
//  * FlatHashMap  — open-addressing linear-probe hash table with
//    backward-shift deletion (no tombstones). O(1) insert/find/erase with
//    one contiguous allocation; the NAT connection table's shape.
//
// Both are deterministic: behaviour and iteration order depend only on the
// operation history (and the hash function), never on pointer values or
// randomized seeds, so simulator runs stay bit-reproducible (DESIGN.md D4).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace sharegrid::util {

/// splitmix64 finalizer: cheap, well-mixed 64-bit hash for integer keys.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-dependent combination of two 64-bit hashes.
inline std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return mix64(seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) +
                       (seed >> 2)));
}

/// Sorted-vector map: contiguous storage, binary-search lookup, ordered
/// iteration. Inserts and erases are O(n) moves — intended for small maps
/// (tens to hundreds of entries) or read-mostly workloads where the cache
/// behaviour of one flat array beats a pointer-chasing tree.
template <class Key, class Value, class Compare = std::less<Key>>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  iterator lower_bound(const Key& key) {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [this](const value_type& e, const Key& k) {
                              return compare_(e.first, k);
                            });
  }
  const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [this](const value_type& e, const Key& k) {
                              return compare_(e.first, k);
                            });
  }

  iterator find(const Key& key) {
    const iterator it = lower_bound(key);
    return (it != end() && !compare_(key, it->first)) ? it : end();
  }
  const_iterator find(const Key& key) const {
    const const_iterator it = lower_bound(key);
    return (it != end() && !compare_(key, it->first)) ? it : end();
  }
  bool contains(const Key& key) const { return find(key) != end(); }

  /// Inserts or overwrites; returns {iterator, inserted}.
  std::pair<iterator, bool> insert_or_assign(const Key& key, Value value) {
    iterator it = lower_bound(key);
    if (it != end() && !compare_(key, it->first)) {
      it->second = std::move(value);
      return {it, false};
    }
    it = entries_.insert(it, {key, std::move(value)});
    return {it, true};
  }

  Value& operator[](const Key& key) {
    iterator it = lower_bound(key);
    if (it == end() || compare_(key, it->first))
      it = entries_.insert(it, {key, Value{}});
    return it->second;
  }

  /// Erases by key; returns how many entries were removed (0 or 1).
  std::size_t erase(const Key& key) {
    const iterator it = find(key);
    if (it == end()) return 0;
    entries_.erase(it);
    return 1;
  }

 private:
  std::vector<value_type> entries_;
  Compare compare_;
};

/// Open-addressing hash map: one contiguous slot array, linear probing,
/// backward-shift deletion. No per-entry allocation, no tombstone decay, and
/// probes touch consecutive cache lines. Capacity is a power of two and
/// grows at 7/8 load. Key and Value should be cheap to move; equality must
/// be exact (the simulator's endpoint/id keys are integral).
template <class Key, class Value, class Hash = std::hash<Key>>
class FlatHashMap {
 public:
  using value_type = std::pair<Key, Value>;

  /// Forward iterator over occupied slots, in slot order (deterministic for
  /// a given operation history and hash function).
  template <bool Const>
  class Iterator {
   public:
    using MapPtr = std::conditional_t<Const, const FlatHashMap*, FlatHashMap*>;
    using Ref = std::conditional_t<Const, const value_type&, value_type&>;
    using Ptr = std::conditional_t<Const, const value_type*, value_type*>;

    Iterator() = default;
    Iterator(MapPtr map, std::size_t slot) : map_(map), slot_(slot) {
      skip_empty();
    }
    /// Const iterators are constructible from mutable ones (find() / end()
    /// mixing in callers and the audit templates).
    template <bool C = Const, class = std::enable_if_t<C>>
    Iterator(const Iterator<false>& other)  // NOLINT(runtime/explicit)
        : map_(other.map_), slot_(other.slot_) {}

    Ref operator*() const { return map_->slots_[slot_].entry; }
    Ptr operator->() const { return &map_->slots_[slot_].entry; }
    Iterator& operator++() {
      ++slot_;
      skip_empty();
      return *this;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.slot_ == b.slot_;
    }
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return a.slot_ != b.slot_;
    }

   private:
    friend class FlatHashMap;
    friend class Iterator<true>;
    void skip_empty() {
      if (map_ == nullptr) return;
      while (slot_ < map_->slots_.size() && !map_->slots_[slot_].occupied)
        ++slot_;
    }
    MapPtr map_ = nullptr;
    std::size_t slot_ = 0;
  };

  using iterator = Iterator<false>;
  using const_iterator = Iterator<true>;

  FlatHashMap() = default;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

  /// Pre-sizes the table for @p n entries without rehash churn.
  void reserve(std::size_t n) {
    std::size_t want = kMinCapacity;
    while (want * 7 / 8 < n) want <<= 1;
    if (want > slots_.size()) rehash(want);
  }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, slots_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

  iterator find(const Key& key) {
    const std::size_t slot = find_slot(key);
    return slot == kNotFound ? end() : iterator(this, slot);
  }
  const_iterator find(const Key& key) const {
    const std::size_t slot = find_slot(key);
    return slot == kNotFound ? end() : const_iterator(this, slot);
  }
  bool contains(const Key& key) const { return find_slot(key) != kNotFound; }

  std::pair<iterator, bool> insert_or_assign(const Key& key, Value value) {
    grow_if_needed();
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = hash_(key) & mask;
    while (slots_[slot].occupied) {
      if (slots_[slot].entry.first == key) {
        slots_[slot].entry.second = std::move(value);
        return {iterator(this, slot), false};
      }
      slot = (slot + 1) & mask;
    }
    slots_[slot].entry = {key, std::move(value)};
    slots_[slot].occupied = true;
    ++size_;
    return {iterator(this, slot), true};
  }

  Value& operator[](const Key& key) {
    return insert_if_absent(key).first->second;
  }

  /// Erases by key with backward shift: subsequent probe-chain entries slide
  /// into the hole so lookups never need tombstones. Returns 0 or 1.
  std::size_t erase(const Key& key) {
    std::size_t hole = find_slot(key);
    if (hole == kNotFound) return 0;
    const std::size_t mask = slots_.size() - 1;
    std::size_t probe = hole;
    while (true) {
      probe = (probe + 1) & mask;
      if (!slots_[probe].occupied) break;
      const std::size_t home = hash_(slots_[probe].entry.first) & mask;
      // The entry at `probe` may fill the hole only if its home position
      // does not lie strictly between the hole and the probe (cyclically) —
      // otherwise moving it would break its own probe chain.
      if (((probe - home) & mask) >= ((probe - hole) & mask)) {
        slots_[hole].entry = std::move(slots_[probe].entry);
        hole = probe;
      }
    }
    slots_[hole].occupied = false;
    slots_[hole].entry = value_type{};
    --size_;
    return 1;
  }

 private:
  struct Slot {
    value_type entry{};
    bool occupied = false;
  };
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  /// Like insert_or_assign but keeps an existing value.
  std::pair<iterator, bool> insert_if_absent(const Key& key) {
    grow_if_needed();
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = hash_(key) & mask;
    while (slots_[slot].occupied) {
      if (slots_[slot].entry.first == key) return {iterator(this, slot), false};
      slot = (slot + 1) & mask;
    }
    slots_[slot].entry = {key, Value{}};
    slots_[slot].occupied = true;
    ++size_;
    return {iterator(this, slot), true};
  }

  std::size_t find_slot(const Key& key) const {
    if (slots_.empty()) return kNotFound;
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = hash_(key) & mask;
    while (slots_[slot].occupied) {
      if (slots_[slot].entry.first == key) return slot;
      slot = (slot + 1) & mask;
    }
    return kNotFound;
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rehash(kMinCapacity);
      return;
    }
    // 7/8 max load keeps expected probe chains short without wasting half
    // the table the way a 1/2 threshold would.
    if ((size_ + 1) * 8 > slots_.size() * 7) rehash(slots_.size() * 2);
  }

  void rehash(std::size_t new_capacity) {
    SHAREGRID_ASSERT((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    const std::size_t mask = new_capacity - 1;
    for (Slot& s : old) {
      if (!s.occupied) continue;
      std::size_t slot = hash_(s.entry.first) & mask;
      while (slots_[slot].occupied) slot = (slot + 1) & mask;
      slots_[slot].entry = std::move(s.entry);
      slots_[slot].occupied = true;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  Hash hash_;
};

}  // namespace sharegrid::util
