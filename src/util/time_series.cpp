#include "util/time_series.hpp"

#include <algorithm>
#include <numeric>

namespace sharegrid {

std::uint64_t RateSeries::events_between(SimTime from, SimTime to) const {
  SHAREGRID_EXPECTS(from >= 0 && to >= from);
  if (bins_.empty() || from == to) return 0;
  // Bins fully inside [from, to) are counted whole; partial edge bins are
  // attributed proportionally so that phase boundaries that do not align with
  // bin edges still report sensible averages.
  const double from_bin = static_cast<double>(from) / static_cast<double>(bin_width_);
  const double to_bin = static_cast<double>(to) / static_cast<double>(bin_width_);
  const auto first = static_cast<std::size_t>(from_bin);
  const auto last = std::min(static_cast<std::size_t>(to_bin), bins_.size() - 1);

  double total = 0.0;
  for (std::size_t i = first; i <= last && i < bins_.size(); ++i) {
    const double lo = std::max(from_bin, static_cast<double>(i));
    const double hi = std::min(to_bin, static_cast<double>(i + 1));
    if (hi <= lo) continue;
    total += static_cast<double>(bins_[i]) * (hi - lo);
  }
  return static_cast<std::uint64_t>(total + 0.5);
}

std::uint64_t RateSeries::total_events() const {
  return std::accumulate(bins_.begin(), bins_.end(), std::uint64_t{0});
}

}  // namespace sharegrid
