// Dense row-major matrix of doubles, sized for the small principal counts the
// paper targets ("this latter number is expected to be small", §3.1.2) and for
// the simplex tableaus built on top of it.
#pragma once

#include <cstddef>
#include <vector>

#include "util/assert.hpp"

namespace sharegrid {

/// Row-major dense matrix with bounds-checked access.
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  /// Resizes to rows x cols with every element set to @p fill, reusing the
  /// existing storage when capacity allows (hot-path reuse: per-window
  /// tableau rebuilds must not reallocate).
  void assign(std::size_t rows, std::size_t cols, double fill) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  double& operator()(std::size_t r, std::size_t c) {
    SHAREGRID_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double operator()(std::size_t r, std::size_t c) const {
    SHAREGRID_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r (contiguous, cols() elements).
  double* row(std::size_t r) {
    SHAREGRID_EXPECTS(r < rows_);
    return data_.data() + r * cols_;
  }
  const double* row(std::size_t r) const {
    SHAREGRID_EXPECTS(r < rows_);
    return data_.data() + r * cols_;
  }

  /// Sum over one row / one column.
  double row_sum(std::size_t r) const {
    SHAREGRID_EXPECTS(r < rows_);
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += (*this)(r, c);
    return s;
  }
  double col_sum(std::size_t c) const {
    SHAREGRID_EXPECTS(c < cols_);
    double s = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) s += (*this)(r, c);
    return s;
  }

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace sharegrid
