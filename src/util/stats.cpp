#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace sharegrid {

void RunningStats::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge_from(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double q) {
  SHAREGRID_EXPECTS(!values.empty());
  SHAREGRID_EXPECTS(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] + frac * (values[lo + 1] - values[lo]);
}

}  // namespace sharegrid
