// Small persistent worker pool for the parallel per-provider plan solves
// (DESIGN.md D8, ROADMAP "parallel multi-server plan solves").
//
// Deliberately minimal: one kind of job (run fn(i) for every index in a
// range), the caller participates so a pool of zero threads degrades to a
// plain serial loop, and runs are serialized — the schedulers that use it
// issue one fan-out per window, so queueing sophistication would buy
// nothing. Determinism matters more than throughput here: results are
// written by index into caller-owned slots, and when callables throw, the
// exception rethrown is always the one from the *lowest* index, independent
// of thread interleaving, so a failing window fails identically in serial
// and parallel runs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sharegrid {

/// Fixed-size thread pool running indexed fan-out jobs.
class WorkerPool {
 public:
  /// Spawns @p threads workers. Zero is valid: run_indexed() then executes
  /// entirely on the calling thread.
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs fn(0) .. fn(count - 1), each exactly once, distributed over the
  /// workers with the calling thread participating; returns when all have
  /// finished. If callables throw, every index still runs and the exception
  /// from the lowest throwing index is rethrown. Concurrent callers are
  /// serialized.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();
  /// Claims and runs indexes of the current job until none remain.
  void participate();

  std::mutex run_mutex_;  // serializes run_indexed callers

  std::mutex mutex_;  // guards everything below
  std::condition_variable wake_;  // workers: a new job arrived (or stop)
  std::condition_variable done_;  // caller: all indexes finished
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;

  std::vector<std::thread> workers_;
};

}  // namespace sharegrid
