// Small persistent worker pool for the parallel per-provider plan solves
// (DESIGN.md D8, ROADMAP "parallel multi-server plan solves").
//
// Deliberately minimal: one kind of job (run fn(i) for every index in a
// range), the caller participates so a pool of zero threads degrades to a
// plain serial loop, and runs are serialized — the schedulers that use it
// issue one fan-out per window, so queueing sophistication would buy
// nothing. Determinism matters more than throughput here: results are
// written by index into caller-owned slots, and when callables throw, the
// exception rethrown is always the one from the *lowest* index, independent
// of thread interleaving, so a failing window fails identically in serial
// and parallel runs.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace sharegrid {

/// Fixed-size thread pool running indexed fan-out jobs.
class WorkerPool {
 public:
  /// Spawns @p threads workers. Zero is valid: run_indexed() then executes
  /// entirely on the calling thread.
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs fn(0) .. fn(count - 1), each exactly once, distributed over the
  /// workers with the calling thread participating; returns when all have
  /// finished. If callables throw, every index still runs and the exception
  /// from the lowest throwing index is rethrown. Concurrent callers are
  /// serialized.
  void run_indexed(std::size_t count, const std::function<void(std::size_t)>& fn)
      SHAREGRID_EXCLUDES(run_mutex_, mutex_);

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop() SHAREGRID_EXCLUDES(mutex_);
  /// Claims and runs indexes of the current job until none remain.
  void participate() SHAREGRID_EXCLUDES(mutex_);

  util::Mutex run_mutex_;  // serializes run_indexed callers (nothing guarded:
                           // held across a whole fan-out, never nested inside
                           // mutex_, hence the EXCLUDES on run_indexed)

  util::Mutex mutex_;  // guards the job state below
  util::CondVar wake_;  // workers: a new job arrived (or stop)
  util::CondVar done_;  // caller: all indexes finished
  const std::function<void(std::size_t)>* fn_ SHAREGRID_GUARDED_BY(mutex_) =
      nullptr;
  std::size_t count_ SHAREGRID_GUARDED_BY(mutex_) = 0;
  std::size_t next_ SHAREGRID_GUARDED_BY(mutex_) = 0;
  std::size_t pending_ SHAREGRID_GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ SHAREGRID_GUARDED_BY(mutex_) = 0;
  bool stop_ SHAREGRID_GUARDED_BY(mutex_) = false;
  std::vector<std::exception_ptr> errors_ SHAREGRID_GUARDED_BY(mutex_);

  std::vector<std::thread> workers_;  // written only in ctor/dtor
};

}  // namespace sharegrid
