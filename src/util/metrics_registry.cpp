#include "util/metrics_registry.hpp"

#include "util/assert.hpp"

namespace sharegrid::util {

MetricsRegistry::Entry& MetricsRegistry::lookup_or_create(
    const std::string& name, const std::string& help, Kind kind) {
  SHAREGRID_EXPECTS(!name.empty());
  MutexLock lock(mutex_);
  const auto it = index_.find(name);
  if (it != index_.end()) {
    Entry& entry = entries_[it->second];
    SHAREGRID_EXPECTS(entry.kind == kind);
    return entry;
  }
  index_.insert_or_assign(name, entries_.size());
  // Atomics are immovable, so construct in place and fill the metadata.
  Entry& entry = entries_.emplace_back();
  entry.name = name;
  entry.help = help;
  entry.kind = kind;
  return entry;
}

MetricCounter& MetricsRegistry::counter(const std::string& name,
                                        const std::string& help) {
  return lookup_or_create(name, help, Kind::kCounter).counter;
}

MetricGauge& MetricsRegistry::gauge(const std::string& name,
                                    const std::string& help) {
  return lookup_or_create(name, help, Kind::kGauge).gauge;
}

std::size_t MetricsRegistry::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

void MetricsRegistry::reset() {
  MutexLock lock(mutex_);
  for (Entry& entry : entries_) {
    entry.counter.reset();
    entry.gauge.reset();
  }
}

TextTable MetricsRegistry::to_table() const {
  TextTable table({"metric", "value", "help"});
  MutexLock lock(mutex_);
  for (const Entry& entry : entries_) {
    const std::string value = entry.kind == Kind::kCounter
                                  ? std::to_string(entry.counter.value())
                                  : std::to_string(entry.gauge.value());
    table.add_row({entry.name, value, entry.help});
  }
  return table;
}

void MetricsRegistry::report(std::ostream& os) const {
  const TextTable table = to_table();
  if (table.row_count() == 0) return;
  table.print(os);
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace sharegrid::util
