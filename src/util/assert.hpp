// Lightweight contract-checking macros used across sharegrid.
//
// SHAREGRID_EXPECTS / SHAREGRID_ENSURES follow the C++ Core Guidelines I.6 /
// I.8 convention: preconditions and postconditions that hold in every build
// type. Violations throw sharegrid::ContractViolation rather than aborting so
// tests can assert on misuse and long simulations fail loudly but cleanly.
#pragma once

#include <stdexcept>
#include <string>

namespace sharegrid {

/// Thrown when a precondition, postcondition, or internal invariant fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace sharegrid

#define SHAREGRID_EXPECTS(cond)                                              \
  do {                                                                       \
    if (!(cond))                                                             \
      ::sharegrid::detail::contract_fail("precondition", #cond, __FILE__,    \
                                         __LINE__);                          \
  } while (false)

#define SHAREGRID_ENSURES(cond)                                              \
  do {                                                                       \
    if (!(cond))                                                             \
      ::sharegrid::detail::contract_fail("postcondition", #cond, __FILE__,   \
                                         __LINE__);                          \
  } while (false)

#define SHAREGRID_ASSERT(cond)                                               \
  do {                                                                       \
    if (!(cond))                                                             \
      ::sharegrid::detail::contract_fail("invariant", #cond, __FILE__,       \
                                         __LINE__);                          \
  } while (false)
