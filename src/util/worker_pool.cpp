#include "util/worker_pool.hpp"

namespace sharegrid {

WorkerPool::WorkerPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    const util::MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const util::MutexLock serialize(run_mutex_);
  {
    const util::MutexLock lock(mutex_);
    fn_ = &fn;
    count_ = count;
    next_ = 0;
    pending_ = count;
    errors_.assign(count, nullptr);
    ++generation_;
  }
  wake_.notify_all();
  participate();
  std::exception_ptr first;
  {
    const util::MutexLock lock(mutex_);
    while (pending_ != 0) done_.wait(mutex_);
    fn_ = nullptr;
    // Rethrow by lowest index, not completion order, so a failing fan-out
    // fails the same way no matter how threads interleaved.
    for (std::exception_ptr& error : errors_) {
      if (error != nullptr) {
        first = error;
        break;
      }
    }
    errors_.clear();
  }
  if (first != nullptr) std::rethrow_exception(first);
}

void WorkerPool::participate() {
  for (;;) {
    std::size_t index;
    const std::function<void(std::size_t)>* fn;
    {
      const util::MutexLock lock(mutex_);
      if (fn_ == nullptr || next_ >= count_) return;
      index = next_++;
      fn = fn_;
    }
    std::exception_ptr error;
    try {
      (*fn)(index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      const util::MutexLock lock(mutex_);
      if (error != nullptr) errors_[index] = error;
      if (--pending_ == 0) done_.notify_all();
    }
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      const util::MutexLock lock(mutex_);
      // Predicate re-checked inline around wait() so the guarded reads stay
      // visible to the thread-safety analysis (see CondVar).
      while (!stop_ && (generation_ == seen || fn_ == nullptr))
        wake_.wait(mutex_);
      if (stop_) return;
      seen = generation_;
    }
    participate();
  }
}

}  // namespace sharegrid
