// Simulated-time representation shared by the whole library.
//
// Simulation time is an integer count of microseconds from experiment start.
// Integers avoid the drift that floating-point accumulation would introduce
// over the multi-hundred-second runs in the paper's figures.
#pragma once

#include <cstdint>

namespace sharegrid {

/// Microseconds since simulation start.
using SimTime = std::int64_t;

/// Duration in microseconds.
using SimDuration = std::int64_t;

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000;
constexpr SimDuration kSecond = 1000 * 1000;

/// Converts a floating-point second count to SimDuration (round to nearest).
constexpr SimDuration seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond) +
                                  (s >= 0 ? 0.5 : -0.5));
}

/// Converts a floating-point millisecond count to SimDuration.
constexpr SimDuration milliseconds(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond) +
                                  (ms >= 0 ? 0.5 : -0.5));
}

/// SimTime expressed in (fractional) seconds, for reporting.
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace sharegrid
