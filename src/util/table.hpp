// Plain-text table rendering for bench output.
//
// Figure benches print the same rows/series the paper's plots report; this
// helper keeps columns aligned and emits an optional CSV form for plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace sharegrid {

/// Column-aligned text table with an optional CSV serialization.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly one cell per header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with fixed precision.
  static std::string num(double v, int precision = 1);

  /// Renders with padded columns and a header underline.
  void print(std::ostream& os) const;

  /// Renders as CSV (RFC-4180-ish; cells containing commas are quoted).
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sharegrid
