// Transport-layer packet model for the Layer-4 NAT redirector (§4.2).
//
// The paper's L4 prototype is a Linux Virtual Server kernel module using NAT:
// on a TCP SYN it picks a server, rewrites destination address/port, records
// the connection so later packets follow it, and reverse-rewrites replies.
// Raw sockets need root privileges, so we model the packet header fields the
// switch actually inspects and run them through the same table logic inside
// the discrete-event simulator (DESIGN.md §4 substitution).
#pragma once

#include <cstdint>
#include <string>

namespace sharegrid::l4 {

/// Host:port pair (host ids are simulator node ids, not real IPs).
struct Endpoint {
  std::uint32_t host = 0;
  std::uint16_t port = 0;

  auto operator<=>(const Endpoint&) const = default;
};

/// TCP-ish packet kinds the switch distinguishes.
enum class PacketKind : std::uint8_t {
  kSyn,   ///< connection establishment; triggers admission + NAT setup
  kData,  ///< mid-connection payload; follows the NAT table
  kFin,   ///< teardown; releases the NAT entry
};

/// The header fields a NAT L4 switch inspects plus simulation bookkeeping.
struct Packet {
  PacketKind kind = PacketKind::kSyn;
  Endpoint src;  ///< client endpoint (or server endpoint on the reply path)
  Endpoint dst;  ///< virtual service endpoint (or client on the reply path)
  std::uint64_t request_id = 0;  ///< simulation correlation id
  double weight = 1.0;           ///< scheduling units (large = multiple small)
};

/// Human-readable endpoint (for logs/tests).
std::string to_string(const Endpoint& ep);

}  // namespace sharegrid::l4
