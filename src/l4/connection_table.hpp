// NAT connection table (§4.2): forward and reverse rewrite state.
//
// Keyed by (client endpoint, virtual service endpoint). Entries are created
// on admitted SYNs, looked up for subsequent packets of the connection so
// they reach the same server (connection affinity — required for services
// with pairwise-negotiated state such as SSL), and removed on FIN or by
// explicit flush. A separate *affinity hint* remembers the last server used
// per (client host, service) so new connections from the same client prefer
// the same server when agreements allow.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>

#include "l4/packet.hpp"
#include "util/flat_map.hpp"

namespace sharegrid::l4 {

/// Forward/reverse NAT mappings plus client-affinity hints.
class ConnectionTable {
 public:
  /// Registers an admitted connection client->vip handled by @p server.
  /// Overwrites any stale entry for the same flow.
  void establish(const Endpoint& client, const Endpoint& vip,
                 const Endpoint& server);

  /// Server currently handling the flow, if established.
  std::optional<Endpoint> lookup(const Endpoint& client,
                                 const Endpoint& vip) const;

  /// Removes the flow (connection teardown). No-op when absent.
  void release(const Endpoint& client, const Endpoint& vip);

  /// Rewrites an inbound packet's destination to @p server (NAT forward
  /// path); returns the rewritten packet.
  static Packet rewrite_to_server(Packet packet, const Endpoint& server);

  /// Rewrites a server reply so it appears to come from the virtual service
  /// (NAT reverse path).
  static Packet rewrite_to_client(Packet packet, const Endpoint& vip,
                                  const Endpoint& client);

  /// Last server that served this (client endpoint, vip) pair, if any — the
  /// affinity hint consulted when admitting a *new* connection. Keyed by the
  /// full client endpoint: one host:port is one end-user session (SSL-style
  /// persistence), while different users on the same machine still spread
  /// across servers.
  std::optional<Endpoint> affinity_hint(const Endpoint& client,
                                        const Endpoint& vip) const;

  std::size_t active_connections() const { return table_.size(); }

 private:
  using FlowKey = std::pair<Endpoint, Endpoint>;  // (client, vip)
  /// Endpoints pack into 48 bits each; mixing the packed pair gives a full
  /// 64-bit hash without touching per-field std::hash.
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& key) const {
      const auto pack = [](const Endpoint& ep) {
        return (static_cast<std::uint64_t>(ep.host) << 16) | ep.port;
      };
      return static_cast<std::size_t>(
          util::hash_combine(util::mix64(pack(key.first)), pack(key.second)));
    }
  };
  /// Flat open-addressing tables (util/flat_map.hpp): the NAT forward path
  /// does one find per packet and one insert/erase per connection, and at
  /// million-client scale the node-based std::map spent the packet budget
  /// chasing tree pointers (micro_flow's BM_FlowTable* pair records the
  /// before/after).
  using FlowMap = util::FlatHashMap<FlowKey, Endpoint, FlowKeyHash>;
  FlowMap table_;
  FlowMap affinity_;
};

}  // namespace sharegrid::l4
