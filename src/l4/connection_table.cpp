#include "l4/connection_table.hpp"

#include <sstream>

#include "audit/invariant_auditor.hpp"

namespace sharegrid::l4 {

std::string to_string(const Endpoint& ep) {
  std::ostringstream os;
  os << "h" << ep.host << ":" << ep.port;
  return os.str();
}

void ConnectionTable::establish(const Endpoint& client, const Endpoint& vip,
                                const Endpoint& server) {
  table_[{client, vip}] = server;
  affinity_[{client, vip}] = server;
  SHAREGRID_AUDIT_HOOK(audit::audit_connection_table(table_, affinity_));
}

std::optional<Endpoint> ConnectionTable::lookup(const Endpoint& client,
                                                const Endpoint& vip) const {
  const auto it = table_.find({client, vip});
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

void ConnectionTable::release(const Endpoint& client, const Endpoint& vip) {
  table_.erase({client, vip});
  SHAREGRID_AUDIT_HOOK(audit::audit_connection_table(table_, affinity_));
}

Packet ConnectionTable::rewrite_to_server(Packet packet,
                                          const Endpoint& server) {
  packet.dst = server;
  return packet;
}

Packet ConnectionTable::rewrite_to_client(Packet packet, const Endpoint& vip,
                                          const Endpoint& client) {
  packet.src = vip;
  packet.dst = client;
  return packet;
}

std::optional<Endpoint> ConnectionTable::affinity_hint(
    const Endpoint& client, const Endpoint& vip) const {
  const auto it = affinity_.find({client, vip});
  if (it == affinity_.end()) return std::nullopt;
  return it->second;
}

}  // namespace sharegrid::l4
