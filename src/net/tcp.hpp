// Minimal RAII TCP sockets plus length-prefixed framing.
//
// Loopback-first by design: the live service and the socket control plane
// exist to demonstrate that the scheduling stack drives real processes (as
// the paper's prototype did), not to be an internet-facing server. The
// loopback constructors are the default path; connect_to()/listen_on() take
// an explicit numeric IPv4 address so a second host can be tested, but the
// coord layer only reaches them behind its allow_nonlocal flag — the
// loopback validation stays on unless a scenario opts out. Reads carry a
// timeout so tests can never hang on a stuck peer.
//
// This is the bottom networking layer (below both `live` and `coord` in the
// include DAG, see tools/analyze/include_graph.hpp): the live L4/L7 services
// and the cross-process snapshot transport share these sockets without the
// control plane having to depend on the data plane.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sharegrid::net {

/// What a read attempt observed. Timeouts and peer closes used to be
/// conflated (both surfaced as an empty string), which made it impossible
/// for callers to tell "slow peer, keep waiting" from "peer gone, give up".
enum class ReadStatus {
  kData,      ///< bytes arrived (ReadResult::data is non-empty)
  kTimedOut,  ///< SO_RCVTIMEO expired with nothing to read; peer still there
  kClosed,    ///< orderly close or a hard socket error; peer is gone
};

/// One read attempt: the bytes (empty unless status == kData) and what the
/// socket reported.
struct ReadResult {
  std::string data;
  ReadStatus status = ReadStatus::kClosed;
};

/// RAII wrapper over a connected or listening TCP socket on 127.0.0.1.
class Socket {
 public:
  Socket() = default;
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Creates a listening socket bound to 127.0.0.1:@p port (0 = ephemeral).
  static Socket listen_on_loopback(std::uint16_t port = 0, int backlog = 16);

  /// Connects to 127.0.0.1:@p port.
  static Socket connect_loopback(std::uint16_t port);

  /// Creates a listening socket bound to the numeric IPv4 address
  /// @p bind_host ("0.0.0.0" to accept from any interface). No DNS.
  static Socket listen_on(const std::string& bind_host, std::uint16_t port,
                          int backlog = 16);

  /// Connects to the numeric IPv4 address @p host ("10.0.0.2"). No DNS —
  /// peers in a sharing fleet are configuration, not names to resolve at
  /// dial time. Throws ContractViolation on a malformed address.
  static Socket connect_to(const std::string& host, std::uint16_t port);

  /// Blocks until a peer connects; the returned socket has the same read
  /// timeout applied. Throws on error or accept timeout.
  Socket accept() const;

  /// Like accept(), but an accept timeout or a shut-down listener yields an
  /// invalid Socket instead of a throw, so background accept loops can poll
  /// a stop flag between attempts. Still throws on unexpected errors.
  Socket try_accept() const;

  /// Port this socket is bound to (listening sockets).
  std::uint16_t local_port() const;

  /// Reads until the HTTP header terminator (blank line) or EOF; returns
  /// everything read. Empty result means the peer closed immediately or the
  /// read timed out. Capped at 64 KiB.
  std::string read_http_head() const;

  /// Reads whatever is available (up to 16 KiB). The status disambiguates
  /// an empty result: kTimedOut means the peer is merely slow, kClosed
  /// means it is gone. For protocol-agnostic relaying and frame pumps.
  ReadResult read_some() const;

  /// Writes the whole buffer, retrying on EINTR and short writes (throws
  /// ContractViolation on a hard error).
  void write_all(std::string_view data) const;

  /// Writes a u32 little-endian length prefix followed by @p payload.
  /// The receiving side reassembles with FrameReader.
  void write_frame(std::string_view payload) const;

  /// Overrides the default 5 s receive timeout (also paces accept() on
  /// listening sockets). Tests use tight timeouts to exercise the
  /// stalled-peer paths without multi-second waits.
  void set_read_timeout_ms(int timeout_ms) const;

  /// Disables further sends and receives without releasing the fd: any
  /// thread blocked in recv()/accept() on this socket wakes up and observes
  /// kClosed. This is how owners stop background reader threads; close()
  /// alone must not be called while another thread reads the same fd.
  void shutdown() const;

  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  explicit Socket(int fd) : fd_(fd) {}
  static void set_read_timeout(int fd);

  int fd_ = -1;
};

/// Incremental decoder for the u32-length-prefixed frames produced by
/// Socket::write_frame. Feed it whatever read_some() returns — TCP is free
/// to dribble a frame one byte at a time or to coalesce several — and pull
/// complete frames out with next().
class FrameReader {
 public:
  /// @p max_frame_bytes guards against a hostile or corrupt length prefix
  /// committing us to buffering gigabytes; an over-limit prefix surfaces as
  /// kOversized and the connection should be dropped.
  explicit FrameReader(std::size_t max_frame_bytes = 1 << 20)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(std::string_view bytes) { buffer_.append(bytes); }

  enum class Event {
    kFrame,     ///< *frame holds one complete payload (prefix stripped)
    kNeedMore,  ///< partial prefix or partial payload; feed() more bytes
    kOversized, ///< length prefix exceeds the cap; abandon the connection
  };

  /// Extracts the next complete frame if one is buffered. kOversized is
  /// sticky: the stream is unframeable from that point on.
  Event next(std::string* frame);

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  bool oversized_ = false;
};

}  // namespace sharegrid::net
