#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/assert.hpp"

namespace sharegrid::net {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw ContractViolation("tcp: " + what + ": " + std::strerror(errno));
}

/// Numeric IPv4 only — inet_pton, no DNS. Throws on a malformed address so
/// a typo in a peers list fails at configuration time, not as a mysterious
/// connect error.
sockaddr_in numeric_ipv4(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw ContractViolation("tcp: '" + host +
                            "' is not a numeric IPv4 address");
  return addr;
}

/// recv() with the EINTR retry every blocking syscall here needs: a signal
/// delivered mid-read (tests fire SIGALRM on purpose) must not masquerade
/// as a peer close.
ssize_t recv_retry(int fd, char* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0 || errno != EINTR) return n;
  }
}

/// Disable Nagle on connected sockets. Control-plane traffic is tiny
/// latency-sensitive frames, often two back-to-back on one socket (aggregate
/// then next round-start); with Nagle on, the second write stalls ~40 ms
/// behind the peer's delayed ACK, which is longer than a snapshot deadline.
void set_nodelay(int fd) {
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown() const {
  // Failure (e.g. ENOTCONN on an already-reset peer) is harmless: the goal
  // is only to wake any blocked reader, and a dead connection already does.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::set_read_timeout(int fd) {
  timeval tv{};
  tv.tv_sec = 5;  // generous for loopback; prevents test hangs
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void Socket::set_read_timeout_ms(int timeout_ms) const {
  SHAREGRID_EXPECTS(valid());
  SHAREGRID_EXPECTS(timeout_ms > 0);
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

Socket Socket::listen_on_loopback(std::uint16_t port, int backlog) {
  return listen_on("127.0.0.1", port, backlog);
}

Socket Socket::listen_on(const std::string& bind_host, std::uint16_t port,
                         int backlog) {
  sockaddr_in addr = numeric_ipv4(bind_host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    fail("bind");
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    fail("listen");
  }
  set_read_timeout(fd);
  return Socket(fd);
}

Socket Socket::connect_loopback(std::uint16_t port) {
  return connect_to("127.0.0.1", port);
}

Socket Socket::connect_to(const std::string& host, std::uint16_t port) {
  sockaddr_in addr = numeric_ipv4(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    fail("connect");
  }
  set_read_timeout(fd);
  set_nodelay(fd);
  return Socket(fd);
}

Socket Socket::accept() const {
  SHAREGRID_EXPECTS(valid());
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) fail("accept");
  set_read_timeout(fd);
  set_nodelay(fd);
  return Socket(fd);
}

Socket Socket::try_accept() const {
  SHAREGRID_EXPECTS(valid());
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    // EAGAIN/EWOULDBLOCK: the listener's SO_RCVTIMEO expired. EINVAL: the
    // listener was shutdown() to stop an accept loop. Both are expected
    // wake-ups, not errors.
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINVAL)
      return Socket();
    fail("accept");
  }
  set_read_timeout(fd);
  set_nodelay(fd);
  return Socket(fd);
}

std::uint16_t Socket::local_port() const {
  SHAREGRID_EXPECTS(valid());
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    fail("getsockname");
  return ntohs(addr.sin_port);
}

std::string Socket::read_http_head() const {
  SHAREGRID_EXPECTS(valid());
  std::string buffer;
  char chunk[1024];
  while (buffer.size() < 64 * 1024) {
    const ssize_t n = recv_retry(fd_, chunk, sizeof(chunk));
    if (n <= 0) break;  // peer closed, error, or timeout
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.find("\r\n\r\n") != std::string::npos ||
        buffer.find("\n\n") != std::string::npos)
      break;
  }
  return buffer;
}

ReadResult Socket::read_some() const {
  SHAREGRID_EXPECTS(valid());
  char chunk[16 * 1024];
  const ssize_t n = recv_retry(fd_, chunk, sizeof(chunk));
  if (n > 0)
    return {std::string(chunk, static_cast<std::size_t>(n)),
            ReadStatus::kData};
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
    return {{}, ReadStatus::kTimedOut};
  return {{}, ReadStatus::kClosed};  // orderly close or hard error
}

void Socket::write_all(std::string_view data) const {
  SHAREGRID_EXPECTS(valid());
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // interrupted mid-write: retry
    if (n <= 0) fail("send");
    sent += static_cast<std::size_t>(n);
  }
}

void Socket::write_frame(std::string_view payload) const {
  std::string framed;
  framed.reserve(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  framed.push_back(static_cast<char>(len & 0xff));
  framed.push_back(static_cast<char>((len >> 8) & 0xff));
  framed.push_back(static_cast<char>((len >> 16) & 0xff));
  framed.push_back(static_cast<char>((len >> 24) & 0xff));
  framed.append(payload);
  write_all(framed);
}

FrameReader::Event FrameReader::next(std::string* frame) {
  if (oversized_) return Event::kOversized;
  if (buffer_.size() < 4) return Event::kNeedMore;
  const auto byte = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[i]));
  };
  const std::uint32_t len =
      byte(0) | (byte(1) << 8) | (byte(2) << 16) | (byte(3) << 24);
  if (len > max_frame_bytes_) {
    oversized_ = true;  // stream framing is lost for good; caller must drop
    return Event::kOversized;
  }
  if (buffer_.size() < 4 + static_cast<std::size_t>(len))
    return Event::kNeedMore;
  frame->assign(buffer_, 4, len);
  buffer_.erase(0, 4 + static_cast<std::size_t>(len));
  return Event::kFrame;
}

}  // namespace sharegrid::net
