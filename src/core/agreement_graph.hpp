// The agreement graph: who may use whose resources, and by how much (§2.2).
//
// An agreement is a tuple [lb_ij, ub_ij] giving principal j access to
// principal i's resources over a time window: lb is the guaranteed share
// during overload, ub the best-effort ceiling. Unlike classic reservation
// systems, lb resources are not set aside — others may use them while j is
// idle (§2.2); the schedulers in src/sched realize that property.
#pragma once

#include <string>
#include <vector>

#include "core/principal.hpp"
#include "util/matrix.hpp"

namespace sharegrid::core {

/// A direct agreement: `user` may consume between lb and ub (fractions of
/// `owner`'s currency) of owner's resources.
struct Agreement {
  PrincipalId owner = kNoPrincipal;
  PrincipalId user = kNoPrincipal;
  double lower_bound = 0.0;  ///< lb: guaranteed fraction under overload.
  double upper_bound = 0.0;  ///< ub: best-effort ceiling.
};

/// Mutable container of principals and the direct agreements among them.
///
/// Invariants enforced on mutation:
///  - 0 <= lb <= ub <= 1 for every agreement;
///  - no self-agreements;
///  - sum of lower bounds issued by any one principal <= 1 (a principal
///    cannot guarantee away more than all of its currency).
class AgreementGraph {
 public:
  /// Registers a principal; returns its id. Capacity is in requests/second.
  PrincipalId add_principal(std::string name, double capacity);

  /// Creates or replaces the direct agreement owner -> user.
  /// Pass lb = ub = 0 to remove an agreement.
  void set_agreement(PrincipalId owner, PrincipalId user, double lower_bound,
                     double upper_bound);

  std::size_t size() const { return principals_.size(); }
  const Principal& principal(PrincipalId id) const;
  const std::string& name(PrincipalId id) const { return principal(id).name; }
  double capacity(PrincipalId id) const { return principal(id).capacity; }

  /// Total physical capacity across all principals.
  double total_capacity() const;

  /// Adjusts a principal's physical capacity (agreements are interpreted
  /// dynamically, §2.2: changed resource levels flow through to others).
  void set_capacity(PrincipalId id, double capacity);

  double lower_bound(PrincipalId owner, PrincipalId user) const;
  double upper_bound(PrincipalId owner, PrincipalId user) const;

  /// Sum of lower bounds issued by @p owner (the L_i of DESIGN.md §2).
  double issued_lower_bound(PrincipalId owner) const;

  /// All non-trivial agreements (ub > 0).
  std::vector<Agreement> agreements() const;

  /// Looks a principal up by name; kNoPrincipal if absent.
  PrincipalId find(const std::string& name) const;

 private:
  void check_id(PrincipalId id) const;

  std::vector<Principal> principals_;
  Matrix lower_;  // lower_(owner, user)
  Matrix upper_;  // upper_(owner, user)
};

}  // namespace sharegrid::core
