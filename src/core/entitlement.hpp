// Entitlement decomposition: from transfer matrices to access levels and
// per-server entitlements (Figure 5(b) + DESIGN.md D1).
//
// Split out of flow.cpp so the value/capacity bookkeeping — the part the
// invariant auditor checks for exact capacity partition — has its own
// seam: compute_access_levels() runs the path walk, then delegates here to
// turn MT/OT into M/O, MC/OC, and EM/EO.
#pragma once

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"

namespace sharegrid::core {

/// True when the agreement digraph (edges with ub > 0) contains a directed
/// cycle. On acyclic graphs the mandatory entitlement decomposition exactly
/// partitions every server's capacity (sum_i EM(i,k) = V_k); on cyclic
/// graphs value re-enters its source and the partition is only a bound, so
/// the auditor relaxes that check.
bool has_agreement_cycle(const AgreementGraph& graph);

/// Fills the value, access-level, and entitlement fields of @p levels from
/// its already-computed transfer matrices:
///   M_i = sum_j V_j MT(j,i),            O_i = sum_j V_j OT(j,i)
///   MC_i = M_i (1 - L_i),               OC_i = O_i + M_i L_i
///   EM(i,k) = V_k MT(k,i) (1 - L_i),    EO(i,k) = V_k (OT(k,i) + MT(k,i) L_i)
/// Postcondition: each EM row sums to MC_i (the schedulers' mandatory lower
/// bounds stay simultaneously feasible).
void compute_entitlements(const AgreementGraph& graph, AccessLevels& levels);

}  // namespace sharegrid::core
