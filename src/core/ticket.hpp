// Tickets and currencies: the paper's uniform agreement representation (§2.3).
//
// An agreement [lb, ub] from owner A to user B is expressed as a flow of
// tickets denominated in A's currency: a *mandatory* ticket with face value
// lb * face(A) and an *optional* ticket with face value (ub - lb) * face(A).
// Currency face values are arbitrary (default 100, so ticket faces read as
// percentages); inflating or deflating a currency's face value rescales the
// real share every outstanding ticket conveys — the paper's mechanism for
// adjusting agreements without rewriting them.
//
// TicketLedger is the issue-side view; it round-trips with AgreementGraph so
// systems can be specified in whichever form is more natural.
#pragma once

#include <vector>

#include "core/agreement_graph.hpp"
#include "core/principal.hpp"

namespace sharegrid::core {

/// Ticket flavour: mandatory backs the agreement lower bound, optional the
/// (ub - lb) best-effort band.
enum class TicketKind { kMandatory, kOptional };

/// A transfer of rights from issuer to holder, denominated in the issuer's
/// currency.
struct Ticket {
  TicketKind kind = TicketKind::kMandatory;
  PrincipalId issuer = kNoPrincipal;
  PrincipalId holder = kNoPrincipal;
  double face_value = 0.0;
};

/// Issue-side ledger: per-principal currency face values plus the set of
/// outstanding tickets.
class TicketLedger {
 public:
  /// Builds the ledger equivalent of @p graph with every currency at face
  /// value @p default_face.
  static TicketLedger from_agreements(const AgreementGraph& graph,
                                      double default_face = 100.0);

  /// Registers a currency for a principal. Face value must be positive.
  void set_currency(PrincipalId owner, double face_value);

  double face_value(PrincipalId owner) const;

  /// Issues a ticket; face value is in units of the issuer's currency and the
  /// issuer's outstanding mandatory faces must not exceed its currency face.
  void issue(TicketKind kind, PrincipalId issuer, PrincipalId holder,
             double face_value);

  const std::vector<Ticket>& tickets() const { return tickets_; }

  /// Fraction of the issuer's currency a ticket conveys (face / currency
  /// face) — the normalized form used in flow computations.
  double fraction(const Ticket& ticket) const;

  /// Reconstructs the equivalent [lb, ub] agreement graph over the given
  /// principals (capacities are copied from @p principals).
  AgreementGraph to_agreements(const std::vector<Principal>& principals) const;

  /// Rescales a currency's face value in place; outstanding ticket faces are
  /// unchanged, so every holder's fractional share moves by old/new — the
  /// inflation/deflation lever of §2.3.
  void reissue_currency(PrincipalId owner, double new_face_value);

 private:
  std::vector<double> faces_;  // indexed by PrincipalId; 0 = unregistered
  std::vector<Ticket> tickets_;
};

}  // namespace sharegrid::core
