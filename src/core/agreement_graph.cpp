#include "core/agreement_graph.hpp"

#include <utility>

#include "util/assert.hpp"

namespace sharegrid::core {

PrincipalId AgreementGraph::add_principal(std::string name, double capacity) {
  SHAREGRID_EXPECTS(capacity >= 0.0);
  SHAREGRID_EXPECTS(find(name) == kNoPrincipal);
  const PrincipalId id = principals_.size();
  principals_.push_back({std::move(name), capacity});

  // Grow the agreement matrices, preserving existing entries.
  Matrix lower(id + 1, id + 1, 0.0);
  Matrix upper(id + 1, id + 1, 0.0);
  for (std::size_t i = 0; i < id; ++i) {
    for (std::size_t j = 0; j < id; ++j) {
      lower(i, j) = lower_(i, j);
      upper(i, j) = upper_(i, j);
    }
  }
  lower_ = std::move(lower);
  upper_ = std::move(upper);
  return id;
}

void AgreementGraph::set_agreement(PrincipalId owner, PrincipalId user,
                                   double lower_bound, double upper_bound) {
  check_id(owner);
  check_id(user);
  SHAREGRID_EXPECTS(owner != user);
  SHAREGRID_EXPECTS(lower_bound >= 0.0);
  SHAREGRID_EXPECTS(lower_bound <= upper_bound);
  SHAREGRID_EXPECTS(upper_bound <= 1.0);

  const double issued_without =
      issued_lower_bound(owner) - lower_(owner, user);
  SHAREGRID_EXPECTS(issued_without + lower_bound <= 1.0 + 1e-12);

  lower_(owner, user) = lower_bound;
  upper_(owner, user) = upper_bound;
}

const Principal& AgreementGraph::principal(PrincipalId id) const {
  check_id(id);
  return principals_[id];
}

double AgreementGraph::total_capacity() const {
  double total = 0.0;
  for (const auto& p : principals_) total += p.capacity;
  return total;
}

void AgreementGraph::set_capacity(PrincipalId id, double capacity) {
  check_id(id);
  SHAREGRID_EXPECTS(capacity >= 0.0);
  principals_[id].capacity = capacity;
}

double AgreementGraph::lower_bound(PrincipalId owner, PrincipalId user) const {
  check_id(owner);
  check_id(user);
  return lower_(owner, user);
}

double AgreementGraph::upper_bound(PrincipalId owner, PrincipalId user) const {
  check_id(owner);
  check_id(user);
  return upper_(owner, user);
}

double AgreementGraph::issued_lower_bound(PrincipalId owner) const {
  check_id(owner);
  return lower_.row_sum(owner);
}

std::vector<Agreement> AgreementGraph::agreements() const {
  std::vector<Agreement> out;
  for (PrincipalId i = 0; i < size(); ++i) {
    for (PrincipalId j = 0; j < size(); ++j) {
      if (upper_(i, j) > 0.0)
        out.push_back({i, j, lower_(i, j), upper_(i, j)});
    }
  }
  return out;
}

PrincipalId AgreementGraph::find(const std::string& name) const {
  for (PrincipalId i = 0; i < size(); ++i)
    if (principals_[i].name == name) return i;
  return kNoPrincipal;
}

void AgreementGraph::check_id(PrincipalId id) const {
  SHAREGRID_EXPECTS(id < principals_.size());
}

}  // namespace sharegrid::core
