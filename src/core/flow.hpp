// Transitive resource flow analysis (§3.1.1, Formulae 1-4 and Figure 5).
//
// Reduces an arbitrary agreement graph to per-principal access levels:
//
//   MT(j,i) = sum over simple paths j->...->i of  prod(lb along path)
//   OT(j,i) = sum over simple paths of sum over hops r of
//             prod(lb before r) * (ub_r - lb_r) * prod(ub after r)
//
// i.e. mandatory value travels along mandatory tickets; it converts to
// optional value at exactly one optional hop and then flows along agreement
// upper bounds (Formula 2). Paths never repeat nodes (the paper's summation
// constraints k_p != k_q, k != i, j).
//
// From the transfer matrices:
//   raw flows      MI(j,i) = V_j * MT(j,i),   OI(j,i) = V_j * OT(j,i)
//   currency value M_i = V_i + sum_j MI(j,i),  O_i = sum_j OI(j,i)
//   access levels  MC_i = M_i * (1 - L_i),     OC_i = O_i + M_i * L_i
// where L_i is the mandatory fraction i cedes (Figure 5(b): the mandatory
// value excludes resources flowing out; the optional value includes them,
// since i may reclaim shares its users leave idle).
//
// We additionally expose the per-server entitlement decomposition used by the
// LP schedulers (DESIGN.md D1):
//   EM(i,k) = V_k * MT(k,i) * (1 - L_i)   with MT(i,i) = 1
//   EO(i,k) = V_k * (OT(k,i) + MT(k,i) * L_i)
// EM exactly partitions each server's capacity on acyclic graphs
// (sum_i EM(i,k) = V_k), which keeps the schedulers' mandatory lower bounds
// simultaneously feasible; row sums recover MC_i and OC_i.
#pragma once

#include <cstddef>
#include <vector>

#include "core/agreement_graph.hpp"
#include "util/matrix.hpp"

namespace sharegrid::core {

/// Knobs for the path enumeration.
struct FlowOptions {
  /// Maximum number of tickets (edges) on a transitive path; the default
  /// admits all simple paths. Lowering this reproduces the paper's
  /// bounded-length MI^(m)/OI^(m) prefixes.
  std::size_t max_path_length = static_cast<std::size_t>(-1);
  /// Worker threads for the per-source path walks (each source writes a
  /// disjoint row of MT/OT, so the walks are embarrassingly parallel).
  /// 1 = serial (default); 0 = one thread per hardware core.
  std::size_t num_threads = 1;
};

/// Everything the schedulers need, precomputed from an agreement graph.
/// Quasi-static (§3.1.1): recompute only when agreements or capacities
/// change, not per scheduling window.
struct AccessLevels {
  /// Path-transfer matrices, indexed (from, to). Diagonal: MT = 1, OT = 0.
  Matrix mandatory_transfer;  // MT
  Matrix optional_transfer;   // OT

  /// Currency values before discounting outflow: M_i and O_i.
  std::vector<double> mandatory_value;
  std::vector<double> optional_value;

  /// Final per-principal access levels MC_i and OC_i (requests/sec).
  std::vector<double> mandatory_capacity;  // MC
  std::vector<double> optional_capacity;   // OC

  /// Per-server entitlements, indexed (principal i, server owner k).
  Matrix mandatory_entitlement;  // EM
  Matrix optional_entitlement;   // EO

  std::size_t size() const { return mandatory_value.size(); }

  /// Raw transitive flow MI(from,to) = V_from * MT(from,to) (Formula 1).
  double mandatory_flow(PrincipalId from, PrincipalId to,
                        const AgreementGraph& graph) const {
    return graph.capacity(from) * mandatory_transfer(from, to);
  }
  /// Raw transitive flow OI(from,to) = V_from * OT(from,to) (Formula 2).
  double optional_flow(PrincipalId from, PrincipalId to,
                       const AgreementGraph& graph) const {
    return graph.capacity(from) * optional_transfer(from, to);
  }
};

/// Computes access levels for @p graph. Cost is exponential in the number of
/// principals in the worst (dense) case because paths must be simple; the
/// paper notes principal counts are small, and FlowOptions::max_path_length
/// bounds the work for larger graphs.
AccessLevels compute_access_levels(const AgreementGraph& graph,
                                   const FlowOptions& options = {});

}  // namespace sharegrid::core
