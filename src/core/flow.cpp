#include "core/flow.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "core/entitlement.hpp"
#include "util/assert.hpp"

namespace sharegrid::core {
namespace {

/// Depth-first enumeration of simple paths from a fixed source, accumulating
/// mandatory/optional transfer into the (source, reached-node) cells.
class PathWalker {
 public:
  PathWalker(const AgreementGraph& graph, std::size_t max_len, Matrix& mt,
             Matrix& ot)
      : graph_(graph),
        max_len_(max_len),
        mt_(mt),
        ot_(ot),
        visited_(graph.size(), false) {}

  void walk_from(PrincipalId source) {
    source_ = source;
    visited_[source] = true;
    extend(source, /*mandatory=*/1.0, /*optional=*/0.0, /*depth=*/0);
    visited_[source] = false;
  }

 private:
  void extend(PrincipalId node, double mandatory, double optional,
              std::size_t depth) {
    if (depth >= max_len_) return;
    for (PrincipalId next = 0; next < graph_.size(); ++next) {
      if (visited_[next]) continue;
      const double ub = graph_.upper_bound(node, next);
      if (ub <= 0.0) continue;
      const double lb = graph_.lower_bound(node, next);

      // Crossing edge node->next: mandatory value continues along the lb
      // ticket; optional value is what already-optional value carries along
      // ub, plus mandatory value converting at this hop's optional ticket.
      const double next_mandatory = mandatory * lb;
      const double next_optional = optional * ub + mandatory * (ub - lb);
      if (next_mandatory <= 0.0 && next_optional <= 0.0) continue;

      mt_(source_, next) += next_mandatory;
      ot_(source_, next) += next_optional;

      visited_[next] = true;
      extend(next, next_mandatory, next_optional, depth + 1);
      visited_[next] = false;
    }
  }

  const AgreementGraph& graph_;
  std::size_t max_len_;
  Matrix& mt_;
  Matrix& ot_;
  std::vector<bool> visited_;
  PrincipalId source_ = kNoPrincipal;
};

}  // namespace

AccessLevels compute_access_levels(const AgreementGraph& graph,
                                   const FlowOptions& options) {
  const std::size_t n = graph.size();
  AccessLevels out;
  out.mandatory_transfer = Matrix(n, n, 0.0);
  out.optional_transfer = Matrix(n, n, 0.0);

  for (PrincipalId j = 0; j < n; ++j)
    out.mandatory_transfer(j, j) = 1.0;  // a principal's own capacity

  std::size_t workers = options.num_threads == 0
                            ? std::max(1u, std::thread::hardware_concurrency())
                            : options.num_threads;
  workers = std::min(workers, n);
  if (workers <= 1) {
    PathWalker walker(graph, options.max_path_length, out.mandatory_transfer,
                      out.optional_transfer);
    for (PrincipalId j = 0; j < n; ++j) walker.walk_from(j);
  } else {
    // Source j writes only row j of MT/OT, so a static round-robin split of
    // the sources needs no synchronization (each worker gets its own
    // walker; the matrices are shared but rows are disjoint).
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        PathWalker walker(graph, options.max_path_length,
                          out.mandatory_transfer, out.optional_transfer);
        for (PrincipalId j = w; j < n; j += workers) walker.walk_from(j);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  compute_entitlements(graph, out);

  // Full-path bound tolerances: transfer entries are sums over up to n!
  // simple paths, so allow proportionally more accumulated rounding than the
  // auditor's default. The exact capacity partition additionally requires
  // every simple path to be enumerated: truncation (max_path_length < n-1)
  // legitimately drops long-path contributions from the EM columns.
  SHAREGRID_AUDIT_HOOK(audit::audit_access_levels(
      graph, out,
      /*expect_exact_partition=*/!has_agreement_cycle(graph) &&
          (n == 0 || options.max_path_length >= n - 1),
      audit::Tolerance{1e-6, 1e-6}));
  return out;
}

}  // namespace sharegrid::core
