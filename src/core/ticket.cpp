#include "core/ticket.hpp"

#include "util/assert.hpp"

namespace sharegrid::core {
namespace {

/// Sum of mandatory ticket faces issued by @p owner.
double issued_mandatory(const std::vector<Ticket>& tickets,
                        PrincipalId owner) {
  double total = 0.0;
  for (const auto& t : tickets) {
    if (t.issuer == owner && t.kind == TicketKind::kMandatory)
      total += t.face_value;
  }
  return total;
}

}  // namespace

TicketLedger TicketLedger::from_agreements(const AgreementGraph& graph,
                                           double default_face) {
  TicketLedger ledger;
  for (PrincipalId i = 0; i < graph.size(); ++i)
    ledger.set_currency(i, default_face);
  for (const Agreement& a : graph.agreements()) {
    if (a.lower_bound > 0.0)
      ledger.issue(TicketKind::kMandatory, a.owner, a.user,
                   a.lower_bound * default_face);
    if (a.upper_bound > a.lower_bound)
      ledger.issue(TicketKind::kOptional, a.owner, a.user,
                   (a.upper_bound - a.lower_bound) * default_face);
  }
  return ledger;
}

void TicketLedger::set_currency(PrincipalId owner, double face_value) {
  SHAREGRID_EXPECTS(owner != kNoPrincipal);
  SHAREGRID_EXPECTS(face_value > 0.0);
  if (owner >= faces_.size()) faces_.resize(owner + 1, 0.0);
  faces_[owner] = face_value;
}

double TicketLedger::face_value(PrincipalId owner) const {
  SHAREGRID_EXPECTS(owner < faces_.size() && faces_[owner] > 0.0);
  return faces_[owner];
}

void TicketLedger::issue(TicketKind kind, PrincipalId issuer,
                         PrincipalId holder, double face) {
  SHAREGRID_EXPECTS(issuer != holder);
  SHAREGRID_EXPECTS(face > 0.0);
  const double currency_face = face_value(issuer);  // checks registration
  if (kind == TicketKind::kMandatory) {
    SHAREGRID_EXPECTS(issued_mandatory(tickets_, issuer) + face <=
                      currency_face + 1e-9);
  }
  tickets_.push_back({kind, issuer, holder, face});
}

double TicketLedger::fraction(const Ticket& ticket) const {
  return ticket.face_value / face_value(ticket.issuer);
}

AgreementGraph TicketLedger::to_agreements(
    const std::vector<Principal>& principals) const {
  AgreementGraph graph;
  for (const Principal& p : principals) graph.add_principal(p.name, p.capacity);
  SHAREGRID_EXPECTS(principals.size() >= faces_.size());

  // Accumulate per-(issuer, holder) mandatory and optional fractions.
  const std::size_t n = principals.size();
  Matrix lb(n, n, 0.0);
  Matrix extra(n, n, 0.0);
  for (const Ticket& t : tickets_) {
    SHAREGRID_EXPECTS(t.issuer < n && t.holder < n);
    if (t.kind == TicketKind::kMandatory)
      lb(t.issuer, t.holder) += fraction(t);
    else
      extra(t.issuer, t.holder) += fraction(t);
  }
  for (PrincipalId i = 0; i < n; ++i) {
    for (PrincipalId j = 0; j < n; ++j) {
      const double lower = lb(i, j);
      const double upper = lower + extra(i, j);
      if (upper > 0.0) graph.set_agreement(i, j, lower, upper);
    }
  }
  return graph;
}

void TicketLedger::reissue_currency(PrincipalId owner, double new_face_value) {
  face_value(owner);  // validate registration
  SHAREGRID_EXPECTS(new_face_value > 0.0);
  faces_[owner] = new_face_value;
}

}  // namespace sharegrid::core
