// Principals: the parties to resource sharing agreements (§2).
//
// A principal owns physical "rate resources" (§2: CPU share, bandwidth,
// server transaction rate) expressed as an aggregate capacity scaled in
// requests per second, i.e. already normalized by the average per-request
// requirement as the paper assumes.
#pragma once

#include <cstddef>
#include <string>

namespace sharegrid::core {

/// Index of a principal within an AgreementGraph.
using PrincipalId = std::size_t;

/// Sentinel for "no principal".
inline constexpr PrincipalId kNoPrincipal = static_cast<PrincipalId>(-1);

/// A named party owning `capacity` units/second of physical resource.
/// Principals with zero capacity are pure consumers (like C in the paper's
/// Figure 3 example).
struct Principal {
  std::string name;
  double capacity = 0.0;
};

}  // namespace sharegrid::core
