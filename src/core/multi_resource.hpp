// Multiple resource types (§3.1.1: "In case of multiple resource types,
// above quantities should be represented as vectors").
//
// Agreements stay scalar fractions — a [lb, ub] contract covers the same
// share of *every* resource the owner holds (CPU, bandwidth, transaction
// rate, ...). Physical capacities become per-resource vectors, so the flow
// analysis runs once per resource dimension, and a request class consuming a
// known amount of each resource admits at the *bottleneck* rate across
// dimensions.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "util/matrix.hpp"

namespace sharegrid::core {

/// Access levels across several resource dimensions.
class MultiResourceLevels {
 public:
  /// @param graph       agreement structure; its scalar capacities are
  ///                    ignored in favour of @p capacities.
  /// @param names       resource dimension names, e.g. {"cpu", "net"}.
  /// @param capacities  (principal, resource) physical capacity matrix in
  ///                    units/second of each resource.
  static MultiResourceLevels compute(const AgreementGraph& graph,
                                     std::vector<std::string> names,
                                     const Matrix& capacities,
                                     const FlowOptions& options = {});

  std::size_t resource_count() const { return names_.size(); }
  std::size_t principal_count() const { return principals_; }
  const std::string& resource_name(std::size_t r) const;

  /// Per-resource access levels (same structure as the scalar analysis).
  const AccessLevels& resource(std::size_t r) const;

  /// Highest request rate principal @p i is *guaranteed* for a request
  /// class consuming @p demand_per_resource units of each resource per
  /// request: min over resources of MC_i[r] / demand[r] (dimensions with
  /// zero demand don't constrain).
  double mandatory_rate(PrincipalId i,
                        std::span<const double> demand_per_resource) const;

  /// Best-effort ceiling for the same request class:
  /// min over resources of (MC_i[r] + OC_i[r]) / demand[r].
  double best_effort_rate(PrincipalId i,
                          std::span<const double> demand_per_resource) const;

  /// Index of the resource that limits @p i's guaranteed rate for the given
  /// request class (the bottleneck dimension).
  std::size_t bottleneck(PrincipalId i,
                         std::span<const double> demand_per_resource) const;

 private:
  std::vector<std::string> names_;
  std::vector<AccessLevels> per_resource_;
  std::size_t principals_ = 0;
};

}  // namespace sharegrid::core
