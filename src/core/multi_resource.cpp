#include "core/multi_resource.hpp"

#include <limits>

#include "util/assert.hpp"

namespace sharegrid::core {
namespace {

/// Shared rate reduction: min over demanded dimensions of level[r]/demand[r].
template <typename LevelFn>
double bottleneck_rate(std::span<const double> demand, std::size_t resources,
                       LevelFn&& level) {
  double rate = std::numeric_limits<double>::infinity();
  bool constrained = false;
  for (std::size_t r = 0; r < resources; ++r) {
    SHAREGRID_EXPECTS(demand[r] >= 0.0);
    if (demand[r] <= 0.0) continue;
    constrained = true;
    rate = std::min(rate, level(r) / demand[r]);
  }
  SHAREGRID_EXPECTS(constrained);  // a request must consume something
  return rate;
}

}  // namespace

MultiResourceLevels MultiResourceLevels::compute(const AgreementGraph& graph,
                                                 std::vector<std::string> names,
                                                 const Matrix& capacities,
                                                 const FlowOptions& options) {
  SHAREGRID_EXPECTS(!names.empty());
  SHAREGRID_EXPECTS(capacities.rows() == graph.size());
  SHAREGRID_EXPECTS(capacities.cols() == names.size());

  MultiResourceLevels out;
  out.names_ = std::move(names);
  out.principals_ = graph.size();
  // One scalar flow analysis per dimension: the agreement fractions are the
  // same, only the physical capacities change.
  AgreementGraph scratch = graph;
  for (std::size_t r = 0; r < out.names_.size(); ++r) {
    for (PrincipalId p = 0; p < graph.size(); ++p)
      scratch.set_capacity(p, capacities(p, r));
    out.per_resource_.push_back(compute_access_levels(scratch, options));
  }
  return out;
}

const std::string& MultiResourceLevels::resource_name(std::size_t r) const {
  SHAREGRID_EXPECTS(r < names_.size());
  return names_[r];
}

const AccessLevels& MultiResourceLevels::resource(std::size_t r) const {
  SHAREGRID_EXPECTS(r < per_resource_.size());
  return per_resource_[r];
}

double MultiResourceLevels::mandatory_rate(
    PrincipalId i, std::span<const double> demand) const {
  SHAREGRID_EXPECTS(i < principals_);
  SHAREGRID_EXPECTS(demand.size() == names_.size());
  return bottleneck_rate(demand, names_.size(), [&](std::size_t r) {
    return per_resource_[r].mandatory_capacity[i];
  });
}

double MultiResourceLevels::best_effort_rate(
    PrincipalId i, std::span<const double> demand) const {
  SHAREGRID_EXPECTS(i < principals_);
  SHAREGRID_EXPECTS(demand.size() == names_.size());
  return bottleneck_rate(demand, names_.size(), [&](std::size_t r) {
    return per_resource_[r].mandatory_capacity[i] +
           per_resource_[r].optional_capacity[i];
  });
}

std::size_t MultiResourceLevels::bottleneck(
    PrincipalId i, std::span<const double> demand) const {
  SHAREGRID_EXPECTS(i < principals_);
  SHAREGRID_EXPECTS(demand.size() == names_.size());
  std::size_t best = names_.size();
  double best_rate = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < names_.size(); ++r) {
    if (demand[r] <= 0.0) continue;
    const double rate = per_resource_[r].mandatory_capacity[i] / demand[r];
    if (rate < best_rate) {
      best_rate = rate;
      best = r;
    }
  }
  SHAREGRID_EXPECTS(best < names_.size());
  return best;
}

}  // namespace sharegrid::core
