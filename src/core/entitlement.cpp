#include "core/entitlement.hpp"

#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace sharegrid::core {

bool has_agreement_cycle(const AgreementGraph& graph) {
  const std::size_t n = graph.size();
  // Iterative DFS with colors: 0 = unvisited, 1 = on stack, 2 = done.
  std::vector<int> color(n, 0);
  std::vector<std::pair<PrincipalId, PrincipalId>> stack;  // (node, next edge)
  for (PrincipalId root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    color[root] = 1;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      bool descended = false;
      for (; next < n; ++next) {
        if (graph.upper_bound(node, next) <= 0.0) continue;
        if (color[next] == 1) return true;  // back edge
        if (color[next] == 0) {
          color[next] = 1;
          const PrincipalId child = next;
          ++next;  // resume past this edge when we pop back
          stack.push_back({child, 0});
          descended = true;
          break;
        }
      }
      if (!descended) {
        color[node] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

void compute_entitlements(const AgreementGraph& graph, AccessLevels& levels) {
  const std::size_t n = graph.size();
  SHAREGRID_EXPECTS(levels.mandatory_transfer.rows() == n &&
                    levels.mandatory_transfer.cols() == n);
  SHAREGRID_EXPECTS(levels.optional_transfer.rows() == n &&
                    levels.optional_transfer.cols() == n);

  levels.mandatory_value.assign(n, 0.0);
  levels.optional_value.assign(n, 0.0);
  for (PrincipalId i = 0; i < n; ++i) {
    for (PrincipalId j = 0; j < n; ++j) {
      levels.mandatory_value[i] +=
          graph.capacity(j) * levels.mandatory_transfer(j, i);
      levels.optional_value[i] +=
          graph.capacity(j) * levels.optional_transfer(j, i);
    }
  }

  levels.mandatory_capacity.assign(n, 0.0);
  levels.optional_capacity.assign(n, 0.0);
  levels.mandatory_entitlement = Matrix(n, n, 0.0);
  levels.optional_entitlement = Matrix(n, n, 0.0);
  for (PrincipalId i = 0; i < n; ++i) {
    const double ceded = graph.issued_lower_bound(i);  // L_i
    levels.mandatory_capacity[i] = levels.mandatory_value[i] * (1.0 - ceded);
    levels.optional_capacity[i] =
        levels.optional_value[i] + levels.mandatory_value[i] * ceded;
    for (PrincipalId k = 0; k < n; ++k) {
      const double vk = graph.capacity(k);
      levels.mandatory_entitlement(i, k) =
          vk * levels.mandatory_transfer(k, i) * (1.0 - ceded);
      levels.optional_entitlement(i, k) =
          vk * (levels.optional_transfer(k, i) +
                levels.mandatory_transfer(k, i) * ceded);
    }
  }

  // Postconditions tying the decomposition back to the access levels.
  for (PrincipalId i = 0; i < n; ++i) {
    SHAREGRID_ENSURES(levels.mandatory_capacity[i] >= -1e-9);
    double em_row = 0.0;
    for (PrincipalId k = 0; k < n; ++k)
      em_row += levels.mandatory_entitlement(i, k);
    SHAREGRID_ENSURES(std::abs(em_row - levels.mandatory_capacity[i]) <
                      1e-6 * (1.0 + levels.mandatory_capacity[i]));
  }
}

}  // namespace sharegrid::core
