#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "audit/invariant_auditor.hpp"
#include "util/assert.hpp"
#include "util/matrix.hpp"

namespace sharegrid::lp {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Dense standard-form tableau: maximize c.y subject to Ay = b, y >= 0,
/// with A kept in terms of the current basis (A := B^-1 A, b := B^-1 b).
struct Tableau {
  Matrix a;                       // m x cols
  std::vector<double> rhs;        // m
  std::vector<std::size_t> basis; // m, column index basic in each row
  std::size_t num_structural = 0; // original (shifted) variables
  std::size_t first_artificial = 0;

  std::size_t rows() const { return rhs.size(); }
  std::size_t cols() const { return a.cols(); }
};

/// One simplex pivot: make @p col basic in @p row.
void pivot(Tableau& t, std::size_t row, std::size_t col) {
  const double p = t.a(row, col);
  SHAREGRID_ASSERT(std::abs(p) > 0.0);
  const double inv = 1.0 / p;
  for (std::size_t j = 0; j < t.cols(); ++j) t.a(row, j) *= inv;
  t.rhs[row] *= inv;
  t.a(row, col) = 1.0;  // cancel rounding
  for (std::size_t i = 0; i < t.rows(); ++i) {
    if (i == row) continue;
    const double factor = t.a(i, col);
    if (factor == 0.0) continue;
    for (std::size_t j = 0; j < t.cols(); ++j)
      t.a(i, j) -= factor * t.a(row, j);
    t.rhs[i] -= factor * t.rhs[row];
    t.a(i, col) = 0.0;
  }
  t.basis[row] = col;
}

/// Reduced costs d_j = c_j - sum_i c_basis[i] * a[i][j] for all columns.
std::vector<double> reduced_costs(const Tableau& t,
                                  const std::vector<double>& costs) {
  std::vector<double> d = costs;
  for (std::size_t i = 0; i < t.rows(); ++i) {
    const double cb = costs[t.basis[i]];
    if (cb == 0.0) continue;
    const double* row = t.a.row(i);
    for (std::size_t j = 0; j < t.cols(); ++j) d[j] -= cb * row[j];
  }
  return d;
}

double objective_value(const Tableau& t, const std::vector<double>& costs) {
  double z = 0.0;
  for (std::size_t i = 0; i < t.rows(); ++i)
    z += costs[t.basis[i]] * t.rhs[i];
  return z;
}

enum class PhaseResult { kOptimal, kUnbounded, kIterationLimit };

/// Runs primal simplex to optimality for the given cost vector (maximize).
/// Columns at or beyond @p col_limit never enter the basis (used to lock out
/// artificials in phase 2).
PhaseResult run_simplex(Tableau& t, const std::vector<double>& costs,
                        std::size_t col_limit, const SolverOptions& opt) {
  for (std::size_t iter = 0; iter < opt.max_iterations; ++iter) {
    const bool bland = iter >= opt.bland_after;
    const std::vector<double> d = reduced_costs(t, costs);

    // Entering column: Dantzig (steepest reduced cost) or Bland (lowest
    // index) once the iteration budget suggests degeneracy cycling.
    std::size_t enter = kNone;
    double best = opt.tolerance;
    for (std::size_t j = 0; j < col_limit; ++j) {
      if (d[j] <= opt.tolerance) continue;
      if (bland) {
        enter = j;
        break;
      }
      if (d[j] > best) {
        best = d[j];
        enter = j;
      }
    }
    if (enter == kNone) return PhaseResult::kOptimal;

    // Leaving row: exact minimum ratio; exact ties broken by smallest basis
    // index (the lexicographic safeguard that pairs with Bland's rule).
    // The comparisons are deliberately tolerance-free: pivoting on any row
    // whose ratio exceeds the true minimum drives the minimum row's rhs
    // negative by (difference * a(i, enter)), so an absolute tie window is
    // an infeasibility budget that scales with the column magnitude — and a
    // window that follows the accepted ratio can ratchet upward across rows.
    // The ties that matter for anti-cycling (degenerate rows) are exact:
    // rhs 0 divided by any pivot element is exactly 0.
    // A pivot candidate counts as zero only relative to the entering
    // column's largest magnitude. An absolute guard misclassifies genuinely
    // tiny data (1e-8-scale coefficients whose min-ratio row it skips, so
    // the pivot drives that row's rhs negative and the "optimal" point
    // violates the original constraint); cancellation noise, by contrast,
    // is always small relative to the column that produced it.
    double col_max = 0.0;
    for (std::size_t i = 0; i < t.rows(); ++i)
      col_max = std::max(col_max, std::abs(t.a(i, enter)));
    const double drop = opt.tolerance * col_max;

    std::size_t leave = kNone;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < t.rows(); ++i) {
      const double aij = t.a(i, enter);
      if (aij <= drop) continue;
      const double ratio = t.rhs[i] / aij;
      if (leave == kNone || ratio < best_ratio ||
          (ratio == best_ratio && t.basis[i] < t.basis[leave])) {
        best_ratio = ratio;
        leave = i;
      }
    }
    if (leave == kNone) return PhaseResult::kUnbounded;
#if defined(SHAREGRID_AUDIT)
    const double objective_before = bland ? objective_value(t, costs) : 0.0;
#endif
    pivot(t, leave, enter);
    // Tableau coherence after every pivot, plus the Bland anti-cycling
    // guarantee (objective never regresses once Bland pricing is active).
    SHAREGRID_AUDIT_HOOK(audit::audit_simplex_basis(t.a, t.rhs, t.basis,
                                                    /*tol=*/1e-6));
    SHAREGRID_AUDIT_HOOK(if (bland) audit::audit_bland_progress(
                             objective_before, objective_value(t, costs),
                             /*tol=*/1e-6));
  }
  return PhaseResult::kIterationLimit;
}

}  // namespace

Solution solve(const Problem& problem, const SolverOptions& options) {
  const std::size_t n = problem.num_vars();
  const auto& lo = problem.lower_bounds();
  const auto& hi = problem.upper_bounds();
  for (std::size_t j = 0; j < n; ++j)
    SHAREGRID_EXPECTS(std::isfinite(lo[j]));

  // Work in shifted variables y_j = x_j - lo_j >= 0. Finite upper bounds
  // become explicit rows y_j <= hi_j - lo_j.
  std::vector<Constraint> rows = problem.constraints();
  for (std::size_t j = 0; j < n; ++j) {
    if (std::isfinite(hi[j]))
      rows.push_back({{{j, 1.0}}, Relation::kLessEq, hi[j]});
  }

  const std::size_t m = rows.size();

  // Shift RHS by the lower bounds and flip rows to make all RHS >= 0.
  std::vector<double> rhs(m);
  std::vector<Relation> rel(m);
  Matrix dense(m, n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    double shift = 0.0;
    for (const auto& [var, coeff] : rows[i].terms) {
      dense(i, var) += coeff;
      shift += coeff * lo[var];
    }
    rhs[i] = rows[i].rhs - shift;
    rel[i] = rows[i].relation;
    if (rhs[i] < 0.0) {
      rhs[i] = -rhs[i];
      for (std::size_t j = 0; j < n; ++j) dense(i, j) = -dense(i, j);
      if (rel[i] == Relation::kLessEq)
        rel[i] = Relation::kGreaterEq;
      else if (rel[i] == Relation::kGreaterEq)
        rel[i] = Relation::kLessEq;
    }
  }

  // Column layout: [structural | slack/surplus | artificial].
  std::size_t num_slack = 0;
  for (std::size_t i = 0; i < m; ++i)
    if (rel[i] != Relation::kEqual) ++num_slack;
  std::size_t num_art = 0;
  for (std::size_t i = 0; i < m; ++i)
    if (rel[i] != Relation::kLessEq) ++num_art;

  Tableau t;
  t.num_structural = n;
  t.first_artificial = n + num_slack;
  t.a = Matrix(m, n + num_slack + num_art, 0.0);
  t.rhs = rhs;
  t.basis.assign(m, kNone);

  std::size_t next_slack = n;
  std::size_t next_art = t.first_artificial;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) t.a(i, j) = dense(i, j);
    switch (rel[i]) {
      case Relation::kLessEq:
        t.a(i, next_slack) = 1.0;
        t.basis[i] = next_slack++;
        break;
      case Relation::kGreaterEq:
        t.a(i, next_slack) = -1.0;
        ++next_slack;
        t.a(i, next_art) = 1.0;
        t.basis[i] = next_art++;
        break;
      case Relation::kEqual:
        t.a(i, next_art) = 1.0;
        t.basis[i] = next_art++;
        break;
    }
  }

  Solution out;
  SHAREGRID_AUDIT_HOOK(audit::audit_simplex_basis(t.a, t.rhs, t.basis,
                                                  /*tol=*/1e-6));

  // Phase 1: drive artificials to zero (maximize -sum of artificials).
  if (num_art > 0) {
    std::vector<double> phase1(t.cols(), 0.0);
    for (std::size_t j = t.first_artificial; j < t.cols(); ++j)
      phase1[j] = -1.0;
    const PhaseResult r = run_simplex(t, phase1, t.cols(), options);
    SHAREGRID_ENSURES(r != PhaseResult::kIterationLimit);
    if (objective_value(t, phase1) < -1e-7) {
      out.status = Status::kInfeasible;
      return out;
    }
    // Pivot zero-level artificials out of the basis where possible so they
    // cannot re-enter through rounding noise in phase 2.
    for (std::size_t i = 0; i < m; ++i) {
      if (t.basis[i] < t.first_artificial) continue;
      bool pivoted = false;
      for (std::size_t j = 0; j < t.first_artificial; ++j) {
        if (std::abs(t.a(i, j)) > 1e-7) {
          pivot(t, i, j);
          pivoted = true;
          break;
        }
      }
      if (!pivoted) {
        // No pivot column: every non-artificial entry is below threshold, so
        // the row reads 0*y ~= 0 — redundant within tolerance. The artificial
        // stays basic at level zero and is locked out of phase 2 pricing, but
        // the sub-threshold residue must be cleared: phase-2 pivots would
        // multiply it by rhs magnitudes (factor * rhs[row] with rhs up to the
        // saturated-demand scale) and silently leak value into the basic
        // artificial, i.e. return kOptimal for a point that violates the
        // original constraint.
        for (std::size_t j = 0; j < t.first_artificial; ++j) t.a(i, j) = 0.0;
        t.rhs[i] = 0.0;
      }
    }
  }

  // Phase 2: the real objective over structural columns only.
  const double sign = problem.sense() == Sense::kMaximize ? 1.0 : -1.0;
  std::vector<double> phase2(t.cols(), 0.0);
  for (std::size_t j = 0; j < n; ++j)
    phase2[j] = sign * problem.objective()[j];
  const PhaseResult r = run_simplex(t, phase2, t.first_artificial, options);
  SHAREGRID_ENSURES(r != PhaseResult::kIterationLimit);
  if (r == PhaseResult::kUnbounded) {
    out.status = Status::kUnbounded;
    return out;
  }

  out.status = Status::kOptimal;
  out.values.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (t.basis[i] < n) out.values[t.basis[i]] = std::max(0.0, t.rhs[i]);
  }
  double objective = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] += lo[j];
    objective += problem.objective()[j] * out.values[j];
  }
  out.objective = objective;
  // The solution handed back must satisfy the *original* problem, not just
  // the internal shifted/standard-form tableau.
  SHAREGRID_AUDIT_HOOK(audit::audit_lp_solution(problem, out,
                                                /*tol=*/1e-5));
  return out;
}

}  // namespace sharegrid::lp
