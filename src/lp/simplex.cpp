// Cold-solve entry point. The actual two-phase simplex machinery —
// standard-form preparation, tableau pivoting, incremental pricing, and the
// warm-start pipeline — lives in lp/solve_context.cpp; a one-shot solve is
// just a SolveContext used once and thrown away.
#include "lp/simplex.hpp"

#include "lp/solve_context.hpp"

namespace sharegrid::lp {

Solution solve(const Problem& problem, const SolverOptions& options) {
  SolveContext context;
  return context.solve(problem, options);
}

}  // namespace sharegrid::lp
