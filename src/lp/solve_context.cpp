// Implementation of the warm-started LP pipeline (lp/solve_context.hpp).
//
// Cold solves run the project's two-phase primal simplex, now with
// incremental reduced-cost maintenance (the eta update d' = d - d_enter *
// pivot_row after each pivot, refreshed from scratch periodically to bound
// drift) and allocation-free raw-pointer inner loops. Warm solves skip
// construction and phase 1 entirely.
//
// Upper bounds are handled *implicitly* (bounded-variable simplex): a
// nonbasic variable is either at its lower bound (shifted value 0) or at its
// upper bound (value u_j = hi_j - lo_j), the ratio test gains a third
// candidate — the entering variable reaching its own opposite bound, a
// "bound flip" that moves it there without any basis change — and the stored
// right-hand side always holds the *values of the basic variables* given the
// current nonbasic positions. Bounds therefore never materialize as tableau
// rows, which roughly halves the row count of the box-constrained scheduler
// programs.
//
// The warm path rests on one invariant: the tableau is always B^-1 * A_std,
// where A_std is the standard-form matrix and B the current basis. The
// columns that start as the identity (one slack or artificial per row)
// therefore always hold B^-1 itself, so for a new window the solver can
//   * form B^-1 * b_new in O(m^2) without storing any factorization, then
//     subtract each nonbasic-at-upper column times its (possibly drifted)
//     bound to recover the basic values,
//   * replace a changed structural column c with B^-1 * a_new_c, and when c
//     is basic restore its unit form with a single repair pivot.
// If the result is primal feasible (every basic value within its bounds) the
// solve re-enters phase 2 from the old optimum; otherwise it falls back to
// the full two-phase method. Phase-1 residue clearing (redundant rows) wipes
// part of the B^-1 image, so such tableaus are never reused (basis_clean
// below).
#include "lp/solve_context.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "util/assert.hpp"
#include "util/matrix.hpp"

namespace sharegrid::lp {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);
/// Incremental reduced costs are recomputed from scratch this often.
constexpr std::size_t kReducedCostRefresh = 64;
/// Warm repair is abandoned when more basic columns than this changed
/// (each repair costs a full pivot; past this a cold solve is cheaper).
std::size_t max_repairs(std::size_t rows) {
  return std::max<std::size_t>(8, rows / 4);
}

/// Dense standard-form tableau: maximize c.y subject to Ay = b,
/// 0 <= y_j <= upper_j, with A kept in terms of the current basis
/// (A := B^-1 A) and rhs holding the basic variables' *values* given every
/// nonbasic variable at its recorded bound (at_upper below).
struct Tableau {
  Matrix a;                        // m x cols
  std::vector<double> rhs;         // m, value of the basic var in each row
  std::vector<std::size_t> basis;  // m, column index basic in each row
  std::vector<double> upper;       // per column; kInfinity when unbounded
  std::vector<std::uint8_t> at_upper;  // nonbasic column rests at its upper
  std::size_t num_structural = 0;  // original (shifted) variables
  std::size_t first_artificial = 0;

  std::size_t rows() const { return rhs.size(); }
  std::size_t cols() const { return a.cols(); }
};

/// Eliminates @p col from every row but @p row and normalizes the pivot row:
/// the matrix half of a simplex pivot. The right-hand side is *not* touched —
/// with bounded variables the basic values move by the ratio-test step
/// length, which the caller applies before the elimination (and the warm
/// repair path recomputes the rhs wholesale afterwards). The loops run on
/// raw row pointers: this is the innermost hot path and the bounds-checked
/// operator() costs two comparisons per element.
void pivot_matrix(Tableau& t, std::size_t row, std::size_t col) {
  const std::size_t cols = t.cols();
  double* pr = t.a.row(row);
  const double p = pr[col];
  SHAREGRID_ASSERT(std::abs(p) > 0.0);
  const double inv = 1.0 / p;
  for (std::size_t j = 0; j < cols; ++j) pr[j] *= inv;
  pr[col] = 1.0;  // cancel rounding
  for (std::size_t i = 0; i < t.rows(); ++i) {
    if (i == row) continue;
    double* ri = t.a.row(i);
    const double factor = ri[col];
    if (factor == 0.0) continue;
    for (std::size_t j = 0; j < cols; ++j) ri[j] -= factor * pr[j];
    ri[col] = 0.0;
  }
  t.basis[row] = col;
}

/// Reduced costs d_j = c_j - sum_i c_basis[i] * a[i][j], from scratch.
/// Independent of the nonbasic bound statuses: those only decide which
/// *sign* of d_j is improving.
void recompute_reduced_costs(const Tableau& t, const std::vector<double>& costs,
                             std::vector<double>& d) {
  d.assign(costs.begin(), costs.end());
  for (std::size_t i = 0; i < t.rows(); ++i) {
    const double cb = costs[t.basis[i]];
    if (cb == 0.0) continue;
    const double* row = t.a.row(i);
    for (std::size_t j = 0; j < d.size(); ++j) d[j] -= cb * row[j];
  }
}

double objective_value(const Tableau& t, const std::vector<double>& costs) {
  double z = 0.0;
  for (std::size_t i = 0; i < t.rows(); ++i)
    z += costs[t.basis[i]] * t.rhs[i];
  // Nonbasic-at-upper variables contribute at their bound.
  for (std::size_t j = 0; j < t.cols(); ++j)
    if (t.at_upper[j] && costs[j] != 0.0) z += costs[j] * t.upper[j];
  return z;
}

enum class PhaseResult { kOptimal, kUnbounded, kIterationLimit };

/// Runs the bounded-variable primal simplex to optimality for the given cost
/// vector (maximize). Columns at or beyond @p col_limit never enter the
/// basis (used to lock out artificials in phase 2). Reduced costs are
/// maintained incrementally in @p d instead of being recomputed over every
/// column each iteration, and @p col is the entering-column gather buffer;
/// both are caller-owned scratch so iterations never allocate.
PhaseResult run_simplex(Tableau& t, const std::vector<double>& costs,
                        std::size_t col_limit, const SolverOptions& opt,
                        std::vector<double>& d, std::vector<double>& col,
                        SolveStats& stats) {
  recompute_reduced_costs(t, costs, d);
  col.resize(t.rows());
  std::size_t since_refresh = 0;
  for (std::size_t iter = 0; iter < opt.max_iterations; ++iter) {
    const bool bland = iter >= opt.bland_after;

    // Entering column: a nonbasic variable improves the objective by rising
    // off its lower bound when d_j > 0, or by dropping off its upper bound
    // when d_j < 0. Dantzig (steepest gain) pricing, or Bland (lowest
    // improving index) once the iteration budget suggests degeneracy
    // cycling. Fixed variables (upper == 0) cannot move and never enter,
    // which also keeps zero-length bound flips out of the anti-cycling
    // argument: every admitted flip travels a strictly positive distance.
    std::size_t enter = kNone;
    double best = opt.tolerance;
    for (std::size_t j = 0; j < col_limit; ++j) {
      const double gain = t.at_upper[j] ? -d[j] : d[j];
      if (gain <= opt.tolerance || t.upper[j] == 0.0) continue;
      if (bland) {
        enter = j;
        break;
      }
      if (gain > best) {
        best = gain;
        enter = j;
      }
    }
    if (enter == kNone) return PhaseResult::kOptimal;
    // Movement direction of the entering variable in shifted space.
    const double dir = t.at_upper[enter] ? -1.0 : 1.0;

    // Gather the entering column once: the ratio test and the column-scale
    // pivot guard both need every entry, and column access in the row-major
    // tableau is strided.
    double col_max = 0.0;
    for (std::size_t i = 0; i < t.rows(); ++i) {
      col[i] = t.a.row(i)[enter];
      col_max = std::max(col_max, std::abs(col[i]));
    }

    // Ratio test over three candidate kinds: a basic variable driven down to
    // its lower bound, a basic variable driven up to a finite upper bound,
    // or the entering variable reaching its own opposite bound (a bound
    // flip — no basis change at all). Exact minimum ratio; exact row ties
    // broken by smallest basis index (the lexicographic safeguard that pairs
    // with Bland's rule), and a row tie against the flip distance keeps the
    // row — in the explicit-row formulation the bound "row" carried a
    // late-numbered slack, so constraint rows always won such ties, and the
    // pivot path (hence the chosen vertex under alternate optima) stays
    // comparable. The comparisons are deliberately tolerance-free: pivoting
    // on any row whose ratio exceeds the true minimum drives the minimum
    // row's basic value out of its bounds by (difference * step). A pivot
    // candidate counts as zero only relative to the entering column's
    // largest magnitude — an absolute guard misclassifies genuinely tiny
    // data, while cancellation noise is always small relative to the column
    // that produced it.
    const double drop = opt.tolerance * col_max;
    std::size_t leave = kNone;
    bool leave_at_upper = false;
    double best_ratio = t.upper[enter];  // bound-flip distance (may be inf)
    for (std::size_t i = 0; i < t.rows(); ++i) {
      if (std::abs(col[i]) <= drop) continue;
      const double step = dir * col[i];  // basic value moves by -step per unit
      if (step > 0.0) {
        const double ratio = t.rhs[i] / step;
        if (ratio < best_ratio ||
            (ratio == best_ratio &&
             (leave == kNone || t.basis[i] < t.basis[leave]))) {
          best_ratio = ratio;
          leave = i;
          leave_at_upper = false;
        }
      } else {
        const double ub = t.upper[t.basis[i]];
        if (!std::isfinite(ub)) continue;
        const double ratio = (ub - t.rhs[i]) / (-step);
        if (ratio < best_ratio ||
            (ratio == best_ratio &&
             (leave == kNone || t.basis[i] < t.basis[leave]))) {
          best_ratio = ratio;
          leave = i;
          leave_at_upper = true;
        }
      }
    }
    if (leave == kNone && !std::isfinite(best_ratio))
      return PhaseResult::kUnbounded;

#if defined(SHAREGRID_AUDIT)
    const double objective_before = bland ? objective_value(t, costs) : 0.0;
#endif

    if (leave == kNone) {
      // Bound flip: the entering variable reaches its opposite bound before
      // any basic variable hits one. Move it there — O(m), no pivot, basis
      // and reduced costs unchanged.
      for (std::size_t i = 0; i < t.rows(); ++i)
        t.rhs[i] -= dir * col[i] * best_ratio;
      t.at_upper[enter] ^= 1;
      ++stats.bound_flips;
      SHAREGRID_AUDIT_HOOK(audit::audit_simplex_basis(t.a, t.rhs, t.basis,
                                                      t.upper, /*tol=*/1e-6));
      SHAREGRID_AUDIT_HOOK(if (bland) audit::audit_bland_progress(
                               objective_before, objective_value(t, costs),
                               /*tol=*/1e-6));
      continue;
    }

    // Basis change: move every basic value by its share of the step, file
    // the leaving variable at whichever bound it hit, then eliminate the
    // entering column. Row `leave` afterwards represents the entering
    // variable at its post-step value.
    const std::size_t leaving = t.basis[leave];
    for (std::size_t i = 0; i < t.rows(); ++i)
      t.rhs[i] -= dir * col[i] * best_ratio;
    const double enter_value =
        (t.at_upper[enter] ? t.upper[enter] : 0.0) + dir * best_ratio;
    t.at_upper[leaving] = leave_at_upper ? 1 : 0;
    t.at_upper[enter] = 0;
    pivot_matrix(t, leave, enter);
    t.rhs[leave] = enter_value;
    ++stats.pivots;

    // Incremental pricing: after the pivot, d'_j = d_j - d_enter * r_j with
    // r the normalized pivot row — an O(cols) eta update replacing the
    // O(rows * cols) from-scratch recompute per iteration. Exactness is
    // restored periodically (and checked every pivot in audit builds).
    const double dq = d[enter];
    if (dq != 0.0) {
      const double* pr = t.a.row(leave);
      for (std::size_t j = 0; j < d.size(); ++j) d[j] -= dq * pr[j];
    }
    d[enter] = 0.0;
    if (++since_refresh >= kReducedCostRefresh) {
      recompute_reduced_costs(t, costs, d);
      since_refresh = 0;
    }

    // Tableau coherence after every pivot, the incremental-pricing identity,
    // plus the Bland anti-cycling guarantee (objective never regresses once
    // Bland pricing is active).
    SHAREGRID_AUDIT_HOOK(audit::audit_simplex_basis(t.a, t.rhs, t.basis,
                                                    t.upper, /*tol=*/1e-6));
    SHAREGRID_AUDIT_HOOK(audit::audit_reduced_costs(t.a, t.basis, costs, d,
                                                    /*tol=*/1e-6));
    SHAREGRID_AUDIT_HOOK(if (bland) audit::audit_bland_progress(
                             objective_before, objective_value(t, costs),
                             /*tol=*/1e-6));
  }
  return PhaseResult::kIterationLimit;
}

}  // namespace

bool PreparedProblem::layout_matches(const PreparedProblem& other) const {
  return num_vars == other.num_vars && num_rows == other.num_rows &&
         relation == other.relation && flipped == other.flipped &&
         term_var == other.term_var && row_begin == other.row_begin &&
         ub_var == other.ub_var;
}

void prepare(const Problem& problem, PreparedProblem& out) {
  const std::size_t n = problem.num_vars();
  const auto& lo = problem.lower_bounds();
  const auto& hi = problem.upper_bounds();
  for (std::size_t j = 0; j < n; ++j)
    SHAREGRID_EXPECTS(std::isfinite(lo[j]));

  out.num_vars = n;
  out.relation.clear();
  out.flipped.clear();
  out.effective.clear();
  out.term_var.clear();
  out.coeffs.clear();
  out.row_begin.clear();
  out.ub_var.clear();
  out.rhs.clear();
  out.row_begin.push_back(0);

  // Work in shifted variables y_j = x_j - lo_j >= 0; rows with negative
  // shifted RHS are negated so every RHS is >= 0 (the flip is part of the
  // layout signature: a sign change forces a cold solve).
  const auto& cons = problem.constraints();
  for (const Constraint& c : cons) {
    double shift = 0.0;
    const std::size_t first = out.coeffs.size();
    for (const auto& [var, coeff] : c.terms) {
      out.term_var.push_back(static_cast<std::uint32_t>(var));
      out.coeffs.push_back(coeff);
      shift += coeff * lo[var];
    }
    out.row_begin.push_back(static_cast<std::uint32_t>(out.term_var.size()));
    double rhs = c.rhs - shift;
    Relation effective = c.relation;
    const bool flip = rhs < 0.0;
    if (flip) {
      rhs = -rhs;
      for (std::size_t k = first; k < out.coeffs.size(); ++k)
        out.coeffs[k] = -out.coeffs[k];
      if (effective == Relation::kLessEq)
        effective = Relation::kGreaterEq;
      else if (effective == Relation::kGreaterEq)
        effective = Relation::kLessEq;
    }
    out.relation.push_back(c.relation);
    out.flipped.push_back(flip ? 1 : 0);
    out.effective.push_back(effective);
    out.rhs.push_back(rhs);
  }
  out.num_rows = out.rhs.size();

  // Upper bounds stay implicit: the ratio test enforces y_j <= hi_j - lo_j
  // directly, so no rows are emitted. The finite/infinite pattern is layout
  // (a bound crossing to/from kInfinity must miss the warm cache); the
  // finite widths are data and free to drift between windows.
  out.upper.assign(n, kInfinity);
  for (std::size_t j = 0; j < n; ++j) {
    if (!std::isfinite(hi[j])) continue;
    out.ub_var.push_back(static_cast<std::uint32_t>(j));
    out.upper[j] = hi[j] - lo[j];
  }

  // Column layout: [structural | slack/surplus | artificial], assigned in
  // row order.
  out.slack_col.clear();
  out.art_col.clear();
  out.unit_col.clear();
  out.slack_sign.clear();
  std::size_t num_slack = 0;
  std::size_t num_art = 0;
  for (std::size_t i = 0; i < out.num_rows; ++i) {
    if (out.effective[i] != Relation::kEqual) ++num_slack;
    if (out.effective[i] != Relation::kLessEq) ++num_art;
  }
  out.num_slack = num_slack;
  out.num_artificial = num_art;
  out.first_artificial = n + num_slack;
  out.cols = n + num_slack + num_art;
  std::uint32_t next_slack = static_cast<std::uint32_t>(n);
  std::uint32_t next_art = static_cast<std::uint32_t>(out.first_artificial);
  for (std::size_t i = 0; i < out.num_rows; ++i) {
    const Relation effective = out.effective[i];
    std::uint32_t slack = kNoColumn;
    std::uint32_t art = kNoColumn;
    double sign = 0.0;
    switch (effective) {
      case Relation::kLessEq:
        slack = next_slack++;
        sign = 1.0;
        break;
      case Relation::kGreaterEq:
        slack = next_slack++;
        sign = -1.0;
        art = next_art++;
        break;
      case Relation::kEqual:
        art = next_art++;
        break;
    }
    out.slack_col.push_back(slack);
    out.art_col.push_back(art);
    out.slack_sign.push_back(sign);
    out.unit_col.push_back(effective == Relation::kLessEq ? slack : art);
  }

  const double sense_sign = problem.sense() == Sense::kMaximize ? 1.0 : -1.0;
  out.costs.assign(out.cols, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    out.costs[j] = sense_sign * problem.objective()[j];
}

/// Why a warm attempt ended; SolveContext::Impl::run maps each outcome to
/// exactly one stats counter so no failure path can double-count.
enum class WarmOutcome {
  kWarm,            ///< warm solve completed (possibly iteration-limited)
  kTooManyRepairs,  ///< enough basic columns changed that cold is cheaper
  kRepairRejected,  ///< a changed basic column had no safe repair pivot
  kRhsRejected,     ///< new rhs primal infeasible, dual recovery failed
};

struct SolveContext::Impl {
  bool valid = false;        // cached tableau/basis reusable for warm start
  bool basis_clean = false;  // no artificial basic, no redundancy clearing
  std::size_t warm_streak = 0;
  PreparedProblem prep;      // structure the cached tableau was built from
  PreparedProblem incoming;  // scratch: structure of the problem being solved
  Tableau t;
  SolveStats stats;

  // Scratch hoisted out of the solve loops (never reallocated when the
  // problem shape is stable).
  std::vector<double> d;             // reduced costs
  std::vector<double> col;           // entering-column gather
  std::vector<double> phase1_costs;  // -1 on artificials
  std::vector<double> new_rhs;       // B^-1 * b for the warm path
  std::vector<double> repaired;      // B^-1 * a_c for a changed column
  std::vector<std::size_t> row_of;   // column -> basic row (kNone if nonbasic)
  std::vector<std::uint32_t> changed;      // changed structural columns
  std::vector<char> changed_mark;          // dedup for `changed`
  std::vector<std::pair<std::uint32_t, double>> column_entries;

  Solution run(const Problem& problem, const SolverOptions& opt);
  WarmOutcome try_warm(const Problem& problem, const SolverOptions& opt,
                       Solution& out);
  bool dual_recover(const SolverOptions& opt);
  void cold(const Problem& problem, const SolverOptions& opt, Solution& out);
  void extract(const Problem& problem, Solution& out);
  void gather_column(std::uint32_t c);
  void binv_column(std::vector<double>& result) const;
};

/// Collects standard-form column @p c of the incoming problem as sparse
/// (row, value) entries. Duplicate terms for one variable in one row stay
/// separate entries (they accumulate, matching the dense scatter in cold()).
void SolveContext::Impl::gather_column(std::uint32_t c) {
  column_entries.clear();
  for (std::size_t i = 0; i < incoming.num_rows; ++i) {
    for (std::uint32_t k = incoming.row_begin[i]; k < incoming.row_begin[i + 1];
         ++k) {
      if (incoming.term_var[k] == c)
        column_entries.emplace_back(static_cast<std::uint32_t>(i),
                                    incoming.coeffs[k]);
    }
  }
}

/// result = B^-1 * (gathered column), reading B^-1 off the tableau columns
/// that started as the per-row identity (unit_col).
void SolveContext::Impl::binv_column(std::vector<double>& result) const {
  const std::size_t m = prep.num_rows;
  result.assign(m, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const double* row = t.a.row(r);
    double acc = 0.0;
    for (const auto& [i, value] : column_entries)
      acc += row[prep.unit_col[i]] * value;
    result[r] = acc;
  }
}

/// Dual simplex: restores primal feasibility of the cached basis after an
/// RHS or bound change, preserving dual feasibility (reduced costs <= 0 on
/// at-lower columns, >= 0 on at-upper columns) so the follow-up primal
/// phase 2 terminates in few — typically zero — pivots. A basic variable may
/// now violate either bound: one below its lower bound leaves *at* the lower
/// bound, one above a finite upper leaves at the upper, and the entering
/// ratio test runs over the correspondingly signed row. Returns false when
/// the basis is not dual feasible for the new costs (the objective moved),
/// when a violated row has no admissible entering column (the new program
/// may be genuinely infeasible — let the cold solve decide), or when the
/// pivot budget runs out; callers then fall back to the full two-phase
/// method. Precondition: t reflects the *new* problem's columns, bounds, and
/// basic values (possibly out of bounds).
bool SolveContext::Impl::dual_recover(const SolverOptions& opt) {
  const std::size_t m = prep.num_rows;
  const std::size_t limit = prep.first_artificial;
  recompute_reduced_costs(t, prep.costs, d);
  for (std::size_t j = 0; j < limit; ++j) {
    // Fixed variables (upper == 0) can never move off their bound, so their
    // reduced cost carries no dual-feasibility information — primal pricing
    // skips them for the same reason. The scheduler programs are full of
    // them (zero-width [0, 0] boxes for principal pairs with no agreement).
    if (t.upper[j] == 0.0) continue;
    if (t.at_upper[j] ? d[j] < -opt.tolerance : d[j] > opt.tolerance)
      return false;
  }

  const std::size_t budget = std::max<std::size_t>(32, 4 * m);
  for (std::size_t iter = 0; iter < budget; ++iter) {
    // Leaving row: largest bound violation (tolerance scaled to the data).
    double scale = 1.0;
    for (std::size_t i = 0; i < m; ++i)
      scale = std::max(scale, std::abs(t.rhs[i]));
    const double feas_tol = opt.tolerance * scale;
    std::size_t leave = kNone;
    bool above_upper = false;
    double worst = feas_tol;
    for (std::size_t i = 0; i < m; ++i) {
      if (-t.rhs[i] > worst) {
        worst = -t.rhs[i];
        leave = i;
        above_upper = false;
      }
      const double ub = t.upper[t.basis[i]];
      if (std::isfinite(ub) && t.rhs[i] - ub > worst) {
        worst = t.rhs[i] - ub;
        leave = i;
        above_upper = true;
      }
    }
    if (leave == kNone) return true;  // primal feasible again

    // Entering column: dual ratio test. With the row negated when the basic
    // variable sits *above* its upper bound, admissible columns are those
    // whose movement off their own bound raises (case below-lower) or lowers
    // (case above-upper) the basic value, and the minimized ratio
    // d_j / alpha_j is >= 0 for both bound statuses — the minimum keeps
    // every reduced cost on its dual-feasible side after the pivot. The
    // pivot-size guard mirrors the primal ratio test: candidates are
    // measured against the row's largest magnitude so cancellation noise
    // cannot be chosen.
    const double row_sign = above_upper ? -1.0 : 1.0;
    const double* pr = t.a.row(leave);
    double row_max = 0.0;
    for (std::size_t j = 0; j < limit; ++j)
      row_max = std::max(row_max, std::abs(pr[j]));
    const double drop = opt.tolerance * row_max;
    std::size_t enter = kNone;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < limit; ++j) {
      if (j == t.basis[leave] || t.upper[j] == 0.0) continue;
      const double alpha = row_sign * pr[j];
      if (t.at_upper[j] ? alpha <= drop : alpha >= -drop) continue;
      const double ratio = d[j] / alpha;
      // Strict < keeps the lowest-index column on exact ties (Bland-style),
      // and the budget bounds any residual degenerate cycling.
      if (ratio < best_ratio) {
        best_ratio = ratio;
        enter = j;
      }
    }
    if (enter == kNone) return false;

    // The leaving variable lands exactly on the bound it violated; every
    // other basic value moves by its share of the entering step.
    const std::size_t leaving = t.basis[leave];
    const double target = above_upper ? t.upper[leaving] : 0.0;
    const double dir = t.at_upper[enter] ? -1.0 : 1.0;
    const double step = (t.rhs[leave] - target) / (pr[enter] * dir);
    for (std::size_t i = 0; i < m; ++i) col[i] = t.a.row(i)[enter];
    for (std::size_t i = 0; i < m; ++i) t.rhs[i] -= dir * col[i] * step;
    const double enter_value =
        (t.at_upper[enter] ? t.upper[enter] : 0.0) + dir * step;
    t.at_upper[leaving] = above_upper ? 1 : 0;
    t.at_upper[enter] = 0;
    const double dq = d[enter];
    pivot_matrix(t, leave, enter);
    t.rhs[leave] = enter_value;
    ++stats.pivots;
    if (dq != 0.0) {
      const double* prow = t.a.row(leave);
      for (std::size_t j = 0; j < d.size(); ++j) d[j] -= dq * prow[j];
    }
    d[enter] = 0.0;
    // The basis stays coherent throughout (unit columns, maintained d);
    // basic values may sit outside their bounds until recovery completes,
    // so the full warm-entry audit runs only after this loop returns.
    SHAREGRID_AUDIT_HOOK(audit::audit_reduced_costs(t.a, t.basis, prep.costs,
                                                    d, /*tol=*/1e-6));
  }
  return false;
}

WarmOutcome SolveContext::Impl::try_warm(const Problem& problem,
                                         const SolverOptions& opt,
                                         Solution& out) {
  const std::size_t m = prep.num_rows;
  const std::size_t n = prep.num_vars;

  // Changed structural columns (exact coefficient compare). For the
  // schedulers this is empty or just the theta column, whose coefficients
  // carry the demand.
  changed.clear();
  changed_mark.assign(n, 0);
  for (std::size_t k = 0; k < prep.coeffs.size(); ++k) {
    if (incoming.coeffs[k] == prep.coeffs[k]) continue;
    const std::uint32_t c = prep.term_var[k];
    if (changed_mark[c] == 0) {
      changed_mark[c] = 1;
      changed.push_back(c);
    }
  }

  row_of.assign(prep.cols, kNone);
  for (std::size_t r = 0; r < m; ++r) row_of[t.basis[r]] = r;
  std::size_t changed_basic = 0;
  for (const std::uint32_t c : changed)
    if (row_of[c] != kNone) ++changed_basic;
  if (changed_basic > max_repairs(m)) return WarmOutcome::kTooManyRepairs;

  // Repair changed basic columns sequentially: each repair pivot updates
  // the B^-1 image that the next repair reads. A repair replaces column c
  // with B^-1 * a_new_c and re-pivots on its own basic row to restore the
  // unit form — exactly the basis-change rank-1 update, at one pivot each.
  // Basic values are recomputed wholesale below, so the pivots are
  // matrix-only.
  for (const std::uint32_t c : changed) {
    const std::size_t r = row_of[c];
    if (r == kNone) continue;
    gather_column(c);
    binv_column(repaired);
    double col_scale = 0.0;
    for (const double v : repaired) col_scale = std::max(col_scale, std::abs(v));
    if (!(std::abs(repaired[r]) > opt.tolerance * col_scale) ||
        col_scale == 0.0) {
      // Unrepairable within the pivot-size guard; the tableau may already be
      // partially rewritten, so the cache is dead either way.
      valid = false;
      return WarmOutcome::kRepairRejected;
    }
    for (std::size_t rr = 0; rr < m; ++rr) t.a.row(rr)[c] = repaired[rr];
    pivot_matrix(t, r, c);
    ++stats.pivots;
  }
  // Changed nonbasic columns just get rewritten against the final basis.
  for (const std::uint32_t c : changed) {
    if (row_of[c] != kNone) continue;
    gather_column(c);
    binv_column(repaired);
    for (std::size_t rr = 0; rr < m; ++rr) t.a.row(rr)[c] = repaired[rr];
  }

  // Refresh the (possibly drifted) finite bound widths; the finite pattern
  // is layout-checked, so only values move here. A nonbasic-at-upper
  // variable simply tracks its new bound.
  for (std::size_t j = 0; j < n; ++j) t.upper[j] = incoming.upper[j];

  // New basic values: rhs = B^-1 * b_new minus every nonbasic-at-upper
  // column (already expressed through B^-1 in the tableau) times its bound.
  new_rhs.assign(m, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const double* row = t.a.row(r);
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i)
      acc += row[prep.unit_col[i]] * incoming.rhs[i];
    new_rhs[r] = acc;
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (!t.at_upper[j]) continue;
    const double u = t.upper[j];
    if (u == 0.0) continue;
    for (std::size_t r = 0; r < m; ++r) new_rhs[r] -= t.a.row(r)[j] * u;
  }
  double scale = 0.0;
  for (std::size_t r = 0; r < m; ++r)
    scale = std::max(scale, std::abs(new_rhs[r]));
  const double feas_tol = opt.tolerance * (1.0 + scale);
  bool primal_infeasible = false;
  for (std::size_t r = 0; r < m; ++r) {
    if (new_rhs[r] < -feas_tol) primal_infeasible = true;
    const double ub = t.upper[t.basis[r]];
    if (std::isfinite(ub) && new_rhs[r] > ub + feas_tol)
      primal_infeasible = true;
  }
  t.rhs = new_rhs;

  // Commit: the tableau now reflects the incoming problem's data.
  std::swap(prep, incoming);

  if (primal_infeasible) {
    // The cached basis is primal infeasible for this window's right-hand
    // side or bounds. The previous optimum is still *dual* feasible whenever
    // the objective did not move (true for every scheduler stage: the costs
    // are structural), so a few dual simplex pivots usually restore primal
    // feasibility far cheaper than a cold phase 1+2. Only when that also
    // fails does the solve fall back to phase 1.
    if (!dual_recover(opt)) {
      valid = false;
      std::swap(prep, incoming);  // cold() expects the new data in incoming
      return WarmOutcome::kRhsRejected;
    }
    ++stats.dual_recoveries;
  }
  for (std::size_t r = 0; r < m; ++r) {
    t.rhs[r] = std::max(0.0, t.rhs[r]);
    const double ub = t.upper[t.basis[r]];
    if (std::isfinite(ub)) t.rhs[r] = std::min(t.rhs[r], ub);
  }
  SHAREGRID_AUDIT_HOOK(audit::audit_warm_start_entry(
      t.a, t.rhs, t.basis, t.upper, prep.first_artificial, /*tol=*/1e-6));

  ++warm_streak;
  const PhaseResult r = run_simplex(t, prep.costs, prep.first_artificial, opt,
                                    d, col, stats);
  if (r == PhaseResult::kIterationLimit) {
    out.status = Status::kIterationLimit;
    valid = false;
    return WarmOutcome::kWarm;
  }
  if (r == PhaseResult::kUnbounded) {
    out.status = Status::kUnbounded;
    valid = false;
    return WarmOutcome::kWarm;
  }
  extract(problem, out);
  out.warm_started = true;
  return WarmOutcome::kWarm;
}

void SolveContext::Impl::cold(const Problem& problem, const SolverOptions& opt,
                              Solution& out) {
  std::swap(prep, incoming);
  valid = false;
  basis_clean = false;
  warm_streak = 0;

  const std::size_t n = prep.num_vars;
  const std::size_t m = prep.num_rows;
  t.num_structural = n;
  t.first_artificial = prep.first_artificial;
  t.a.assign(m, prep.cols, 0.0);
  t.rhs = prep.rhs;
  t.basis.assign(m, kNone);
  t.upper.assign(prep.cols, kInfinity);
  for (std::size_t j = 0; j < n; ++j) t.upper[j] = prep.upper[j];
  t.at_upper.assign(prep.cols, 0);
  for (std::size_t i = 0; i < m; ++i) {
    double* row = t.a.row(i);
    for (std::uint32_t k = prep.row_begin[i]; k < prep.row_begin[i + 1]; ++k)
      row[prep.term_var[k]] += prep.coeffs[k];
    if (prep.slack_col[i] != kNoColumn)
      row[prep.slack_col[i]] = prep.slack_sign[i];
    if (prep.art_col[i] != kNoColumn) row[prep.art_col[i]] = 1.0;
    t.basis[i] = prep.unit_col[i];
  }
  SHAREGRID_AUDIT_HOOK(audit::audit_simplex_basis(t.a, t.rhs, t.basis,
                                                  t.upper, /*tol=*/1e-6));

  // Phase 1: drive artificials to zero (maximize -sum of artificials).
  bool clean = true;
  if (prep.num_artificial > 0) {
    phase1_costs.assign(prep.cols, 0.0);
    for (std::size_t j = prep.first_artificial; j < prep.cols; ++j)
      phase1_costs[j] = -1.0;
    const PhaseResult r =
        run_simplex(t, phase1_costs, prep.cols, opt, d, col, stats);
    if (r == PhaseResult::kIterationLimit) {
      out.status = Status::kIterationLimit;
      return;
    }
    if (objective_value(t, phase1_costs) < -1e-7) {
      out.status = Status::kInfeasible;
      return;
    }
    // Pivot zero-level artificials out of the basis where possible so they
    // cannot re-enter through rounding noise in phase 2.
    for (std::size_t i = 0; i < m; ++i) {
      if (t.basis[i] < prep.first_artificial) continue;
      bool pivoted = false;
      for (std::size_t j = 0; j < prep.first_artificial; ++j) {
        const double p = t.a.row(i)[j];
        if (std::abs(p) > 1e-7) {
          // Swap the zero-level artificial for column j: the artificial
          // leaves at 0, so the step length is the (tiny) residual level
          // over the pivot element, applied with the same bounded-pivot
          // mechanics as the ratio test — j may be nonbasic at either
          // bound, and enters at (its bound) + dir * step.
          const double dir = t.at_upper[j] ? -1.0 : 1.0;
          const double step = t.rhs[i] / (dir * p);
          for (std::size_t rr = 0; rr < m; ++rr) col[rr] = t.a.row(rr)[j];
          for (std::size_t rr = 0; rr < m; ++rr)
            t.rhs[rr] -= dir * col[rr] * step;
          const double enter_value =
              (t.at_upper[j] ? t.upper[j] : 0.0) + dir * step;
          t.at_upper[j] = 0;
          pivot_matrix(t, i, j);
          t.rhs[i] = enter_value;
          ++stats.pivots;
          pivoted = true;
          break;
        }
      }
      if (!pivoted) {
        // No pivot column: every non-artificial entry is below threshold, so
        // the row reads 0*y ~= 0 — redundant within tolerance. The artificial
        // stays basic at level zero and is locked out of phase 2 pricing, but
        // the sub-threshold residue must be cleared: phase-2 pivots would
        // multiply it by rhs magnitudes (factor * rhs[row] with rhs up to the
        // saturated-demand scale) and silently leak value into the basic
        // artificial, i.e. return kOptimal for a point that violates the
        // original constraint. Clearing also wipes this row's B^-1 image, so
        // the tableau is not reusable for warm starts (clean = false).
        double* row = t.a.row(i);
        for (std::size_t j = 0; j < prep.first_artificial; ++j) row[j] = 0.0;
        t.rhs[i] = 0.0;
        clean = false;
      }
    }
  }

  // Phase 2: the real objective over structural columns only.
  const PhaseResult r = run_simplex(t, prep.costs, prep.first_artificial, opt,
                                    d, col, stats);
  if (r == PhaseResult::kIterationLimit) {
    out.status = Status::kIterationLimit;
    return;
  }
  if (r == PhaseResult::kUnbounded) {
    out.status = Status::kUnbounded;
    return;
  }
  extract(problem, out);
  valid = true;
  basis_clean = clean;
}

void SolveContext::Impl::extract(const Problem& problem, Solution& out) {
  const std::size_t n = prep.num_vars;
  out.status = Status::kOptimal;
  out.values.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    if (t.at_upper[j]) out.values[j] = prep.upper[j];
  for (std::size_t i = 0; i < prep.num_rows; ++i) {
    const std::size_t b = t.basis[i];
    if (b >= n) continue;
    double v = std::max(0.0, t.rhs[i]);
    if (std::isfinite(prep.upper[b])) v = std::min(v, prep.upper[b]);
    out.values[b] = v;
  }
  const auto& lo = problem.lower_bounds();
  double objective = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] += lo[j];
    objective += problem.objective()[j] * out.values[j];
  }
  out.objective = objective;
  out.basis = t.basis;
  // The solution handed back must satisfy the *original* problem — warm or
  // cold — not just the internal shifted/standard-form tableau.
  SHAREGRID_AUDIT_HOOK(audit::audit_lp_solution(problem, out,
                                                /*tol=*/1e-5));
}

Solution SolveContext::Impl::run(const Problem& problem,
                                 const SolverOptions& opt) {
  ++stats.solves;
  prepare(problem, incoming);
  Solution out;
  bool warm_done = false;
  // Every counter increments exactly here (one per solve at most), so a
  // failed warm attempt can never double-count across its internal exits.
  if (valid && basis_clean && opt.warm_refresh_interval > 0) {
    if (!prep.layout_matches(incoming)) {
      ++stats.structure_misses;
    } else if (warm_streak >= opt.warm_refresh_interval) {
      ++stats.refreshes;
    } else {
      switch (try_warm(problem, opt, out)) {
        case WarmOutcome::kWarm:
          ++stats.warm_solves;
          warm_done = true;
          break;
        case WarmOutcome::kTooManyRepairs:
          ++stats.structure_misses;
          break;
        case WarmOutcome::kRepairRejected:
          ++stats.repair_rejections;
          break;
        case WarmOutcome::kRhsRejected:
          ++stats.rhs_rejections;
          break;
      }
    }
  }
  if (!warm_done) {
    cold(problem, opt, out);
    ++stats.cold_solves;
  }
  SHAREGRID_AUDIT_HOOK(audit::audit_solve_stats(stats));
  return out;
}

SolveContext::SolveContext() : impl_(std::make_unique<Impl>()) {}
SolveContext::~SolveContext() = default;
SolveContext::SolveContext(SolveContext&&) noexcept = default;
SolveContext& SolveContext::operator=(SolveContext&&) noexcept = default;

Solution SolveContext::solve(const Problem& problem,
                             const SolverOptions& options) {
  return impl_->run(problem, options);
}

void SolveContext::invalidate() { impl_->valid = false; }

const SolveStats& SolveContext::stats() const { return impl_->stats; }

}  // namespace sharegrid::lp
