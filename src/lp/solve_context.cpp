// Implementation of the warm-started revised-simplex pipeline
// (lp/solve_context.hpp).
//
// No tableau is ever formed. The solver keeps the constraint matrix in the
// sparse form built by prepare() (CSC for structural columns, one (row,
// value) pair per slack/artificial singleton) and represents the basis
// inverse as a product-form eta file: one elementary column transformation
// per pivot. The two kernels are
//   FTRAN  v := B^-1 v   — apply the etas forward; used to bring the
//                          entering column into the current basis for the
//                          ratio test, and to recompute basic values from a
//                          right-hand side,
//   BTRAN  u := u B^-1   — apply the etas in reverse; used to form the dual
//                          multipliers for pricing (y = c_B B^-1, then
//                          d_j = c_j - y a_j over sparse columns) and to
//                          read single rows of B^-1 A without materializing
//                          anything.
// Per pivot this costs O(nnz(A) + m * |etas|) against the dense tableau's
// O(m * cols) row elimination — on the schedulers' ~3-nonzeros-per-row
// programs the difference is what lets n grow past ~32 principals inside a
// scheduling window (docs/lp-performance.md has the measured curve).
//
// Each eta stores the FTRAN image of its entering column, so applying it
// performs float-for-float the same elimination the dense engine applied to
// every tableau column: pivot choices, and therefore plans, are preserved.
// The file is rebuilt from the basis columns ("refactorized") every
// SolverOptions::refactor_interval pivots, which bounds both the FTRAN/BTRAN
// cost and accumulated rounding; the basic values are recomputed from
// scratch at the same time and cross-checked against the eta-updated ones in
// SHAREGRID_AUDIT builds (audit_eta_consistency).
//
// Upper bounds are handled *implicitly* (bounded-variable simplex): a
// nonbasic variable is either at its lower bound (shifted value 0) or at its
// upper bound (value u_j = hi_j - lo_j), the ratio test gains a third
// candidate — the entering variable reaching its own opposite bound, a
// "bound flip" that moves it there without any basis change — and the stored
// right-hand side always holds the *values of the basic variables* given the
// current nonbasic positions.
//
// The warm path keeps the previous window's basis and eta file. For a new
// window with matching layout the solver recomputes the basic values by one
// FTRAN of the new right-hand side (minus every nonbasic-at-upper column
// times its bound), repairs each changed *basic* structural column with a
// single extra eta, and re-enters phase 2 directly; changed nonbasic columns
// need no work at all, since nothing stores their basis image — the next
// FTRAN re-derives it from the new matrix. If the new right-hand side leaves
// the basis primal infeasible, dual simplex pivots restore feasibility;
// only when that also fails does the solve fall back to the full two-phase
// method. Phase-1 residue (redundant rows) pins the affected rows — they are
// zeroed out of every column image, exactly like the dense engine's row
// clearing — and such bases are never reused (basis_clean below).
#include "lp/solve_context.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "util/assert.hpp"

namespace sharegrid::lp {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);
/// Warm repair is abandoned when more basic columns than this changed
/// (each repair costs a full pivot; past this a cold solve is cheaper).
std::size_t max_repairs(std::size_t rows) {
  return std::max<std::size_t>(8, rows / 4);
}

/// Product-form basis inverse: B^-1 = E_k^-1 ... E_1^-1 with one eta E per
/// pivot. An eta differs from the identity only in its pivot column, which
/// holds the FTRAN image of the entering column at pivot time; entries store
/// that image's raw values (pivot row excluded, zeros skipped) and the pivot
/// element is kept as its reciprocal. Applying E^-1 then reproduces the
/// dense engine's elimination arithmetic exactly: scale the pivot row by
/// 1/pivot, subtract column-entry times scaled-pivot-row from every other
/// row.
struct EtaFile {
  std::vector<std::uint32_t> pivot_row;   // one per eta
  std::vector<double> inv;                // one per eta: 1 / pivot element
  std::vector<std::size_t> entry_begin;   // per eta, offsets into the arrays
  std::vector<std::uint32_t> entry_row;
  std::vector<double> entry_val;

  std::size_t size() const { return pivot_row.size(); }

  void clear() {
    pivot_row.clear();
    inv.clear();
    entry_begin.assign(1, 0);
    entry_row.clear();
    entry_val.clear();
  }

  /// Appends the eta for a pivot on @p row whose entering column FTRANs to
  /// @p column (pre-elimination image, dense over the rows).
  void push(std::size_t row, const std::vector<double>& column) {
    const double p = column[row];
    SHAREGRID_ASSERT(std::abs(p) > 0.0);
    pivot_row.push_back(static_cast<std::uint32_t>(row));
    inv.push_back(1.0 / p);
    for (std::size_t i = 0; i < column.size(); ++i) {
      if (i == row || column[i] == 0.0) continue;
      entry_row.push_back(static_cast<std::uint32_t>(i));
      entry_val.push_back(column[i]);
    }
    entry_begin.push_back(entry_row.size());
  }

  /// v := B^-1 v — etas applied oldest first.
  void ftran(std::vector<double>& v) const {
    for (std::size_t e = 0; e < size(); ++e) {
      const std::size_t r = pivot_row[e];
      const double vr = v[r] * inv[e];
      v[r] = vr;
      if (vr == 0.0) continue;
      for (std::size_t k = entry_begin[e]; k < entry_begin[e + 1]; ++k)
        v[entry_row[k]] -= entry_val[k] * vr;
    }
  }

  /// u := u B^-1 — etas applied newest first. Only the pivot-row component
  /// changes per eta: u_r := (u_r - sum_i entry_i * u_i) / pivot.
  void btran(std::vector<double>& u) const {
    for (std::size_t e = size(); e-- > 0;) {
      const std::size_t r = pivot_row[e];
      double acc = u[r];
      for (std::size_t k = entry_begin[e]; k < entry_begin[e + 1]; ++k)
        acc -= entry_val[k] * u[entry_row[k]];
      u[r] = acc * inv[e];
    }
  }
};

/// Scatters standard-form column @p c of @p p into @p v (resized and zeroed
/// to the row count). Duplicate CSC entries for one (row, var) accumulate,
/// matching the CSR scatter the dense engine used.
void scatter_column(const PreparedProblem& p, std::size_t c,
                    std::vector<double>& v) {
  v.assign(p.num_rows, 0.0);
  if (c < p.num_vars) {
    for (std::uint32_t k = p.col_begin[c]; k < p.col_begin[c + 1]; ++k)
      v[p.col_row[k]] += p.col_val[k];
  } else {
    v[p.aux_row[c - p.num_vars]] += p.aux_val[c - p.num_vars];
  }
}

/// u . a_c over the sparse standard-form column @p c: one row of B^-1 A (or
/// any other row-vector product) without forming the column.
double column_dot(const PreparedProblem& p, std::size_t c,
                  const std::vector<double>& u) {
  if (c >= p.num_vars)
    return u[p.aux_row[c - p.num_vars]] * p.aux_val[c - p.num_vars];
  double acc = 0.0;
  for (std::uint32_t k = p.col_begin[c]; k < p.col_begin[c + 1]; ++k)
    acc += u[p.col_row[k]] * p.col_val[k];
  return acc;
}

enum class PhaseResult { kOptimal, kUnbounded, kIterationLimit };

}  // namespace

bool PreparedProblem::layout_matches(const PreparedProblem& other) const {
  // term_var/row_begin pin the CSR pattern, which determines the CSC pattern
  // as well, so the column arrays need no separate comparison.
  return num_vars == other.num_vars && num_rows == other.num_rows &&
         relation == other.relation && flipped == other.flipped &&
         term_var == other.term_var && row_begin == other.row_begin &&
         ub_var == other.ub_var;
}

void prepare(const Problem& problem, PreparedProblem& out) {
  const std::size_t n = problem.num_vars();
  const auto& lo = problem.lower_bounds();
  const auto& hi = problem.upper_bounds();
  for (std::size_t j = 0; j < n; ++j)
    SHAREGRID_EXPECTS(std::isfinite(lo[j]));

  out.num_vars = n;
  out.relation.clear();
  out.flipped.clear();
  out.effective.clear();
  out.term_var.clear();
  out.coeffs.clear();
  out.row_begin.clear();
  out.ub_var.clear();
  out.rhs.clear();
  out.row_begin.push_back(0);

  // Work in shifted variables y_j = x_j - lo_j >= 0; rows with negative
  // shifted RHS are negated so every RHS is >= 0 (the flip is part of the
  // layout signature: a sign change forces a cold solve).
  const auto& cons = problem.constraints();
  for (const Constraint& c : cons) {
    double shift = 0.0;
    const std::size_t first = out.coeffs.size();
    for (const auto& [var, coeff] : c.terms) {
      out.term_var.push_back(static_cast<std::uint32_t>(var));
      out.coeffs.push_back(coeff);
      shift += coeff * lo[var];
    }
    out.row_begin.push_back(static_cast<std::uint32_t>(out.term_var.size()));
    double rhs = c.rhs - shift;
    Relation effective = c.relation;
    const bool flip = rhs < 0.0;
    if (flip) {
      rhs = -rhs;
      for (std::size_t k = first; k < out.coeffs.size(); ++k)
        out.coeffs[k] = -out.coeffs[k];
      if (effective == Relation::kLessEq)
        effective = Relation::kGreaterEq;
      else if (effective == Relation::kGreaterEq)
        effective = Relation::kLessEq;
    }
    out.relation.push_back(c.relation);
    out.flipped.push_back(flip ? 1 : 0);
    out.effective.push_back(effective);
    out.rhs.push_back(rhs);
  }
  out.num_rows = out.rhs.size();

  // CSC image of the same terms, in row order within each column (counting
  // sort off the CSR walk; col_begin doubles as the fill cursor and is
  // shifted back afterwards). Rebuilt every prepare because the values carry
  // the flip adjustment; steady-state this only rewrites existing storage.
  out.col_begin.assign(n + 1, 0);
  for (const std::uint32_t var : out.term_var) ++out.col_begin[var + 1];
  for (std::size_t j = 0; j < n; ++j) out.col_begin[j + 1] += out.col_begin[j];
  out.col_row.resize(out.term_var.size());
  out.col_val.resize(out.term_var.size());
  for (std::size_t i = 0; i < out.num_rows; ++i) {
    for (std::uint32_t k = out.row_begin[i]; k < out.row_begin[i + 1]; ++k) {
      const std::uint32_t j = out.term_var[k];
      const std::uint32_t at = out.col_begin[j]++;
      out.col_row[at] = static_cast<std::uint32_t>(i);
      out.col_val[at] = out.coeffs[k];
    }
  }
  for (std::size_t j = n; j > 0; --j) out.col_begin[j] = out.col_begin[j - 1];
  out.col_begin[0] = 0;

  // Upper bounds stay implicit: the ratio test enforces y_j <= hi_j - lo_j
  // directly, so no rows are emitted. The finite/infinite pattern is layout
  // (a bound crossing to/from kInfinity must miss the warm cache); the
  // finite widths are data and free to drift between windows.
  out.upper.assign(n, kInfinity);
  for (std::size_t j = 0; j < n; ++j) {
    if (!std::isfinite(hi[j])) continue;
    out.ub_var.push_back(static_cast<std::uint32_t>(j));
    out.upper[j] = hi[j] - lo[j];
  }

  // Column layout: [structural | slack/surplus | artificial], assigned in
  // row order. Every auxiliary column is a singleton, recorded in
  // aux_row/aux_val so the revised kernels can treat it like a one-entry
  // sparse column.
  out.slack_col.clear();
  out.art_col.clear();
  out.unit_col.clear();
  out.slack_sign.clear();
  std::size_t num_slack = 0;
  std::size_t num_art = 0;
  for (std::size_t i = 0; i < out.num_rows; ++i) {
    if (out.effective[i] != Relation::kEqual) ++num_slack;
    if (out.effective[i] != Relation::kLessEq) ++num_art;
  }
  out.num_slack = num_slack;
  out.num_artificial = num_art;
  out.first_artificial = n + num_slack;
  out.cols = n + num_slack + num_art;
  out.aux_row.assign(num_slack + num_art, 0);
  out.aux_val.assign(num_slack + num_art, 0.0);
  std::uint32_t next_slack = static_cast<std::uint32_t>(n);
  std::uint32_t next_art = static_cast<std::uint32_t>(out.first_artificial);
  for (std::size_t i = 0; i < out.num_rows; ++i) {
    const Relation effective = out.effective[i];
    std::uint32_t slack = kNoColumn;
    std::uint32_t art = kNoColumn;
    double sign = 0.0;
    switch (effective) {
      case Relation::kLessEq:
        slack = next_slack++;
        sign = 1.0;
        break;
      case Relation::kGreaterEq:
        slack = next_slack++;
        sign = -1.0;
        art = next_art++;
        break;
      case Relation::kEqual:
        art = next_art++;
        break;
    }
    if (slack != kNoColumn) {
      out.aux_row[slack - n] = static_cast<std::uint32_t>(i);
      out.aux_val[slack - n] = sign;
    }
    if (art != kNoColumn) {
      out.aux_row[art - n] = static_cast<std::uint32_t>(i);
      out.aux_val[art - n] = 1.0;
    }
    out.slack_col.push_back(slack);
    out.art_col.push_back(art);
    out.slack_sign.push_back(sign);
    out.unit_col.push_back(effective == Relation::kLessEq ? slack : art);
  }

  const double sense_sign = problem.sense() == Sense::kMaximize ? 1.0 : -1.0;
  out.costs.assign(out.cols, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    out.costs[j] = sense_sign * problem.objective()[j];
}

/// Why a warm attempt ended; SolveContext::Impl::run maps each outcome to
/// exactly one stats counter so no failure path can double-count.
enum class WarmOutcome {
  kWarm,            ///< warm solve completed (possibly iteration-limited)
  kTooManyRepairs,  ///< enough basic columns changed that cold is cheaper
  kRepairRejected,  ///< a changed basic column had no safe repair pivot
  kRhsRejected,     ///< new rhs primal infeasible, dual recovery failed
};

struct SolveContext::Impl {
  bool valid = false;        // cached basis/eta file reusable for warm start
  bool basis_clean = false;  // no artificial basic, no pinned rows
  std::size_t warm_streak = 0;
  PreparedProblem prep;      // structure the cached basis was built from
  PreparedProblem incoming;  // scratch: structure of the problem being solved
  SolveStats stats;

  // Basis state (replaces the dense tableau).
  std::vector<std::size_t> basis;       // column basic in each row
  std::vector<double> rhs;              // value of the basic var in each row
  std::vector<double> upper;            // per std-form column; kInfinity = none
  std::vector<std::uint8_t> at_upper;   // nonbasic column rests at its upper
  EtaFile etas;
  std::size_t pivots_since_refactor = 0;
  // Redundant rows discovered after phase 1 (a zero-level artificial with no
  // pivot column) are *pinned*: every FTRAN image is zeroed there, so the
  // row is inert in the ratio test, in future etas, and in the basic values
  // — the sparse equivalent of the dense engine's row clearing, which
  // stopped sub-threshold residue from leaking value into the basic
  // artificial during phase 2. A pinned basis is never warm-reused.
  std::vector<std::uint8_t> pinned_row;
  bool any_pinned = false;

  // Scratch hoisted out of the solve loops (never reallocated when the
  // problem shape is stable).
  std::vector<double> d;             // incrementally-maintained reduced costs
  std::vector<double> col;           // FTRAN image of the entering column
  std::vector<double> rho;           // BTRAN row vector (dual multipliers)
  std::vector<double> pr;            // pivot row values for dual recovery
  std::vector<double> phase1_costs;  // -1 on artificials
  std::vector<double> new_rhs;       // recomputed basic values
  std::vector<double> repaired;      // FTRAN image of a changed column
  std::vector<std::size_t> row_of;   // column -> basic row (kNone if nonbasic)
  std::vector<std::uint32_t> changed;      // changed structural columns
  std::vector<char> changed_mark;          // dedup for `changed`
  // Refactorization scratch: the replacement file is built aside and adopted
  // only on success, so a numerically singular rebuild cannot corrupt the
  // working factorization.
  EtaFile refac_etas;
  std::vector<std::size_t> refac_basis;
  std::vector<std::size_t> refac_order;
  std::vector<std::uint8_t> row_done;
  // Audit-only scratch (touched exclusively under SHAREGRID_AUDIT).
  std::vector<double> audit_col;
  std::vector<double> audit_ref;

  Solution run(const Problem& problem, const SolverOptions& opt);
  WarmOutcome try_warm(const Problem& problem, const SolverOptions& opt,
                       Solution& out);
  bool dual_recover(const SolverOptions& opt);
  void cold(const Problem& problem, const SolverOptions& opt, Solution& out);
  void extract(const Problem& problem, Solution& out);

  PhaseResult run_simplex(const std::vector<double>& costs,
                          std::size_t col_limit, const SolverOptions& opt);
  void ftran_column(std::size_t c, std::vector<double>& v);
  void compute_reduced_costs(const std::vector<double>& costs,
                             std::vector<double>& out_d);
  void price_update(double dq);
  void compute_basic_values(const PreparedProblem& src,
                            std::vector<double>& out_vals);
  void refactorize();
  double objective_value(const std::vector<double>& costs) const;
  void audit_basis_coherence(double tol);
  void audit_pricing_sync(const std::vector<double>& costs, double tol);
};

/// FTRAN of standard-form column @p c through the current eta file, with
/// pinned rows zeroed — the invariant every column image must satisfy so
/// pinned rows stay inert (future eta entries and ratio-test candidates
/// there are all zero, and rhs updates leave the pinned 0 untouched).
void SolveContext::Impl::ftran_column(std::size_t c, std::vector<double>& v) {
  scatter_column(prep, c, v);
  etas.ftran(v);
  if (any_pinned)
    for (std::size_t i = 0; i < v.size(); ++i)
      if (pinned_row[i]) v[i] = 0.0;
}

/// Reduced costs d_j = c_j - y . a_j with y = c_B B^-1 formed by one BTRAN,
/// then one sparse dot per column — O(m * |etas| + nnz(A)) against the dense
/// engine's O(m * cols) row accumulation.
void SolveContext::Impl::compute_reduced_costs(const std::vector<double>& costs,
                                               std::vector<double>& out_d) {
  const std::size_t m = prep.num_rows;
  out_d.assign(costs.begin(), costs.end());
  rho.assign(m, 0.0);
  bool any = false;
  for (std::size_t i = 0; i < m; ++i) {
    const double cb = costs[basis[i]];
    if (cb != 0.0) {
      rho[i] = cb;
      any = true;
    }
  }
  if (!any) return;
  etas.btran(rho);
  for (std::size_t j = 0; j < prep.num_vars; ++j) {
    double acc = 0.0;
    for (std::uint32_t k = prep.col_begin[j]; k < prep.col_begin[j + 1]; ++k)
      acc += rho[prep.col_row[k]] * prep.col_val[k];
    out_d[j] -= acc;
  }
  for (std::size_t j = prep.num_vars; j < prep.cols; ++j)
    out_d[j] -=
        rho[prep.aux_row[j - prep.num_vars]] * prep.aux_val[j - prep.num_vars];
}

/// Incremental pricing after a pivot: d'_j = d_j - d_enter * r_j with r the
/// post-pivot row of the leaving position — read via one BTRAN of its unit
/// vector through the file *including* the just-appended eta, then sparse
/// dots. An O(m * |etas| + nnz) eta update replacing the from-scratch
/// recompute per iteration; exactness is restored at every refactorization
/// (and checked every pivot in audit builds). Precondition: rho holds the
/// BTRAN'd unit vector of the pivot row.
void SolveContext::Impl::price_update(double dq) {
  for (std::size_t j = 0; j < prep.num_vars; ++j) {
    double acc = 0.0;
    for (std::uint32_t k = prep.col_begin[j]; k < prep.col_begin[j + 1]; ++k)
      acc += rho[prep.col_row[k]] * prep.col_val[k];
    d[j] -= dq * acc;
  }
  for (std::size_t j = prep.num_vars; j < prep.cols; ++j)
    d[j] -= dq * rho[prep.aux_row[j - prep.num_vars]] *
            prep.aux_val[j - prep.num_vars];
}

/// out_vals := B^-1 (b - sum over nonbasic-at-upper columns a_j u_j): the
/// basic variables' values given every nonbasic variable at its recorded
/// bound. The subtraction happens in original row space (sparse, before the
/// single FTRAN), so the whole recompute costs one pass over the at-upper
/// columns plus one FTRAN.
void SolveContext::Impl::compute_basic_values(const PreparedProblem& src,
                                              std::vector<double>& out_vals) {
  out_vals = src.rhs;
  for (const std::uint32_t j : src.ub_var) {
    if (!at_upper[j]) continue;
    const double u = upper[j];
    if (u == 0.0) continue;
    for (std::uint32_t k = src.col_begin[j]; k < src.col_begin[j + 1]; ++k)
      out_vals[src.col_row[k]] -= src.col_val[k] * u;
  }
  etas.ftran(out_vals);
  if (any_pinned)
    for (std::size_t i = 0; i < out_vals.size(); ++i)
      if (pinned_row[i]) out_vals[i] = 0.0;
}

double SolveContext::Impl::objective_value(
    const std::vector<double>& costs) const {
  double z = 0.0;
  for (std::size_t i = 0; i < prep.num_rows; ++i)
    z += costs[basis[i]] * rhs[i];
  // Nonbasic-at-upper variables contribute at their bound.
  for (std::size_t j = 0; j < prep.cols; ++j)
    if (at_upper[j] && costs[j] != 0.0) z += costs[j] * upper[j];
  return z;
}

/// Audit: the FTRAN image of every basic column must be its row's unit
/// vector — the revised-simplex statement of "basic columns are eliminated".
/// Pinned rows are exempt: their artificial column is represented only by
/// the pinning convention, not by the matrix.
void SolveContext::Impl::audit_basis_coherence(double tol) {
  for (std::size_t i = 0; i < prep.num_rows; ++i) {
    if (any_pinned && pinned_row[i]) continue;
    scatter_column(prep, basis[i], audit_col);
    etas.ftran(audit_col);
    if (any_pinned)
      for (std::size_t r = 0; r < audit_col.size(); ++r)
        if (pinned_row[r]) audit_col[r] = 0.0;
    audit::audit_unit_column(i, audit_col, tol);
  }
}

/// Audit: incrementally-maintained reduced costs against a from-scratch
/// BTRAN recompute.
void SolveContext::Impl::audit_pricing_sync(const std::vector<double>& costs,
                                            double tol) {
  compute_reduced_costs(costs, audit_ref);
  audit::audit_reduced_cost_sync(d, audit_ref, tol);
}

/// Rebuilds the eta file from the current basis columns and recomputes the
/// basic values from scratch, replacing pivot-accumulated state wholesale:
/// afterwards the file holds exactly one eta per basis column regardless of
/// how many pivots (including warm repairs and dual recovery) produced the
/// basis. Columns are factored singleton-auxiliaries first (their pivot
/// causes no fill), then structural columns by ascending index, each
/// pivoting on its largest remaining FTRAN entry — row assignment may
/// permute, which is fine because every tie-break in the solver compares
/// *column* ids, not row ids. The eta-updated basic values are cross-checked
/// against the fresh ones per basic variable in audit builds
/// (audit_eta_consistency). If a pivot comes up exactly zero (numerically
/// singular rebuild), the old file is kept — still correct, just longer —
/// and the next interval retries.
void SolveContext::Impl::refactorize() {
  const std::size_t m = prep.num_rows;
  pivots_since_refactor = 0;
  if (m == 0) return;

  refac_order.clear();
  for (std::size_t i = 0; i < m; ++i) refac_order.push_back(i);
  std::sort(refac_order.begin(), refac_order.end(),
            [&](std::size_t a, std::size_t b) {
              const bool aux_a = basis[a] >= prep.num_vars;
              const bool aux_b = basis[b] >= prep.num_vars;
              if (aux_a != aux_b) return aux_a;
              return basis[a] < basis[b];
            });
  refac_etas.clear();
  refac_basis.assign(m, kNone);
  row_done.assign(m, 0);
  for (const std::size_t i : refac_order) {
    const std::size_t c = basis[i];
    if (any_pinned && pinned_row[i]) {
      // A pinned row's zero-level artificial exists only by convention (its
      // row is zeroed out of every image), so re-factor it as an exact unit
      // on its own row. Pinned rows can never be chosen by other columns:
      // their FTRAN entries are zeroed below.
      col.assign(m, 0.0);
      col[i] = 1.0;
      refac_etas.push(i, col);
      row_done[i] = 1;
      refac_basis[i] = c;
      continue;
    }
    scatter_column(prep, c, col);
    refac_etas.ftran(col);
    if (any_pinned)
      for (std::size_t r = 0; r < m; ++r)
        if (pinned_row[r]) col[r] = 0.0;
    std::size_t prow = kNone;
    double best = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      if (row_done[r]) continue;
      const double mag = std::abs(col[r]);
      if (mag > best) {
        best = mag;
        prow = r;
      }
    }
    if (prow == kNone || !(best > 0.0)) return;  // singular: keep the old file
    refac_etas.push(prow, col);
    row_done[prow] = 1;
    refac_basis[prow] = c;
  }

  std::swap(etas, refac_etas);
  compute_basic_values(prep, new_rhs);
  // Rows may have permuted: align the eta-updated values (old rows, still in
  // rhs/basis) with the fresh ones per basic variable for the cross-check.
  row_of.assign(prep.cols, kNone);
  for (std::size_t r = 0; r < m; ++r) row_of[refac_basis[r]] = r;
  repaired.resize(m);
  for (std::size_t r = 0; r < m; ++r) repaired[r] = new_rhs[row_of[basis[r]]];
  SHAREGRID_AUDIT_HOOK(audit::audit_eta_consistency(rhs, repaired,
                                                    /*tol=*/1e-6));
  basis = refac_basis;
  rhs = new_rhs;
  ++stats.refactorizations;
}

/// Runs the bounded-variable primal simplex to optimality for the given cost
/// vector (maximize). Columns at or beyond @p col_limit never enter the
/// basis (used to lock out artificials in phase 2). Reduced costs are
/// maintained incrementally in the `d` member; the entering column is
/// re-derived per iteration by one sparse FTRAN.
PhaseResult SolveContext::Impl::run_simplex(const std::vector<double>& costs,
                                            std::size_t col_limit,
                                            const SolverOptions& opt) {
  const std::size_t m = prep.num_rows;
  compute_reduced_costs(costs, d);
  for (std::size_t iter = 0; iter < opt.max_iterations; ++iter) {
    const bool bland = iter >= opt.bland_after;

    // Entering column: a nonbasic variable improves the objective by rising
    // off its lower bound when d_j > 0, or by dropping off its upper bound
    // when d_j < 0. Dantzig (steepest gain) pricing, or Bland (lowest
    // improving index) once the iteration budget suggests degeneracy
    // cycling. Fixed variables (upper == 0) cannot move and never enter,
    // which also keeps zero-length bound flips out of the anti-cycling
    // argument: every admitted flip travels a strictly positive distance.
    std::size_t enter = kNone;
    double best = opt.tolerance;
    for (std::size_t j = 0; j < col_limit; ++j) {
      const double gain = at_upper[j] ? -d[j] : d[j];
      if (gain <= opt.tolerance || upper[j] == 0.0) continue;
      if (bland) {
        enter = j;
        break;
      }
      if (gain > best) {
        best = gain;
        enter = j;
      }
    }
    if (enter == kNone) return PhaseResult::kOptimal;
    // Movement direction of the entering variable in shifted space.
    const double dir = at_upper[enter] ? -1.0 : 1.0;

    // Bring the entering column into the current basis: one sparse FTRAN
    // replaces the dense engine's strided column gather.
    ftran_column(enter, col);
    double col_max = 0.0;
    for (std::size_t i = 0; i < m; ++i)
      col_max = std::max(col_max, std::abs(col[i]));

    // Ratio test over three candidate kinds: a basic variable driven down to
    // its lower bound, a basic variable driven up to a finite upper bound,
    // or the entering variable reaching its own opposite bound (a bound
    // flip — no basis change at all). Exact minimum ratio; exact row ties
    // broken by smallest basis index (the lexicographic safeguard that pairs
    // with Bland's rule), and a row tie against the flip distance keeps the
    // row. The comparisons are deliberately tolerance-free: pivoting on any
    // row whose ratio exceeds the true minimum drives the minimum row's
    // basic value out of its bounds by (difference * step). A pivot
    // candidate counts as zero only relative to the entering column's
    // largest magnitude — an absolute guard misclassifies genuinely tiny
    // data, while cancellation noise is always small relative to the column
    // that produced it.
    const double drop = opt.tolerance * col_max;
    std::size_t leave = kNone;
    bool leave_at_upper = false;
    double best_ratio = upper[enter];  // bound-flip distance (may be inf)
    for (std::size_t i = 0; i < m; ++i) {
      if (std::abs(col[i]) <= drop) continue;
      const double step = dir * col[i];  // basic value moves by -step per unit
      if (step > 0.0) {
        const double ratio = rhs[i] / step;
        if (ratio < best_ratio ||
            (ratio == best_ratio &&
             (leave == kNone || basis[i] < basis[leave]))) {
          best_ratio = ratio;
          leave = i;
          leave_at_upper = false;
        }
      } else {
        const double ub = upper[basis[i]];
        if (!std::isfinite(ub)) continue;
        const double ratio = (ub - rhs[i]) / (-step);
        if (ratio < best_ratio ||
            (ratio == best_ratio &&
             (leave == kNone || basis[i] < basis[leave]))) {
          best_ratio = ratio;
          leave = i;
          leave_at_upper = true;
        }
      }
    }
    if (leave == kNone && !std::isfinite(best_ratio))
      return PhaseResult::kUnbounded;

#if defined(SHAREGRID_AUDIT)
    const double objective_before = bland ? objective_value(costs) : 0.0;
#endif

    if (leave == kNone) {
      // Bound flip: the entering variable reaches its opposite bound before
      // any basic variable hits one. Move it there — O(m), no pivot, basis
      // and reduced costs unchanged.
      for (std::size_t i = 0; i < m; ++i) rhs[i] -= dir * col[i] * best_ratio;
      at_upper[enter] ^= 1;
      ++stats.bound_flips;
      SHAREGRID_AUDIT_HOOK(audit::audit_basic_values(rhs, basis, upper,
                                                     /*tol=*/1e-6));
      SHAREGRID_AUDIT_HOOK(if (bland) audit::audit_bland_progress(
                               objective_before, objective_value(costs),
                               /*tol=*/1e-6));
      continue;
    }

    // Basis change: move every basic value by its share of the step, file
    // the leaving variable at whichever bound it hit, then append the eta
    // for the pivot. Row `leave` afterwards represents the entering
    // variable at its post-step value.
    const std::size_t leaving = basis[leave];
    for (std::size_t i = 0; i < m; ++i) rhs[i] -= dir * col[i] * best_ratio;
    const double enter_value =
        (at_upper[enter] ? upper[enter] : 0.0) + dir * best_ratio;
    at_upper[leaving] = leave_at_upper ? 1 : 0;
    at_upper[enter] = 0;
    const double dq = d[enter];
    etas.push(leave, col);
    basis[leave] = enter;
    rhs[leave] = enter_value;
    ++stats.pivots;
    ++pivots_since_refactor;

    if (dq != 0.0) {
      // rho := e_leave B^-1 including the new eta — the normalized pivot row
      // of the dense elimination — feeds the price update.
      rho.assign(m, 0.0);
      rho[leave] = 1.0;
      etas.btran(rho);
      price_update(dq);
    }
    d[enter] = 0.0;

    if (opt.refactor_interval > 0 &&
        pivots_since_refactor >= opt.refactor_interval) {
      refactorize();
      compute_reduced_costs(costs, d);
    }

    // Basis coherence after every pivot, the incremental-pricing identity,
    // plus the Bland anti-cycling guarantee (objective never regresses once
    // Bland pricing is active).
    SHAREGRID_AUDIT_HOOK(audit_basis_coherence(/*tol=*/1e-6));
    SHAREGRID_AUDIT_HOOK(audit::audit_basic_values(rhs, basis, upper,
                                                   /*tol=*/1e-6));
    SHAREGRID_AUDIT_HOOK(audit_pricing_sync(costs, /*tol=*/1e-6));
    SHAREGRID_AUDIT_HOOK(if (bland) audit::audit_bland_progress(
                             objective_before, objective_value(costs),
                             /*tol=*/1e-6));
  }
  return PhaseResult::kIterationLimit;
}

/// Dual simplex: restores primal feasibility of the cached basis after an
/// RHS or bound change, preserving dual feasibility (reduced costs <= 0 on
/// at-lower columns, >= 0 on at-upper columns) so the follow-up primal
/// phase 2 terminates in few — typically zero — pivots. A basic variable may
/// now violate either bound: one below its lower bound leaves *at* the lower
/// bound, one above a finite upper leaves at the upper, and the entering
/// ratio test runs over the correspondingly signed row (one BTRAN per
/// iteration reads the row off the eta file). Returns false when the basis
/// is not dual feasible for the new costs (the objective moved), when a
/// violated row has no admissible entering column (the new program may be
/// genuinely infeasible — let the cold solve decide), or when the pivot
/// budget runs out; callers then fall back to the full two-phase method.
/// Precondition: prep, upper, and the basic values reflect the *new*
/// problem (rhs possibly out of bounds).
bool SolveContext::Impl::dual_recover(const SolverOptions& opt) {
  const std::size_t m = prep.num_rows;
  const std::size_t limit = prep.first_artificial;
  compute_reduced_costs(prep.costs, d);
  for (std::size_t j = 0; j < limit; ++j) {
    // Fixed variables (upper == 0) can never move off their bound, so their
    // reduced cost carries no dual-feasibility information — primal pricing
    // skips them for the same reason. The scheduler programs are full of
    // them (zero-width [0, 0] boxes for principal pairs with no agreement).
    if (upper[j] == 0.0) continue;
    if (at_upper[j] ? d[j] < -opt.tolerance : d[j] > opt.tolerance)
      return false;
  }

  const std::size_t budget = std::max<std::size_t>(32, 4 * m);
  for (std::size_t iter = 0; iter < budget; ++iter) {
    // Leaving row: largest bound violation (tolerance scaled to the data).
    double scale = 1.0;
    for (std::size_t i = 0; i < m; ++i)
      scale = std::max(scale, std::abs(rhs[i]));
    const double feas_tol = opt.tolerance * scale;
    std::size_t leave = kNone;
    bool above_upper = false;
    double worst = feas_tol;
    for (std::size_t i = 0; i < m; ++i) {
      if (-rhs[i] > worst) {
        worst = -rhs[i];
        leave = i;
        above_upper = false;
      }
      const double ub = upper[basis[i]];
      if (std::isfinite(ub) && rhs[i] - ub > worst) {
        worst = rhs[i] - ub;
        leave = i;
        above_upper = true;
      }
    }
    if (leave == kNone) return true;  // primal feasible again

    // Entering column: dual ratio test over the leaving row, read by one
    // BTRAN of its unit vector then a sparse dot per column. With the row
    // negated when the basic variable sits *above* its upper bound,
    // admissible columns are those whose movement off their own bound raises
    // (case below-lower) or lowers (case above-upper) the basic value, and
    // the minimized ratio d_j / alpha_j is >= 0 for both bound statuses —
    // the minimum keeps every reduced cost on its dual-feasible side after
    // the pivot. The pivot-size guard mirrors the primal ratio test:
    // candidates are measured against the row's largest magnitude so
    // cancellation noise cannot be chosen.
    const double row_sign = above_upper ? -1.0 : 1.0;
    rho.assign(m, 0.0);
    rho[leave] = 1.0;
    etas.btran(rho);
    pr.resize(limit);
    double row_max = 0.0;
    for (std::size_t j = 0; j < limit; ++j) {
      pr[j] = column_dot(prep, j, rho);
      row_max = std::max(row_max, std::abs(pr[j]));
    }
    const double drop = opt.tolerance * row_max;
    std::size_t enter = kNone;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < limit; ++j) {
      if (j == basis[leave] || upper[j] == 0.0) continue;
      const double alpha = row_sign * pr[j];
      if (at_upper[j] ? alpha <= drop : alpha >= -drop) continue;
      const double ratio = d[j] / alpha;
      // Strict < keeps the lowest-index column on exact ties (Bland-style),
      // and the budget bounds any residual degenerate cycling.
      if (ratio < best_ratio) {
        best_ratio = ratio;
        enter = j;
      }
    }
    if (enter == kNone) return false;

    // The leaving variable lands exactly on the bound it violated; every
    // other basic value moves by its share of the entering step.
    const std::size_t leaving = basis[leave];
    const double target = above_upper ? upper[leaving] : 0.0;
    const double dir = at_upper[enter] ? -1.0 : 1.0;
    const double step = (rhs[leave] - target) / (pr[enter] * dir);
    ftran_column(enter, col);
    for (std::size_t i = 0; i < m; ++i) rhs[i] -= dir * col[i] * step;
    const double enter_value =
        (at_upper[enter] ? upper[enter] : 0.0) + dir * step;
    at_upper[leaving] = above_upper ? 1 : 0;
    at_upper[enter] = 0;
    const double dq = d[enter];
    etas.push(leave, col);
    basis[leave] = enter;
    rhs[leave] = enter_value;
    ++stats.pivots;
    ++pivots_since_refactor;
    if (dq != 0.0) {
      rho.assign(m, 0.0);
      rho[leave] = 1.0;
      etas.btran(rho);
      price_update(dq);
    }
    d[enter] = 0.0;
    if (opt.refactor_interval > 0 &&
        pivots_since_refactor >= opt.refactor_interval) {
      refactorize();
      compute_reduced_costs(prep.costs, d);
    }
    // The basis stays coherent throughout (eta file, maintained d); basic
    // values may sit outside their bounds until recovery completes, so the
    // full warm-entry audit runs only after this loop returns.
    SHAREGRID_AUDIT_HOOK(audit_pricing_sync(prep.costs, /*tol=*/1e-6));
  }
  return false;
}

WarmOutcome SolveContext::Impl::try_warm(const Problem& problem,
                                         const SolverOptions& opt,
                                         Solution& out) {
  const std::size_t m = prep.num_rows;
  const std::size_t n = prep.num_vars;

  // Changed structural columns (exact coefficient compare). For the
  // schedulers this is empty or just the theta column, whose coefficients
  // carry the demand.
  changed.clear();
  changed_mark.assign(n, 0);
  for (std::size_t k = 0; k < prep.coeffs.size(); ++k) {
    if (incoming.coeffs[k] == prep.coeffs[k]) continue;
    const std::uint32_t c = prep.term_var[k];
    if (changed_mark[c] == 0) {
      changed_mark[c] = 1;
      changed.push_back(c);
    }
  }

  row_of.assign(prep.cols, kNone);
  for (std::size_t r = 0; r < m; ++r) row_of[basis[r]] = r;
  std::size_t changed_basic = 0;
  for (const std::uint32_t c : changed)
    if (row_of[c] != kNone) ++changed_basic;
  if (changed_basic > max_repairs(m)) return WarmOutcome::kTooManyRepairs;

  // Repair changed basic columns sequentially: FTRAN the *new* column
  // through the current file (which already includes earlier repairs) and
  // re-pivot on its own basic row — one extra eta each, exactly the
  // basis-change rank-1 update. Changed *nonbasic* columns need no work at
  // all: nothing stores their basis image, so the next FTRAN re-derives it
  // from the new matrix. Basic values are recomputed wholesale below, so the
  // repairs are factorization-only.
  for (const std::uint32_t c : changed) {
    const std::size_t r = row_of[c];
    if (r == kNone) continue;
    scatter_column(incoming, c, repaired);
    etas.ftran(repaired);
    double col_scale = 0.0;
    for (const double v : repaired)
      col_scale = std::max(col_scale, std::abs(v));
    if (!(std::abs(repaired[r]) > opt.tolerance * col_scale) ||
        col_scale == 0.0) {
      // Unrepairable within the pivot-size guard; the eta file may already
      // carry earlier repairs, so the cache is dead either way.
      valid = false;
      return WarmOutcome::kRepairRejected;
    }
    etas.push(r, repaired);
    ++stats.pivots;
    ++pivots_since_refactor;
  }

  // Refresh the (possibly drifted) finite bound widths; the finite pattern
  // is layout-checked, so only values move here. A nonbasic-at-upper
  // variable simply tracks its new bound.
  for (std::size_t j = 0; j < n; ++j) upper[j] = incoming.upper[j];

  // New basic values from the new right-hand side and bounds: one sparse
  // pass plus one FTRAN (compute_basic_values), against the dense engine's
  // O(m^2) multiply by the stored B^-1 image.
  compute_basic_values(incoming, new_rhs);
  double scale = 0.0;
  for (std::size_t r = 0; r < m; ++r)
    scale = std::max(scale, std::abs(new_rhs[r]));
  const double feas_tol = opt.tolerance * (1.0 + scale);
  bool primal_infeasible = false;
  for (std::size_t r = 0; r < m; ++r) {
    if (new_rhs[r] < -feas_tol) primal_infeasible = true;
    const double ub = upper[basis[r]];
    if (std::isfinite(ub) && new_rhs[r] > ub + feas_tol)
      primal_infeasible = true;
  }
  rhs = new_rhs;

  // Commit: the cached factorization now reflects the incoming problem.
  std::swap(prep, incoming);

  if (primal_infeasible) {
    // The cached basis is primal infeasible for this window's right-hand
    // side or bounds. The previous optimum is still *dual* feasible whenever
    // the objective did not move (true for every scheduler stage: the costs
    // are structural), so a few dual simplex pivots usually restore primal
    // feasibility far cheaper than a cold phase 1+2. Only when that also
    // fails does the solve fall back to phase 1.
    if (!dual_recover(opt)) {
      valid = false;
      std::swap(prep, incoming);  // cold() expects the new data in incoming
      return WarmOutcome::kRhsRejected;
    }
    ++stats.dual_recoveries;
  }
  for (std::size_t r = 0; r < m; ++r) {
    rhs[r] = std::max(0.0, rhs[r]);
    const double ub = upper[basis[r]];
    if (std::isfinite(ub)) rhs[r] = std::min(rhs[r], ub);
  }
  SHAREGRID_AUDIT_HOOK(
      audit::audit_no_artificial_basic(basis, prep.first_artificial));
  SHAREGRID_AUDIT_HOOK(audit_basis_coherence(/*tol=*/1e-6));
  SHAREGRID_AUDIT_HOOK(audit::audit_basic_values(rhs, basis, upper,
                                                 /*tol=*/1e-6));

  ++warm_streak;
  const PhaseResult r = run_simplex(prep.costs, prep.first_artificial, opt);
  if (r == PhaseResult::kIterationLimit) {
    out.status = Status::kIterationLimit;
    valid = false;
    return WarmOutcome::kWarm;
  }
  if (r == PhaseResult::kUnbounded) {
    out.status = Status::kUnbounded;
    valid = false;
    return WarmOutcome::kWarm;
  }
  extract(problem, out);
  out.warm_started = true;
  return WarmOutcome::kWarm;
}

void SolveContext::Impl::cold(const Problem& problem, const SolverOptions& opt,
                              Solution& out) {
  std::swap(prep, incoming);
  valid = false;
  basis_clean = false;
  warm_streak = 0;

  const std::size_t n = prep.num_vars;
  const std::size_t m = prep.num_rows;
  rhs = prep.rhs;
  basis.assign(m, kNone);
  upper.assign(prep.cols, kInfinity);
  for (std::size_t j = 0; j < n; ++j) upper[j] = prep.upper[j];
  at_upper.assign(prep.cols, 0);
  // The initial basis is the per-row identity (slack or artificial), so the
  // eta file starts empty: B = I, FTRAN/BTRAN are no-ops.
  for (std::size_t i = 0; i < m; ++i) basis[i] = prep.unit_col[i];
  etas.clear();
  pivots_since_refactor = 0;
  pinned_row.assign(m, 0);
  any_pinned = false;
  SHAREGRID_AUDIT_HOOK(audit_basis_coherence(/*tol=*/1e-6));
  SHAREGRID_AUDIT_HOOK(audit::audit_basic_values(rhs, basis, upper,
                                                 /*tol=*/1e-6));

  // Phase 1: drive artificials to zero (maximize -sum of artificials).
  bool clean = true;
  if (prep.num_artificial > 0) {
    phase1_costs.assign(prep.cols, 0.0);
    for (std::size_t j = prep.first_artificial; j < prep.cols; ++j)
      phase1_costs[j] = -1.0;
    const PhaseResult r = run_simplex(phase1_costs, prep.cols, opt);
    if (r == PhaseResult::kIterationLimit) {
      out.status = Status::kIterationLimit;
      return;
    }
    if (objective_value(phase1_costs) < -1e-7) {
      out.status = Status::kInfeasible;
      return;
    }
    // Pivot zero-level artificials out of the basis where possible so they
    // cannot re-enter through rounding noise in phase 2. The row is read off
    // the eta file by one BTRAN; candidate columns are scanned by sparse dot
    // and the chosen one FTRANed for the pivot mechanics.
    for (std::size_t i = 0; i < m; ++i) {
      if (basis[i] < prep.first_artificial) continue;
      rho.assign(m, 0.0);
      rho[i] = 1.0;
      etas.btran(rho);
      bool pivoted = false;
      for (std::size_t j = 0; j < prep.first_artificial; ++j) {
        const double p = column_dot(prep, j, rho);
        if (std::abs(p) > 1e-7) {
          // Swap the zero-level artificial for column j: the artificial
          // leaves at 0, so the step length is the (tiny) residual level
          // over the pivot element, applied with the same bounded-pivot
          // mechanics as the ratio test — j may be nonbasic at either
          // bound, and enters at (its bound) + dir * step.
          ftran_column(j, col);
          if (col[i] == 0.0) continue;  // pinned-row/drift mismatch: skip
          const double dir = at_upper[j] ? -1.0 : 1.0;
          const double step = rhs[i] / (dir * col[i]);
          for (std::size_t rr = 0; rr < m; ++rr)
            rhs[rr] -= dir * col[rr] * step;
          const double enter_value =
              (at_upper[j] ? upper[j] : 0.0) + dir * step;
          at_upper[j] = 0;
          etas.push(i, col);
          basis[i] = j;
          rhs[i] = enter_value;
          ++stats.pivots;
          ++pivots_since_refactor;
          pivoted = true;
          break;
        }
      }
      if (!pivoted) {
        // No pivot column: every non-artificial entry is below threshold, so
        // the row reads 0*y ~= 0 — redundant within tolerance. The
        // artificial stays basic at level zero and is locked out of phase 2
        // pricing, but the sub-threshold residue must be neutralized:
        // phase-2 steps would multiply it by rhs-scale magnitudes and
        // silently leak value into the basic artificial, i.e. return
        // kOptimal for a point that violates the original constraint.
        // Pinning zeroes the row out of every future column image (and this
        // basis out of the warm cache, clean = false).
        pinned_row[i] = 1;
        any_pinned = true;
        rhs[i] = 0.0;
        clean = false;
      }
    }
  }

  // Phase 2: the real objective over structural columns only.
  const PhaseResult r = run_simplex(prep.costs, prep.first_artificial, opt);
  if (r == PhaseResult::kIterationLimit) {
    out.status = Status::kIterationLimit;
    return;
  }
  if (r == PhaseResult::kUnbounded) {
    out.status = Status::kUnbounded;
    return;
  }
  extract(problem, out);
  valid = true;
  basis_clean = clean;
}

void SolveContext::Impl::extract(const Problem& problem, Solution& out) {
  const std::size_t n = prep.num_vars;
  out.status = Status::kOptimal;
  out.values.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    if (at_upper[j]) out.values[j] = prep.upper[j];
  for (std::size_t i = 0; i < prep.num_rows; ++i) {
    const std::size_t b = basis[i];
    if (b >= n) continue;
    double v = std::max(0.0, rhs[i]);
    if (std::isfinite(prep.upper[b])) v = std::min(v, prep.upper[b]);
    out.values[b] = v;
  }
  const auto& lo = problem.lower_bounds();
  double objective = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] += lo[j];
    objective += problem.objective()[j] * out.values[j];
  }
  out.objective = objective;
  out.basis = basis;
  // The solution handed back must satisfy the *original* problem — warm or
  // cold — not just the internal shifted/standard-form representation.
  SHAREGRID_AUDIT_HOOK(audit::audit_lp_solution(problem, out,
                                                /*tol=*/1e-5));
}

Solution SolveContext::Impl::run(const Problem& problem,
                                 const SolverOptions& opt) {
  ++stats.solves;
  prepare(problem, incoming);
  Solution out;
  bool warm_done = false;
  // Every counter increments exactly here (one per solve at most), so a
  // failed warm attempt can never double-count across its internal exits.
  if (valid && basis_clean && opt.warm_refresh_interval > 0) {
    if (!prep.layout_matches(incoming)) {
      ++stats.structure_misses;
    } else if (warm_streak >= opt.warm_refresh_interval) {
      ++stats.refreshes;
    } else {
      switch (try_warm(problem, opt, out)) {
        case WarmOutcome::kWarm:
          ++stats.warm_solves;
          warm_done = true;
          break;
        case WarmOutcome::kTooManyRepairs:
          ++stats.structure_misses;
          break;
        case WarmOutcome::kRepairRejected:
          ++stats.repair_rejections;
          break;
        case WarmOutcome::kRhsRejected:
          ++stats.rhs_rejections;
          break;
      }
    }
  }
  if (!warm_done) {
    cold(problem, opt, out);
    ++stats.cold_solves;
  }
  SHAREGRID_AUDIT_HOOK(audit::audit_solve_stats(stats));
  return out;
}

SolveContext::SolveContext() : impl_(std::make_unique<Impl>()) {}
SolveContext::~SolveContext() = default;
SolveContext::SolveContext(SolveContext&&) noexcept = default;
SolveContext& SolveContext::operator=(SolveContext&&) noexcept = default;

Solution SolveContext::solve(const Problem& problem,
                             const SolverOptions& options) {
  return impl_->run(problem, options);
}

void SolveContext::invalidate() { impl_->valid = false; }

const SolveStats& SolveContext::stats() const { return impl_->stats; }

Solution solve(const Problem& problem, const SolverOptions& options) {
  SolveContext context;
  return context.solve(problem, options);
}

}  // namespace sharegrid::lp
