// Warm-started, sparse revised-simplex LP solve pipeline.
//
// The paper re-solves an LP every 100 ms scheduling window (§3.1.2) and
// argues the cost is negligible because principal counts are small. On a
// redirector hot path with n² routing variables that stops being true, but
// successive windows differ only in demand-driven data: right-hand sides,
// bounds, objective coefficients, and (for the max-min theta rows) one
// structural column. A SolveContext exploits that structure:
//
//  * PreparedProblem factors standard-form construction — lower-bound
//    shifting, sign flips, slack/artificial column layout, phase-2 costs —
//    out of the solve, so a re-solve only rewrites the numbers that moved.
//    The constraint matrix is stored in compressed sparse column form as
//    well as CSR: the revised simplex works column-wise, and scheduler
//    columns average a handful of nonzeros regardless of principal count.
//    Upper bounds never materialize as rows: the simplex handles them
//    implicitly in the ratio test (bounded-variable simplex).
//  * No tableau is ever formed. The basis inverse is kept as a product-form
//    eta file — one elementary transformation per pivot — applied by sparse
//    FTRAN (column transforms) and BTRAN (row transforms). Per-pivot cost is
//    O(nnz(A) + m·|etas|) instead of the dense tableau's O(m · cols), and
//    the eta file is refactorized from the basis every
//    SolverOptions::refactor_interval pivots to bound both its length and
//    floating-point drift (cross-checked by audit_eta_consistency in
//    SHAREGRID_AUDIT builds).
//  * The optimal basis of the previous solve is kept. When the next problem
//    has the same layout, the solver recomputes the basic values by one
//    FTRAN of the new right-hand side, repairs changed structural columns
//    with at most one eta each, and re-enters phase 2 directly. When the new
//    right-hand side leaves the basis primal infeasible, dual simplex pivots
//    restore feasibility as long as the basis is still dual feasible (true
//    whenever the objective is stable across windows, as in every scheduler
//    stage); only when that also fails does the solve fall back to the full
//    two-phase method.
//  * Scratch buffers (reduced costs, FTRAN/BTRAN vectors, rhs) live in the
//    context, so the pivot inner loops never allocate.
//
// See docs/lp-performance.md for the design discussion and measurements.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "lp/problem.hpp"

namespace sharegrid::lp {

/// Solver outcome. kIterationLimit means the pivot budget ran out before a
/// verdict; callers on a per-window hot path should treat it as "no fresh
/// plan this window" (keep the previous one), never as a crash.
enum class Status { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

/// Result of solving a Problem.
struct Solution {
  Status status = Status::kInfeasible;
  /// Objective value in the problem's own sense (valid when kOptimal).
  double objective = 0.0;
  /// Value per variable (valid when kOptimal).
  std::vector<double> values;
  /// Optimal basis: the standard-form column basic in each row (valid when
  /// kOptimal). Carried so the next window's solve can re-enter phase 2 from
  /// here instead of rebuilding from scratch; column indices are internal
  /// (structural < n, then slack/surplus, then artificial).
  std::vector<std::size_t> basis;
  /// True when this solve re-entered phase 2 from a cached basis instead of
  /// running the full two-phase method.
  bool warm_started = false;

  bool optimal() const { return status == Status::kOptimal; }
};

/// Solver tuning knobs; defaults are appropriate for window-scheduling LPs.
struct SolverOptions {
  /// Numerical tolerance for optimality/feasibility tests.
  double tolerance = 1e-9;
  /// Pivot count after which pricing falls back to Bland's rule.
  std::size_t bland_after = 200;
  /// Hard cap on pivots (guards against pathological inputs).
  std::size_t max_iterations = 100000;
  /// Warm solves allowed between full (cold) solves in a SolveContext.
  /// Bounds floating-point drift across reused bases; 0 disables warm
  /// starting entirely.
  std::size_t warm_refresh_interval = 64;
  /// Pivots between eta-file refactorizations. Each pivot appends one eta to
  /// the product-form basis inverse; every K pivots the file is rebuilt from
  /// the basis columns, the basic values are recomputed from scratch (the
  /// eta-updated values are cross-checked against them in SHAREGRID_AUDIT
  /// builds), and the incremental reduced costs are refreshed. Bounds both
  /// FTRAN/BTRAN cost and numerical drift.
  std::size_t refactor_interval = 64;
};

/// "No column" marker in PreparedProblem layout arrays.
inline constexpr std::uint32_t kNoColumn =
    std::numeric_limits<std::uint32_t>::max();

/// Standard-form image of a Problem, split into the *layout* (dimensions,
/// term sparsity, relations, sign-flip pattern, slack/artificial column
/// assignment — everything that decides basis structure) and the *data*
/// (coefficients, right-hand sides, phase-2 costs). Two windows whose
/// layouts match can reuse one cached basis; only the data is rewritten.
struct PreparedProblem {
  // -- dimensions --
  std::size_t num_vars = 0;  ///< structural variables n
  std::size_t num_rows = 0;  ///< user constraints (bounds are implicit)
  std::size_t num_slack = 0;
  std::size_t num_artificial = 0;
  std::size_t cols = 0;  ///< n + slacks + artificials
  std::size_t first_artificial = 0;

  // -- layout (compared by layout_matches) --
  std::vector<Relation> relation;        ///< original relation per constraint
  std::vector<std::uint8_t> flipped;     ///< 1 when the row was negated
  std::vector<Relation> effective;       ///< relation after the flip
  std::vector<std::uint32_t> term_var;   ///< CSR term variable indices
  std::vector<std::uint32_t> row_begin;  ///< CSR offsets, size rows+1
  /// CSC image of the same terms: col_begin[j]..col_begin[j+1] indexes the
  /// (row, value) entries of structural column j, in row order. Duplicate
  /// terms for one variable in one row stay separate entries (they
  /// accumulate in every dot product, matching the CSR scatter). The
  /// pattern follows from term_var/row_begin, so layout_matches need not
  /// compare it separately; col_val below is data.
  std::vector<std::uint32_t> col_begin;  ///< CSC offsets, size num_vars+1
  std::vector<std::uint32_t> col_row;    ///< CSC row indices
  /// Vars with a finite upper bound. Part of the *layout*: a bound drifting
  /// between finite values is a data rewrite, but a bound crossing to/from
  /// kInfinity changes which variables the ratio test may flip, so it must
  /// force a structure miss.
  std::vector<std::uint32_t> ub_var;
  std::vector<std::uint32_t> slack_col;  ///< per row, kNoColumn if none
  std::vector<std::uint32_t> art_col;    ///< per row, kNoColumn if none
  std::vector<std::uint32_t> unit_col;   ///< per row: its initial unit column
  std::vector<double> slack_sign;        ///< +1 slack, -1 surplus, 0 none
  /// Per auxiliary column (index - num_vars): the single row it occupies and
  /// its coefficient there (slack_sign for slacks, +1 for artificials).
  /// Every auxiliary column is a singleton, so this is its whole CSC image.
  std::vector<std::uint32_t> aux_row;
  std::vector<double> aux_val;

  // -- data (free to differ between warm-compatible windows) --
  std::vector<double> coeffs;   ///< CSR coefficients, flip-adjusted
  std::vector<double> col_val;  ///< CSC coefficients, same adjustment
  std::vector<double> rhs;      ///< shifted + flip-adjusted, size num_rows
  std::vector<double> costs;    ///< phase-2 maximize costs over all columns
  /// Shifted upper bound hi_j - lo_j per variable (kInfinity when
  /// unbounded); the finite/infinite *pattern* is layout (ub_var above),
  /// the finite values are data.
  std::vector<double> upper;

  /// True when @p other has the same structural layout (coefficients, rhs,
  /// finite bound values and costs may differ). Warm starts require a match.
  bool layout_matches(const PreparedProblem& other) const;
};

/// Builds the standard form of @p problem into @p out, reusing its storage.
/// Throws ContractViolation if any lower bound is non-finite.
void prepare(const Problem& problem, PreparedProblem& out);

/// Cumulative counters describing how a SolveContext's solves resolved.
struct SolveStats {
  std::uint64_t solves = 0;        ///< total solve() calls
  std::uint64_t warm_solves = 0;   ///< re-entered phase 2 from a cached basis
  std::uint64_t cold_solves = 0;   ///< full two-phase solves
  /// Warm start skipped: constraint/bound layout (or a sign flip) changed.
  std::uint64_t structure_misses = 0;
  /// Warm start attempted, the cached basis was primal infeasible for the
  /// new right-hand side, and dual simplex could not recover (the basis was
  /// not dual feasible either, or the pivot budget ran out) — the "fall
  /// back to phase 1" case.
  std::uint64_t rhs_rejections = 0;
  /// Primal-infeasible warm starts recovered by dual simplex pivots instead
  /// of a cold phase 1+2 (possible whenever the objective is stable across
  /// windows, which holds for every scheduler stage).
  std::uint64_t dual_recoveries = 0;
  /// Warm start attempted but a changed basic column could not be repaired
  /// with a numerically safe pivot.
  std::uint64_t repair_rejections = 0;
  /// Periodic anti-drift cold refreshes (SolverOptions::warm_refresh_interval).
  std::uint64_t refreshes = 0;
  std::uint64_t pivots = 0;  ///< simplex pivots across all solves
  /// Ratio-test steps resolved by moving a nonbasic variable to its opposite
  /// bound instead of changing the basis (no pivot, O(m) instead of a basis
  /// change).
  std::uint64_t bound_flips = 0;
  /// Eta-file rebuilds from the basis columns (every
  /// SolverOptions::refactor_interval pivots; see audit_eta_consistency).
  std::uint64_t refactorizations = 0;

  SolveStats& operator+=(const SolveStats& o) {
    solves += o.solves;
    warm_solves += o.warm_solves;
    cold_solves += o.cold_solves;
    structure_misses += o.structure_misses;
    rhs_rejections += o.rhs_rejections;
    dual_recoveries += o.dual_recoveries;
    repair_rejections += o.repair_rejections;
    refreshes += o.refreshes;
    pivots += o.pivots;
    bound_flips += o.bound_flips;
    refactorizations += o.refactorizations;
    return *this;
  }
};

/// Reusable solve pipeline: owns the prepared standard form, the cached
/// optimal basis and its eta-file inverse, and all pivot scratch space. One
/// context per logically-recurring program (e.g. one per scheduler stage);
/// contexts are not thread-safe — callers serialize access.
class SolveContext {
 public:
  SolveContext();
  ~SolveContext();
  SolveContext(SolveContext&&) noexcept;
  SolveContext& operator=(SolveContext&&) noexcept;
  SolveContext(const SolveContext&) = delete;
  SolveContext& operator=(const SolveContext&) = delete;

  /// Solves @p problem, warm-starting from the previous call's basis when
  /// the problem layout matches. Results are status/objective-equivalent to
  /// a cold lp::solve of the same problem (alternate optima may place the
  /// optimum at a different vertex).
  Solution solve(const Problem& problem, const SolverOptions& options = {});

  /// Drops the cached basis; the next solve runs cold.
  void invalidate();

  const SolveStats& stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Solves @p problem from scratch (cold); never throws on infeasible /
/// unbounded / iteration-limited inputs (reported via Solution::status).
/// Throws ContractViolation on malformed input only. Per-window callers that
/// re-solve structurally identical programs should hold a lp::SolveContext
/// instead and let it warm-start.
Solution solve(const Problem& problem, const SolverOptions& options = {});

}  // namespace sharegrid::lp
