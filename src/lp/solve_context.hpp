// Warm-started, incrementally-priced LP solve pipeline.
//
// The paper re-solves an LP every 100 ms scheduling window (§3.1.2) and
// argues the cost is negligible because principal counts are small. On a
// redirector hot path with n² routing variables that stops being true, but
// successive windows differ only in demand-driven data: right-hand sides,
// bounds, objective coefficients, and (for the max-min theta rows) one
// structural column. A SolveContext exploits that structure:
//
//  * PreparedProblem factors standard-form construction — lower-bound
//    shifting, sign flips, slack/artificial column layout, phase-2 costs —
//    out of the solve, so a re-solve only rewrites the numbers that moved.
//    Upper bounds never materialize as rows: the simplex handles them
//    implicitly in the ratio test (bounded-variable simplex), so the
//    tableau holds true constraints only and is roughly half the size for
//    the box-constrained scheduler programs.
//  * The optimal basis and final tableau of the previous solve are kept.
//    When the next problem has the same layout, the solver recomputes
//    B⁻¹·b for the new right-hand side (B⁻¹ is read off the tableau's
//    initial-identity columns), repairs changed structural columns with at
//    most one pivot each, and re-enters phase 2 directly. When the new
//    right-hand side leaves the basis primal infeasible, dual simplex
//    pivots restore feasibility as long as the basis is still dual feasible
//    (true whenever the objective is stable across windows, as in every
//    scheduler stage); only when that also fails does the solve fall back
//    to the full two-phase method.
//  * Scratch buffers (reduced costs, entering column, rhs) live in the
//    context, so the pivot inner loops never allocate.
//
// See docs/lp-performance.md for the design discussion and measurements.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "lp/simplex.hpp"

namespace sharegrid::lp {

/// "No column" marker in PreparedProblem layout arrays.
inline constexpr std::uint32_t kNoColumn =
    std::numeric_limits<std::uint32_t>::max();

/// Standard-form image of a Problem, split into the *layout* (dimensions,
/// term sparsity, relations, sign-flip pattern, slack/artificial column
/// assignment — everything that decides tableau structure) and the *data*
/// (coefficients, right-hand sides, phase-2 costs). Two windows whose
/// layouts match can reuse one tableau; only the data is rewritten.
struct PreparedProblem {
  // -- dimensions --
  std::size_t num_vars = 0;  ///< structural variables n
  std::size_t num_rows = 0;  ///< user constraints (bounds are implicit)
  std::size_t num_slack = 0;
  std::size_t num_artificial = 0;
  std::size_t cols = 0;  ///< n + slacks + artificials
  std::size_t first_artificial = 0;

  // -- layout (compared by layout_matches) --
  std::vector<Relation> relation;        ///< original relation per constraint
  std::vector<std::uint8_t> flipped;     ///< 1 when the row was negated
  std::vector<Relation> effective;       ///< relation after the flip
  std::vector<std::uint32_t> term_var;   ///< CSR term variable indices
  std::vector<std::uint32_t> row_begin;  ///< CSR offsets, size rows+1
  /// Vars with a finite upper bound. Part of the *layout*: a bound drifting
  /// between finite values is a data rewrite, but a bound crossing to/from
  /// kInfinity changes which variables the ratio test may flip, so it must
  /// force a structure miss.
  std::vector<std::uint32_t> ub_var;
  std::vector<std::uint32_t> slack_col;  ///< per row, kNoColumn if none
  std::vector<std::uint32_t> art_col;    ///< per row, kNoColumn if none
  std::vector<std::uint32_t> unit_col;   ///< per row: its initial unit column
  std::vector<double> slack_sign;        ///< +1 slack, -1 surplus, 0 none

  // -- data (free to differ between warm-compatible windows) --
  std::vector<double> coeffs;  ///< CSR coefficients, flip-adjusted
  std::vector<double> rhs;     ///< shifted + flip-adjusted, size num_rows
  std::vector<double> costs;   ///< phase-2 maximize costs over all columns
  /// Shifted upper bound hi_j - lo_j per variable (kInfinity when
  /// unbounded); the finite/infinite *pattern* is layout (ub_var above),
  /// the finite values are data.
  std::vector<double> upper;

  /// True when @p other has the same structural layout (coefficients, rhs,
  /// finite bound values and costs may differ). Warm starts require a match.
  bool layout_matches(const PreparedProblem& other) const;
};

/// Builds the standard form of @p problem into @p out, reusing its storage.
/// Throws ContractViolation if any lower bound is non-finite.
void prepare(const Problem& problem, PreparedProblem& out);

/// Cumulative counters describing how a SolveContext's solves resolved.
struct SolveStats {
  std::uint64_t solves = 0;        ///< total solve() calls
  std::uint64_t warm_solves = 0;   ///< re-entered phase 2 from a cached basis
  std::uint64_t cold_solves = 0;   ///< full two-phase solves
  /// Warm start skipped: constraint/bound layout (or a sign flip) changed.
  std::uint64_t structure_misses = 0;
  /// Warm start attempted, the cached basis was primal infeasible for the
  /// new right-hand side, and dual simplex could not recover (the basis was
  /// not dual feasible either, or the pivot budget ran out) — the "fall
  /// back to phase 1" case.
  std::uint64_t rhs_rejections = 0;
  /// Primal-infeasible warm starts recovered by dual simplex pivots instead
  /// of a cold phase 1+2 (possible whenever the objective is stable across
  /// windows, which holds for every scheduler stage).
  std::uint64_t dual_recoveries = 0;
  /// Warm start attempted but a changed basic column could not be repaired
  /// with a numerically safe pivot.
  std::uint64_t repair_rejections = 0;
  /// Periodic anti-drift cold refreshes (SolverOptions::warm_refresh_interval).
  std::uint64_t refreshes = 0;
  std::uint64_t pivots = 0;  ///< simplex pivots across all solves
  /// Ratio-test steps resolved by moving a nonbasic variable to its opposite
  /// bound instead of changing the basis (no pivot, O(m) instead of O(m·n)).
  std::uint64_t bound_flips = 0;

  SolveStats& operator+=(const SolveStats& o) {
    solves += o.solves;
    warm_solves += o.warm_solves;
    cold_solves += o.cold_solves;
    structure_misses += o.structure_misses;
    rhs_rejections += o.rhs_rejections;
    dual_recoveries += o.dual_recoveries;
    repair_rejections += o.repair_rejections;
    refreshes += o.refreshes;
    pivots += o.pivots;
    bound_flips += o.bound_flips;
    return *this;
  }
};

/// Reusable solve pipeline: owns the prepared standard form, the cached
/// optimal basis/tableau, and all pivot scratch space. One context per
/// logically-recurring program (e.g. one per scheduler stage); contexts are
/// not thread-safe — callers serialize access.
class SolveContext {
 public:
  SolveContext();
  ~SolveContext();
  SolveContext(SolveContext&&) noexcept;
  SolveContext& operator=(SolveContext&&) noexcept;
  SolveContext(const SolveContext&) = delete;
  SolveContext& operator=(const SolveContext&) = delete;

  /// Solves @p problem, warm-starting from the previous call's basis when
  /// the problem layout matches. Results are status/objective-equivalent to
  /// a cold lp::solve of the same problem (alternate optima may place the
  /// optimum at a different vertex).
  Solution solve(const Problem& problem, const SolverOptions& options = {});

  /// Drops the cached basis; the next solve runs cold.
  void invalidate();

  const SolveStats& stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sharegrid::lp
