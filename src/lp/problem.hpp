// Linear program model builder.
//
// Both of the paper's scheduling metrics (§3.1.2) — max-min global response
// time and provider income — are expressed as small linear programs solved
// every 100 ms time window, so the builder favours clarity and safety over
// large-scale sparsity machinery.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace sharegrid::lp {

/// Optimization direction.
enum class Sense { kMaximize, kMinimize };

/// Constraint relation.
enum class Relation { kLessEq, kGreaterEq, kEqual };

/// Sentinel for "no upper bound".
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// One linear constraint: sum(coeff * var) REL rhs.
struct Constraint {
  std::vector<std::pair<std::size_t, double>> terms;
  Relation relation = Relation::kLessEq;
  double rhs = 0.0;
};

/// A linear program over variables x_0 .. x_{n-1} with per-variable bounds.
///
/// Variables default to bounds [0, +inf) and objective coefficient 0.
class Problem {
 public:
  explicit Problem(std::size_t num_vars, Sense sense = Sense::kMaximize)
      : sense_(sense),
        objective_(num_vars, 0.0),
        lower_(num_vars, 0.0),
        upper_(num_vars, kInfinity) {}

  std::size_t num_vars() const { return objective_.size(); }
  std::size_t num_constraints() const { return constraints_.size(); }
  Sense sense() const { return sense_; }

  /// Sets the objective coefficient of @p var.
  void set_objective(std::size_t var, double coeff) {
    SHAREGRID_EXPECTS(var < num_vars());
    objective_[var] = coeff;
  }

  /// Sets bounds lo <= x_var <= hi (hi may be kInfinity; lo == hi fixes the
  /// variable). NaN bounds and lo > hi are rejected: a NaN would otherwise
  /// slip through ordered comparisons (every `NaN <= x` is false) and
  /// poison the solve as a spurious infeasibility or a silent wrong answer.
  void set_bounds(std::size_t var, double lo, double hi) {
    SHAREGRID_EXPECTS(var < num_vars());
    SHAREGRID_EXPECTS(!std::isnan(lo) && !std::isnan(hi));
    SHAREGRID_EXPECTS(lo <= hi);
    lower_[var] = lo;
    upper_[var] = hi;
  }

  /// Adds a constraint from sparse (variable, coefficient) terms.
  /// Returns the constraint's index.
  std::size_t add_constraint(std::vector<std::pair<std::size_t, double>> terms,
                             Relation relation, double rhs) {
    for (const auto& [var, coeff] : terms) {
      SHAREGRID_EXPECTS(var < num_vars());
      (void)coeff;
    }
    constraints_.push_back({std::move(terms), relation, rhs});
    return constraints_.size() - 1;
  }

  const std::vector<double>& objective() const { return objective_; }
  const std::vector<double>& lower_bounds() const { return lower_; }
  const std::vector<double>& upper_bounds() const { return upper_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

 private:
  Sense sense_;
  std::vector<double> objective_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<Constraint> constraints_;
};

}  // namespace sharegrid::lp
