// Two-phase primal simplex solver.
//
// Self-contained dense implementation sized for the paper's workload: one LP
// per scheduling window whose dimensions depend only on the number of
// principals, "expected to be small" (§3.1.2). Uses Dantzig pricing with an
// automatic switch to Bland's rule to guarantee termination on the highly
// degenerate programs the schedulers produce.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/problem.hpp"

namespace sharegrid::lp {

/// Solver outcome. kIterationLimit means the pivot budget ran out before a
/// verdict; callers on a per-window hot path should treat it as "no fresh
/// plan this window" (keep the previous one), never as a crash.
enum class Status { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

/// Result of solving a Problem.
struct Solution {
  Status status = Status::kInfeasible;
  /// Objective value in the problem's own sense (valid when kOptimal).
  double objective = 0.0;
  /// Value per variable (valid when kOptimal).
  std::vector<double> values;
  /// Optimal basis: the standard-form column basic in each tableau row
  /// (valid when kOptimal). Carried so the next window's solve can re-enter
  /// phase 2 from here instead of rebuilding from scratch; column indices
  /// are internal (structural < n, then slack/surplus, then artificial).
  std::vector<std::size_t> basis;
  /// True when this solve re-entered phase 2 from a cached basis instead of
  /// running the full two-phase method (see lp::SolveContext).
  bool warm_started = false;

  bool optimal() const { return status == Status::kOptimal; }
};

/// Solver tuning knobs; defaults are appropriate for window-scheduling LPs.
struct SolverOptions {
  /// Numerical tolerance for optimality/feasibility tests.
  double tolerance = 1e-9;
  /// Pivot count after which pricing falls back to Bland's rule.
  std::size_t bland_after = 200;
  /// Hard cap on pivots (guards against pathological inputs).
  std::size_t max_iterations = 100000;
  /// Warm solves allowed between full (cold) refactorizations in a
  /// SolveContext. Bounds floating-point drift in the reused tableau;
  /// 0 disables warm starting entirely.
  std::size_t warm_refresh_interval = 64;
};

/// Solves @p problem from scratch (cold); never throws on infeasible /
/// unbounded / iteration-limited inputs (reported via Solution::status).
/// Throws ContractViolation on malformed input only. Per-window callers that
/// re-solve structurally identical programs should hold a lp::SolveContext
/// (lp/solve_context.hpp) instead and let it warm-start.
Solution solve(const Problem& problem, const SolverOptions& options = {});

}  // namespace sharegrid::lp
