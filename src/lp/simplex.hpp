// Two-phase primal simplex solver.
//
// Self-contained dense implementation sized for the paper's workload: one LP
// per scheduling window whose dimensions depend only on the number of
// principals, "expected to be small" (§3.1.2). Uses Dantzig pricing with an
// automatic switch to Bland's rule to guarantee termination on the highly
// degenerate programs the schedulers produce.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/problem.hpp"

namespace sharegrid::lp {

/// Solver outcome.
enum class Status { kOptimal, kInfeasible, kUnbounded };

/// Result of solving a Problem.
struct Solution {
  Status status = Status::kInfeasible;
  /// Objective value in the problem's own sense (valid when kOptimal).
  double objective = 0.0;
  /// Value per variable (valid when kOptimal).
  std::vector<double> values;

  bool optimal() const { return status == Status::kOptimal; }
};

/// Solver tuning knobs; defaults are appropriate for window-scheduling LPs.
struct SolverOptions {
  /// Numerical tolerance for optimality/feasibility tests.
  double tolerance = 1e-9;
  /// Pivot count after which pricing falls back to Bland's rule.
  std::size_t bland_after = 200;
  /// Hard cap on pivots (guards against pathological inputs).
  std::size_t max_iterations = 100000;
};

/// Solves @p problem; never throws on infeasible/unbounded inputs (reported
/// via Solution::status). Throws ContractViolation on malformed input only.
Solution solve(const Problem& problem, const SolverOptions& options = {});

}  // namespace sharegrid::lp
