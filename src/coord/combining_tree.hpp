// The combining-tree aggregation network (§3.2).
//
// Redirectors periodically contribute their local per-principal queue-length
// vectors; reports travel leaf-to-root, are summed element-wise at each hop,
// and the root's aggregate is broadcast back down — 2(n-1) messages per round
// versus O(n^2) for pairwise exchange. Links have a configurable one-way
// delay, so receivers observe aggregates that lag true state by up to
// 2 * depth * delay; the Figure 8 experiment sets this lag to 10 seconds.
// Rounds may overlap in flight when the lag exceeds the round period.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "coord/topology.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace sharegrid::coord {

/// Combining-tree configuration.
struct TreeConfig {
  /// How often an aggregation round starts.
  SimDuration period = 100 * kMillisecond;
  /// One-way delay of every tree link (same up and down).
  SimDuration link_delay = 0;
  /// Length of the aggregated vector (one slot per principal).
  std::size_t vector_size = 0;
};

/// Event-driven combining tree running on a Simulator.
class CombiningTree {
 public:
  /// Samples a participant's local contribution at round start.
  using Provider = std::function<std::vector<double>()>;
  /// Delivers the completed global aggregate to a participant, tagged with
  /// the originating round. Uniform link delays mean rounds complete in
  /// start order, so receivers observe strictly increasing round numbers
  /// (with gaps where rounds were abandoned) — the monotonicity the
  /// control-plane audit pins.
  using Receiver =
      std::function<void(std::uint64_t round, const std::vector<double>&)>;

  CombiningTree(sim::Simulator* sim, TreeTopology topology, TreeConfig config);

  /// Attaches a participant to tree node @p node. Nodes without a provider
  /// contribute zeros (pure interior nodes); nodes without a receiver simply
  /// forward. Call before start().
  void attach(std::size_t node, Provider provider, Receiver receiver);

  /// Starts periodic aggregation rounds at @p first_round.
  void start(SimTime first_round);

  /// Stops future rounds (in-flight messages still drain).
  void stop();

  /// Failure injection: while any node is marked failed, no *new* round can
  /// complete (the root transitively waits on every node), so rounds are
  /// abandoned at start and downstream receivers keep acting on their last
  /// snapshot — the same graceful-staleness path as network delay (§3.2).
  /// Rounds already in flight when the failure is injected still complete;
  /// recovery rejoins from the next round on.
  void set_node_failed(std::size_t node, bool failed);
  bool node_failed(std::size_t node) const;

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t rounds_completed() const { return rounds_completed_; }
  /// Rounds that began but can no longer complete due to failed nodes.
  std::uint64_t rounds_abandoned() const { return rounds_abandoned_; }

 private:
  struct NodeState {
    Provider provider;
    Receiver receiver;
  };
  /// Per-round partial aggregation at one interior node.
  struct RoundSlot {
    std::vector<double> sum;
    std::size_t reports_pending = 0;
    /// Created at round start, cleared when the node forwards its partial
    /// sum; replaces the old map erase.
    bool live = false;
  };
  /// All per-node slots of one in-flight round, stored in a ring bucket
  /// (`round % rounds_.size()`). The ring replaces a
  /// `std::map<(round, node), RoundSlot>` whose node churn dominated every
  /// snapshot exchange: slot vectors are now allocated once and reused, and
  /// lookup is two indexed loads. Capacity bounds the number of live rounds
  /// — a round holds slots only during its up phase (≤ depth * link_delay),
  /// and begin_round asserts the reclaimed bucket has drained.
  struct RoundFrame {
    std::uint64_t round = 0;
    bool live = false;
    std::size_t live_slots = 0;
    std::vector<RoundSlot> slots;  // indexed by node
  };

  void begin_round(std::uint64_t round);
  void deliver_report(std::uint64_t round, std::size_t node,
                      const std::vector<double>& value);
  void forward_up(std::uint64_t round, std::size_t node);
  void broadcast_down(std::uint64_t round, std::size_t node,
                      const std::vector<double>& aggregate);

  sim::Simulator* sim_;
  TreeTopology topology_;
  std::vector<std::vector<std::size_t>> children_;
  TreeConfig config_;
  std::vector<NodeState> nodes_;
  // Ring of in-flight rounds; see RoundFrame.
  std::vector<RoundFrame> rounds_;
  std::unique_ptr<sim::PeriodicTask> task_;
  std::vector<bool> failed_;
  std::uint64_t next_round_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t rounds_completed_ = 0;
  std::uint64_t rounds_abandoned_ = 0;
};

/// Pairwise full exchange: the O(n^2)-message alternative the paper compares
/// against. Same Provider/Receiver interface so benches can swap strategies.
class PairwiseExchange {
 public:
  PairwiseExchange(sim::Simulator* sim, std::size_t node_count,
                   TreeConfig config);

  void attach(std::size_t node, CombiningTree::Provider provider,
              CombiningTree::Receiver receiver);
  void start(SimTime first_round);
  void stop();

  std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  void begin_round();

  sim::Simulator* sim_;
  TreeConfig config_;
  std::vector<CombiningTree::Provider> providers_;
  std::vector<CombiningTree::Receiver> receivers_;
  std::unique_ptr<sim::PeriodicTask> task_;
  std::uint64_t next_round_ = 0;
  std::uint64_t messages_sent_ = 0;
};

}  // namespace sharegrid::coord
