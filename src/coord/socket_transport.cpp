#include "coord/socket_transport.hpp"

#include <utility>

#include "audit/invariant_auditor.hpp"
#include "util/assert.hpp"
#include "util/metrics_registry.hpp"

namespace sharegrid::coord {
namespace {

util::MetricCounter& rejected_counter() {
  static util::MetricCounter& counter = util::global_metrics().counter(
      "coord.socket.frames_rejected",
      "malformed or unexpected control-plane frames dropped");
  return counter;
}
util::MetricCounter& abandoned_counter() {
  static util::MetricCounter& counter = util::global_metrics().counter(
      "coord.socket.rounds_abandoned",
      "snapshot rounds abandoned at the deadline with reports missing");
  return counter;
}
util::MetricCounter& stale_counter() {
  static util::MetricCounter& counter = util::global_metrics().counter(
      "coord.socket.stale_fallbacks",
      "staleness threshold hits that dropped members to the 1/R regime");
  return counter;
}

/// Parses the port of a "host:port" peer entry, enforcing the loopback-only
/// contract of net::Socket.
std::uint16_t parse_loopback_port(const std::string& peer) {
  const std::size_t colon = peer.find_last_of(':');
  if (colon == std::string::npos || colon + 1 >= peer.size())
    throw ContractViolation("SocketTransport: peer '" + peer +
                            "' must look like 'host:port'");
  const std::string host = peer.substr(0, colon);
  if (host != "127.0.0.1" && host != "localhost")
    throw ContractViolation(
        "SocketTransport: peer '" + peer +
        "' is not loopback; the control plane's sockets are loopback-only "
        "by design (src/net/tcp.hpp)");
  int port = 0;
  try {
    port = std::stoi(peer.substr(colon + 1));
  } catch (const std::exception&) {
    port = -1;
  }
  if (port < 0 || port > 65535)
    throw ContractViolation("SocketTransport: peer '" + peer +
                            "' has an invalid port");
  return static_cast<std::uint16_t>(port);
}

}  // namespace

SocketTransport::SocketTransport(std::size_t local_member_count,
                                 std::size_t vector_size, Options options)
    : local_member_count_(local_member_count),
      vector_size_(vector_size),
      options_(std::move(options)),
      fleet_size_(options_.fleet_size != 0 ? options_.fleet_size
                                           : options_.peers.size()),
      providers_(local_member_count),
      receivers_(local_member_count),
      stale_handlers_(local_member_count) {
  SHAREGRID_EXPECTS(local_member_count >= 1);
  SHAREGRID_EXPECTS(vector_size >= 1);
  SHAREGRID_EXPECTS(!options_.peers.empty());
  SHAREGRID_EXPECTS(options_.process_index < options_.peers.size());
  SHAREGRID_EXPECTS(options_.member_offset + local_member_count <=
                    fleet_size_);
  SHAREGRID_EXPECTS(options_.round_period_usec > 0);
  SHAREGRID_EXPECTS(options_.round_deadline_usec > 0);
  SHAREGRID_EXPECTS(options_.dial_retry_usec > 0);
  SHAREGRID_EXPECTS(options_.io_timeout_ms > 0);
  // Every peer entry must parse up front, not when first dialed.
  for (const std::string& peer : options_.peers) parse_loopback_port(peer);
}

SocketTransport::~SocketTransport() { stop(); }

void SocketTransport::attach(std::size_t member, Provider provider,
                             Receiver receiver) {
  SHAREGRID_EXPECTS(member < local_member_count_);
  providers_[member] = std::move(provider);
  receivers_[member] = std::move(receiver);
}

void SocketTransport::attach_stale_handler(std::size_t member,
                                           std::function<void()> on_stale) {
  SHAREGRID_EXPECTS(member < local_member_count_);
  stale_handlers_[member] = std::move(on_stale);
}

void SocketTransport::start() {
  SHAREGRID_EXPECTS(!running_.load());
  round_open_ = false;
  current_round_ = 0;
  next_round_start_usec_ = 0;
  has_delivered_ = false;
  last_delivered_round_ = 0;
  stale_fired_ = false;
  dialed_ = false;
  next_dial_usec_ = 0;
  report_slots_.assign(fleet_size_, {});
  report_seen_.assign(fleet_size_, false);
  reports_pending_ = 0;
  running_.store(true);
  if (is_root()) {
    const std::uint16_t port = options_.listen_port != 0
                                   ? options_.listen_port
                                   : parse_loopback_port(options_.peers[0]);
    listener_ = net::Socket::listen_on_loopback(port);
    listener_.set_read_timeout_ms(options_.io_timeout_ms);
    listen_port_ = listener_.local_port();
    acceptor_ = std::thread([this] { accept_loop(); });
  }
  // Leaves dial from poll(): start() stays clock-free, and a root that is
  // not up yet is a retry, not a failure.
}

void SocketTransport::stop() {
  if (!running_.exchange(false)) return;
  // Wake every blocked syscall first, then join outside the lock: a reader
  // that is mid-push into the inbox needs the mutex to finish exiting.
  if (listener_.valid()) listener_.shutdown();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    const util::MutexLock lock(mutex_);
    for (const auto& conn : conns_) conn->sock.shutdown();
    conns.swap(conns_);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (const auto& conn : conns)
    if (conn->reader.joinable()) conn->reader.join();
  listener_.close();
  const util::MutexLock lock(mutex_);
  inbox_.clear();
}

void SocketTransport::accept_loop() {
  while (running_.load()) {
    net::Socket sock;
    try {
      sock = listener_.try_accept();
    } catch (const ContractViolation&) {
      if (!running_.load()) break;
      continue;  // transient accept failure; keep listening
    }
    if (!sock.valid()) continue;  // timeout or shutdown wake-up
    if (!running_.load()) break;
    sock.set_read_timeout_ms(options_.io_timeout_ms);
    const util::MutexLock lock(mutex_);
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(sock);
    Conn* raw = conn.get();
    const std::size_t index = conns_.size();
    conns_.push_back(std::move(conn));
    raw->reader = std::thread([this, raw, index] { reader_loop(raw, index); });
    peers_connected_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SocketTransport::reader_loop(Conn* conn, std::size_t conn_index) {
  // Dumb pump: bytes -> frames -> inbox. No protocol state lives here; a
  // reader cannot race the round logic because poll() owns all of it.
  net::FrameReader frames(/*max_frame_bytes=*/1 << 20);
  bool abort = false;
  while (!abort && running_.load()) {
    const net::ReadResult result = conn->sock.read_some();
    if (result.status == net::ReadStatus::kTimedOut) continue;
    if (result.status == net::ReadStatus::kClosed) break;
    frames.feed(result.data);
    std::string payload;
    while (!abort) {
      const net::FrameReader::Event event = frames.next(&payload);
      if (event == net::FrameReader::Event::kNeedMore) break;
      if (event == net::FrameReader::Event::kOversized) {
        // Framing is unrecoverable: count it and drop the connection.
        reject_frame("oversized length prefix");
        conn->sock.shutdown();
        abort = true;
        break;
      }
      wire::Frame frame;
      const wire::DecodeStatus status = wire::decode(payload, &frame);
      if (status != wire::DecodeStatus::kOk) {
        reject_frame(wire::to_string(status));
        continue;
      }
      const util::MutexLock lock(mutex_);
      inbox_.push_back({conn_index, false, std::move(frame)});
    }
  }
  conn->closed.store(true);
  const util::MutexLock lock(mutex_);
  inbox_.push_back({conn_index, true, {}});
}

void SocketTransport::reject_frame(const char* why) {
  frames_rejected_.fetch_add(1, std::memory_order_relaxed);
  rejected_counter().add();
  const util::MutexLock lock(mutex_);
  last_reject_reason_ = why;
}

std::vector<SocketTransport::Inbound> SocketTransport::take_inbox() {
  const util::MutexLock lock(mutex_);
  std::vector<Inbound> taken;
  taken.swap(inbox_);
  return taken;
}

void SocketTransport::send_to_conn(std::size_t conn_index,
                                   const std::string& bytes) {
  const util::MutexLock lock(mutex_);
  if (conn_index >= conns_.size()) return;
  Conn* conn = conns_[conn_index].get();
  if (conn->closed.load()) return;
  try {
    conn->sock.write_frame(bytes);
  } catch (const ContractViolation&) {
    conn->closed.store(true);  // peer died mid-send; readers notice too
  }
}

void SocketTransport::broadcast(const std::string& bytes) {
  const util::MutexLock lock(mutex_);
  for (const auto& conn : conns_) {
    if (conn->closed.load()) continue;
    try {
      conn->sock.write_frame(bytes);
    } catch (const ContractViolation&) {
      conn->closed.store(true);
    }
  }
}

void SocketTransport::poll(std::int64_t now_usec) {
  if (!running_.load()) return;
  if (is_root())
    poll_root(now_usec);
  else
    poll_leaf(now_usec);
  check_staleness(now_usec);
}

void SocketTransport::poll_root(std::int64_t now_usec) {
  for (Inbound& in : take_inbox()) {
    if (in.disconnected) continue;  // missing reports will hit the deadline
    if (in.frame.type != wire::FrameType::kReport) {
      reject_frame("unexpected frame type at root");
      continue;
    }
    if (!round_open_ || in.frame.round != current_round_) {
      reject_frame("stale round tag");
      continue;
    }
    if (in.frame.member >= fleet_size_) {
      reject_frame("member index out of range");
      continue;
    }
    if (report_seen_[in.frame.member]) {
      reject_frame("duplicate member report");
      continue;
    }
    if (in.frame.values.size() != vector_size_) {
      reject_frame("report vector size mismatch");
      continue;
    }
    report_seen_[in.frame.member] = true;
    report_slots_[in.frame.member] = std::move(in.frame.values);
    --reports_pending_;
  }

  if (round_open_ && reports_pending_ == 0) {
    // Sum in global member order — the same floating-point order
    // InProcessTransport::exchange uses, so the aggregates (and therefore
    // the plans) match it bitwise.
    std::vector<double> sum(vector_size_, 0.0);
    for (std::size_t m = 0; m < fleet_size_; ++m)
      for (std::size_t i = 0; i < vector_size_; ++i)
        sum[i] += report_slots_[m][i];
    round_open_ = false;
    rounds_completed_.fetch_add(1, std::memory_order_relaxed);
    // Star accounting: one logical broadcast down per member.
    messages_sent_.fetch_add(fleet_size_, std::memory_order_relaxed);
    deliver_aggregate(current_round_, sum, now_usec);
    wire::Frame down;
    down.type = wire::FrameType::kAggregate;
    down.round = current_round_;
    down.values = std::move(sum);
    broadcast(wire::encode(down));
  }

  if (round_open_ &&
      now_usec - round_started_usec_ >= options_.round_deadline_usec) {
    round_open_ = false;
    rounds_abandoned_.fetch_add(1, std::memory_order_relaxed);
    abandoned_counter().add();
  }

  // Hold round 1 until the whole fleet has connected once, so a slow peer
  // start-up shows as a later first round, not a gap.
  const bool fleet_assembled =
      peers_connected_.load(std::memory_order_relaxed) + 1 >=
      options_.peers.size();
  if (!round_open_ && fleet_assembled && now_usec >= next_round_start_usec_) {
    ++current_round_;
    round_open_ = true;
    round_started_usec_ = now_usec;
    next_round_start_usec_ = now_usec + options_.round_period_usec;
    report_seen_.assign(fleet_size_, false);
    reports_pending_ = fleet_size_;
    if (options_.on_round_start) options_.on_round_start(current_round_);
    sample_local_members(current_round_);
    wire::Frame kick;
    kick.type = wire::FrameType::kRoundStart;
    kick.round = current_round_;
    broadcast(wire::encode(kick));
  }
}

void SocketTransport::poll_leaf(std::int64_t now_usec) {
  if (!dialed_ && now_usec >= next_dial_usec_) {
    try {
      net::Socket sock =
          net::Socket::connect_loopback(parse_loopback_port(options_.peers[0]));
      sock.set_read_timeout_ms(options_.io_timeout_ms);
      const util::MutexLock lock(mutex_);
      auto conn = std::make_unique<Conn>();
      conn->sock = std::move(sock);
      Conn* raw = conn.get();
      const std::size_t index = conns_.size();
      conns_.push_back(std::move(conn));
      raw->reader =
          std::thread([this, raw, index] { reader_loop(raw, index); });
      leaf_conn_index_ = index;
      dialed_ = true;
    } catch (const ContractViolation&) {
      next_dial_usec_ = now_usec + options_.dial_retry_usec;
    }
  }

  for (Inbound& in : take_inbox()) {
    if (in.disconnected) continue;  // staleness handles a dead root
    switch (in.frame.type) {
      case wire::FrameType::kRoundStart: {
        // current_round_ doubles as "highest round-start seen" on a leaf.
        if (in.frame.round <= current_round_) {
          reject_frame("stale round tag");
          break;
        }
        current_round_ = in.frame.round;
        if (options_.on_round_start) options_.on_round_start(current_round_);
        sample_local_members(current_round_);
        break;
      }
      case wire::FrameType::kAggregate: {
        if (in.frame.values.size() != vector_size_) {
          reject_frame("aggregate vector size mismatch");
          break;
        }
        if (has_delivered_ && in.frame.round <= last_delivered_round_) {
          reject_frame("stale round tag");
          break;
        }
        deliver_aggregate(in.frame.round, in.frame.values, now_usec);
        break;
      }
      default:
        reject_frame("unexpected frame type at leaf");
        break;
    }
  }
}

void SocketTransport::sample_local_members(std::uint64_t round) {
  for (std::size_t m = 0; m < local_member_count_; ++m) {
    // An unattached member contributes zeros, like InProcessTransport
    // skipping a null provider — the round must still complete.
    std::vector<double> local = providers_[m]
                                    ? providers_[m]()
                                    : std::vector<double>(vector_size_, 0.0);
    SHAREGRID_ASSERT(local.size() == vector_size_);
    const std::size_t global = options_.member_offset + m;
    messages_sent_.fetch_add(1, std::memory_order_relaxed);  // report up
    if (is_root()) {
      report_seen_[global] = true;
      report_slots_[global] = std::move(local);
      --reports_pending_;
    } else {
      wire::Frame up;
      up.type = wire::FrameType::kReport;
      up.round = round;
      up.member = static_cast<std::uint32_t>(global);
      up.values = std::move(local);
      send_to_conn(leaf_conn_index_, wire::encode(up));
    }
  }
}

void SocketTransport::deliver_aggregate(std::uint64_t round,
                                        const std::vector<double>& sum,
                                        std::int64_t now_usec) {
  SHAREGRID_AUDIT_HOOK(audit::audit_round_tag_monotone(
      has_delivered_, last_delivered_round_, round));
  has_delivered_ = true;
  last_delivered_round_ = round;
  last_delivery_usec_ = now_usec;
  stale_fired_ = false;  // a fresh aggregate re-arms the staleness trip
  for (std::size_t m = 0; m < local_member_count_; ++m)
    if (receivers_[m]) receivers_[m](round, sum);
}

void SocketTransport::check_staleness(std::int64_t now_usec) {
  // Nothing delivered yet = the members never left the conservative regime;
  // there is nothing to fall back from.
  if (!has_delivered_ || stale_fired_) return;
  const std::int64_t stale_after =
      options_.stale_after_usec > 0
          ? options_.stale_after_usec
          : options_.round_period_usec + options_.round_deadline_usec;
  if (now_usec - last_delivery_usec_ < stale_after) return;
  stale_fired_ = true;
  stale_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  stale_counter().add();
  for (const auto& handler : stale_handlers_)
    if (handler) handler();
}

std::string SocketTransport::last_reject_reason() const {
  const util::MutexLock lock(mutex_);
  return last_reject_reason_;
}

}  // namespace sharegrid::coord
