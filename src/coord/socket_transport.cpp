#include "coord/socket_transport.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "audit/invariant_auditor.hpp"
#include "util/assert.hpp"
#include "util/metrics_registry.hpp"

namespace sharegrid::coord {
namespace {

util::MetricCounter& rejected_counter() {
  static util::MetricCounter& counter = util::global_metrics().counter(
      "coord.socket.frames_rejected",
      "malformed or unexpected control-plane frames dropped");
  return counter;
}
util::MetricCounter& abandoned_counter() {
  static util::MetricCounter& counter = util::global_metrics().counter(
      "coord.socket.rounds_abandoned",
      "snapshot rounds abandoned at the deadline with reports missing");
  return counter;
}
util::MetricCounter& stale_counter() {
  static util::MetricCounter& counter = util::global_metrics().counter(
      "coord.socket.stale_fallbacks",
      "staleness threshold hits that dropped members to the 1/R regime");
  return counter;
}
util::MetricCounter& elections_counter() {
  static util::MetricCounter& counter = util::global_metrics().counter(
      "coord.socket.elections",
      "root leases acquired by this process after detecting expiry");
  return counter;
}

constexpr std::int64_t kNeverRefused = std::numeric_limits<std::int64_t>::min();

}  // namespace

SocketTransport::SocketTransport(std::size_t local_member_count,
                                 std::size_t vector_size, Options options)
    : local_member_count_(local_member_count),
      vector_size_(vector_size),
      options_(std::move(options)),
      fleet_size_(options_.fleet_size != 0 ? options_.fleet_size
                                           : options_.peers.size()),
      providers_(local_member_count),
      receivers_(local_member_count),
      stale_handlers_(local_member_count) {
  SHAREGRID_EXPECTS(local_member_count >= 1);
  SHAREGRID_EXPECTS(vector_size >= 1);
  SHAREGRID_EXPECTS(!options_.peers.empty());
  SHAREGRID_EXPECTS(options_.process_index < options_.peers.size());
  SHAREGRID_EXPECTS(options_.incarnation >= 1);
  SHAREGRID_EXPECTS(options_.member_offset + local_member_count <=
                    fleet_size_);
  SHAREGRID_EXPECTS(options_.round_period_usec > 0);
  SHAREGRID_EXPECTS(options_.round_deadline_usec > 0);
  SHAREGRID_EXPECTS(options_.lease_ttl_usec > 0);
  SHAREGRID_EXPECTS(options_.heartbeat_usec >= 0);
  SHAREGRID_EXPECTS(options_.io_timeout_ms > 0);
  SessionManager::Options session;
  session.peers = options_.peers;
  session.self_index = options_.process_index;
  session.incarnation = options_.incarnation;
  session.listen_port = options_.listen_port;
  session.allow_nonlocal = options_.allow_nonlocal;
  session.reconnect_base_usec = options_.reconnect_base_usec;
  session.reconnect_max_usec = options_.reconnect_max_usec;
  session.hello_timeout_usec = options_.hello_timeout_usec;
  session.io_timeout_ms = options_.io_timeout_ms;
  session.hello_aux =
      (static_cast<std::uint64_t>(options_.member_offset) << 32) |
      static_cast<std::uint64_t>(local_member_count_);
  session.on_reject = [this](const char* why) { reject_frame(why); };
  session_ = std::make_unique<SessionManager>(std::move(session));
}

SocketTransport::~SocketTransport() { stop(); }

void SocketTransport::attach(std::size_t member, Provider provider,
                             Receiver receiver) {
  SHAREGRID_EXPECTS(member < local_member_count_);
  providers_[member] = std::move(provider);
  receivers_[member] = std::move(receiver);
}

void SocketTransport::attach_stale_handler(std::size_t member,
                                           std::function<void()> on_stale) {
  SHAREGRID_EXPECTS(member < local_member_count_);
  stale_handlers_[member] = std::move(on_stale);
}

void SocketTransport::start() {
  SHAREGRID_EXPECTS(!running_.load());
  // Process 0 at incarnation 1 bootstraps the lease; every other process —
  // including a restarted process 0 — starts as a follower and adopts the
  // lease the current root sends it on session establishment.
  role_root_ = options_.process_index == 0 && options_.incarnation == 1;
  lease_known_ = false;
  lease_root_ = 0;
  lease_inc_ = role_root_ ? 1 : 0;
  lease_expiry_usec_ = 0;
  highest_inc_seen_ = lease_inc_;
  next_heartbeat_usec_ = 0;
  electing_ = false;
  last_refusal_usec_.assign(options_.peers.size(), kNeverRefused);
  processes_.assign(options_.peers.size(), Process{});
  processes_[options_.process_index].range_known = true;
  processes_[options_.process_index].member_offset = options_.member_offset;
  processes_[options_.process_index].member_count = local_member_count_;
  round_open_ = false;
  current_round_ = 0;
  next_round_start_usec_ = 0;
  report_slots_.assign(fleet_size_, {});
  report_seen_.assign(fleet_size_, false);
  reports_pending_ = 0;
  last_round_members_ = 0;
  has_delivered_ = false;
  last_delivered_round_ = 0;
  stale_fired_ = false;
  session_->start();
  // Full mesh: any process may need to reach any other (reports to a future
  // root, refusal evidence from dead lower-index peers during an election).
  for (std::size_t p = 0; p < options_.peers.size(); ++p)
    if (p != options_.process_index) session_->want(p, true);
  running_.store(true);
}

void SocketTransport::stop() {
  if (!running_.exchange(false)) return;
  session_->stop();
}

void SocketTransport::reject_frame(const char* why) {
  frames_rejected_.fetch_add(1, std::memory_order_relaxed);
  rejected_counter().add();
  const util::MutexLock lock(mutex_);
  last_reject_reason_ = why;
}

std::string SocketTransport::last_reject_reason() const {
  const util::MutexLock lock(mutex_);
  return last_reject_reason_;
}

void SocketTransport::poll(std::int64_t now_usec) {
  if (!running_.load()) return;
  session_->poll(now_usec);
  for (const SessionManager::Event& event : session_->take_events())
    handle_event(event, now_usec);
  if (!role_root_) maybe_elect(now_usec);
  if (role_root_) {
    const std::int64_t heartbeat = options_.heartbeat_usec > 0
                                       ? options_.heartbeat_usec
                                       : options_.lease_ttl_usec / 3;
    if (now_usec >= next_heartbeat_usec_) {
      session_->broadcast(lease_bytes());
      next_heartbeat_usec_ = now_usec + heartbeat;
    }
    poll_round_root(now_usec);
  }
  check_staleness(now_usec);
}

void SocketTransport::handle_event(const SessionManager::Event& event,
                                   std::int64_t now_usec) {
  switch (event.kind) {
    case SessionManager::Event::Kind::kPeerUp: {
      const std::size_t offset =
          static_cast<std::size_t>(event.aux >> 32);
      const std::size_t count =
          static_cast<std::size_t>(event.aux & 0xffffffffu);
      if (count == 0 || offset + count > fleet_size_) {
        reject_frame("hello member range out of range");
        session_->disconnect(event.peer);
        return;
      }
      processes_[event.peer].range_known = true;
      processes_[event.peer].member_offset = offset;
      processes_[event.peer].member_count = count;
      // The root introduces itself to every newcomer immediately, so a
      // rejoining process adopts the lease before the first round-start it
      // sees (frames on one session are ordered).
      if (role_root_) send_lease(event.peer);
      return;
    }
    case SessionManager::Event::Kind::kPeerDown:
      // Membership changes only at round boundaries: an open round that
      // just lost a reporter runs into its deadline, and the next
      // open_round() captures the shrunken live set.
      return;
    case SessionManager::Event::Kind::kDialRefused:
      last_refusal_usec_[event.peer] = now_usec;
      return;
    case SessionManager::Event::Kind::kFrame:
      break;
  }
  wire::Frame frame = event.frame;
  switch (frame.type) {
    case wire::FrameType::kLease:
      handle_lease(event.peer, frame, now_usec);
      return;
    case wire::FrameType::kLeaseAck:
      handle_lease_ack(event.peer, frame);
      return;
    case wire::FrameType::kReport:
      if (!role_root_) {
        // A reporter that still believes we hold the lease; its report is
        // for a round that died with our tenure.
        reject_frame("report at non-root");
        return;
      }
      handle_report(event.peer, frame);
      return;
    case wire::FrameType::kRoundStart:
      if (role_root_) {
        fence_zombie_root(event.peer, "round start from rival root");
        return;
      }
      handle_round_start(event.peer, frame, now_usec);
      return;
    case wire::FrameType::kAggregate:
      if (role_root_) {
        fence_zombie_root(event.peer, "aggregate from rival root");
        return;
      }
      handle_aggregate(event.peer, frame, now_usec);
      return;
    case wire::FrameType::kHello:
      reject_frame("unexpected hello frame");  // the session layer owns these
      return;
  }
}

void SocketTransport::handle_lease(std::size_t from, const wire::Frame& frame,
                                   std::int64_t now_usec) {
  if (frame.member != from) {
    reject_frame("lease root mismatch");
    return;
  }
  if (frame.aux == 0) {
    reject_frame("lease ttl zero");
    return;
  }
  const std::uint64_t inc = frame.incarnation;
  if (inc < highest_inc_seen_) {
    // A zombie root still advertising a superseded lease: reject it and
    // answer with the incarnation that displaced it so it steps down.
    fence_zombie_root(from, "stale lease incarnation");
    return;
  }
  if (role_root_) {
    if (inc > lease_inc_) {
      step_down(inc);
    } else {
      // Same incarnation, different holder: that is a genuine split brain,
      // and the audit below is the one that fires on it.
      SHAREGRID_AUDIT_HOOK(audit::audit_lease_monotone(
          true, lease_inc_, options_.process_index, inc, frame.member));
      reject_frame("rival lease at same incarnation");
      return;
    }
  }
  SHAREGRID_AUDIT_HOOK(audit::audit_lease_monotone(
      lease_known_, lease_inc_, lease_root_, inc, frame.member));
  lease_known_ = true;
  lease_root_ = from;
  lease_inc_ = inc;
  highest_inc_seen_ = inc;
  lease_expiry_usec_ = now_usec + static_cast<std::int64_t>(frame.aux);
  electing_ = false;
  // Ack with our highest round so a freshly elected root fast-forwards its
  // round counter above anything we have seen or delivered.
  wire::Frame ack;
  ack.type = wire::FrameType::kLeaseAck;
  ack.member = static_cast<std::uint32_t>(options_.process_index);
  ack.incarnation = inc;
  ack.round = std::max(current_round_, last_delivered_round_);
  session_->send(from, wire::encode(ack));
}

void SocketTransport::handle_lease_ack(std::size_t from,
                                       const wire::Frame& frame) {
  if (role_root_) {
    if (frame.incarnation > lease_inc_) {
      // The fence: a receiver we tried to drive rounds on is operating
      // under a newer lease. Our tenure is over.
      step_down(frame.incarnation);
      return;
    }
    if (frame.incarnation < lease_inc_) {
      reject_frame("stale lease ack");
      return;
    }
    if (frame.round > current_round_) {
      // A survivor delivered rounds we never saw (the old root died between
      // per-peer sends). Jump past them; an open round with a lower tag is
      // unservable for that survivor anyway.
      if (round_open_) {
        round_open_ = false;
        rounds_abandoned_.fetch_add(1, std::memory_order_relaxed);
        abandoned_counter().add();
      }
      current_round_ = frame.round;
    }
    return;
  }
  if (frame.incarnation > highest_inc_seen_) {
    // Someone holds a lease newer than anything we have adopted; remember
    // the incarnation so we neither elect over it nor accept older leases.
    highest_inc_seen_ = frame.incarnation;
    return;
  }
  reject_frame("unexpected lease ack");
  (void)from;
}

void SocketTransport::handle_report(std::size_t from, wire::Frame& frame) {
  if (!round_open_ || frame.round != current_round_) {
    reject_frame("stale round tag");
    return;
  }
  const Process& proc = processes_[from];
  if (!proc.live_this_round) {
    reject_frame("report from process outside the round's live set");
    return;
  }
  if (frame.member < proc.member_offset ||
      frame.member >= proc.member_offset + proc.member_count) {
    reject_frame("member index outside sender's claimed range");
    return;
  }
  if (report_seen_[frame.member]) {
    reject_frame("duplicate member report");
    return;
  }
  if (frame.values.size() != vector_size_) {
    reject_frame("report vector size mismatch");
    return;
  }
  report_seen_[frame.member] = true;
  report_slots_[frame.member] = std::move(frame.values);
  --reports_pending_;
}

void SocketTransport::handle_round_start(std::size_t from,
                                         const wire::Frame& frame,
                                         std::int64_t now_usec) {
  (void)now_usec;
  if (!lease_known_) {
    reject_frame("round start without lease");
    return;
  }
  if (from != lease_root_) {
    fence_zombie_root(from, "round start from non-root");
    return;
  }
  // current_round_ doubles as "highest round-start seen" on a follower.
  if (frame.round <= current_round_) {
    reject_frame("stale round tag");
    return;
  }
  current_round_ = frame.round;
  if (options_.on_round_start) options_.on_round_start(current_round_);
  sample_local_members(current_round_);
}

void SocketTransport::handle_aggregate(std::size_t from,
                                       const wire::Frame& frame,
                                       std::int64_t now_usec) {
  if (!lease_known_) {
    reject_frame("aggregate without lease");
    return;
  }
  if (from != lease_root_) {
    fence_zombie_root(from, "aggregate from non-root");
    return;
  }
  if (frame.values.size() != vector_size_) {
    reject_frame("aggregate vector size mismatch");
    return;
  }
  if (has_delivered_ && frame.round <= last_delivered_round_) {
    reject_frame("stale round tag");
    return;
  }
  deliver_aggregate(frame.round, frame.values, now_usec);
}

void SocketTransport::fence_zombie_root(std::size_t from, const char* why) {
  reject_frame(why);
  if (!role_root_ && !lease_known_) return;  // nothing newer to point at
  wire::Frame nack;
  nack.type = wire::FrameType::kLeaseAck;
  nack.member = static_cast<std::uint32_t>(options_.process_index);
  nack.incarnation = highest_inc_seen_;
  nack.round = std::max(current_round_, last_delivered_round_);
  session_->send(from, wire::encode(nack));
}

std::string SocketTransport::lease_bytes() const {
  wire::Frame lease;
  lease.type = wire::FrameType::kLease;
  lease.member = static_cast<std::uint32_t>(options_.process_index);
  lease.incarnation = lease_inc_;
  lease.round = current_round_;
  lease.aux = static_cast<std::uint64_t>(options_.lease_ttl_usec);
  return wire::encode(lease);
}

void SocketTransport::send_lease(std::size_t peer) {
  session_->send(peer, lease_bytes());
}

void SocketTransport::step_down(std::uint64_t newer_incarnation) {
  role_root_ = false;
  electing_ = false;
  // We do not know the new holder or its expiry yet; its lease frame fills
  // those in. Until then we are a follower with no lease, which also means
  // we cannot (re-)elect over the newer incarnation we just learned about.
  lease_known_ = false;
  highest_inc_seen_ = std::max(highest_inc_seen_, newer_incarnation);
  if (round_open_) {
    round_open_ = false;
    rounds_abandoned_.fetch_add(1, std::memory_order_relaxed);
    abandoned_counter().add();
  }
}

void SocketTransport::maybe_elect(std::int64_t now_usec) {
  // Candidacy needs a lease to have *expired*: a follower that never
  // adopted one (fresh start, or fresh restart) waits for the live root to
  // introduce itself instead of electing over a fleet it cannot see yet.
  if (!options_.election_enabled || !lease_known_) return;
  if (now_usec < lease_expiry_usec_) {
    electing_ = false;
    return;
  }
  if (!electing_) {
    electing_ = true;
    election_started_usec_ = now_usec;
  }
  // Lowest live member id wins: we may acquire only once every lower-index
  // peer has refused a dial since candidacy began. An established session
  // to a lower peer means it is alive and will acquire instead; a session
  // that merely dropped is not evidence of death (kDialRefused never fires
  // for those), so we keep waiting for a hard refusal.
  for (std::size_t p = 0; p < options_.process_index; ++p) {
    if (session_->established(p)) return;
    if (last_refusal_usec_[p] < election_started_usec_) return;
  }
  acquire_lease(now_usec);
}

void SocketTransport::acquire_lease(std::int64_t now_usec) {
  const std::uint64_t new_inc = highest_inc_seen_ + 1;
  SHAREGRID_AUDIT_HOOK(audit::audit_root_acquire(
      lease_known_, now_usec, lease_expiry_usec_, new_inc,
      highest_inc_seen_));
  role_root_ = true;
  electing_ = false;
  lease_known_ = false;
  lease_root_ = options_.process_index;
  lease_inc_ = new_inc;
  highest_inc_seen_ = new_inc;
  current_round_ = std::max(current_round_, last_delivered_round_);
  round_open_ = false;
  elections_.fetch_add(1, std::memory_order_relaxed);
  elections_counter().add();
  // Announce immediately; acks flow back carrying each survivor's highest
  // round. The first round is held one period so those acks can
  // fast-forward current_round_ before a tag is spent on a round the
  // survivors would reject.
  session_->broadcast(lease_bytes());
  const std::int64_t heartbeat = options_.heartbeat_usec > 0
                                     ? options_.heartbeat_usec
                                     : options_.lease_ttl_usec / 3;
  next_heartbeat_usec_ = now_usec + heartbeat;
  next_round_start_usec_ = now_usec + options_.round_period_usec;
}

void SocketTransport::poll_round_root(std::int64_t now_usec) {
  if (round_open_ && reports_pending_ == 0) finish_round(now_usec);
  if (round_open_ &&
      now_usec - round_started_usec_ >= options_.round_deadline_usec) {
    round_open_ = false;
    rounds_abandoned_.fetch_add(1, std::memory_order_relaxed);
    abandoned_counter().add();
  }
  // The bootstrap root (lease incarnation 1) holds round 1 until the whole
  // fleet has connected once, so a slow peer start-up shows as a later
  // first round, not a gap — and so churn-free runs are bitwise-identical
  // to the fixed-fleet transport. An elected root has no such luxury: it
  // resumes with whoever is alive.
  const bool assembled =
      lease_inc_ > 1 || current_round_ > 0 ||
      session_->peers_ever_established() + 1 >= options_.peers.size();
  if (!round_open_ && assembled && now_usec >= next_round_start_usec_)
    open_round(now_usec);
}

void SocketTransport::open_round(std::int64_t now_usec) {
  // Membership is captured here and holds for the whole round: this process
  // plus every established peer, each contributing the global member range
  // its HELLO claimed. Joins and rejoins fold in at the *next* boundary.
  std::size_t live_members = 0;
  for (std::size_t p = 0; p < options_.peers.size(); ++p) {
    Process& proc = processes_[p];
    const bool live = p == options_.process_index ||
                      (session_->established(p) && proc.range_known);
    if (live && proc.was_pruned) {
      readmissions_.fetch_add(1, std::memory_order_relaxed);
      proc.was_pruned = false;
    }
    if (!live && proc.live_this_round) proc.was_pruned = true;
    proc.live_this_round = live;
    if (live) live_members += proc.member_count;
  }
  ++current_round_;
  round_open_ = true;
  round_started_usec_ = now_usec;
  next_round_start_usec_ = now_usec + options_.round_period_usec;
  report_seen_.assign(fleet_size_, false);
  reports_pending_ = live_members;
  last_round_members_ = live_members;
  // Lease refresh piggybacks on every round-start: one heartbeat per round
  // keeps followers' expiry clocks armed without a separate timer firing.
  session_->broadcast(lease_bytes());
  const std::int64_t heartbeat = options_.heartbeat_usec > 0
                                     ? options_.heartbeat_usec
                                     : options_.lease_ttl_usec / 3;
  next_heartbeat_usec_ = now_usec + heartbeat;
  if (options_.on_round_start) options_.on_round_start(current_round_);
  sample_local_members(current_round_);
  wire::Frame kick;
  kick.type = wire::FrameType::kRoundStart;
  kick.round = current_round_;
  const std::string bytes = wire::encode(kick);
  for (std::size_t p = 0; p < options_.peers.size(); ++p)
    if (p != options_.process_index && processes_[p].live_this_round)
      session_->send(p, bytes);
}

void SocketTransport::finish_round(std::int64_t now_usec) {
  // Sum in global member order — the same floating-point order
  // InProcessTransport::exchange uses, so with full membership the
  // aggregates (and therefore the plans) match it bitwise. Pruned members
  // contribute nothing: a dead process's demand is not demand.
  std::vector<double> sum(vector_size_, 0.0);
  for (std::size_t m = 0; m < fleet_size_; ++m) {
    if (!report_seen_[m]) continue;
    for (std::size_t i = 0; i < vector_size_; ++i)
      sum[i] += report_slots_[m][i];
  }
  round_open_ = false;
  rounds_completed_.fetch_add(1, std::memory_order_relaxed);
  // Star accounting: one logical broadcast down per live member.
  messages_sent_.fetch_add(last_round_members_, std::memory_order_relaxed);
  deliver_aggregate(current_round_, sum, now_usec);
  wire::Frame down;
  down.type = wire::FrameType::kAggregate;
  down.round = current_round_;
  down.values = std::move(sum);
  const std::string bytes = wire::encode(down);
  for (std::size_t p = 0; p < options_.peers.size(); ++p)
    if (p != options_.process_index && processes_[p].live_this_round)
      session_->send(p, bytes);
}

void SocketTransport::sample_local_members(std::uint64_t round) {
  for (std::size_t m = 0; m < local_member_count_; ++m) {
    // An unattached member contributes zeros, like InProcessTransport
    // skipping a null provider — the round must still complete.
    std::vector<double> local = providers_[m]
                                    ? providers_[m]()
                                    : std::vector<double>(vector_size_, 0.0);
    SHAREGRID_ASSERT(local.size() == vector_size_);
    const std::size_t global = options_.member_offset + m;
    messages_sent_.fetch_add(1, std::memory_order_relaxed);  // report up
    if (role_root_) {
      report_seen_[global] = true;
      report_slots_[global] = std::move(local);
      --reports_pending_;
    } else {
      wire::Frame up;
      up.type = wire::FrameType::kReport;
      up.round = round;
      up.member = static_cast<std::uint32_t>(global);
      up.values = std::move(local);
      session_->send(lease_root_, wire::encode(up));
    }
  }
}

void SocketTransport::deliver_aggregate(std::uint64_t round,
                                        const std::vector<double>& sum,
                                        std::int64_t now_usec) {
  SHAREGRID_AUDIT_HOOK(audit::audit_round_tag_monotone(
      has_delivered_, last_delivered_round_, round));
  has_delivered_ = true;
  last_delivered_round_ = round;
  last_delivery_usec_ = now_usec;
  stale_fired_ = false;  // a fresh aggregate re-arms the staleness trip
  for (std::size_t m = 0; m < local_member_count_; ++m)
    if (receivers_[m]) receivers_[m](round, sum);
}

void SocketTransport::check_staleness(std::int64_t now_usec) {
  // Nothing delivered yet = the members never left the conservative regime;
  // there is nothing to fall back from.
  if (!has_delivered_ || stale_fired_) return;
  const std::int64_t stale_after =
      options_.stale_after_usec > 0
          ? options_.stale_after_usec
          : options_.round_period_usec + options_.round_deadline_usec;
  if (now_usec - last_delivery_usec_ < stale_after) return;
  stale_fired_ = true;
  stale_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  stale_counter().add();
  for (const auto& handler : stale_handlers_)
    if (handler) handler();
}

}  // namespace sharegrid::coord
