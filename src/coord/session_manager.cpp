#include "coord/session_manager.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "util/metrics_registry.hpp"

namespace sharegrid::coord {
namespace {

util::MetricCounter& reconnects_counter() {
  static util::MetricCounter& counter = util::global_metrics().counter(
      "coord.socket.reconnects",
      "control-plane sessions re-established after a loss or refusal");
  return counter;
}
util::MetricGauge& sessions_gauge() {
  static util::MetricGauge& gauge = util::global_metrics().gauge(
      "coord.socket.sessions_active",
      "established control-plane peer sessions (per process)");
  return gauge;
}

}  // namespace

const char* to_string(SessionManager::SessionState state) {
  switch (state) {
    case SessionManager::SessionState::kIdle: return "idle";
    case SessionManager::SessionState::kConnecting: return "connecting";
    case SessionManager::SessionState::kEstablished: return "established";
    case SessionManager::SessionState::kLost: return "lost";
    case SessionManager::SessionState::kRejoining: return "rejoining";
  }
  return "unknown";
}

SessionManager::PeerAddr SessionManager::parse_peer(const std::string& peer,
                                                    bool allow_nonlocal) {
  const std::size_t colon = peer.find_last_of(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= peer.size())
    throw ContractViolation("SessionManager: peer '" + peer +
                            "' must look like 'host:port'");
  PeerAddr addr;
  addr.host = peer.substr(0, colon);
  if (addr.host == "localhost") addr.host = "127.0.0.1";
  if (!allow_nonlocal && addr.host != "127.0.0.1")
    throw ContractViolation(
        "SessionManager: peer '" + peer +
        "' is not loopback; non-local peers require the explicit "
        "allow_nonlocal flag ([control_plane] allow_nonlocal = true)");
  int port = 0;
  try {
    port = std::stoi(peer.substr(colon + 1));
  } catch (const std::exception&) {
    port = -1;
  }
  if (port < 0 || port > 65535)
    throw ContractViolation("SessionManager: peer '" + peer +
                            "' has an invalid port");
  addr.port = static_cast<std::uint16_t>(port);
  return addr;
}

SessionManager::SessionManager(Options options)
    : options_(std::move(options)), fleet_(options_.peers.size()) {
  SHAREGRID_EXPECTS(!options_.peers.empty());
  SHAREGRID_EXPECTS(options_.self_index < fleet_);
  SHAREGRID_EXPECTS(options_.incarnation >= 1);
  SHAREGRID_EXPECTS(options_.reconnect_base_usec > 0);
  SHAREGRID_EXPECTS(options_.reconnect_max_usec >=
                    options_.reconnect_base_usec);
  SHAREGRID_EXPECTS(options_.hello_timeout_usec > 0);
  SHAREGRID_EXPECTS(options_.io_timeout_ms > 0);
  // Every peer entry must parse (and pass the loopback policy) up front,
  // not when first dialed.
  for (const std::string& peer : options_.peers)
    parse_peer(peer, options_.allow_nonlocal);
}

SessionManager::~SessionManager() { stop(); }

void SessionManager::start() {
  SHAREGRID_EXPECTS(!running_.load());
  conn_info_.clear();
  events_.clear();
  peers_.assign(fleet_, Peer{});
  const PeerAddr self =
      parse_peer(options_.peers[options_.self_index], options_.allow_nonlocal);
  const std::uint16_t port =
      options_.listen_port != 0 ? options_.listen_port : self.port;
  // Loopback fleets bind loopback; a fleet that opted into non-local peers
  // must accept from other hosts, so it binds the wildcard address.
  listener_ = options_.allow_nonlocal
                  ? net::Socket::listen_on("0.0.0.0", port)
                  : net::Socket::listen_on_loopback(port);
  listener_.set_read_timeout_ms(options_.io_timeout_ms);
  listen_port_ = listener_.local_port();
  running_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
  update_gauge();
}

void SessionManager::stop() {
  if (!running_.exchange(false)) return;
  // Wake every blocked syscall first, then join outside the lock: a reader
  // that is mid-push into the inbox needs the mutex to finish exiting.
  if (listener_.valid()) listener_.shutdown();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    const util::MutexLock lock(mutex_);
    for (const auto& conn : conns_)
      if (conn) conn->sock.shutdown();
    conns.swap(conns_);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (const auto& conn : conns)
    if (conn && conn->reader.joinable()) conn->reader.join();
  listener_.close();
  const util::MutexLock lock(mutex_);
  inbox_.clear();
}

void SessionManager::accept_loop() {
  while (running_.load()) {
    net::Socket sock;
    try {
      sock = listener_.try_accept();
    } catch (const ContractViolation&) {
      if (!running_.load()) break;
      continue;  // transient accept failure; keep listening
    }
    if (!sock.valid()) continue;  // timeout or shutdown wake-up
    if (!running_.load()) break;
    sock.set_read_timeout_ms(options_.io_timeout_ms);
    const util::MutexLock lock(mutex_);
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(sock);
    Conn* raw = conn.get();
    const std::size_t index = conns_.size();
    conns_.push_back(std::move(conn));
    raw->reader = std::thread([this, raw, index] { reader_loop(raw, index); });
  }
}

void SessionManager::reader_loop(Conn* conn, std::size_t conn_index) {
  // Dumb pump: bytes -> frames -> inbox. No protocol state lives here; a
  // reader cannot race the handshake logic because poll() owns all of it.
  net::FrameReader frames(/*max_frame_bytes=*/1 << 20);
  bool abort = false;
  while (!abort && running_.load()) {
    const net::ReadResult result = conn->sock.read_some();
    if (result.status == net::ReadStatus::kTimedOut) continue;
    if (result.status == net::ReadStatus::kClosed) break;
    frames.feed(result.data);
    std::string payload;
    while (!abort) {
      const net::FrameReader::Event event = frames.next(&payload);
      if (event == net::FrameReader::Event::kNeedMore) break;
      if (event == net::FrameReader::Event::kOversized) {
        // Framing is unrecoverable: count it and drop the connection.
        reject("oversized length prefix");
        conn->sock.shutdown();
        abort = true;
        break;
      }
      wire::Frame frame;
      const wire::DecodeStatus status = wire::decode(payload, &frame);
      if (status != wire::DecodeStatus::kOk) {
        reject(wire::to_string(status));
        continue;
      }
      const util::MutexLock lock(mutex_);
      inbox_.push_back({conn_index, false, std::move(frame)});
    }
  }
  conn->closed.store(true);
  const util::MutexLock lock(mutex_);
  inbox_.push_back({conn_index, true, {}});
}

void SessionManager::reject(const char* why) {
  if (options_.on_reject) options_.on_reject(why);
}

std::vector<SessionManager::Inbound> SessionManager::take_inbox() {
  const util::MutexLock lock(mutex_);
  std::vector<Inbound> taken;
  taken.swap(inbox_);
  return taken;
}

SessionManager::ConnInfo& SessionManager::info(std::size_t conn_index) {
  if (conn_index >= conn_info_.size()) conn_info_.resize(conn_index + 1);
  ConnInfo& ci = conn_info_[conn_index];
  if (!ci.known) {
    ci.known = true;
    ci.open = true;  // first sighting: an accepted conn, not yet helloed
  }
  return ci;
}

std::size_t SessionManager::adopt_socket(net::Socket sock) {
  const util::MutexLock lock(mutex_);
  auto conn = std::make_unique<Conn>();
  conn->sock = std::move(sock);
  Conn* raw = conn.get();
  const std::size_t index = conns_.size();
  conns_.push_back(std::move(conn));
  raw->reader = std::thread([this, raw, index] { reader_loop(raw, index); });
  return index;
}

void SessionManager::send_on_conn(std::size_t conn_index,
                                  const std::string& bytes) {
  const util::MutexLock lock(mutex_);
  if (conn_index >= conns_.size() || !conns_[conn_index]) return;
  Conn* conn = conns_[conn_index].get();
  if (conn->closed.load()) return;
  try {
    conn->sock.write_frame(bytes);
  } catch (const ContractViolation&) {
    conn->closed.store(true);  // peer died mid-send; its reader notices too
  }
}

void SessionManager::close_conn(std::size_t conn_index) {
  info(conn_index).open = false;
  const util::MutexLock lock(mutex_);
  if (conn_index < conns_.size() && conns_[conn_index])
    conns_[conn_index]->sock.shutdown();
  // The reader observes the shutdown, queues its disconnect note, and the
  // slot is reclaimed when that note is handled.
}

void SessionManager::reclaim_conn(std::size_t conn_index) {
  std::unique_ptr<Conn> conn;
  {
    const util::MutexLock lock(mutex_);
    if (conn_index < conns_.size()) conn.swap(conns_[conn_index]);
  }
  // The reader queued the disconnect note as its last act, so this join
  // returns promptly; freeing the slot afterwards is what keeps a churning
  // fleet from accumulating one dead Conn per rejoin forever.
  if (conn && conn->reader.joinable()) conn->reader.join();
}

void SessionManager::handle_closed(std::size_t conn_index,
                                   std::int64_t now_usec) {
  ConnInfo& ci = info(conn_index);
  ci.open = false;
  reclaim_conn(conn_index);
  const std::size_t p = ci.peer;
  if (p == kNoConn || p >= fleet_ || peers_[p].conn != conn_index) return;
  Peer& peer = peers_[p];
  peer.conn = kNoConn;
  const bool was_established = peer.state == SessionState::kEstablished;
  if (was_established) {
    events_.push_back({Event::Kind::kPeerDown, p, 0, 0, {}});
    update_gauge();
  }
  if (!peer.wanted) {
    peer.state = peer.ever_established ? SessionState::kLost
                                       : SessionState::kIdle;
    return;
  }
  peer.state = peer.ever_established ? SessionState::kLost
                                     : SessionState::kConnecting;
  if (was_established) {
    // A lost session redials immediately once; refusals then back off.
    peer.backoff_usec = 0;
    peer.next_dial_usec = now_usec;
  } else {
    // Closed before the handshake finished (collision loser, or a peer that
    // crashed mid-accept): back off like a refusal, but without the event —
    // a completed TCP connect is not evidence the process is gone.
    peer.backoff_usec =
        peer.backoff_usec == 0
            ? options_.reconnect_base_usec
            : std::min(2 * peer.backoff_usec, options_.reconnect_max_usec);
    peer.next_dial_usec = now_usec + peer.backoff_usec;
  }
}

void SessionManager::note_refusal(std::size_t peer_index,
                                  std::int64_t now_usec) {
  Peer& peer = peers_[peer_index];
  events_.push_back({Event::Kind::kDialRefused, peer_index, 0, 0, {}});
  peer.state = peer.ever_established ? SessionState::kLost
                                     : SessionState::kConnecting;
  peer.backoff_usec =
      peer.backoff_usec == 0
          ? options_.reconnect_base_usec
          : std::min(2 * peer.backoff_usec, options_.reconnect_max_usec);
  peer.next_dial_usec = now_usec + peer.backoff_usec;
}

void SessionManager::establish(std::size_t peer_index, std::size_t conn_index,
                               std::uint64_t incarnation, std::uint64_t aux) {
  Peer& peer = peers_[peer_index];
  if (peer.conn == conn_index && peer.state == SessionState::kEstablished) {
    peer.incarnation = incarnation;  // duplicate HELLO on the live session
    peer.aux = aux;
    return;
  }
  if (peer.conn != kNoConn && peer.conn != conn_index) {
    // Replacing an existing session (rejoin with a fresh incarnation, or a
    // collision resolved toward this conn): unbind first so the old conn's
    // disconnect note does not read as a peer loss.
    const std::size_t old = peer.conn;
    peer.conn = kNoConn;
    info(old).peer = kNoConn;
    close_conn(old);
    if (peer.state == SessionState::kEstablished) update_gauge();
  }
  const bool rejoined = peer.ever_established;
  peer.conn = conn_index;
  peer.state = SessionState::kEstablished;
  peer.ever_established = true;
  peer.incarnation = incarnation;
  peer.aux = aux;
  peer.backoff_usec = 0;
  if (rejoined) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    reconnects_counter().add();
  }
  events_.push_back({Event::Kind::kPeerUp, peer_index, incarnation, aux, {}});
  update_gauge();
}

void SessionManager::handle_hello(std::size_t conn_index,
                                  const wire::Frame& frame,
                                  std::int64_t now_usec) {
  ConnInfo& ci = info(conn_index);
  if (!ci.open) return;  // already closed this poll
  const std::size_t p = frame.member;
  if (p >= fleet_ || p == options_.self_index) {
    reject("hello member out of range");
    close_conn(conn_index);
    return;
  }
  Peer& peer = peers_[p];
  if (ci.outbound) {
    if (ci.peer != p) {
      reject("hello identity mismatch");
      if (ci.peer != kNoConn && peers_[ci.peer].conn == conn_index)
        peers_[ci.peer].conn = kNoConn;
      ci.peer = kNoConn;
      close_conn(conn_index);
      return;
    }
    if (peer.conn != kNoConn && peer.conn != conn_index && p < options_.self_index) {
      // Collision: for a pair of processes the session dialed by the
      // lower-index one wins, and that is the peer's dial, not ours.
      ci.peer = kNoConn;
      close_conn(conn_index);
      return;
    }
    if (frame.incarnation < peer.incarnation) {
      reject("stale incarnation hello");
      ci.peer = kNoConn;
      if (peer.conn == conn_index) peer.conn = kNoConn;
      close_conn(conn_index);
      note_refusal(p, now_usec);
      return;
    }
    establish(p, conn_index, frame.incarnation, frame.aux);
    return;
  }
  // Inbound conn: the HELLO is what binds it to a peer.
  if (frame.incarnation < peer.incarnation) {
    // A process we have already seen at a higher incarnation is a zombie
    // instance of that peer; its session must not displace the live one.
    reject("stale incarnation hello");
    close_conn(conn_index);
    return;
  }
  if (peer.conn != kNoConn && peer.conn != conn_index &&
      info(peer.conn).outbound && options_.self_index < p &&
      (peer.state != SessionState::kEstablished ||
       frame.incarnation == peer.incarnation)) {
    // Collision, and our dial wins the lower-index tie-break. Two live
    // processes dialing each other simultaneously is routine in a full
    // mesh — drop the duplicate quietly rather than flag a protocol
    // reject. While our dial's handshake is still in flight we have not
    // learned the peer's incarnation yet, so the equality clause must not
    // gate the drop then: both hellos come from the same live instance,
    // and honouring the inbound one here while the peer honours our dial
    // would make each side tear down the other's pick (a startup session
    // flap that shrinks the root's first live set). Once established, a
    // HIGHER inbound incarnation is a restarted peer and must replace the
    // session our now-dead counterparty left behind.
    close_conn(conn_index);
    return;
  }
  ci.peer = p;
  send_on_conn(conn_index, hello_bytes());  // complete the dialer's handshake
  establish(p, conn_index, frame.incarnation, frame.aux);
}

void SessionManager::dial_pass(std::int64_t now_usec) {
  for (std::size_t p = 0; p < fleet_; ++p) {
    if (p == options_.self_index) continue;
    Peer& peer = peers_[p];
    // A dialed peer that accepted TCP but never answered HELLO counts as a
    // refusal: a stopped process's kernel happily completes connections.
    if (peer.wanted && peer.conn != kNoConn &&
        peer.state != SessionState::kEstablished &&
        info(peer.conn).outbound && now_usec >= peer.handshake_deadline_usec) {
      const std::size_t idx = peer.conn;
      peer.conn = kNoConn;
      info(idx).peer = kNoConn;
      close_conn(idx);
      reject("hello handshake timed out");
      note_refusal(p, now_usec);
      continue;
    }
    if (!peer.wanted || peer.conn != kNoConn ||
        now_usec < peer.next_dial_usec)
      continue;
    const PeerAddr addr = parse_peer(options_.peers[p], options_.allow_nonlocal);
    if (addr.port == 0) continue;  // undialable (ephemeral); it dials us
    peer.state = peer.ever_established ? SessionState::kRejoining
                                       : SessionState::kConnecting;
    net::Socket sock;
    try {
      sock = net::Socket::connect_to(addr.host, addr.port);
    } catch (const ContractViolation&) {
      note_refusal(p, now_usec);
      continue;
    }
    sock.set_read_timeout_ms(options_.io_timeout_ms);
    const std::size_t idx = adopt_socket(std::move(sock));
    ConnInfo& ci = info(idx);
    ci.outbound = true;
    ci.peer = p;
    peer.conn = idx;
    peer.handshake_deadline_usec = now_usec + options_.hello_timeout_usec;
    send_on_conn(idx, hello_bytes());
  }
}

void SessionManager::poll(std::int64_t now_usec) {
  if (!running_.load()) return;
  for (Inbound& in : take_inbox()) {
    if (in.disconnected) {
      handle_closed(in.conn_index, now_usec);
      continue;
    }
    if (in.frame.type == wire::FrameType::kHello) {
      handle_hello(in.conn_index, in.frame, now_usec);
      continue;
    }
    const ConnInfo& ci = info(in.conn_index);
    if (!ci.open) continue;  // frame raced the close; the session is gone
    if (ci.peer == kNoConn || peers_[ci.peer].conn != in.conn_index ||
        peers_[ci.peer].state != SessionState::kEstablished) {
      reject("frame before hello");
      continue;
    }
    events_.push_back(
        {Event::Kind::kFrame, ci.peer, 0, 0, std::move(in.frame)});
  }
  dial_pass(now_usec);
}

std::vector<SessionManager::Event> SessionManager::take_events() {
  std::vector<Event> taken;
  taken.swap(events_);
  return taken;
}

void SessionManager::want(std::size_t peer_index, bool wanted) {
  SHAREGRID_EXPECTS(peer_index < fleet_);
  SHAREGRID_EXPECTS(peer_index != options_.self_index);
  Peer& peer = peers_[peer_index];
  if (peer.wanted == wanted) return;
  peer.wanted = wanted;
  if (wanted) {
    if (peer.state == SessionState::kIdle || peer.state == SessionState::kLost) {
      peer.state = peer.ever_established ? SessionState::kLost
                                         : SessionState::kConnecting;
      peer.next_dial_usec = 0;  // dial at the next poll
      peer.backoff_usec = 0;
    }
    return;
  }
  if (peer.state == SessionState::kEstablished) return;  // session stays
  if (peer.conn != kNoConn) {
    // Abandon the in-flight dial.
    info(peer.conn).peer = kNoConn;
    close_conn(peer.conn);
    peer.conn = kNoConn;
  }
  peer.state =
      peer.ever_established ? SessionState::kLost : SessionState::kIdle;
}

void SessionManager::disconnect(std::size_t peer_index) {
  SHAREGRID_EXPECTS(peer_index < fleet_);
  Peer& peer = peers_[peer_index];
  if (peer.conn == kNoConn) return;
  const bool was_established = peer.state == SessionState::kEstablished;
  info(peer.conn).peer = kNoConn;
  close_conn(peer.conn);
  peer.conn = kNoConn;
  peer.state = peer.wanted
                   ? (peer.ever_established ? SessionState::kLost
                                            : SessionState::kConnecting)
                   : (peer.ever_established ? SessionState::kLost
                                            : SessionState::kIdle);
  if (peer.wanted) {
    peer.next_dial_usec = 0;
    peer.backoff_usec = 0;
  }
  if (was_established) update_gauge();
}

void SessionManager::send(std::size_t peer_index, const std::string& bytes) {
  SHAREGRID_EXPECTS(peer_index < fleet_);
  const Peer& peer = peers_[peer_index];
  if (peer.state != SessionState::kEstablished || peer.conn == kNoConn) return;
  send_on_conn(peer.conn, bytes);
}

void SessionManager::broadcast(const std::string& bytes) {
  for (std::size_t p = 0; p < fleet_; ++p)
    if (peers_[p].state == SessionState::kEstablished) send(p, bytes);
}

SessionManager::SessionState SessionManager::state(
    std::size_t peer_index) const {
  SHAREGRID_EXPECTS(peer_index < fleet_);
  return peers_[peer_index].state;
}

bool SessionManager::established(std::size_t peer_index) const {
  return state(peer_index) == SessionState::kEstablished;
}

std::size_t SessionManager::established_count() const {
  std::size_t n = 0;
  for (const Peer& peer : peers_)
    if (peer.state == SessionState::kEstablished) ++n;
  return n;
}

std::uint64_t SessionManager::peer_incarnation(std::size_t peer_index) const {
  SHAREGRID_EXPECTS(peer_index < fleet_);
  return peers_[peer_index].incarnation;
}

std::uint64_t SessionManager::peer_aux(std::size_t peer_index) const {
  SHAREGRID_EXPECTS(peer_index < fleet_);
  return peers_[peer_index].aux;
}

std::size_t SessionManager::peers_ever_established() const {
  std::size_t n = 0;
  for (const Peer& peer : peers_)
    if (peer.ever_established) ++n;
  return n;
}

std::string SessionManager::hello_bytes() const {
  wire::Frame hello;
  hello.type = wire::FrameType::kHello;
  hello.member = static_cast<std::uint32_t>(options_.self_index);
  hello.incarnation = options_.incarnation;
  hello.aux = options_.hello_aux;
  return wire::encode(hello);
}

void SessionManager::update_gauge() const {
  sessions_gauge().set(static_cast<std::int64_t>(established_count()));
}

}  // namespace sharegrid::coord
