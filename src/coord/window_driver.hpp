// Clock drivers for the control plane (the tentpole seam of DESIGN.md D10).
//
// ControlPlane knows nothing about time; these two shims decide when window
// boundaries happen:
//
//  * SimWindowDriver — one PeriodicTask per member on the DES Simulator, in
//    member-index order, so event sequence numbers (and therefore D4
//    bit-reproducibility) match the historical per-redirector wiring.
//  * WallClockDriver — clock-agnostic window roller for the live stack: the
//    caller polls with the current time in microseconds (steady_clock in
//    production, a fake in tests), elapsed windows are advanced with bounded
//    catch-up, and the in-process snapshot exchange runs on a configurable
//    window cadence after the new window's quotas are in place (so window k
//    plans against the aggregate sampled at the end of window k-1 — the
//    same one-window snapshot lag a zero-delay sim tree produces).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "coord/control_plane.hpp"
#include "coord/snapshot_transport.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace sharegrid::coord {

/// DES driver: periodic window tasks on the simulator.
class SimWindowDriver {
 public:
  SimWindowDriver(sim::Simulator* sim, ControlPlane* plane);

  /// Creates one PeriodicTask per member (member-index order — load-bearing
  /// for D4: creation order fixes equal-time event ordering) firing every
  /// plane window starting at @p first_window.
  void start(SimTime first_window);
  void stop();

 private:
  sim::Simulator* sim_;
  ControlPlane* plane_;
  std::vector<std::unique_ptr<sim::PeriodicTask>> tasks_;
};

/// Live driver: rolls wall-clock windows on poll(). Not internally
/// synchronized — the admission facade above it holds the mutex.
class WallClockDriver {
 public:
  struct Options {
    /// Scheduling window in microseconds.
    std::int64_t window_usec = 100000;
    /// Idle-gap bound: at most this many windows advance per poll.
    std::int64_t max_catchup = 16;
    /// Run a snapshot exchange every this many windows (>= 1).
    std::int64_t snapshot_period_windows = 1;
  };

  /// @param transport in-process exchange to run on window cadence; may be
  ///                  nullptr (members then stay on their stale policy).
  WallClockDriver(ControlPlane* plane, InProcessTransport* transport,
                  Options options);

  /// Re-anchors the window clock at @p now_usec (call when serving starts).
  void reset(std::int64_t now_usec);

  /// Advances every window boundary that elapsed by @p now_usec; returns how
  /// many windows were rolled. The first poll always opens a window.
  std::int64_t poll(std::int64_t now_usec);

  std::uint64_t windows_begun() const { return windows_begun_; }

 private:
  ControlPlane* plane_;
  InProcessTransport* transport_;
  Options options_;
  std::int64_t window_start_usec_ = 0;
  bool first_window_done_ = false;
  std::uint64_t windows_begun_ = 0;
};

}  // namespace sharegrid::coord
