#include "coord/combining_tree.hpp"

#include <utility>

#include "util/assert.hpp"

namespace sharegrid::coord {

CombiningTree::CombiningTree(sim::Simulator* sim, TreeTopology topology,
                             TreeConfig config)
    : sim_(sim), topology_(std::move(topology)), config_(config) {
  SHAREGRID_EXPECTS(sim != nullptr);
  SHAREGRID_EXPECTS(topology_.valid());
  SHAREGRID_EXPECTS(config_.period > 0);
  SHAREGRID_EXPECTS(config_.link_delay >= 0);
  SHAREGRID_EXPECTS(config_.vector_size > 0);
  children_ = topology_.children();
  nodes_.resize(topology_.size());
  failed_.assign(topology_.size(), false);
  // A round holds slots only during its up phase, which lasts at most
  // depth * link_delay; with one round starting per period, at most
  // ceil(depth * link_delay / period) + 1 rounds hold slots at once. Double
  // the bound for slack around equal-time boundaries — begin_round asserts
  // the bucket it reclaims has actually drained, so an undersized ring is a
  // loud failure, not corruption.
  const std::uint64_t up_phase =
      static_cast<std::uint64_t>(topology_.depth()) *
      static_cast<std::uint64_t>(config_.link_delay);
  const std::size_t in_flight =
      static_cast<std::size_t>(up_phase / static_cast<std::uint64_t>(config_.period)) + 1;
  rounds_.resize(2 * in_flight + 2);
  for (RoundFrame& frame : rounds_) {
    frame.slots.resize(topology_.size());
    for (RoundSlot& slot : frame.slots)
      slot.sum.reserve(config_.vector_size);
  }
}

void CombiningTree::set_node_failed(std::size_t node, bool failed) {
  SHAREGRID_EXPECTS(node < failed_.size());
  failed_[node] = failed;
}

bool CombiningTree::node_failed(std::size_t node) const {
  SHAREGRID_EXPECTS(node < failed_.size());
  return failed_[node];
}

void CombiningTree::attach(std::size_t node, Provider provider,
                           Receiver receiver) {
  SHAREGRID_EXPECTS(node < nodes_.size());
  nodes_[node].provider = std::move(provider);
  nodes_[node].receiver = std::move(receiver);
}

void CombiningTree::start(SimTime first_round) {
  SHAREGRID_EXPECTS(task_ == nullptr);
  task_ = std::make_unique<sim::PeriodicTask>(
      sim_, first_round, config_.period, [this] { begin_round(next_round_++); });
}

void CombiningTree::stop() {
  if (task_) task_->cancel();
}

void CombiningTree::begin_round(std::uint64_t round) {
  // A failed node anywhere on the path to the root prevents the round from
  // completing; count it abandoned up front (downstream consumers keep
  // their last snapshot).
  for (std::size_t node = 0; node < nodes_.size(); ++node) {
    if (failed_[node]) {
      ++rounds_abandoned_;
      return;
    }
  }
  // Every node samples its provider simultaneously at round start, then
  // reports race up the tree; an interior node forwards once its own sample
  // and all children's reports are in.
  RoundFrame& frame = rounds_[round % rounds_.size()];
  SHAREGRID_ASSERT(!frame.live);  // ring sized to bound in-flight rounds
  frame.round = round;
  frame.live = true;
  frame.live_slots = nodes_.size();
  for (std::size_t node = 0; node < nodes_.size(); ++node) {
    RoundSlot& slot = frame.slots[node];
    slot.live = true;
    slot.sum.assign(config_.vector_size, 0.0);
    slot.reports_pending = children_[node].size();
    if (nodes_[node].provider) {
      const std::vector<double> local = nodes_[node].provider();
      SHAREGRID_ASSERT(local.size() == config_.vector_size);
      for (std::size_t i = 0; i < local.size(); ++i) slot.sum[i] += local[i];
    }
    if (slot.reports_pending == 0) forward_up(round, node);
  }
}

void CombiningTree::deliver_report(std::uint64_t round, std::size_t node,
                                   const std::vector<double>& value) {
  RoundFrame& frame = rounds_[round % rounds_.size()];
  SHAREGRID_ASSERT(frame.live && frame.round == round);
  RoundSlot& slot = frame.slots[node];
  SHAREGRID_ASSERT(slot.live);
  for (std::size_t i = 0; i < value.size(); ++i) slot.sum[i] += value[i];
  SHAREGRID_ASSERT(slot.reports_pending > 0);
  if (--slot.reports_pending == 0) forward_up(round, node);
}

void CombiningTree::forward_up(std::uint64_t round, std::size_t node) {
  RoundFrame& frame = rounds_[round % rounds_.size()];
  SHAREGRID_ASSERT(frame.live && frame.round == round);
  RoundSlot& slot = frame.slots[node];
  SHAREGRID_ASSERT(slot.live);
  // Retire the slot but keep its sum buffer in place (capacity is reused on
  // the next round through this bucket); the buffer stays readable below
  // because nothing re-enters this frame synchronously.
  slot.live = false;
  SHAREGRID_ASSERT(frame.live_slots > 0);
  if (--frame.live_slots == 0) frame.live = false;

  const std::size_t parent = topology_.parent[node];
  if (parent == kNoParent) {
    // Root: the aggregate is complete; broadcast it back down.
    ++rounds_completed_;
    broadcast_down(round, node, slot.sum);
    return;
  }
  ++messages_sent_;
  sim_->schedule_after(config_.link_delay,
                       [this, round, parent, sum = slot.sum] {
                         deliver_report(round, parent, sum);
                       });
}

void CombiningTree::broadcast_down(std::uint64_t round, std::size_t node,
                                   const std::vector<double>& aggregate) {
  if (nodes_[node].receiver) nodes_[node].receiver(round, aggregate);
  for (std::size_t child : children_[node]) {
    ++messages_sent_;
    sim_->schedule_after(config_.link_delay,
                         [this, round, child, aggregate] {
                           broadcast_down(round, child, aggregate);
                         });
  }
}

PairwiseExchange::PairwiseExchange(sim::Simulator* sim, std::size_t node_count,
                                   TreeConfig config)
    : sim_(sim),
      config_(config),
      providers_(node_count),
      receivers_(node_count) {
  SHAREGRID_EXPECTS(sim != nullptr);
  SHAREGRID_EXPECTS(node_count >= 1);
  SHAREGRID_EXPECTS(config_.vector_size > 0);
}

void PairwiseExchange::attach(std::size_t node,
                              CombiningTree::Provider provider,
                              CombiningTree::Receiver receiver) {
  SHAREGRID_EXPECTS(node < providers_.size());
  providers_[node] = std::move(provider);
  receivers_[node] = std::move(receiver);
}

void PairwiseExchange::start(SimTime first_round) {
  SHAREGRID_EXPECTS(task_ == nullptr);
  task_ = std::make_unique<sim::PeriodicTask>(sim_, first_round,
                                              config_.period,
                                              [this] { begin_round(); });
}

void PairwiseExchange::stop() {
  if (task_) task_->cancel();
}

void PairwiseExchange::begin_round() {
  // Every node unicasts its local vector to every other node; receivers sum
  // what arrives within one link delay. n(n-1) messages per round.
  const std::uint64_t round = next_round_++;
  const std::size_t n = providers_.size();
  std::vector<std::vector<double>> samples(n);
  for (std::size_t i = 0; i < n; ++i) {
    samples[i] = providers_[i] ? providers_[i]()
                               : std::vector<double>(config_.vector_size, 0.0);
    SHAREGRID_ASSERT(samples[i].size() == config_.vector_size);
  }
  for (std::size_t dst = 0; dst < n; ++dst) {
    if (!receivers_[dst]) {
      messages_sent_ += n - 1;
      continue;
    }
    std::vector<double> total(config_.vector_size, 0.0);
    for (std::size_t src = 0; src < n; ++src) {
      if (src != dst) ++messages_sent_;
      for (std::size_t k = 0; k < config_.vector_size; ++k)
        total[k] += samples[src][k];
    }
    sim_->schedule_after(config_.link_delay, [this, round, dst, total] {
      receivers_[dst](round, total);
    });
  }
}

}  // namespace sharegrid::coord
