// Tree topologies for the combining network (§3.2).
//
// The paper overlays a dynamic combining tree on the redirector nodes and
// notes that "several algorithms exist" for building one; topology is
// therefore an input here (DESIGN.md §4), with helpers for the usual shapes.
#pragma once

#include <cstddef>
#include <vector>

namespace sharegrid::coord {

/// Sentinel for "no parent" (the root).
inline constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

/// Rooted tree over nodes 0..n-1 expressed as a parent array.
struct TreeTopology {
  std::vector<std::size_t> parent;

  std::size_t size() const { return parent.size(); }
  std::size_t root() const;

  /// children()[i] lists i's children in index order.
  std::vector<std::vector<std::size_t>> children() const;

  /// Longest root-to-leaf edge count.
  std::size_t depth() const;

  /// True when the parent array encodes a single connected rooted tree.
  bool valid() const;

  /// Node 0 is the root; every other node is its direct child.
  static TreeTopology star(std::size_t n);
  /// Node 0 is the root; node i's parent is i-1.
  static TreeTopology chain(std::size_t n);
  /// Complete @p fanout-ary tree: node i's parent is (i-1)/fanout.
  static TreeTopology balanced(std::size_t n, std::size_t fanout);
};

}  // namespace sharegrid::coord
