#include "coord/window_driver.hpp"

#include <algorithm>

#include "audit/invariant_auditor.hpp"
#include "util/assert.hpp"

namespace sharegrid::coord {

SimWindowDriver::SimWindowDriver(sim::Simulator* sim, ControlPlane* plane)
    : sim_(sim), plane_(plane) {
  SHAREGRID_EXPECTS(sim != nullptr);
  SHAREGRID_EXPECTS(plane != nullptr);
}

void SimWindowDriver::start(SimTime first_window) {
  SHAREGRID_EXPECTS(tasks_.empty());
  SHAREGRID_EXPECTS(plane_->member_count() >= 1);
  for (std::size_t m = 0; m < plane_->member_count(); ++m) {
    ControlPlane::Member* member = plane_->member(m);
    tasks_.push_back(std::make_unique<sim::PeriodicTask>(
        sim_, first_window, plane_->config().window,
        [this, member] { member->advance_window(sim_->now()); }));
  }
}

void SimWindowDriver::stop() {
  for (const auto& task : tasks_) task->cancel();
}

WallClockDriver::WallClockDriver(ControlPlane* plane,
                                 InProcessTransport* transport,
                                 Options options)
    : plane_(plane), transport_(transport), options_(options) {
  SHAREGRID_EXPECTS(plane != nullptr);
  SHAREGRID_EXPECTS(options_.window_usec > 0);
  SHAREGRID_EXPECTS(options_.max_catchup >= 1);
  SHAREGRID_EXPECTS(options_.snapshot_period_windows >= 1);
}

void WallClockDriver::reset(std::int64_t now_usec) {
  window_start_usec_ = now_usec;
}

std::int64_t WallClockDriver::poll(std::int64_t now_usec) {
  std::int64_t elapsed =
      (now_usec - window_start_usec_) / options_.window_usec;
  // The very first poll must open a window — before it, no quota exists at
  // all; after an idle gap, catch up a bounded number of windows so the
  // estimators decay without replaying hours of empty history.
  if (!first_window_done_) elapsed = std::max<std::int64_t>(elapsed, 1);
  elapsed = std::min(elapsed, options_.max_catchup);
  for (std::int64_t w = 0; w < elapsed; ++w) {
    // Same member-by-member boundary order as the sim driver's periodic
    // tasks: each member folds its estimators and begins its window before
    // the next member runs, so the shared scheduler sees the identical call
    // sequence on both drivers.
    for (std::size_t m = 0; m < plane_->member_count(); ++m)
      plane_->member(m)->advance_window(static_cast<SimTime>(now_usec));
    first_window_done_ = true;
    ++windows_begun_;
    SHAREGRID_AUDIT_HOOK(plane_->audit_window_slices());
    // Exchange *after* the window begins: window k runs on the aggregate
    // sampled at boundary k-1 (one-window lag, like a zero-delay sim tree),
    // and the very first window runs snapshot-less — the conservative 1/R
    // startup phase of §5.1.
    if (transport_ != nullptr &&
        windows_begun_ %
                static_cast<std::uint64_t>(options_.snapshot_period_windows) ==
            0)
      transport_->exchange();
  }
  if (elapsed > 0) window_start_usec_ = now_usec;
  return elapsed;
}

}  // namespace sharegrid::coord
