#include "coord/sharded_transport.hpp"

#include <utility>

#include "util/assert.hpp"

namespace sharegrid::coord {

ShardedStarTransport::ShardedStarTransport(sim::ShardedSimulator* sharded,
                                           std::size_t vector_size,
                                           Options options)
    : sharded_(sharded), vector_size_(vector_size), options_(options) {
  SHAREGRID_EXPECTS(sharded != nullptr);
  SHAREGRID_EXPECTS(vector_size > 0);
  SHAREGRID_EXPECTS(options_.period > 0);
  SHAREGRID_EXPECTS(options_.link_delay > 0);
  const std::size_t clusters = sharded_->domain_count();
  providers_.resize(clusters);
  receivers_.resize(clusters);
  next_round_.assign(clusters, 0);
}

void ShardedStarTransport::attach(std::size_t cluster, Provider provider,
                                  Receiver receiver) {
  SHAREGRID_EXPECTS(cluster < providers_.size());
  SHAREGRID_EXPECTS(tasks_.empty());  // before start()
  providers_[cluster] = std::move(provider);
  receivers_[cluster] = std::move(receiver);
}

void ShardedStarTransport::start() {
  SHAREGRID_EXPECTS(tasks_.empty());
  const std::size_t clusters = providers_.size();
  for (std::size_t c = 0; c < clusters; ++c) {
    tasks_.push_back(std::make_unique<sim::PeriodicTask>(
        &sharded_->domain(c), options_.first_round, options_.period,
        [this, c] { sample(c, next_round_[c]++); }));
  }
}

void ShardedStarTransport::stop() {
  for (const auto& task : tasks_) task->cancel();
}

void ShardedStarTransport::sample(std::size_t cluster, std::uint64_t round) {
  // Runs inside domain `cluster` at round start: sample the local demand and
  // report it to the virtual root one link delay later. Every cluster's task
  // fires at the same simulated time, so all reports of a round reach domain
  // 0 together and the barrier delivers them in cluster order.
  std::vector<double> local = providers_[cluster]
                                  ? providers_[cluster]()
                                  : std::vector<double>(vector_size_, 0.0);
  SHAREGRID_ASSERT(local.size() == vector_size_);
  const SimTime arrival =
      sharded_->domain(cluster).now() + options_.link_delay;
  sharded_->post(cluster, 0, arrival,
                 [this, round, cluster, sample = std::move(local)] {
                   root_receive(round, cluster, sample);
                 });
}

void ShardedStarTransport::root_receive(std::uint64_t round,
                                        std::size_t cluster,
                                        const std::vector<double>& value) {
  // Domain-0 event: accumulate in arrival order (== cluster order, by the
  // barrier contract), broadcast once the last report is in.
  ++messages_sent_;
  RootSlot& slot = root_rounds_[round];
  if (slot.sum.empty()) slot.sum.assign(vector_size_, 0.0);
  for (std::size_t i = 0; i < value.size(); ++i) slot.sum[i] += value[i];
  if (++slot.reports < providers_.size()) return;

  const std::vector<double> aggregate = std::move(slot.sum);
  root_rounds_.erase(round);
  ++rounds_completed_;
  const SimTime delivery =
      sharded_->domain(0).now() + options_.link_delay;
  for (std::size_t c = 0; c < providers_.size(); ++c) {
    ++messages_sent_;
    if (!receivers_[c]) continue;
    // Cluster 0's own delivery also goes through the barrier: EVERY
    // cross-round message takes the same deferred path, which is what keeps
    // per-domain event numbering independent of shard count.
    sharded_->post(0, c, delivery, [this, c, round, aggregate] {
      receivers_[c](round, aggregate);
    });
  }
  (void)cluster;
}

}  // namespace sharegrid::coord
