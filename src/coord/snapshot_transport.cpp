#include "coord/snapshot_transport.hpp"

#include <utility>

#include "util/assert.hpp"

namespace sharegrid::coord {
namespace {

TreeConfig tree_config_for(std::size_t vector_size,
                           const SimTreeTransport::Options& options) {
  TreeConfig config;
  config.period = options.period;
  config.link_delay = options.link_delay;
  config.vector_size = vector_size;
  return config;
}

TreeTopology topology_for(std::size_t member_count,
                          const SimTreeTransport::Options& options) {
  // Members hang off a virtual root (node 0) so every one of them sees the
  // same aggregate lag; fanout >= 2 folds them into a balanced tree whose
  // interior members both contribute and combine (§3.2).
  SHAREGRID_EXPECTS(options.fanout == 0 || options.fanout >= 2);
  return options.fanout == 0
             ? TreeTopology::star(member_count + 1)
             : TreeTopology::balanced(member_count + 1, options.fanout);
}

}  // namespace

SimTreeTransport::SimTreeTransport(sim::Simulator* sim,
                                   std::size_t member_count,
                                   std::size_t vector_size, Options options)
    : member_count_(member_count),
      options_(options),
      tree_(sim, topology_for(member_count, options),
            tree_config_for(vector_size, options)) {
  SHAREGRID_EXPECTS(member_count >= 1);
}

void SimTreeTransport::attach(std::size_t member, Provider provider,
                              Receiver receiver) {
  SHAREGRID_EXPECTS(member < member_count_);
  tree_.attach(member + 1, std::move(provider), std::move(receiver));
}

void SimTreeTransport::start() { tree_.start(options_.first_round); }

void SimTreeTransport::stop() { tree_.stop(); }

InProcessTransport::InProcessTransport(std::size_t member_count,
                                       std::size_t vector_size)
    : vector_size_(vector_size),
      providers_(member_count),
      receivers_(member_count),
      sum_scratch_(vector_size, 0.0) {
  SHAREGRID_EXPECTS(member_count >= 1);
  SHAREGRID_EXPECTS(vector_size >= 1);
}

void InProcessTransport::attach(std::size_t member, Provider provider,
                                Receiver receiver) {
  SHAREGRID_EXPECTS(member < providers_.size());
  providers_[member] = std::move(provider);
  receivers_[member] = std::move(receiver);
}

void InProcessTransport::start() { started_ = true; }

void InProcessTransport::stop() { started_ = false; }

void InProcessTransport::exchange() {
  if (!started_) return;
  const std::size_t r = providers_.size();
  // Sample every provider before delivering anywhere: receivers must all see
  // the same instant, exactly like the event tree sampling at round start.
  std::vector<double>& sum = sum_scratch_;
  sum.assign(vector_size_, 0.0);
  for (std::size_t m = 0; m < r; ++m) {
    if (!providers_[m]) continue;
    const std::vector<double> local = providers_[m]();
    SHAREGRID_ASSERT(local.size() == vector_size_);
    for (std::size_t i = 0; i < vector_size_; ++i) sum[i] += local[i];
  }
  const std::uint64_t round = next_round_++;
  for (std::size_t m = 0; m < r; ++m) {
    if (receivers_[m]) receivers_[m](round, sum);
  }
  // Star accounting: R reports up to the virtual root, R broadcasts down.
  messages_sent_ += 2 * static_cast<std::uint64_t>(r);
  ++rounds_completed_;
}

}  // namespace sharegrid::coord
