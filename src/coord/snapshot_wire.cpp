#include "coord/snapshot_wire.hpp"

#include <cstring>
#include <limits>

namespace sharegrid::coord::wire {
namespace {

// Doubles travel as their IEEE-754 bit pattern; on anything else the bit
// image would decode to a different value and the bitwise plan-equality the
// multi-process demo pins would be silently meaningless. Fail the build, not
// the fleet.
static_assert(std::numeric_limits<double>::is_iec559,
              "snapshot_wire serializes doubles as IEEE-754 bit patterns; "
              "this platform's double is not IEC 559");
static_assert(sizeof(double) == sizeof(std::uint64_t),
              "snapshot_wire assumes 64-bit doubles");

constexpr std::size_t kHeaderBytes = 24;
/// incarnation + aux, appended to the header by membership frames.
constexpr std::size_t kMembershipExtBytes = 16;

void put_u16(std::string* out, std::uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string* out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

void put_u64(std::string* out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(std::string_view bytes, std::size_t at) {
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

std::uint16_t get_u16(std::string_view bytes, std::size_t at) {
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint16_t>(static_cast<unsigned char>(bytes[at + i]));
  };
  return static_cast<std::uint16_t>(b(0) | (b(1) << 8));
}

std::uint64_t get_u64(std::string_view bytes, std::size_t at) {
  return static_cast<std::uint64_t>(get_u32(bytes, at)) |
         (static_cast<std::uint64_t>(get_u32(bytes, at + 4)) << 32);
}

}  // namespace

const char* to_string(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kTruncated: return "truncated";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadType: return "bad-type";
    case DecodeStatus::kSizeMismatch: return "size-mismatch";
  }
  return "unknown";
}

bool is_membership(FrameType type) {
  return type == FrameType::kHello || type == FrameType::kLease ||
         type == FrameType::kLeaseAck;
}

std::string encode(const Frame& frame) {
  const bool membership = is_membership(frame.type);
  std::string out;
  out.reserve(kHeaderBytes +
              (membership ? kMembershipExtBytes : 8 * frame.values.size()));
  put_u32(&out, kMagic);
  put_u16(&out, membership ? kVersionMembership : kVersion);
  put_u16(&out, static_cast<std::uint16_t>(frame.type));
  put_u64(&out, frame.round);
  put_u32(&out, frame.member);
  if (membership) {
    put_u32(&out, 0);  // count: membership frames carry no demand vector
    put_u64(&out, frame.incarnation);
    put_u64(&out, frame.aux);
    return out;
  }
  put_u32(&out, static_cast<std::uint32_t>(frame.values.size()));
  // The u64 bit image is extracted with memcpy (well-defined type punning)
  // and then written byte-by-byte little-endian by put_u64, so the on-wire
  // bytes do not depend on host byte order. Exactness is the point: the
  // multi-process demo pins plans *bitwise* against the in-process baseline.
  for (const double v : frame.values) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(&out, bits);
  }
  return out;
}

DecodeStatus decode(std::string_view bytes, Frame* out) {
  if (bytes.size() < kHeaderBytes) return DecodeStatus::kTruncated;
  if (get_u32(bytes, 0) != kMagic) return DecodeStatus::kBadMagic;
  const std::uint16_t version = get_u16(bytes, 4);
  if (version != kVersion && version != kVersionMembership)
    return DecodeStatus::kBadVersion;
  const std::uint16_t raw_type = get_u16(bytes, 6);
  if (raw_type < 1 || raw_type > 6) return DecodeStatus::kBadType;
  const auto type = static_cast<FrameType>(raw_type);
  // A type is only valid under its own version: a v1 hello or a v2 report is
  // a confused (or fuzzed) sender, not a forward-compatible frame.
  if (is_membership(type) != (version == kVersionMembership))
    return DecodeStatus::kBadType;
  const std::uint32_t count = get_u32(bytes, 20);
  if (is_membership(type)) {
    if (count != 0) return DecodeStatus::kSizeMismatch;
    if (bytes.size() != kHeaderBytes + kMembershipExtBytes)
      return DecodeStatus::kSizeMismatch;
    out->type = type;
    out->round = get_u64(bytes, 8);
    out->member = get_u32(bytes, 16);
    out->incarnation = get_u64(bytes, kHeaderBytes);
    out->aux = get_u64(bytes, kHeaderBytes + 8);
    out->values.clear();
    return DecodeStatus::kOk;
  }
  if (bytes.size() != kHeaderBytes + 8 * static_cast<std::size_t>(count))
    return DecodeStatus::kSizeMismatch;
  out->type = type;
  out->round = get_u64(bytes, 8);
  out->member = get_u32(bytes, 16);
  out->incarnation = 0;
  out->aux = 0;
  out->values.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t bits = get_u64(bytes, kHeaderBytes + 8 * i);
    std::memcpy(&out->values[i], &bits, sizeof(double));
  }
  return DecodeStatus::kOk;
}

}  // namespace sharegrid::coord::wire
