// Per-peer session layer for the cross-process control plane.
//
// PR 9's SocketTransport wired its star once at start(): the root accepted
// anonymous connections forever and a leaf dialed process 0 exactly once —
// a dead peer's connection slot was never reclaimed and a restarted process
// could not re-dial into an assembled fleet. SessionManager owns that whole
// lifecycle instead, for every process symmetrically:
//
//   - every process listens on its own peers[self] address for the life of
//     the run (so any process can be dialed — the precondition for both
//     rejoin and root election);
//   - outbound sessions are driven by a want-set: want(p) dials peer p with
//     capped exponential backoff (reconnect_base_usec doubling up to
//     reconnect_max_usec, reset on success) until a session is established
//     or the peer is unwanted;
//   - a session exists only after a HELLO handshake in both directions.
//     HELLO carries the sender's process index, its incarnation number
//     (bumped each restart) and the global member range it hosts. A HELLO
//     whose incarnation is below the highest one seen from that process is
//     a zombie and is rejected; an equal-or-higher incarnation replaces any
//     existing session (that is a rejoin);
//   - per-peer session state is explicit — connecting / established / lost /
//     rejoining — and surfaced as metrics (coord.socket.sessions_active,
//     coord.socket.reconnects).
//
// The owner consumes a flat event stream from poll(): kPeerUp / kPeerDown /
// kDialRefused / kFrame. kDialRefused fires only when connect() itself is
// refused or a handshake times out — a live peer whose session drops mid-
// stream is kPeerDown + a rejoining redial, never a refusal — which is what
// lets the election layer read "every lower-id peer refuses my dials" as
// "every lower-id peer is dead".
//
// Threading: identical contract to the rest of the coord stack. Background
// threads (one acceptor + one reader per connection) only pump bytes into a
// mutex-guarded inbox; every protocol decision — handshakes, dial pacing,
// session replacement, event emission — happens inside poll(now_usec) on
// the caller's thread against the caller's clock. The manager never reads
// a clock, so backoff and handshake timeouts are deterministic under
// test-supplied time.
//
// Simultaneous dials (two processes dialing each other while electing) are
// broken deterministically: for a pair of processes the session dialed by
// the lower-index one wins, on both sides, so the pair converges on one
// connection instead of repeatedly closing each other's.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "coord/snapshot_wire.hpp"
#include "net/tcp.hpp"
#include "util/thread_annotations.hpp"

namespace sharegrid::coord {

/// Owns dial/accept, the HELLO handshake, reconnect backoff and per-peer
/// session state for one process of a control-plane fleet.
class SessionManager {
 public:
  /// Explicit per-peer lifecycle, readable via state() and surfaced in the
  /// sessions_active gauge.
  enum class SessionState {
    kIdle,         ///< no session and none wanted
    kConnecting,   ///< first dial (never established before) in progress
    kEstablished,  ///< HELLO exchanged both ways; frames flow
    kLost,         ///< had a session, it died; waiting out the backoff
    kRejoining,    ///< re-dial after a loss (or of a restarted peer) underway
  };

  struct Options {
    /// host:port of every process, index-aligned with process indices. This
    /// process listens on its own entry; others are dial targets. A port of
    /// 0 marks a peer as inbound-only (it holds an ephemeral port and must
    /// dial us) — tests use this to avoid pre-picking ports.
    std::vector<std::string> peers;
    /// Which peers[] entry this process is.
    std::size_t self_index = 0;
    /// This process's incarnation, carried in every HELLO. Bump it on each
    /// restart: peers use it to tell a rejoining process from a zombie.
    std::uint64_t incarnation = 1;
    /// Overrides the port parsed from peers[self_index] (0 = use peers[];
    /// tests pass "host:0" and read the ephemeral listen_port()).
    std::uint16_t listen_port = 0;
    /// Loopback-only unless set: with false (default) every peer entry must
    /// be 127.0.0.1/localhost and the listener binds loopback; with true,
    /// peers may be any numeric IPv4 and the listener binds 0.0.0.0.
    bool allow_nonlocal = false;
    /// First re-dial delay after a refusal; doubles per refusal up to
    /// reconnect_max_usec, resets on an established session.
    std::int64_t reconnect_base_usec = 20000;
    std::int64_t reconnect_max_usec = 320000;
    /// A dialed peer that accepts TCP but never answers HELLO (e.g. a
    /// stopped process whose kernel still completes connections) is treated
    /// as a refusal after this long.
    std::int64_t hello_timeout_usec = 500000;
    /// Socket receive timeout for the background pumps; bounds stop() join
    /// latency and how often readers re-check the running flag.
    int io_timeout_ms = 50;
    /// Opaque payload for our HELLO frames; the transport packs the global
    /// member range it hosts as (member_offset << 32) | member_count.
    std::uint64_t hello_aux = 0;
    /// Invoked (from poll() or a reader thread — must be thread-safe) for
    /// every dropped frame: undecodable bytes, zombie HELLOs, pre-HELLO
    /// frames. The transport points this at its frames_rejected counter so
    /// one count covers the whole receive path.
    std::function<void(const char*)> on_reject;
  };

  /// One poll() outcome, consumed in order via take_events().
  struct Event {
    enum class Kind {
      kPeerUp,       ///< session established (incarnation/aux from its HELLO)
      kPeerDown,     ///< established session died
      kDialRefused,  ///< connect() refused or handshake timed out
      kFrame,        ///< non-HELLO frame from an established session
    };
    Kind kind = Kind::kFrame;
    std::size_t peer = 0;
    std::uint64_t incarnation = 0;  ///< kPeerUp only
    std::uint64_t aux = 0;          ///< kPeerUp only
    wire::Frame frame;              ///< kFrame only
  };

  explicit SessionManager(Options options);
  ~SessionManager();

  /// Binds the listener and starts the acceptor. Dials happen in poll().
  void start();
  void stop();

  /// Drives dials, handshakes, timeouts and the inbox against the caller's
  /// monotonic clock. Single poll thread, same contract as
  /// SocketTransport::poll.
  void poll(std::int64_t now_usec);

  /// Drains the events poll() produced, in arrival order.
  std::vector<Event> take_events();

  /// Marks peer as a dial target (or not). Unwanting a peer abandons any
  /// in-flight dial but leaves an established session alone — use
  /// disconnect() to drop one.
  void want(std::size_t peer, bool wanted);

  /// Deliberately drops peer's session (no kPeerDown — the owner asked).
  /// A still-wanted peer re-enters the dial loop.
  void disconnect(std::size_t peer);

  /// Sends one framed message to peer; silently dropped unless established
  /// (the session layer's answer to "the peer is gone" is events, not
  /// errors on every send site).
  void send(std::size_t peer, const std::string& bytes);

  /// send() to every established peer.
  void broadcast(const std::string& bytes);

  SessionState state(std::size_t peer) const;
  bool established(std::size_t peer) const;
  std::size_t established_count() const;
  /// Incarnation from the peer's most recent accepted HELLO (0 = never).
  std::uint64_t peer_incarnation(std::size_t peer) const;
  /// aux from the peer's most recent accepted HELLO.
  std::uint64_t peer_aux(std::size_t peer) const;

  /// The bound port (after start()); valid with ephemeral binds.
  std::uint16_t listen_port() const { return listen_port_; }
  /// Sessions that re-established after a loss or refusal, fleet-lifetime.
  std::uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  /// Distinct peers that have ever reached kEstablished.
  std::size_t peers_ever_established() const;

  /// Validates one "host:port" peer entry and splits it. Enforces loopback
  /// unless @p allow_nonlocal; throws ContractViolation on violations.
  struct PeerAddr {
    std::string host;
    std::uint16_t port = 0;
  };
  static PeerAddr parse_peer(const std::string& peer, bool allow_nonlocal);

 private:
  /// One live connection; reader threads hold a stable Conn*. Slots in
  /// conns_ are reclaimed (joined and freed) from poll() once the reader
  /// reports the connection closed — dead peers do not leak slots.
  struct Conn {
    net::Socket sock;
    std::thread reader;
    std::atomic<bool> closed{false};
  };

  /// A parsed frame (or a disconnect note) queued by a reader thread.
  struct Inbound {
    std::size_t conn_index = 0;
    bool disconnected = false;
    wire::Frame frame;
  };

  static constexpr std::size_t kNoConn = static_cast<std::size_t>(-1);

  /// poll()-side view of one connection slot (never touched by readers).
  struct ConnInfo {
    bool known = false;     ///< poll() has seen this slot
    bool outbound = false;  ///< we dialed it (peer below is the dial target)
    bool open = false;
    std::size_t peer = kNoConn;  ///< bound process index (outbound: target)
  };

  /// poll()-side state for one peer process.
  struct Peer {
    SessionState state = SessionState::kIdle;
    bool wanted = false;
    bool ever_established = false;
    std::size_t conn = kNoConn;  ///< established or handshaking outbound conn
    std::uint64_t incarnation = 0;
    std::uint64_t aux = 0;
    std::int64_t next_dial_usec = 0;
    std::int64_t backoff_usec = 0;  ///< 0 = dial immediately when wanted
    std::int64_t handshake_deadline_usec = 0;
  };

  void accept_loop() SHAREGRID_EXCLUDES(mutex_);
  void reader_loop(Conn* conn, std::size_t conn_index)
      SHAREGRID_EXCLUDES(mutex_);
  void reject(const char* why);

  // poll()-thread only ----------------------------------------------------
  std::vector<Inbound> take_inbox() SHAREGRID_EXCLUDES(mutex_);
  ConnInfo& info(std::size_t conn_index);
  std::size_t adopt_socket(net::Socket sock) SHAREGRID_EXCLUDES(mutex_);
  void send_on_conn(std::size_t conn_index, const std::string& bytes)
      SHAREGRID_EXCLUDES(mutex_);
  void close_conn(std::size_t conn_index) SHAREGRID_EXCLUDES(mutex_);
  void reclaim_conn(std::size_t conn_index) SHAREGRID_EXCLUDES(mutex_);
  void handle_closed(std::size_t conn_index, std::int64_t now_usec);
  void handle_hello(std::size_t conn_index, const wire::Frame& frame,
                    std::int64_t now_usec);
  void establish(std::size_t peer, std::size_t conn_index,
                 std::uint64_t incarnation, std::uint64_t aux);
  void dial_pass(std::int64_t now_usec);
  void note_refusal(std::size_t peer, std::int64_t now_usec);
  std::string hello_bytes() const;
  void update_gauge() const;

  Options options_;
  std::size_t fleet_;  ///< peers.size()

  // Shared between poll(), the acceptor, and the readers.
  mutable util::Mutex mutex_;
  std::vector<std::unique_ptr<Conn>> conns_ SHAREGRID_GUARDED_BY(mutex_);
  std::vector<Inbound> inbox_ SHAREGRID_GUARDED_BY(mutex_);

  net::Socket listener_;  ///< every process listens; shutdown() wakes accept
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::uint16_t listen_port_ = 0;
  std::atomic<std::uint64_t> reconnects_{0};

  // poll()-thread only.
  std::vector<ConnInfo> conn_info_;
  std::vector<Peer> peers_;
  std::vector<Event> events_;
};

const char* to_string(SessionManager::SessionState state);

}  // namespace sharegrid::coord
