// The unified window-loop control plane (§3.2, §4; DESIGN.md D10).
//
// One coordination loop drives every enforcement point in the system:
//
//   monitor local demand  ->  combining-tree snapshot  ->  plan solve  ->
//   proportional slice distribution  ->  integer window quotas
//
// Historically that loop existed twice — hand-wired per redirector node in
// the simulator and re-implemented (single-node, tree-less) in the live
// stack. ControlPlane owns it once: per-principal ArrivalEstimator demand
// monitoring, snapshot exchange over an abstract SnapshotTransport, plan
// solves through the shared sched::Scheduler (MultiProviderScheduler's
// parallel path included), and WindowScheduler slice/quota enforcement.
//
// Timing is deliberately absent: a ControlPlane member only ever reacts to
// record_arrival / try_admit / advance_window / receive_global calls. The
// DES SimWindowDriver and the steady-clock WallClockDriver (window_driver.hpp)
// are thin shims that decide *when* those calls happen, so the simulator and
// the live L4/L7 services execute the same code path and the D4 determinism
// contract survives the sharing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "coord/snapshot_transport.hpp"
#include "core/principal.hpp"
#include "sched/scheduler.hpp"
#include "sched/window_scheduler.hpp"
#include "util/time.hpp"

namespace sharegrid::coord {

/// Control-plane configuration shared by every member.
struct ControlPlaneConfig {
  /// Scheduling window length (paper: 100 ms).
  SimDuration window = 100 * kMillisecond;
  /// R, the redirector fleet size — the conservative no-snapshot slice is
  /// 1/R (paper §5.1, Figure 8 phase 1). Members may be added up to R.
  std::size_t redirector_count = 1;
  /// EWMA weight of the newest window for the demand estimators, in (0, 1].
  double estimator_alpha = 0.3;
  /// Behaviour before the first snapshot arrives.
  sched::StalePolicy stale_policy = sched::StalePolicy::kConservative;
  /// Demand-spike fast-path budget in re-plans per window. Fractional rates
  /// are error-carried across windows (QuotaCarry), so 0.5 means one re-plan
  /// every other window; 0 disables the fast path entirely.
  double spike_replan_limit = 1.0;
  /// Observability hooks (optional; e.g. nodes::Metrics counters).
  std::function<void()> on_spike_replan;
  std::function<void()> on_replan_suppressed;
};

/// Shared window loop; holds one Member per redirector / service instance.
class ControlPlane {
 public:
  /// Node-specific extensions a member's owner may install.
  struct MemberHooks {
    /// Adjusts the demand vector after the estimator rates are filled in —
    /// e.g. the L4 redirector adds kernel-queue backlog and excess in-flight
    /// work, the explicit-queue L7 mode adds held requests.
    std::function<void(std::vector<double>&)> extra_demand;
    /// Runs after a window's quotas are in place (trace rows, queue drains).
    std::function<void(SimTime now)> on_window_begun;
  };

  /// One redirector's slice of the control plane.
  class Member {
   public:
    Member(ControlPlane* plane, std::size_t index);

    /// Installs node-specific hooks (typically from the owner's ctor).
    void bind(MemberHooks hooks) { hooks_ = std::move(hooks); }

    /// Records @p amount arrival units for @p principal in this window.
    void record_arrival(core::PrincipalId principal, double amount);

    /// Attempts to admit one request; see WindowScheduler::try_admit.
    std::optional<core::PrincipalId> try_admit(core::PrincipalId principal,
                                               double weight = 1.0);

    /// Demand-spike fast path: re-plans the current window against demand
    /// including the arrivals seen so far, bounded by the per-window re-plan
    /// budget (ControlPlaneConfig::spike_replan_limit). Returns false — and
    /// counts a suppressed re-plan — when the budget is exhausted.
    bool spike_replan();

    /// Folds this window's arrivals into the rate estimators.
    void end_window();
    /// Starts a new window: recomputes local demand, re-plans quotas against
    /// the latest snapshot, refills the spike-replan budget, and fires the
    /// owner's on_window_begun hook.
    void begin_window(SimTime now);
    /// end_window() + begin_window() — one full window boundary.
    void advance_window(SimTime now);

    /// Snapshot delivery (SnapshotTransport receiver). Rounds must strictly
    /// increase; the audit_control_plane hook pins that.
    void receive_global(std::uint64_t round,
                        const std::vector<double>& aggregate);

    /// Drops back to the no-snapshot regime (SnapshotTransport stale
    /// handler): the next begin_window plans against the conservative 1/R
    /// share until a fresh aggregate arrives. Round-monotonicity state is
    /// kept, so a late aggregate from before the fallback still audits.
    void invalidate_global() { global_.valid = false; }

    /// Rejoin-safe stale handler: invalidate_global() plus a reset of the
    /// round-monotonicity fence. A member that lost its control plane may be
    /// re-admitted under a different transport epoch (a restarted process,
    /// or a newly elected root); it plans conservatively (1/R) until the
    /// next aggregate folds it back in at a round boundary, and that first
    /// aggregate's round tag is accepted as the new fence base instead of
    /// being audited against the pre-partition sequence.
    void readmit() {
      global_.valid = false;
      has_snapshot_round_ = false;
    }

    /// Current local demand estimate (SnapshotTransport provider): estimator
    /// rates plus whatever the owner's extra_demand hook adds.
    std::vector<double> local_demand() const;

    std::size_t index() const { return index_; }
    std::size_t size() const { return arrivals_.size(); }
    SimDuration window() const { return window_.window(); }
    const sched::WindowScheduler& window_scheduler() const { return window_; }
    const sched::GlobalDemand& global() const { return global_; }
    /// The demand vector the current window was planned against.
    const std::vector<double>& last_local_demand() const {
      return last_local_demand_;
    }

    std::uint64_t spike_replans() const { return spike_replans_; }
    std::uint64_t replans_suppressed() const { return replans_suppressed_; }

   private:
    friend class ControlPlane;

    ControlPlane* plane_;
    std::size_t index_;
    sched::WindowScheduler window_;
    std::vector<sched::ArrivalEstimator> estimators_;
    std::vector<double> arrivals_;
    std::vector<double> last_local_demand_;
    sched::GlobalDemand global_;
    MemberHooks hooks_;

    bool has_snapshot_round_ = false;
    std::uint64_t last_round_ = 0;

    // Spike-replan budget: integer re-plans released from the fractional
    // per-window limit with an error carry, so limit = 0.5 alternates 0/1.
    sched::QuotaCarry replan_budget_;
    std::uint64_t replans_allowed_ = 0;
    std::uint64_t replans_used_ = 0;
    std::uint64_t spike_replans_ = 0;
    std::uint64_t replans_suppressed_ = 0;
  };

  /// @param scheduler shared planning logic (not owned; one per deployment).
  ControlPlane(const sched::Scheduler* scheduler, ControlPlaneConfig config);

  /// Adds the next member (index = registration order). At most
  /// config.redirector_count members may exist. Pointers stay stable.
  Member* add_member();

  /// Attaches every member's provider/receiver to @p transport (not owned).
  /// Call after all members are added and before transport->start().
  void connect(SnapshotTransport* transport);

  /// Window boundaries for every member in index order — what the drivers
  /// call. Separate end/begin phases let a driver interleave a snapshot
  /// exchange between them if it wants fresher aggregates.
  void end_windows();
  void begin_windows(SimTime now);

  /// Audit hook: cross-member slice conservation. While *no* member has a
  /// snapshot yet and the policy is conservative, every member plans from
  /// the identical saturated demand, so the per-cell slices across the fleet
  /// must sum to at most one full plan share (the 1/R slices of §5.1).
  /// Always compiled (tests call it directly); drivers invoke it under
  /// SHAREGRID_AUDIT_HOOK.
  void audit_window_slices() const;

  std::size_t member_count() const { return members_.size(); }
  Member* member(std::size_t i) { return members_[i].get(); }
  const Member* member(std::size_t i) const { return members_[i].get(); }
  const ControlPlaneConfig& config() const { return config_; }
  const sched::Scheduler* scheduler() const { return scheduler_; }

 private:
  const sched::Scheduler* scheduler_;
  ControlPlaneConfig config_;
  std::vector<std::unique_ptr<Member>> members_;
};

}  // namespace sharegrid::coord
