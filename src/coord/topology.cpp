#include "coord/topology.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sharegrid::coord {

std::size_t TreeTopology::root() const {
  for (std::size_t i = 0; i < parent.size(); ++i)
    if (parent[i] == kNoParent) return i;
  SHAREGRID_ASSERT(!"tree has no root");
  return kNoParent;
}

std::vector<std::vector<std::size_t>> TreeTopology::children() const {
  std::vector<std::vector<std::size_t>> out(parent.size());
  for (std::size_t i = 0; i < parent.size(); ++i)
    if (parent[i] != kNoParent) out[parent[i]].push_back(i);
  return out;
}

std::size_t TreeTopology::depth() const {
  std::size_t deepest = 0;
  for (std::size_t i = 0; i < parent.size(); ++i) {
    std::size_t d = 0;
    for (std::size_t v = i; parent[v] != kNoParent; v = parent[v]) ++d;
    deepest = std::max(deepest, d);
  }
  return deepest;
}

bool TreeTopology::valid() const {
  if (parent.empty()) return false;
  std::size_t roots = 0;
  for (std::size_t i = 0; i < parent.size(); ++i) {
    if (parent[i] == kNoParent) {
      ++roots;
      continue;
    }
    if (parent[i] >= parent.size()) return false;
    // Walk to the root; a cycle would exceed n steps.
    std::size_t v = i;
    std::size_t steps = 0;
    while (parent[v] != kNoParent) {
      v = parent[v];
      if (++steps > parent.size()) return false;
    }
  }
  return roots == 1;
}

TreeTopology TreeTopology::star(std::size_t n) {
  SHAREGRID_EXPECTS(n >= 1);
  TreeTopology t;
  t.parent.assign(n, 0);
  t.parent[0] = kNoParent;
  return t;
}

TreeTopology TreeTopology::chain(std::size_t n) {
  SHAREGRID_EXPECTS(n >= 1);
  TreeTopology t;
  t.parent.resize(n);
  t.parent[0] = kNoParent;
  for (std::size_t i = 1; i < n; ++i) t.parent[i] = i - 1;
  return t;
}

TreeTopology TreeTopology::balanced(std::size_t n, std::size_t fanout) {
  SHAREGRID_EXPECTS(n >= 1 && fanout >= 1);
  TreeTopology t;
  t.parent.resize(n);
  t.parent[0] = kNoParent;
  for (std::size_t i = 1; i < n; ++i) t.parent[i] = (i - 1) / fanout;
  return t;
}

}  // namespace sharegrid::coord
