// Cross-process snapshot transport: the SnapshotTransport seam over real
// TCP, membership-aware (ROADMAP "rejoin and leadership on the live path";
// docs/control-plane.md).
//
// Topology is a star, mirroring the flat CombiningTree, but the star's hub
// is now elected rather than frozen: the root is whichever process holds the
// current *lease*. A round is three phases:
//
//   1. root:   round-start(round k) to every live peer, sample local members
//   2. leaves: sample local members, report(k, member, demand) to the root
//   3. root:   when every live member's report is in, sum them in global
//              member order and send aggregate(k, sum) down + deliver locally
//
// Membership: SessionManager owns the per-peer sessions (full mesh — every
// process listens and dials every other). The root captures the live set
// when a round opens: itself plus every established peer, each contributing
// the global member range its HELLO claimed. A peer that dies mid-round
// just lets the round hit its deadline; a peer that (re)joins mid-round is
// folded in at the next round boundary — membership never changes inside a
// round, which is what keeps churn-free runs bitwise-identical to the
// fixed-fleet transport.
//
// Leadership: the root holds a TTL lease (lease frame: root index, lease
// incarnation, TTL), refreshed by piggybacking on every round-start plus a
// standalone heartbeat for idle gaps. Followers re-arm the expiry clock on
// every lease receipt. When a follower observes the lease expired, it
// becomes a candidate; it may acquire only once every LOWER-index peer has
// refused its dials since candidacy began (SessionManager fires
// kDialRefused only for connect-refusals and handshake timeouts — never for
// an established session that dropped — so "all lower peers refuse" really
// means "all lower peers are dead", and the lowest live member id wins).
// Acquisition bumps the lease incarnation past the highest ever seen; the
// audit_root_acquire hook pins both conditions. A deposed root that wakes
// up and keeps sending rounds is fenced by incarnation: receivers reject
// frames from a non-lease-holder and answer with a lease-ack carrying the
// newer incarnation, which makes the zombie step down and re-adopt. Lease
// acks also carry the acker's highest round so a freshly elected root
// fast-forwards its round counter above anything any survivor delivered —
// round tags stay strictly monotone across root changes.
//
// Failure semantics: an abandoned round is counted and skipped; when no
// aggregate has been delivered for `stale_after_usec`, the stale handlers
// registered via attach_stale_handler fire once (re-armed by the next
// delivery), re-admitting the control-plane members into the conservative
// 1/R regime. With election enabled a dead root is replaced within a lease
// TTL and survivors usually never go stale; with it disabled this transport
// degrades exactly like the fixed-fleet one.
//
// Threading: unchanged contract. SessionManager's background threads only
// pump bytes; everything with semantics — sessions, leases, elections,
// round pacing, deadlines, delivery — happens inside poll(now_usec) on the
// caller's thread against the caller's monotonic clock. The transport never
// reads a clock, so deadlines, lease expiry and elections are deterministic
// under test-supplied time.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coord/session_manager.hpp"
#include "coord/snapshot_transport.hpp"
#include "coord/snapshot_wire.hpp"
#include "util/thread_annotations.hpp"

namespace sharegrid::coord {

/// Star-topology snapshot exchange between N processes over TCP, with peer
/// rejoin and lease-based root election.
class SocketTransport final : public SnapshotTransport {
 public:
  struct Options {
    /// host:port of every process in the fleet, index-aligned with
    /// process_index. Every process listens on its own entry and dials the
    /// others (SessionManager; port 0 entries are inbound-only). Loopback
    /// unless allow_nonlocal.
    std::vector<std::string> peers;
    /// Which peers[] entry this process is.
    std::size_t process_index = 0;
    /// This process's incarnation, bumped on each restart. Process 0 at
    /// incarnation 1 bootstraps as the initial lease holder; a restarted
    /// process always starts as a follower and adopts the current lease.
    std::uint64_t incarnation = 1;
    /// Overrides the port parsed from peers[process_index] (0 = use peers[];
    /// tests pass "host:0" and read the ephemeral listen_port()).
    std::uint16_t listen_port = 0;
    /// Loopback-only unless set (satellite: [control_plane] allow_nonlocal).
    bool allow_nonlocal = false;
    /// First global member index hosted by this process. Global members are
    /// assigned contiguously per process; with the default one-member-per-
    /// process fleet this equals process_index.
    std::size_t member_offset = 0;
    /// Total members across the fleet, R (0 = one per process).
    std::size_t fleet_size = 0;
    /// Root: minimum spacing between round starts, in caller-clock usec.
    std::int64_t round_period_usec = 100000;
    /// Root: an incomplete round is abandoned this long after it started.
    std::int64_t round_deadline_usec = 100000;
    /// No aggregate for this long after the last delivery -> stale handlers
    /// fire (0 = round_period_usec + round_deadline_usec).
    std::int64_t stale_after_usec = 0;
    /// Root lease TTL. Followers treat the root as dead this long after the
    /// last lease receipt; keep it comfortably above round_period_usec.
    std::int64_t lease_ttl_usec = 500000;
    /// Standalone lease refresh spacing (0 = lease_ttl_usec / 3). Every
    /// round-start also refreshes the lease, so this only matters when
    /// rounds are sparse relative to the TTL.
    std::int64_t heartbeat_usec = 0;
    /// When false, followers never run for root: a dead root means
    /// staleness and the conservative 1/R regime, as in the fixed fleet.
    bool election_enabled = true;
    /// Session re-dial backoff: first retry after reconnect_base_usec,
    /// doubling up to reconnect_max_usec, reset on an established session.
    std::int64_t reconnect_base_usec = 20000;
    std::int64_t reconnect_max_usec = 320000;
    /// A dialed peer that accepts TCP but never answers HELLO counts as a
    /// refusal after this long (a stopped process still completes TCP).
    std::int64_t hello_timeout_usec = 500000;
    /// Socket receive timeout for the background pumps; bounds stop() join
    /// latency and how often readers re-check the running flag.
    int io_timeout_ms = 50;
    /// Fired from poll() when a round opens here (root: before sampling;
    /// leaf: on round-start receipt, before sampling). The multi-process
    /// demo advances its windows in this hook so every process advances on
    /// the same round boundaries.
    std::function<void(std::uint64_t round)> on_round_start;
  };

  SocketTransport(std::size_t local_member_count, std::size_t vector_size,
                  Options options);
  ~SocketTransport() override;

  void attach(std::size_t member, Provider provider,
              Receiver receiver) override;
  void attach_stale_handler(std::size_t member,
                            std::function<void()> on_stale) override;

  /// Binds this process's listen port and starts the session layer. Dials,
  /// handshakes and rounds all happen in poll(), so start() needs no clock.
  void start() override;
  void stop() override;

  /// Advances sessions, leases, elections and rounds against the caller's
  /// monotonic clock. Must be called from one thread (the window driver's);
  /// receivers and on_round_start run synchronously inside it.
  void poll(std::int64_t now_usec);

  /// Logical star messages (reports up from local members + aggregate
  /// broadcasts down at the root), so the fleet-wide sum per completed
  /// full-membership round is 2R — comparable with InProcessTransport.
  /// Session and lease frames are control overhead and are not counted.
  std::uint64_t messages_sent() const override {
    return messages_sent_.load(std::memory_order_relaxed);
  }

  /// Whether this process currently holds the lease. Dynamic: changes on
  /// election and on being fenced.
  bool is_root() const { return role_root_; }
  /// The current lease holder as this process believes it (valid only when
  /// has_root() — a restarted follower knows no root until a lease lands).
  bool has_root() const { return role_root_ || lease_known_; }
  std::size_t root_index() const {
    return role_root_ ? options_.process_index : lease_root_;
  }
  /// The lease incarnation this process is operating under (0 = none yet).
  std::uint64_t lease_incarnation() const {
    return role_root_ ? lease_inc_ : (lease_known_ ? lease_inc_ : 0);
  }
  /// The bound port (after start()); valid with ephemeral binds.
  std::uint16_t listen_port() const { return session_->listen_port(); }
  /// Session state for a peer process (SessionManager passthrough).
  SessionManager::SessionState session_state(std::size_t peer) const {
    return session_->state(peer);
  }
  /// Distinct peers that have ever established a session with us.
  std::size_t peers_connected() const {
    return session_->peers_ever_established();
  }
  /// Sessions re-established after a loss (SessionManager passthrough;
  /// metric coord.socket.reconnects).
  std::uint64_t reconnects() const { return session_->reconnects(); }
  /// Times this process acquired the lease (metric coord.socket.elections).
  std::uint64_t elections() const {
    return elections_.load(std::memory_order_relaxed);
  }
  /// Root: times a previously-pruned peer was folded back into the live set
  /// at a round boundary.
  std::uint64_t readmissions() const {
    return readmissions_.load(std::memory_order_relaxed);
  }
  /// Root: global members included in the most recently opened round.
  std::size_t members_live() const { return last_round_members_; }

  std::uint64_t rounds_completed() const {
    return rounds_completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t rounds_abandoned() const {
    return rounds_abandoned_.load(std::memory_order_relaxed);
  }
  /// Frames dropped for any reason: undecodable bytes, zombie hellos or
  /// leases, unknown round or member, duplicates, wrong direction. Mirrored
  /// into the metrics registry as coord.socket.frames_rejected.
  std::uint64_t frames_rejected() const {
    return frames_rejected_.load(std::memory_order_relaxed);
  }
  /// Times the staleness threshold fired and handlers were invoked.
  std::uint64_t stale_fallbacks() const {
    return stale_fallbacks_.load(std::memory_order_relaxed);
  }
  /// Why the most recent frame was rejected ("" if none yet) — a debugging
  /// and test aid alongside the frames_rejected() count.
  std::string last_reject_reason() const SHAREGRID_EXCLUDES(mutex_);

 private:
  /// What the root knows about one process of the fleet (itself included).
  struct Process {
    bool range_known = false;    ///< HELLO seen at least once (self: always)
    std::size_t member_offset = 0;
    std::size_t member_count = 0;
    bool live_this_round = false;
    bool was_pruned = false;  ///< left the live set at least once
  };

  void reject_frame(const char* why) SHAREGRID_EXCLUDES(mutex_);

  // poll()-thread only ----------------------------------------------------
  void handle_event(const SessionManager::Event& event, std::int64_t now_usec);
  void handle_lease(std::size_t from, const wire::Frame& frame,
                    std::int64_t now_usec);
  void handle_lease_ack(std::size_t from, const wire::Frame& frame);
  void handle_report(std::size_t from, wire::Frame& frame);
  void handle_round_start(std::size_t from, const wire::Frame& frame,
                          std::int64_t now_usec);
  void handle_aggregate(std::size_t from, const wire::Frame& frame,
                        std::int64_t now_usec);
  /// Rejects a round frame from a process that no longer holds the lease
  /// and answers with the newer incarnation so the zombie steps down.
  void fence_zombie_root(std::size_t from, const char* why);
  void send_lease(std::size_t peer);
  void broadcast_lease(std::int64_t now_usec);
  void step_down(std::uint64_t newer_incarnation);
  void maybe_elect(std::int64_t now_usec);
  void acquire_lease(std::int64_t now_usec);
  void poll_round_root(std::int64_t now_usec);
  void open_round(std::int64_t now_usec);
  void finish_round(std::int64_t now_usec);
  void sample_local_members(std::uint64_t round);
  void deliver_aggregate(std::uint64_t round, const std::vector<double>& sum,
                         std::int64_t now_usec);
  void check_staleness(std::int64_t now_usec);
  std::string lease_bytes() const;

  std::size_t local_member_count_;
  std::size_t vector_size_;
  Options options_;
  std::size_t fleet_size_;  ///< R (resolved from options)

  std::vector<Provider> providers_;
  std::vector<Receiver> receivers_;
  std::vector<std::function<void()>> stale_handlers_;

  std::unique_ptr<SessionManager> session_;

  mutable util::Mutex mutex_;
  std::string last_reject_reason_ SHAREGRID_GUARDED_BY(mutex_);

  std::atomic<bool> running_{false};

  // Lease / election state, touched only by the poll() thread.
  bool role_root_ = false;
  bool lease_known_ = false;       ///< follower: a lease has been adopted
  std::size_t lease_root_ = 0;     ///< follower: its holder
  std::uint64_t lease_inc_ = 0;    ///< adopted (follower) or held (root)
  std::int64_t lease_expiry_usec_ = 0;      ///< follower: local re-armed TTL
  std::uint64_t highest_inc_seen_ = 0;
  std::int64_t next_heartbeat_usec_ = 0;    ///< root only
  bool electing_ = false;
  std::int64_t election_started_usec_ = 0;
  std::vector<std::int64_t> last_refusal_usec_;  ///< per peer; -1 = never

  // Round state (root role), touched only by the poll() thread.
  std::vector<Process> processes_;
  bool round_open_ = false;
  std::uint64_t current_round_ = 0;   ///< root: last opened; leaf: last seen
  std::int64_t round_started_usec_ = 0;
  std::int64_t next_round_start_usec_ = 0;
  std::vector<std::vector<double>> report_slots_;  ///< [global member]
  std::vector<bool> report_seen_;
  std::size_t reports_pending_ = 0;
  std::size_t last_round_members_ = 0;
  // Delivery / staleness state (poll() thread).
  bool has_delivered_ = false;
  std::uint64_t last_delivered_round_ = 0;
  std::int64_t last_delivery_usec_ = 0;
  bool stale_fired_ = false;

  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> rounds_completed_{0};
  std::atomic<std::uint64_t> rounds_abandoned_{0};
  std::atomic<std::uint64_t> frames_rejected_{0};
  std::atomic<std::uint64_t> stale_fallbacks_{0};
  std::atomic<std::uint64_t> elections_{0};
  std::atomic<std::uint64_t> readmissions_{0};
};

}  // namespace sharegrid::coord
