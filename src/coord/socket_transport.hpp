// Cross-process snapshot transport: the SnapshotTransport seam over real
// loopback TCP (ROADMAP "cross-host control plane"; docs/control-plane.md).
//
// Topology is a star, mirroring the flat CombiningTree: the process hosting
// global member 0 (process_index 0) is the root; every other process dials
// it once and keeps the connection for the run. A round is three phases:
//
//   1. root:   round-start(round k) to every leaf, sample local members
//   2. leaves: sample local members, report(k, member, demand) to the root
//   3. root:   when all R member reports are in, sum them in member order
//              and send aggregate(k, sum) to every leaf + deliver locally
//
// Rounds are lockstep — the root opens round k+1 only after round k either
// completed or hit its deadline — which is what makes the multi-process
// demo's plans bitwise-comparable to the InProcessTransport baseline (the
// sim tree's overlapping rounds are a generality this first wire transport
// deliberately skips). Round tags are the CombiningTree epochs: receivers
// see a strictly increasing round number, with gaps where a deadline
// abandoned an incomplete round.
//
// Failure semantics: an abandoned round is counted and skipped; when no
// aggregate has been delivered for `stale_after_usec`, the stale handlers
// registered via attach_stale_handler fire once (re-armed by the next
// delivery), dropping the control-plane members back to the conservative
// 1/R regime exactly as before their first snapshot.
//
// Threading: background threads only pump bytes — the root's acceptor and
// one reader per connection parse frames and queue them in a mutex-guarded
// inbox. Everything with semantics (validation, round pacing, deadlines,
// sends, receiver delivery) happens inside poll(), which the caller must
// invoke from one thread with its own monotonic clock, same contract as
// WallClockDriver::poll. The transport itself never reads a clock, so the
// deadline and staleness paths are deterministic under test-supplied time.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "coord/snapshot_transport.hpp"
#include "coord/snapshot_wire.hpp"
#include "net/tcp.hpp"
#include "util/thread_annotations.hpp"

namespace sharegrid::coord {

/// Star-topology snapshot exchange between N processes over loopback TCP.
class SocketTransport final : public SnapshotTransport {
 public:
  struct Options {
    /// host:port of every process in the fleet, index-aligned with
    /// process_index; peers[0] is the root every leaf dials. Loopback only.
    std::vector<std::string> peers;
    /// Which peers[] entry this process is.
    std::size_t process_index = 0;
    /// Root only: overrides the port parsed from peers[0] (0 = use peers[0];
    /// tests pass 0 in peers[0] too and read the ephemeral listen_port()).
    std::uint16_t listen_port = 0;
    /// First global member index hosted by this process. Global members are
    /// assigned contiguously per process; with the default one-member-per-
    /// process fleet this equals process_index.
    std::size_t member_offset = 0;
    /// Total members across the fleet, R (0 = one per process).
    std::size_t fleet_size = 0;
    /// Root: minimum spacing between round starts, in caller-clock usec.
    std::int64_t round_period_usec = 100000;
    /// Root: an incomplete round is abandoned this long after it started.
    std::int64_t round_deadline_usec = 100000;
    /// No aggregate for this long after the last delivery -> stale handlers
    /// fire (0 = round_period_usec + round_deadline_usec).
    std::int64_t stale_after_usec = 0;
    /// Leaf: retry spacing for dialing a root that is not up yet.
    std::int64_t dial_retry_usec = 20000;
    /// Socket receive timeout for the background pumps; bounds stop() join
    /// latency and how often readers re-check the running flag.
    int io_timeout_ms = 50;
    /// Fired from poll() when a round opens here (root: before sampling;
    /// leaf: on round-start receipt, before sampling). The multi-process
    /// demo advances its windows in this hook so every process advances on
    /// the same round boundaries.
    std::function<void(std::uint64_t round)> on_round_start;
  };

  SocketTransport(std::size_t local_member_count, std::size_t vector_size,
                  Options options);
  ~SocketTransport() override;

  void attach(std::size_t member, Provider provider,
              Receiver receiver) override;
  void attach_stale_handler(std::size_t member,
                            std::function<void()> on_stale) override;

  /// Root: binds the listen port and starts the acceptor. Leaf: arms the
  /// dial state; the actual connect happens in poll() so start() needs no
  /// clock. Frames flow only while poll() is being called.
  void start() override;
  void stop() override;

  /// Advances the protocol against the caller's monotonic clock. Must be
  /// called from one thread (the window driver's); receivers and
  /// on_round_start run synchronously inside it.
  void poll(std::int64_t now_usec);

  /// Logical star messages (reports up from local members + aggregate
  /// broadcasts down at the root), so the fleet-wide sum per completed
  /// round is 2R — comparable with InProcessTransport / CombiningTree.
  std::uint64_t messages_sent() const override {
    return messages_sent_.load(std::memory_order_relaxed);
  }

  bool is_root() const { return options_.process_index == 0; }
  /// Root: the bound port (after start()); valid with ephemeral binds.
  std::uint16_t listen_port() const { return listen_port_; }
  /// Root: how many distinct peer connections have ever been accepted.
  std::size_t peers_connected() const {
    return peers_connected_.load(std::memory_order_relaxed);
  }

  std::uint64_t rounds_completed() const {
    return rounds_completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t rounds_abandoned() const {
    return rounds_abandoned_.load(std::memory_order_relaxed);
  }
  /// Frames dropped for any reason: undecodable bytes, unknown round or
  /// member, duplicates, wrong direction. Mirrored into the metrics
  /// registry as coord.socket.frames_rejected.
  std::uint64_t frames_rejected() const {
    return frames_rejected_.load(std::memory_order_relaxed);
  }
  /// Times the staleness threshold fired and handlers were invoked.
  std::uint64_t stale_fallbacks() const {
    return stale_fallbacks_.load(std::memory_order_relaxed);
  }
  /// Why the most recent frame was rejected ("" if none yet) — a debugging
  /// and test aid alongside the frames_rejected() count.
  std::string last_reject_reason() const SHAREGRID_EXCLUDES(mutex_);

 private:
  /// One live connection: the root owns one per accepted leaf, a leaf owns
  /// exactly one (to the root). Reader threads hold a stable Conn*.
  struct Conn {
    net::Socket sock;
    std::thread reader;
    std::atomic<bool> closed{false};
  };

  /// A parsed frame (or a disconnect note) queued by a reader thread for
  /// poll() to act on.
  struct Inbound {
    std::size_t conn_index = 0;
    bool disconnected = false;
    wire::Frame frame;
  };

  void accept_loop() SHAREGRID_EXCLUDES(mutex_);
  void reader_loop(Conn* conn, std::size_t conn_index)
      SHAREGRID_EXCLUDES(mutex_);
  void reject_frame(const char* why) SHAREGRID_EXCLUDES(mutex_);

  // poll()-thread only ----------------------------------------------------
  std::vector<Inbound> take_inbox() SHAREGRID_EXCLUDES(mutex_);
  void send_to_conn(std::size_t conn_index, const std::string& bytes)
      SHAREGRID_EXCLUDES(mutex_);
  void broadcast(const std::string& bytes) SHAREGRID_EXCLUDES(mutex_);
  void poll_root(std::int64_t now_usec);
  void poll_leaf(std::int64_t now_usec);
  void sample_local_members(std::uint64_t round);
  void deliver_aggregate(std::uint64_t round, const std::vector<double>& sum,
                         std::int64_t now_usec);
  void check_staleness(std::int64_t now_usec);

  std::size_t local_member_count_;
  std::size_t vector_size_;
  Options options_;
  std::size_t fleet_size_;  ///< R (resolved from options)

  std::vector<Provider> providers_;
  std::vector<Receiver> receivers_;
  std::vector<std::function<void()>> stale_handlers_;

  // Shared between poll(), the acceptor, and the readers.
  mutable util::Mutex mutex_;
  std::vector<std::unique_ptr<Conn>> conns_ SHAREGRID_GUARDED_BY(mutex_);
  std::vector<Inbound> inbox_ SHAREGRID_GUARDED_BY(mutex_);
  std::string last_reject_reason_ SHAREGRID_GUARDED_BY(mutex_);

  net::Socket listener_;  ///< root only; shutdown() wakes the acceptor
  std::thread acceptor_;  ///< root only
  std::atomic<bool> running_{false};
  std::uint16_t listen_port_ = 0;
  std::atomic<std::size_t> peers_connected_{0};

  // Round state, touched only by the poll() thread.
  bool round_open_ = false;
  std::uint64_t current_round_ = 0;   ///< round ids start at 1
  std::int64_t round_started_usec_ = 0;
  std::int64_t next_round_start_usec_ = 0;
  std::vector<std::vector<double>> report_slots_;  ///< [global member]
  std::vector<bool> report_seen_;
  std::size_t reports_pending_ = 0;
  // Leaf delivery / staleness state (poll() thread).
  bool has_delivered_ = false;
  std::uint64_t last_delivered_round_ = 0;
  std::int64_t last_delivery_usec_ = 0;
  bool stale_fired_ = false;
  // Leaf dial state (poll() thread).
  bool dialed_ = false;
  std::int64_t next_dial_usec_ = 0;
  std::size_t leaf_conn_index_ = 0;

  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> rounds_completed_{0};
  std::atomic<std::uint64_t> rounds_abandoned_{0};
  std::atomic<std::uint64_t> frames_rejected_{0};
  std::atomic<std::uint64_t> stale_fallbacks_{0};
};

}  // namespace sharegrid::coord
