// Transport seam for combining-tree snapshot exchange (§3.2).
//
// The control plane's window loop needs exactly one thing from the network:
// periodically sample every member's local demand vector, sum the samples,
// and deliver the aggregate back to every member tagged with a monotonically
// increasing round number. SnapshotTransport abstracts that exchange so the
// same coord::ControlPlane runs over
//
//  * SimTreeTransport  — the event-driven CombiningTree on a Simulator
//    (the DES experiments; link delay and tree shape are modeled);
//  * InProcessTransport — a synchronous in-memory combining tree for live
//    multi-redirector deployments sharing one process (mutex-serialized by
//    the wall-clock driver above it);
//  * SocketTransport   — cross-process exchange over loopback TCP
//    (coord/socket_transport.hpp): round-tagged demand vectors in a star,
//    with deadline-abandoned rounds and a staleness fallback to 1/R.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "coord/combining_tree.hpp"
#include "coord/topology.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace sharegrid::coord {

/// Abstract snapshot-exchange transport. Members are indexed 0..R-1 in the
/// order the control plane registered them.
class SnapshotTransport {
 public:
  /// Samples a member's local demand vector at round start.
  using Provider = std::function<std::vector<double>()>;
  /// Delivers a completed aggregate; @p round strictly increases per member.
  using Receiver =
      std::function<void(std::uint64_t round, const std::vector<double>&)>;

  virtual ~SnapshotTransport() = default;

  /// Registers member @p member's sample/deliver hooks. Call before start().
  virtual void attach(std::size_t member, Provider provider,
                      Receiver receiver) = 0;

  /// Registers a callback fired when the transport declares its aggregate
  /// stream stale — no fresh aggregate within its staleness budget — so the
  /// member can drop back to the conservative no-snapshot 1/R regime.
  /// Transports that cannot lose peers keep this default no-op.
  virtual void attach_stale_handler(std::size_t member,
                                    std::function<void()> on_stale) {
    (void)member;
    (void)on_stale;
  }

  /// Begins exchange rounds (periodic on the sim transport; explicit via
  /// InProcessTransport::exchange() on the wall-clock path).
  virtual void start() = 0;
  virtual void stop() = 0;

  virtual std::uint64_t messages_sent() const = 0;
};

/// DES transport: wraps CombiningTree with members attached as tree nodes
/// 1..R under a virtual root, so every member sees the same aggregate lag of
/// 2 * link_delay (star) or 2 * depth * link_delay (balanced).
class SimTreeTransport final : public SnapshotTransport {
 public:
  struct Options {
    /// How often an aggregation round starts (0 = use first_round's period
    /// caller default; must be set > 0).
    SimDuration period = 100 * kMillisecond;
    SimDuration link_delay = 0;
    /// 0 = flat star under the virtual root; k >= 2 = balanced k-ary tree.
    std::size_t fanout = 0;
    /// When the first aggregation round fires.
    SimTime first_round = 0;
  };

  SimTreeTransport(sim::Simulator* sim, std::size_t member_count,
                   std::size_t vector_size, Options options);

  void attach(std::size_t member, Provider provider,
              Receiver receiver) override;
  void start() override;
  void stop() override;
  std::uint64_t messages_sent() const override {
    return tree_.messages_sent();
  }

  /// The underlying tree, for failure injection and round statistics.
  CombiningTree& tree() { return tree_; }
  const CombiningTree& tree() const { return tree_; }

 private:
  std::size_t member_count_;
  Options options_;
  CombiningTree tree_;
};

/// Synchronous in-process combining tree for live deployments: exchange()
/// samples every provider, sums element-wise, and delivers the aggregate to
/// every receiver before returning. Message accounting mirrors the star
/// CombiningTree (R reports up + R broadcasts down per round). Not
/// internally synchronized — the wall-clock driver above it serializes.
class InProcessTransport final : public SnapshotTransport {
 public:
  InProcessTransport(std::size_t member_count, std::size_t vector_size);

  void attach(std::size_t member, Provider provider,
              Receiver receiver) override;
  void start() override;
  void stop() override;
  std::uint64_t messages_sent() const override { return messages_sent_; }

  /// Runs one full aggregation round synchronously. No-op before start() /
  /// after stop().
  void exchange();

  std::uint64_t rounds_completed() const { return rounds_completed_; }

 private:
  std::size_t vector_size_;
  std::vector<Provider> providers_;
  std::vector<Receiver> receivers_;
  std::vector<double> sum_scratch_;
  bool started_ = false;
  std::uint64_t next_round_ = 0;
  std::uint64_t rounds_completed_ = 0;
  std::uint64_t messages_sent_ = 0;
};

// The cross-process SocketTransport lives in coord/socket_transport.hpp —
// it pulls in real sockets and threads, which nothing sim-only should pay
// for transitively.

}  // namespace sharegrid::coord
