// Wire format for cross-process snapshot exchange (SocketTransport).
//
// One frame per message, carried inside a net::Socket::write_frame /
// net::FrameReader length-prefixed envelope:
//
//   offset  size  field
//        0     4  magic   0x53475354 ("SGST", little-endian u32)
//        4     2  version (currently 1)
//        6     2  type    1 = round-start, 2 = report, 3 = aggregate
//        8     8  round   round tag (the CombiningTree epoch), u64
//       16     4  member  global member index (reports; 0 otherwise)
//       20     4  count   number of doubles that follow
//       24  8*c   values  demand vector, IEEE-754 binary64 little-endian
//
// All integers are little-endian. The codec is pure functions over byte
// strings — no sockets — so the malformed-frame table tests can hit every
// rejection path without a peer. Decoding never throws: a bad frame is a
// status, because on the receive path "reject and count it" is the correct
// response to garbage, not a crash (the sender may be a confused peer, not
// our own bug).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sharegrid::coord::wire {

inline constexpr std::uint32_t kMagic = 0x53475354;  // "SGST"
inline constexpr std::uint16_t kVersion = 1;

enum class FrameType : std::uint16_t {
  kRoundStart = 1,  ///< root -> leaves: sample your demand for this round
  kReport = 2,      ///< leaf -> root: one member's demand vector
  kAggregate = 3,   ///< root -> leaves: the completed round's sum
};

struct Frame {
  FrameType type = FrameType::kRoundStart;
  std::uint64_t round = 0;
  std::uint32_t member = 0;      ///< global member index (kReport only)
  std::vector<double> values;    ///< empty for kRoundStart
};

enum class DecodeStatus {
  kOk,
  kTruncated,     ///< shorter than the fixed header
  kBadMagic,
  kBadVersion,
  kBadType,
  kSizeMismatch,  ///< count disagrees with the actual payload length
};

/// Human-readable status for logs and reject counters.
const char* to_string(DecodeStatus status);

/// Serializes @p frame to the byte layout above (no length prefix; the
/// socket envelope adds that).
std::string encode(const Frame& frame);

/// Parses one complete frame. On any status other than kOk, *out is left
/// unspecified and the frame must be dropped.
DecodeStatus decode(std::string_view bytes, Frame* out);

}  // namespace sharegrid::coord::wire
