// Wire format for cross-process snapshot exchange (SocketTransport).
//
// One frame per message, carried inside a net::Socket::write_frame /
// net::FrameReader length-prefixed envelope:
//
//   offset  size  field
//        0     4  magic   0x53475354 ("SGST", little-endian u32)
//        4     2  version 1 = snapshot frames, 2 = membership frames
//        6     2  type    1 = round-start, 2 = report, 3 = aggregate,
//                         4 = hello, 5 = lease, 6 = lease-ack
//        8     8  round   round tag (the CombiningTree epoch), u64
//       16     4  member  global member index / process index (see below)
//       20     4  count   number of doubles that follow
//       24  8*c   values  demand vector, IEEE-754 binary64 little-endian
//
// Version-2 membership frames (hello / lease / lease-ack) carry no demand
// vector (count must be 0); instead a fixed 16-byte extension follows the
// header:
//
//       24     8  incarnation  u64 (see per-type meaning below)
//       32     8  aux          u64 (see per-type meaning below)
//
// Per-type field meanings:
//   hello      member = sender's process index; incarnation = the sender
//              process's incarnation (bumped on restart, fences zombies);
//              aux = (member_offset << 32) | local_member_count, the global
//              member range the process hosts.
//   lease      member = the root's process index; incarnation = the lease
//              incarnation (strictly increasing across elections); round =
//              the root's current round tag; aux = lease TTL in usec.
//   lease-ack  member = the acking process index; incarnation = the lease
//              incarnation being acked (or the acker's higher current one —
//              a NACK telling a zombie root it has been superseded); round =
//              the highest round tag the acker has seen, which lets a newly
//              elected root fast-forward its round numbering so tags stay
//              monotone across the handover.
//
// Byte order is normalized explicitly: every integer (and every double's
// IEEE-754 bit image) is composed and decomposed byte-by-byte in
// little-endian order by put_*/get_* — no struct overlays, no host-order
// memcpy of multi-byte values — so the encoding is identical on big-endian
// hosts. The only representation assumption left is IEC-559 doubles, which
// a static_assert in snapshot_wire.cpp enforces at compile time.
//
// The codec is pure functions over byte strings — no sockets — so the
// malformed-frame table tests can hit every rejection path without a peer.
// Decoding never throws: a bad frame is a status, because on the receive
// path "reject and count it" is the correct response to garbage, not a
// crash (the sender may be a confused peer, not our own bug).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sharegrid::coord::wire {

inline constexpr std::uint32_t kMagic = 0x53475354;  // "SGST"
inline constexpr std::uint16_t kVersion = 1;            ///< snapshot frames
inline constexpr std::uint16_t kVersionMembership = 2;  ///< hello/lease frames

enum class FrameType : std::uint16_t {
  kRoundStart = 1,  ///< root -> leaves: sample your demand for this round
  kReport = 2,      ///< leaf -> root: one member's demand vector
  kAggregate = 3,   ///< root -> leaves: the completed round's sum
  kHello = 4,       ///< session handshake: who I am + my incarnation
  kLease = 5,       ///< root -> all: I hold the root lease for TTL usec
  kLeaseAck = 6,    ///< follower -> root: lease seen + my highest round
};

struct Frame {
  FrameType type = FrameType::kRoundStart;
  std::uint64_t round = 0;
  std::uint32_t member = 0;      ///< global member index / process index
  std::uint64_t incarnation = 0; ///< membership frames only (0 otherwise)
  std::uint64_t aux = 0;         ///< membership frames only (0 otherwise)
  std::vector<double> values;    ///< snapshot frames only
};

enum class DecodeStatus {
  kOk,
  kTruncated,     ///< shorter than the fixed header
  kBadMagic,
  kBadVersion,
  kBadType,       ///< unknown type, or a type/version pairing that is invalid
  kSizeMismatch,  ///< count disagrees with the actual payload length
};

/// Human-readable status for logs and reject counters.
const char* to_string(DecodeStatus status);

/// True for the version-2 membership frames (hello / lease / lease-ack).
bool is_membership(FrameType type);

/// Serializes @p frame to the byte layout above (no length prefix; the
/// socket envelope adds that). Version-1 frame types ignore
/// incarnation/aux; membership types ignore values.
std::string encode(const Frame& frame);

/// Parses one complete frame. On any status other than kOk, *out is left
/// unspecified and the frame must be dropped.
DecodeStatus decode(std::string_view bytes, Frame* out);

}  // namespace sharegrid::coord::wire
