// Snapshot exchange across sharded simulation domains (DESIGN.md D13).
//
// In the cluster-partitioned scenarios every cluster runs in its own
// simulation domain, and the ONLY cross-domain traffic is the combining
// tree's snapshot exchange: each cluster's control-plane member contributes
// its local demand vector, a virtual root (hosted in domain 0) sums the
// contributions, and the aggregate is broadcast back — the flat star of
// SimTreeTransport, with each link crossing a domain boundary through
// ShardedSimulator::post(). The link delay is therefore exactly the
// conservative lookahead bound the engine steps by.
//
// Determinism: all reports of a round arrive at the root at the same
// simulated time and are delivered in source-cluster order (the barrier
// contract), so the root's accumulation order — and the broadcast it posts —
// is invariant to shard count.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "coord/snapshot_transport.hpp"
#include "sim/sharded_simulator.hpp"
#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace sharegrid::coord {

/// Star-shaped snapshot exchange between clusters of a ShardedSimulator;
/// cluster c's provider/receiver run entirely inside domain c.
class ShardedStarTransport {
 public:
  using Provider = SnapshotTransport::Provider;
  using Receiver = SnapshotTransport::Receiver;

  struct Options {
    /// How often an aggregation round starts.
    SimDuration period = 100 * kMillisecond;
    /// One-way delay of every cluster->root and root->cluster link. Must be
    /// >= the engine's lookahead (it IS the natural lookahead bound).
    SimDuration link_delay = 0;
    /// When the first round fires.
    SimTime first_round = 0;
  };

  ShardedStarTransport(sim::ShardedSimulator* sharded, std::size_t vector_size,
                       Options options);

  /// Registers cluster @p cluster's hooks; call for every cluster before
  /// start(). The provider samples inside domain `cluster`; the receiver is
  /// invoked inside domain `cluster` one link delay after the root combines.
  void attach(std::size_t cluster, Provider provider, Receiver receiver);

  /// Creates one sampling task per cluster (cluster order — creation order
  /// fixes equal-time event ordering, DESIGN.md D4).
  void start();
  void stop();

  /// 2 * clusters per completed round (reports up + broadcasts down), same
  /// accounting as the star CombiningTree.
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t rounds_completed() const { return rounds_completed_; }

 private:
  /// Root-side accumulation of one in-flight round (domain 0 only).
  struct RootSlot {
    std::vector<double> sum;
    std::size_t reports = 0;
  };

  void sample(std::size_t cluster, std::uint64_t round);
  void root_receive(std::uint64_t round, std::size_t cluster,
                    const std::vector<double>& value);

  sim::ShardedSimulator* sharded_;
  std::size_t vector_size_;
  Options options_;
  std::vector<Provider> providers_;
  std::vector<Receiver> receivers_;
  /// Per-cluster next round number; advanced only by the cluster's own task.
  std::vector<std::uint64_t> next_round_;
  std::vector<std::unique_ptr<sim::PeriodicTask>> tasks_;
  /// In-flight rounds at the virtual root. Touched only from domain-0
  /// events, so no synchronization; ordered map keeps drain order stable.
  std::map<std::uint64_t, RootSlot> root_rounds_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t rounds_completed_ = 0;
};

}  // namespace sharegrid::coord
