#include "coord/control_plane.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "audit/invariant_auditor.hpp"
#include "util/assert.hpp"
#include "util/matrix.hpp"
#include "util/metrics_registry.hpp"

namespace sharegrid::coord {

namespace {
util::MetricCounter& windows_counter() {
  static util::MetricCounter& counter = util::global_metrics().counter(
      "coord.windows", "scheduling windows begun (one plan each)");
  return counter;
}
util::MetricCounter& replans_counter() {
  static util::MetricCounter& counter = util::global_metrics().counter(
      "coord.spike_replans", "mid-window spike re-plans taken");
  return counter;
}
}  // namespace

ControlPlane::ControlPlane(const sched::Scheduler* scheduler,
                           ControlPlaneConfig config)
    : scheduler_(scheduler), config_(std::move(config)) {
  SHAREGRID_EXPECTS(scheduler != nullptr);
  SHAREGRID_EXPECTS(config_.window > 0);
  SHAREGRID_EXPECTS(config_.redirector_count >= 1);
  SHAREGRID_EXPECTS(std::isfinite(config_.estimator_alpha));
  SHAREGRID_EXPECTS(config_.estimator_alpha > 0.0 &&
                    config_.estimator_alpha <= 1.0);
  SHAREGRID_EXPECTS(std::isfinite(config_.spike_replan_limit));
  SHAREGRID_EXPECTS(config_.spike_replan_limit >= 0.0);
}

ControlPlane::Member* ControlPlane::add_member() {
  SHAREGRID_EXPECTS(members_.size() < config_.redirector_count);
  members_.push_back(
      std::make_unique<Member>(this, members_.size()));
  return members_.back().get();
}

void ControlPlane::connect(SnapshotTransport* transport) {
  SHAREGRID_EXPECTS(transport != nullptr);
  SHAREGRID_EXPECTS(!members_.empty());
  for (const auto& m : members_) {
    Member* member = m.get();
    transport->attach(
        member->index(), [member] { return member->local_demand(); },
        [member](std::uint64_t round, const std::vector<double>& aggregate) {
          member->receive_global(round, aggregate);
        });
    // Staleness means we lost the control plane; when it comes back it may
    // be a different epoch (restarted peer, new root), so the member is
    // re-admitted rather than merely invalidated.
    transport->attach_stale_handler(member->index(),
                                    [member] { member->readmit(); });
  }
}

void ControlPlane::end_windows() {
  for (const auto& m : members_) m->end_window();
}

void ControlPlane::begin_windows(SimTime now) {
  for (const auto& m : members_) m->begin_window(now);
}

void ControlPlane::audit_window_slices() const {
  if (members_.empty()) return;
  // The strict cross-member sum bound only holds while every member plans
  // from the identical input — the conservative no-snapshot phase. Once
  // snapshots flow, local demand drift legitimately pushes the slice sum
  // past one plan (see WindowScheduler::compute_slices); the per-member
  // share <= 1 bound is then audited inside each begin_window instead.
  if (config_.stale_policy != sched::StalePolicy::kConservative) return;
  for (const auto& m : members_) {
    if (m->global().valid) return;
  }
  const sched::WindowScheduler& first = members_.front()->window_scheduler();
  const std::size_t n = first.last_plan().rate.rows();
  if (n == 0) return;  // no window has begun yet
  Matrix slice_sum(n, n, 0.0);
  Matrix plan_ref(n, n, 0.0);
  for (const auto& m : members_) {
    const sched::WindowScheduler& w = m->window_scheduler();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < n; ++k) {
        slice_sum(i, k) += w.slices()(i, k);
        plan_ref(i, k) = std::max(plan_ref(i, k), w.last_plan().rate(i, k));
      }
    }
  }
  audit::audit_control_plane_slice_sum(slice_sum, plan_ref,
                                       to_seconds(config_.window),
                                       /*tol=*/1e-7);
}

ControlPlane::Member::Member(ControlPlane* plane, std::size_t index)
    : plane_(plane),
      index_(index),
      window_(plane->scheduler_, plane->config_.window,
              plane->config_.redirector_count, plane->config_.stale_policy) {
  const std::size_t n = plane->scheduler_->size();
  estimators_.assign(
      n, sched::ArrivalEstimator(plane->config_.estimator_alpha));
  arrivals_.assign(n, 0.0);
}

void ControlPlane::Member::record_arrival(core::PrincipalId principal,
                                          double amount) {
  SHAREGRID_EXPECTS(principal < arrivals_.size());
  SHAREGRID_EXPECTS(amount >= 0.0);
  arrivals_[principal] += amount;
}

std::optional<core::PrincipalId> ControlPlane::Member::try_admit(
    core::PrincipalId principal, double weight) {
  return window_.try_admit(principal, weight);
}

bool ControlPlane::Member::spike_replan() {
  if (replans_used_ >= replans_allowed_) {
    ++replans_suppressed_;
    if (plane_->config_.on_replan_suppressed)
      plane_->config_.on_replan_suppressed();
    return false;
  }
  ++replans_used_;
  ++spike_replans_;
  replans_counter().add();
  if (plane_->config_.on_spike_replan) plane_->config_.on_spike_replan();

  // The window's quota came from the previous window's estimates, which
  // starve a principal whose load just appeared; re-plan against demand
  // including the arrivals seen so far. replan() preserves consumption, so
  // sustained over-demand still bounces.
  const double window_sec = to_seconds(window_.window());
  std::vector<double> demand = local_demand();
  for (std::size_t i = 0; i < demand.size(); ++i)
    demand[i] = std::max(demand[i], arrivals_[i] / window_sec);
  window_.replan(demand, global_.valid ? global_
                                       : sched::GlobalDemand{demand, true});
  return true;
}

void ControlPlane::Member::end_window() {
  for (std::size_t i = 0; i < estimators_.size(); ++i) {
    estimators_[i].observe(arrivals_[i], window_.window());
    arrivals_[i] = 0.0;
  }
}

void ControlPlane::Member::begin_window(SimTime now) {
  windows_counter().add();
  last_local_demand_ = local_demand();
  window_.begin_window(last_local_demand_, global_);
  // Refill the spike-replan budget: integer re-plans released from the
  // fractional per-window limit, error-carried so long-run re-plan counts
  // track the limit exactly (DESIGN.md D5 applied to the fast path).
  replans_allowed_ = replan_budget_.take(plane_->config_.spike_replan_limit);
  replans_used_ = 0;
  SHAREGRID_AUDIT_HOOK(audit::audit_control_plane_member_slices(
      window_.slices(), window_.last_plan().rate,
      /*share_cap=*/
      (!global_.valid &&
       plane_->config_.stale_policy == sched::StalePolicy::kConservative)
          ? 1.0 / static_cast<double>(plane_->config_.redirector_count)
          : 1.0,
      to_seconds(window_.window()), /*tol=*/1e-7));
  if (hooks_.on_window_begun) hooks_.on_window_begun(now);
}

void ControlPlane::Member::advance_window(SimTime now) {
  end_window();
  begin_window(now);
}

void ControlPlane::Member::receive_global(
    std::uint64_t round, const std::vector<double>& aggregate) {
  SHAREGRID_AUDIT_HOOK(audit::audit_control_plane_snapshot(
      has_snapshot_round_, last_round_, round));
  has_snapshot_round_ = true;
  last_round_ = round;
  global_.demand = aggregate;
  global_.valid = true;
}

std::vector<double> ControlPlane::Member::local_demand() const {
  // Estimated queue lengths (§4.1): the smoothed arrival rate per principal,
  // plus whatever latent demand the owning node can see (kernel queues,
  // held requests) via its extra_demand hook.
  std::vector<double> demand(estimators_.size(), 0.0);
  for (std::size_t i = 0; i < demand.size(); ++i)
    demand[i] = estimators_[i].rate();
  if (hooks_.extra_demand) hooks_.extra_demand(demand);
  return demand;
}

}  // namespace sharegrid::coord
