// Layer-4 NAT packet redirector (§4.2).
//
// Models the paper's Linux Virtual Server kernel module plus user-space
// daemon: a SYN for a virtual service address is either admitted — a server
// is chosen per the scheduling decision, the destination is rewritten, and a
// connection-table entry keeps the flow pinned to that server — or parked in
// a per-principal kernel-level queue that a periodic task drains in later
// windows as agreements allow. Replies are reverse-rewritten so clients only
// ever see the virtual address. New connections prefer the server that last
// served the same client (affinity, e.g. for SSL session reuse) whenever the
// admission decision lands on the same owner.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "l4/connection_table.hpp"
#include "l4/packet.hpp"
#include "nodes/client.hpp"
#include "nodes/metrics.hpp"
#include "nodes/server.hpp"
#include "nodes/window_trace.hpp"
#include "sched/window_scheduler.hpp"
#include "sim/simulator.hpp"

namespace sharegrid::nodes {

/// NAT (Layer-4) redirector node.
class L4Redirector final : public RedirectorBase {
 public:
  struct Config {
    std::string name;
    SimDuration window = 100 * kMillisecond;
    std::size_t redirector_count = 1;
    SimDuration net_delay = 500;  ///< one-way per-hop delay (usec)
    std::size_t max_queue = 1 << 16;  ///< kernel queue bound per principal
    double estimator_alpha = 0.3;
    bool weighted_admission = false;
    bool use_affinity = true;
    /// Behaviour before the first combining-tree aggregate arrives.
    sched::StalePolicy stale_policy = sched::StalePolicy::kConservative;
    /// Optional per-window decision log (not owned; may be shared).
    WindowTrace* trace = nullptr;
  };

  L4Redirector(sim::Simulator* sim, Metrics* metrics, ServerPool* servers,
               const sched::Scheduler* scheduler, Config config);
  ~L4Redirector() override { *alive_ = false; }

  void start(SimTime first_window);

  /// Virtual service endpoint for a principal's service (what clients dial).
  static l4::Endpoint vip(core::PrincipalId principal) {
    return {0x0A000000u + static_cast<std::uint32_t>(principal), 80};
  }

  // RedirectorBase: wraps the request into a SYN and runs the packet path.
  void on_client_request(const Request& request, RequestSource* from) override;

  /// Packet-level entry point (also used directly by tests).
  void on_packet(const l4::Packet& packet, RequestSource* from);

  /// Combining-tree hooks.
  std::vector<double> local_demand() const;
  void receive_global(const std::vector<double>& aggregate);

  std::size_t queue_length(core::PrincipalId p) const;
  std::uint64_t drops() const { return drops_; }
  std::uint64_t admitted() const { return admitted_; }
  const l4::ConnectionTable& connections() const { return table_; }
  const sched::WindowScheduler& window_scheduler() const { return window_; }

 private:
  struct Held {
    l4::Packet packet;
    Request request;
    RequestSource* from;
  };

  void begin_window();
  /// Admission decision for a SYN; true when forwarded.
  bool try_forward(const Held& held);
  void forward_to(const Held& held, Server* server);

  sim::Simulator* sim_;
  Metrics* metrics_;
  ServerPool* servers_;
  Config config_;
  sched::WindowScheduler window_;
  l4::ConnectionTable table_;
  std::vector<std::deque<Held>> queues_;
  std::vector<sched::ArrivalEstimator> estimators_;
  std::vector<double> arrivals_this_window_;
  sched::GlobalDemand global_;
  /// Admitted connections whose replies have not come back yet, per
  /// principal. Under healthy operation this is a handful (service time x
  /// rate); when transient over-admission piles work into a server's FIFO,
  /// these requests still hold client slots and must count as demand or the
  /// closed loop locks in below the agreement levels.
  std::vector<double> in_flight_;
  std::unique_ptr<sim::PeriodicTask> window_task_;

  std::uint64_t drops_ = 0;
  std::uint64_t admitted_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sharegrid::nodes
