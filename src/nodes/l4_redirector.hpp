// Layer-4 NAT packet redirector (§4.2).
//
// Models the paper's Linux Virtual Server kernel module plus user-space
// daemon: a SYN for a virtual service address is either admitted — a server
// is chosen per the scheduling decision, the destination is rewritten, and a
// connection-table entry keeps the flow pinned to that server — or parked in
// a per-principal kernel-level queue that a periodic task drains in later
// windows as agreements allow. Replies are reverse-rewritten so clients only
// ever see the virtual address. New connections prefer the server that last
// served the same client (affinity, e.g. for SSL session reuse) whenever the
// admission decision lands on the same owner.
//
// The window loop — estimators, snapshots, plan, quotas — lives in
// coord::ControlPlane (DESIGN.md D10); this node owns the packet path and
// what the kernel queue / in-flight connections contribute to demand.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "coord/control_plane.hpp"
#include "l4/connection_table.hpp"
#include "l4/packet.hpp"
#include "nodes/client.hpp"
#include "nodes/metrics.hpp"
#include "nodes/server.hpp"
#include "nodes/window_trace.hpp"
#include "sim/simulator.hpp"

namespace sharegrid::nodes {

/// NAT (Layer-4) redirector node.
class L4Redirector final : public RedirectorBase {
 public:
  struct Config {
    std::string name;
    SimDuration net_delay = 500;  ///< one-way per-hop delay (usec)
    std::size_t max_queue = 1 << 16;  ///< kernel queue bound per principal
    bool weighted_admission = false;
    bool use_affinity = true;
    /// Optional per-window decision log (not owned; may be shared).
    WindowTrace* trace = nullptr;
  };

  /// @param member this node's control-plane slice (not owned). The node
  ///               binds its demand/window hooks in the ctor; a member can
  ///               belong to exactly one node.
  L4Redirector(sim::Simulator* sim, Metrics* metrics, ServerPool* servers,
               coord::ControlPlane::Member* member, Config config);
  ~L4Redirector() override {
    flush_metrics();  // counts since the last window boundary
    *alive_ = false;
  }

  /// Virtual service endpoint for a principal's service (what clients dial).
  static l4::Endpoint vip(core::PrincipalId principal) {
    return {0x0A000000u + static_cast<std::uint32_t>(principal), 80};
  }

  // RedirectorBase: wraps the request into a SYN and runs the packet path.
  void on_client_request(const Request& request, RequestSource* from) override;

  /// Packet-level entry point (also used directly by tests).
  void on_packet(const l4::Packet& packet, RequestSource* from);

  /// Local demand estimate; delegates to the control plane (kept for tests).
  std::vector<double> local_demand() const;

  std::size_t queue_length(core::PrincipalId p) const;
  std::uint64_t drops() const { return drops_; }
  std::uint64_t admitted() const { return admitted_; }
  const l4::ConnectionTable& connections() const { return table_; }
  const sched::WindowScheduler& window_scheduler() const {
    return member_->window_scheduler();
  }
  coord::ControlPlane::Member* member() { return member_; }

 private:
  struct Held {
    l4::Packet packet;
    Request request;
    RequestSource* from;
  };

  void on_window_begun(SimTime now);
  /// Flushes admitted/dropped deltas to the global metrics registry; called
  /// at window boundaries and on destruction so the per-packet path never
  /// touches a shared atomic.
  void flush_metrics();
  /// Admission decision for a SYN; true when forwarded.
  bool try_forward(const Held& held);
  void forward_to(const Held& held, Server* server);

  sim::Simulator* sim_;
  Metrics* metrics_;
  ServerPool* servers_;
  coord::ControlPlane::Member* member_;
  Config config_;
  l4::ConnectionTable table_;
  std::vector<std::deque<Held>> queues_;
  /// Admitted connections whose replies have not come back yet, per
  /// principal. Under healthy operation this is a handful (service time x
  /// rate); when transient over-admission piles work into a server's FIFO,
  /// these requests still hold client slots and must count as demand or the
  /// closed loop locks in below the agreement levels.
  std::vector<double> in_flight_;

  std::uint64_t drops_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t flushed_drops_ = 0;
  std::uint64_t flushed_admitted_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sharegrid::nodes
