#include "nodes/trace_client.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace sharegrid::nodes {

TraceClient::TraceClient(sim::Simulator* sim, Metrics* metrics,
                         RedirectorBase* redirector,
                         const workload::RequestTrace* trace, Config config,
                         Rng rng)
    : sim_(sim),
      metrics_(metrics),
      redirector_(redirector),
      trace_(trace),
      config_(config),
      rng_(rng) {
  SHAREGRID_EXPECTS(sim != nullptr);
  SHAREGRID_EXPECTS(metrics != nullptr);
  SHAREGRID_EXPECTS(redirector != nullptr);
  SHAREGRID_EXPECTS(trace != nullptr);
}

void TraceClient::start() {
  for (const workload::TraceEntry& entry : trace_->entries()) {
    sim_->schedule_at(entry.time, [this, alive = alive_, entry] {
      if (!*alive) return;
      Request req;
      req.id = (static_cast<std::uint64_t>(config_.index) << 32) | issued_;
      ++issued_;
      req.principal = entry.principal;
      req.weight = entry.weight;
      req.reply_bytes = entry.reply_bytes;
      req.created = sim_->now();
      req.client = config_.index;
      metrics_->on_offered(req.principal, sim_->now());
      send(req);
    });
  }
}

void TraceClient::send(const Request& request) {
  sim_->schedule_after(config_.net_delay, [this, alive = alive_, request] {
    if (!*alive) return;
    redirector_->on_client_request(request, this);
  });
}

void TraceClient::on_redirect_to_server(const Request& request,
                                        Server* server) {
  SHAREGRID_EXPECTS(server != nullptr);
  sim_->schedule_after(config_.net_delay, [this, alive = alive_, request,
                                           server] {
    if (!*alive) return;
    server->submit(request, [this, alive](const Request& done) {
      sim_->schedule_after(config_.net_delay, [this, alive, done] {
        if (!*alive) return;
        on_response(done);
      });
    });
  });
}

void TraceClient::on_self_redirect(const Request& request) {
  metrics_->on_rejected(request.principal, sim_->now());
  const double delay_sec = config_.retry_delay_sec * rng_.uniform(0.6, 1.4);
  sim_->schedule_after(std::max<SimDuration>(1, seconds(delay_sec)),
                       [this, alive = alive_, request] {
                         if (!*alive) return;
                         send(request);
                       });
}

void TraceClient::on_response(const Request& request) {
  ++completed_;
  metrics_->on_latency(request.principal,
                       to_seconds(sim_->now() - request.created));
}

}  // namespace sharegrid::nodes
