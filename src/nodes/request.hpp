// The unit of work flowing through the simulated system.
#pragma once

#include <cstdint>

#include "core/principal.hpp"
#include "util/time.hpp"

namespace sharegrid::nodes {

/// One client request (for L4, one TCP connection carrying one request).
struct Request {
  std::uint64_t id = 0;
  /// Organization owning the target URL; decides whose queue/agreement the
  /// request is charged against.
  core::PrincipalId principal = core::kNoPrincipal;
  /// Scheduling units (reply size / mean reply size; §4 "large requests are
  /// treated as multiple small ones").
  double weight = 1.0;
  /// Modeled reply size, for bandwidth accounting.
  double reply_bytes = 6144.0;
  /// When the client first issued the request (for latency accounting;
  /// retries keep the original timestamp).
  SimTime created = 0;
  /// Index of the originating client machine.
  std::size_t client = 0;
};

}  // namespace sharegrid::nodes
