// Open-loop trace replay client.
//
// Issues every arrival of a precomputed RequestTrace at its recorded time,
// regardless of how the system responds — no outstanding-slot throttling, no
// reaction to service rates. This decouples the workload from the scheduler
// under test: two scheduler configurations driven by the same trace see
// byte-identical input, making their admission decisions directly
// comparable (closed-loop ClientMachines would adapt their offered load to
// whatever each scheduler serves).
//
// L7 self-redirects are retried after the configured delay (with jitter),
// like the closed-loop client, but retries do not block new arrivals.
#pragma once

#include <cstdint>
#include <memory>

#include "nodes/client.hpp"
#include "nodes/metrics.hpp"
#include "workload/trace.hpp"

namespace sharegrid::nodes {

/// Replays a RequestTrace through one redirector, open loop.
class TraceClient final : public RequestSource {
 public:
  struct Config {
    std::size_t index = 0;          ///< client id carried in requests
    double retry_delay_sec = 0.2;   ///< L7 self-redirect backoff
    SimDuration net_delay = 500;    ///< one-way hop delay (usec)
  };

  /// @param trace  replayed arrivals (not owned; must outlive the client).
  TraceClient(sim::Simulator* sim, Metrics* metrics,
              RedirectorBase* redirector,
              const workload::RequestTrace* trace, Config config, Rng rng);
  ~TraceClient() override { *alive_ = false; }

  TraceClient(const TraceClient&) = delete;
  TraceClient& operator=(const TraceClient&) = delete;

  /// Schedules every trace arrival (call once, before running the sim).
  void start();

  // RequestSource:
  void on_redirect_to_server(const Request& request, Server* server) override;
  void on_self_redirect(const Request& request) override;
  void on_response(const Request& request) override;

  std::uint64_t issued() const { return issued_; }
  std::uint64_t completed() const { return completed_; }

 private:
  void send(const Request& request);

  sim::Simulator* sim_;
  Metrics* metrics_;
  RedirectorBase* redirector_;
  const workload::RequestTrace* trace_;
  Config config_;
  Rng rng_;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sharegrid::nodes
