// Simulated client machine: the WebBench load generator (§5).
//
// While active, a machine issues requests at its configured maximum rate —
// the per-machine caps in the paper's figures (135 req/s with the L7 retry
// proxy, 400 req/s raw) — subject to a bound on outstanding requests that
// models WebBench's closed-loop worker threads: when responses stop coming
// back, generation stalls rather than queueing unboundedly.
//
// Layer-7 behaviour: the client sends to a redirector; a 302 to a server
// makes it re-issue the request there; a 302 back to the redirector itself
// (implicit queuing) makes it retry after retry_delay. Layer-4 behaviour:
// the client just sends to the virtual service address and waits.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "nodes/metrics.hpp"
#include "nodes/request.hpp"
#include "nodes/server.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/reply_size.hpp"

namespace sharegrid::nodes {

/// What a client looks like to a redirector: the callbacks that complete a
/// request's life cycle. Implemented by the closed-loop ClientMachine and
/// the open-loop TraceClient.
class RequestSource {
 public:
  virtual ~RequestSource() = default;

  /// L7: the redirector assigned @p server; re-issue the request there.
  virtual void on_redirect_to_server(const Request& request,
                                     Server* server) = 0;
  /// L7: the redirector said retry later (implicit queuing).
  virtual void on_self_redirect(const Request& request) = 0;
  /// Final response arrived (from a server or through the L4 NAT path).
  virtual void on_response(const Request& request) = 0;
};

/// What a redirector looks like to a client: a sink for new requests.
/// Both the L7 and L4 redirectors implement this.
class RedirectorBase {
 public:
  virtual ~RedirectorBase() = default;

  /// Invoked (already past the client->redirector network delay) when a
  /// client issues or retries a request.
  virtual void on_client_request(const Request& request,
                                 RequestSource* from) = 0;
};

/// One load-generating machine tied to one organization and one redirector.
class ClientMachine final : public RequestSource {
 public:
  struct Config {
    std::string name;
    core::PrincipalId principal = core::kNoPrincipal;
    std::size_t index = 0;       ///< this machine's id within the experiment
    double rate = 400.0;         ///< max request generation rate (req/s)
    double retry_delay_sec = 0.2;  ///< L7 self-redirect retry backoff
    std::size_t max_outstanding = 64;  ///< closed-loop worker bound
    bool exponential_arrivals = true;  ///< Poisson vs evenly spaced issue
    SimDuration net_delay = 500;       ///< one-way hop delay (usec)
    /// When a reply-size distribution is attached, also use the sampled
    /// size as the request's scheduling weight (size/mean units); otherwise
    /// sizes only feed bandwidth accounting and every request costs 1 unit.
    bool weighted_requests = false;
  };

  ClientMachine(sim::Simulator* sim, Metrics* metrics,
                RedirectorBase* redirector, Config config, Rng rng,
                const workload::ReplySizeDistribution* sizes = nullptr);

  ClientMachine(const ClientMachine&) = delete;
  ClientMachine& operator=(const ClientMachine&) = delete;
  ~ClientMachine() override { *alive_ = false; }

  /// Turns generation on/off (phase schedule). Outstanding requests keep
  /// draining after deactivation.
  void set_active(bool active);
  bool active() const { return active_; }

  // RequestSource:
  void on_redirect_to_server(const Request& request, Server* server) override;
  void on_self_redirect(const Request& request) override;
  void on_response(const Request& request) override;

  std::size_t outstanding() const { return outstanding_; }
  const Config& config() const { return config_; }

  /// Requests issued (new, not retries) so far.
  std::uint64_t issued() const { return next_request_id_; }

 private:
  void schedule_next_arrival();
  void emit();
  void send_to_redirector(const Request& request);

  sim::Simulator* sim_;
  Metrics* metrics_;
  RedirectorBase* redirector_;
  Config config_;
  Rng rng_;
  const workload::ReplySizeDistribution* sizes_;

  bool active_ = false;
  bool loop_armed_ = false;
  std::size_t outstanding_ = 0;
  std::uint64_t next_request_id_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sharegrid::nodes
