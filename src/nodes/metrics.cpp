#include "nodes/metrics.hpp"

namespace sharegrid::nodes {

Metrics::Metrics(std::size_t principal_count, SimDuration bin_width) {
  SHAREGRID_EXPECTS(principal_count > 0);
  offered_.assign(principal_count, RateSeries(bin_width));
  served_.assign(principal_count, RateSeries(bin_width));
  rejected_.assign(principal_count, RateSeries(bin_width));
  latency_.assign(principal_count, RunningStats());
  bytes_.assign(principal_count, RateSeries(bin_width));
}

void Metrics::on_offered(core::PrincipalId p, SimTime t) {
  check(p);
  offered_[p].record(t);
}

void Metrics::on_served(core::PrincipalId p, SimTime t) {
  check(p);
  served_[p].record(t);
}

void Metrics::on_rejected(core::PrincipalId p, SimTime t) {
  check(p);
  rejected_[p].record(t);
}

void Metrics::on_latency(core::PrincipalId p, double seconds) {
  check(p);
  latency_[p].add(seconds);
}

void Metrics::on_reply_bytes(core::PrincipalId p, SimTime t, double bytes) {
  check(p);
  bytes_[p].record(t, static_cast<std::uint64_t>(bytes));
}

void Metrics::merge_from(const Metrics& other) {
  SHAREGRID_EXPECTS(other.principal_count() == principal_count());
  for (std::size_t p = 0; p < served_.size(); ++p) {
    offered_[p].merge_from(other.offered_[p]);
    served_[p].merge_from(other.served_[p]);
    rejected_[p].merge_from(other.rejected_[p]);
    latency_[p].merge_from(other.latency_[p]);
    bytes_[p].merge_from(other.bytes_[p]);
  }
  plan_fallbacks_ += other.plan_fallbacks_;
  spike_replans_ += other.spike_replans_;
  replans_suppressed_ += other.replans_suppressed_;
}

const RateSeries& Metrics::offered(core::PrincipalId p) const {
  check(p);
  return offered_[p];
}
const RateSeries& Metrics::served(core::PrincipalId p) const {
  check(p);
  return served_[p];
}
const RateSeries& Metrics::rejected(core::PrincipalId p) const {
  check(p);
  return rejected_[p];
}
const RunningStats& Metrics::latency(core::PrincipalId p) const {
  check(p);
  return latency_[p];
}
const RateSeries& Metrics::reply_bytes(core::PrincipalId p) const {
  check(p);
  return bytes_[p];
}

}  // namespace sharegrid::nodes
