#include "nodes/client.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace sharegrid::nodes {

ClientMachine::ClientMachine(sim::Simulator* sim, Metrics* metrics,
                             RedirectorBase* redirector, Config config,
                             Rng rng,
                             const workload::ReplySizeDistribution* sizes)
    : sim_(sim),
      metrics_(metrics),
      redirector_(redirector),
      config_(std::move(config)),
      rng_(rng),
      sizes_(sizes) {
  SHAREGRID_EXPECTS(sim != nullptr);
  SHAREGRID_EXPECTS(metrics != nullptr);
  SHAREGRID_EXPECTS(redirector != nullptr);
  SHAREGRID_EXPECTS(config_.rate > 0.0);
  SHAREGRID_EXPECTS(config_.principal != core::kNoPrincipal);
  SHAREGRID_EXPECTS(config_.max_outstanding >= 1);
}

void ClientMachine::set_active(bool active) {
  active_ = active;
  if (active_ && !loop_armed_) {
    loop_armed_ = true;
    schedule_next_arrival();
  }
}

void ClientMachine::schedule_next_arrival() {
  const double mean_gap = 1.0 / config_.rate;
  const double gap_sec = config_.exponential_arrivals
                             ? rng_.exponential(mean_gap)
                             : mean_gap;
  const auto gap = std::max<SimDuration>(1, seconds(gap_sec));
  sim_->schedule_after(gap, [this, alive = alive_] {
    if (!*alive) return;
    if (!active_) {
      loop_armed_ = false;  // generation stops; reactivation re-arms
      return;
    }
    if (outstanding_ < config_.max_outstanding) emit();
    schedule_next_arrival();
  });
}

void ClientMachine::emit() {
  Request req;
  req.id = (static_cast<std::uint64_t>(config_.index) << 32) |
           next_request_id_++;
  req.principal = config_.principal;
  req.created = sim_->now();
  req.client = config_.index;
  if (sizes_ != nullptr) {
    const workload::SampledRequest sample = sizes_->sample(rng_);
    req.reply_bytes = sample.reply_bytes;
    // By default the scheduling weight stays 1 (capacities are calibrated
    // in requests of the standard mix); weighted mode treats large requests
    // as multiple small ones (§4).
    if (config_.weighted_requests) req.weight = sample.weight;
  }
  ++outstanding_;
  metrics_->on_offered(req.principal, sim_->now());
  send_to_redirector(req);
}

void ClientMachine::send_to_redirector(const Request& request) {
  sim_->schedule_after(config_.net_delay, [this, alive = alive_, request] {
    if (!*alive) return;
    redirector_->on_client_request(request, this);
  });
}

void ClientMachine::on_redirect_to_server(const Request& request,
                                          Server* server) {
  SHAREGRID_EXPECTS(server != nullptr);
  // One hop to reach the assigned server, then service, then the reply hop.
  sim_->schedule_after(config_.net_delay, [this, alive = alive_, request,
                                           server] {
    if (!*alive) return;
    server->submit(request, [this, alive](const Request& done) {
      sim_->schedule_after(config_.net_delay, [this, alive, done] {
        if (!*alive) return;
        on_response(done);
      });
    });
  });
}

void ClientMachine::on_self_redirect(const Request& request) {
  metrics_->on_rejected(request.principal, sim_->now());
  // The WebBench-side proxy retries the same URL after a short pause; the
  // outstanding slot stays occupied, which is what throttles generation.
  // Jitter spreads retries across scheduling windows — without it, every
  // request rejected in one window comes back in the same later window,
  // alternately overflowing and starving the quota.
  const double delay_sec = config_.retry_delay_sec * rng_.uniform(0.6, 1.4);
  sim_->schedule_after(seconds(delay_sec),
                       [this, alive = alive_, request] {
                         if (!*alive) return;
                         send_to_redirector(request);
                       });
}

void ClientMachine::on_response(const Request& request) {
  SHAREGRID_ASSERT(outstanding_ > 0);
  --outstanding_;
  metrics_->on_latency(request.principal,
                       to_seconds(sim_->now() - request.created));
}

}  // namespace sharegrid::nodes
