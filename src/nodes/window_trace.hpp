// Per-window decision tracing: what each redirector saw and decided.
//
// When enabled, every scheduling window appends one row per redirector with
// the local/global demand estimates and the planned admission rates — the
// raw material for debugging enforcement anomalies ("why did B only get 32
// req/s at t=4?") and for plotting plans against measured service. Rows are
// capped so week-long simulations cannot exhaust memory.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace sharegrid::nodes {

/// Append-only log of window scheduling decisions.
class WindowTrace {
 public:
  struct Row {
    SimTime window_start = 0;
    std::string redirector;
    std::vector<double> local_demand;   ///< req/s per principal
    std::vector<double> global_demand;  ///< snapshot used (empty: none yet)
    std::vector<double> planned_rate;   ///< admitted req/s per principal
    double theta = 0.0;                 ///< community metric (1 if n/a)
  };

  /// @param max_rows  hard cap; once reached, further rows are dropped and
  ///                  counted (see dropped()).
  explicit WindowTrace(std::size_t max_rows = 1 << 20)
      : max_rows_(max_rows) {}

  void record(Row row) {
    if (rows_.size() >= max_rows_) {
      ++dropped_;
      return;
    }
    rows_.push_back(std::move(row));
  }

  const std::vector<Row>& rows() const { return rows_; }
  std::uint64_t dropped() const { return dropped_; }

  /// CSV export: time_s,redirector,theta,<name>_local,<name>_global,
  /// <name>_planned per principal.
  void write_csv(std::ostream& os,
                 const std::vector<std::string>& principal_names) const;

 private:
  std::size_t max_rows_;
  std::vector<Row> rows_;
  std::uint64_t dropped_ = 0;
};

}  // namespace sharegrid::nodes
