#include "nodes/l4_redirector.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "util/metrics_registry.hpp"

namespace sharegrid::nodes {

namespace {
// Redirector packet-path counters (util/metrics_registry.hpp). Admitted and
// dropped totals are flushed as per-window deltas, keeping the per-packet
// path free of shared atomics that sharded lanes would contend on.
util::MetricCounter& admitted_counter() {
  static util::MetricCounter& counter = util::global_metrics().counter(
      "l4.admitted", "connections admitted and redirected to a server");
  return counter;
}
util::MetricCounter& dropped_counter() {
  static util::MetricCounter& counter = util::global_metrics().counter(
      "l4.dropped", "SYNs dropped with the kernel queue full");
  return counter;
}
}  // namespace

L4Redirector::L4Redirector(sim::Simulator* sim, Metrics* metrics,
                           ServerPool* servers,
                           coord::ControlPlane::Member* member, Config config)
    : sim_(sim),
      metrics_(metrics),
      servers_(servers),
      member_(member),
      config_(std::move(config)) {
  SHAREGRID_EXPECTS(sim != nullptr);
  SHAREGRID_EXPECTS(metrics != nullptr);
  SHAREGRID_EXPECTS(servers != nullptr);
  SHAREGRID_EXPECTS(member != nullptr);
  const std::size_t n = member_->size();
  queues_.resize(n);
  in_flight_.assign(n, 0.0);

  coord::ControlPlane::MemberHooks hooks;
  // The user-space daemon reports the smoothed arrival rate plus the queued
  // backlog amortized over a one-second drain horizon. Charging the whole
  // backlog to a single window would let a handful of queued SYNs inflate a
  // principal's apparent demand by hundreds of req/s, systematically
  // over-claiming capacity from its peers.
  hooks.extra_demand = [this](std::vector<double>& demand) {
    constexpr double kDrainHorizonSec = 1.0;
    // In-flight up to 50 ms worth of the arrival rate is normal pipelining
    // (network hops + service time) and must not read as backlog.
    constexpr double kInFlightAllowanceSec = 0.05;
    for (std::size_t i = 0; i < demand.size(); ++i) {
      // Arrival rate + kernel-queue backlog + *excess* admitted-but-unreplied
      // work. The last term keeps latent demand visible when a transient
      // parked requests in a server's FIFO: those connections hold client
      // slots, so without it the closed loop settles wherever the transient
      // left it, below the agreement levels.
      const double rate = demand[i];
      const double excess_in_flight =
          std::max(0.0, in_flight_[i] - rate * kInFlightAllowanceSec);
      demand[i] = rate + (static_cast<double>(queues_[i].size()) +
                          excess_in_flight) /
                             kDrainHorizonSec;
    }
  };
  hooks.on_window_begun = [this](SimTime now) { on_window_begun(now); };
  member_->bind(std::move(hooks));
}

void L4Redirector::on_client_request(const Request& request,
                                     RequestSource* from) {
  // Wrap the request as the SYN the kernel module would see: source is the
  // client machine's address, destination the principal's virtual service.
  l4::Packet syn;
  syn.kind = l4::PacketKind::kSyn;
  syn.src = {0x0C000000u + static_cast<std::uint32_t>(request.client),
             static_cast<std::uint16_t>(1024 + (request.id & 0xFFF))};
  syn.dst = vip(request.principal);
  syn.request_id = request.id;
  syn.weight = request.weight;
  on_packet(syn, from);
}

void L4Redirector::on_packet(const l4::Packet& packet, RequestSource* from) {
  SHAREGRID_EXPECTS(packet.kind == l4::PacketKind::kSyn);
  const core::PrincipalId p = packet.dst.host - 0x0A000000u;
  SHAREGRID_EXPECTS(p < queues_.size());

  Request request;
  request.id = packet.request_id;
  request.principal = p;
  request.weight = packet.weight;
  request.created = sim_->now();
  request.client = packet.src.host - 0x0C000000u;

  member_->record_arrival(
      p, config_.weighted_admission ? packet.weight : 1.0);

  Held held{packet, request, from};
  if (try_forward(held)) return;

  // Out of quota: park the SYN in the principal's kernel-level queue; the
  // window task reinjects it in later windows as agreements allow.
  if (queues_[p].size() >= config_.max_queue) {
    ++drops_;
    metrics_->on_rejected(p, sim_->now());
    return;
  }
  queues_[p].push_back(std::move(held));
}

bool L4Redirector::try_forward(const Held& held) {
  const core::PrincipalId p = held.request.principal;
  const double weight =
      config_.weighted_admission ? held.request.weight : 1.0;
  const auto owner = member_->try_admit(p, weight);
  if (!owner) return false;

  Server* server = nullptr;
  if (config_.use_affinity) {
    // Prefer the machine that last served this client host — but only when
    // the admission decision lands on the same owner ("to the extent allowed
    // by the sharing agreements", §4.2).
    if (const auto hint = table_.affinity_hint(held.packet.src,
                                               held.packet.dst)) {
      Server* preferred = servers_->find(*hint);
      if (preferred != nullptr && preferred->config().owner == *owner)
        server = preferred;
    }
  }
  if (server == nullptr) server = servers_->pick(*owner);
  SHAREGRID_ASSERT(server != nullptr);
  forward_to(held, server);
  return true;
}

void L4Redirector::forward_to(const Held& held, Server* server) {
  ++admitted_;
  in_flight_[held.request.principal] += 1.0;
  table_.establish(held.packet.src, held.packet.dst,
                   server->config().endpoint);
  const l4::Packet rewritten = l4::ConnectionTable::rewrite_to_server(
      held.packet, server->config().endpoint);
  (void)rewritten;  // header rewrite modeled; payload path is the callback

  RequestSource* from = held.from;
  const l4::Packet original = held.packet;
  sim_->schedule_after(config_.net_delay, [this, alive = alive_, request =
                                               held.request, original, from,
                                           server] {
    if (!*alive) return;
    server->submit(request, [this, alive, original, from](const Request& done) {
      if (!*alive) return;
      // Reply path: server -> redirector (reverse NAT) -> client.
      const l4::Packet reply = l4::ConnectionTable::rewrite_to_client(
          original, original.dst, original.src);
      (void)reply;
      in_flight_[done.principal] -= 1.0;
      table_.release(original.src, original.dst);
      sim_->schedule_after(
          2 * config_.net_delay, [alive, from, done] {
            if (!*alive) return;
            from->on_response(done);
          });
    });
  });
}

void L4Redirector::flush_metrics() {
  admitted_counter().add(admitted_ - flushed_admitted_);
  dropped_counter().add(drops_ - flushed_drops_);
  flushed_admitted_ = admitted_;
  flushed_drops_ = drops_;
}

void L4Redirector::on_window_begun(SimTime now) {
  flush_metrics();
  const std::size_t n = queues_.size();
  if (config_.trace != nullptr) {
    const sched::WindowScheduler& window = member_->window_scheduler();
    WindowTrace::Row row;
    row.window_start = now;
    row.redirector = config_.name;
    row.local_demand = member_->last_local_demand();
    if (member_->global().valid) row.global_demand = member_->global().demand;
    row.theta = window.last_plan().theta;
    for (std::size_t i = 0; i < n; ++i)
      row.planned_rate.push_back(window.last_plan().admitted(i));
    config_.trace->record(std::move(row));
  }

  // Reinject queued SYNs in FIFO order while quota lasts.
  for (std::size_t i = 0; i < n; ++i) {
    while (!queues_[i].empty()) {
      if (!try_forward(queues_[i].front())) break;
      queues_[i].pop_front();
    }
  }
}

std::vector<double> L4Redirector::local_demand() const {
  return member_->local_demand();
}

std::size_t L4Redirector::queue_length(core::PrincipalId p) const {
  SHAREGRID_EXPECTS(p < queues_.size());
  return queues_[p].size();
}

}  // namespace sharegrid::nodes
