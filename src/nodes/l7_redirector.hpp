// Layer-7 HTTP redirector (§4.1).
//
// Two operating modes, mirroring the paper's implementation history:
//
//  * kCreditBased (default, the paper's final design): each window the
//    redirector solves the LP against *estimated* queue lengths (an EWMA of
//    arrivals, including retries) and admits in-quota requests immediately
//    with a 302 to the assigned server; out-of-quota requests get a 302 back
//    to the redirector itself, implicitly queueing them at the client.
//
//  * kExplicitQueue (the paper's first attempt, kept for the ablation
//    bench): requests are held in per-principal queues and released in a
//    batch at the start of the next window — which bunches traffic and
//    depresses closed-loop client throughput, the anomaly that motivated
//    the switch (§4.1 / tech report).
//
// The window loop itself — estimators, snapshots, plan, quotas — lives in
// coord::ControlPlane (DESIGN.md D10); this node owns only the HTTP-level
// behaviour: what a 302 means, where out-of-quota requests go, and what the
// held-request backlog contributes to demand.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "coord/control_plane.hpp"
#include "nodes/client.hpp"
#include "nodes/metrics.hpp"
#include "nodes/server.hpp"
#include "nodes/window_trace.hpp"
#include "sim/simulator.hpp"

namespace sharegrid::nodes {

/// HTTP (Layer-7) redirector node.
class L7Redirector final : public RedirectorBase {
 public:
  enum class Mode { kCreditBased, kExplicitQueue };

  struct Config {
    std::string name;
    Mode mode = Mode::kCreditBased;
    SimDuration net_delay = 500;  ///< one-way redirector->client hop (usec)
    /// Admit requests by their sampled weight instead of 1 unit each.
    bool weighted_admission = false;
    /// Optional per-window decision log (not owned; may be shared).
    WindowTrace* trace = nullptr;
  };

  /// @param member this node's control-plane slice (not owned). The node
  ///               binds its demand/window hooks in the ctor; a member can
  ///               belong to exactly one node.
  L7Redirector(sim::Simulator* sim, Metrics* metrics, ServerPool* servers,
               coord::ControlPlane::Member* member, Config config);
  ~L7Redirector() override { *alive_ = false; }

  // RedirectorBase:
  void on_client_request(const Request& request, RequestSource* from) override;

  /// This node's current local demand estimate (requests/sec per principal):
  /// the member's estimator rates plus held-request backlog. Delegates to the
  /// control plane; kept on the node for tests and benches.
  std::vector<double> local_demand() const;

  const sched::WindowScheduler& window_scheduler() const {
    return member_->window_scheduler();
  }
  coord::ControlPlane::Member* member() { return member_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t self_redirects() const { return self_redirects_; }

 private:
  void on_window_begun(SimTime now);
  void admit_and_redirect(const Request& request, RequestSource* from,
                          core::PrincipalId owner);

  sim::Simulator* sim_;
  Metrics* metrics_;
  ServerPool* servers_;
  coord::ControlPlane::Member* member_;
  Config config_;

  // Explicit-queue mode state.
  struct Held {
    Request request;
    RequestSource* from;
  };
  std::vector<std::deque<Held>> held_;

  std::uint64_t admitted_ = 0;
  std::uint64_t self_redirects_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sharegrid::nodes
