// Layer-7 HTTP redirector (§4.1).
//
// Two operating modes, mirroring the paper's implementation history:
//
//  * kCreditBased (default, the paper's final design): each window the
//    redirector solves the LP against *estimated* queue lengths (an EWMA of
//    arrivals, including retries) and admits in-quota requests immediately
//    with a 302 to the assigned server; out-of-quota requests get a 302 back
//    to the redirector itself, implicitly queueing them at the client.
//
//  * kExplicitQueue (the paper's first attempt, kept for the ablation
//    bench): requests are held in per-principal queues and released in a
//    batch at the start of the next window — which bunches traffic and
//    depresses closed-loop client throughput, the anomaly that motivated
//    the switch (§4.1 / tech report).
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "nodes/client.hpp"
#include "nodes/metrics.hpp"
#include "nodes/server.hpp"
#include "nodes/window_trace.hpp"
#include "sched/window_scheduler.hpp"
#include "sim/simulator.hpp"

namespace sharegrid::nodes {

/// HTTP (Layer-7) redirector node.
class L7Redirector final : public RedirectorBase {
 public:
  enum class Mode { kCreditBased, kExplicitQueue };

  struct Config {
    std::string name;
    SimDuration window = 100 * kMillisecond;  ///< paper: 100 ms windows
    std::size_t redirector_count = 1;         ///< R, for conservative mode
    Mode mode = Mode::kCreditBased;
    SimDuration net_delay = 500;  ///< one-way redirector->client hop (usec)
    double estimator_alpha = 0.3;
    /// Admit requests by their sampled weight instead of 1 unit each.
    bool weighted_admission = false;
    /// Behaviour before the first combining-tree aggregate arrives.
    sched::StalePolicy stale_policy = sched::StalePolicy::kConservative;
    /// Optional per-window decision log (not owned; may be shared).
    WindowTrace* trace = nullptr;
  };

  /// @param scheduler shared planning logic (not owned; one per experiment).
  L7Redirector(sim::Simulator* sim, Metrics* metrics, ServerPool* servers,
               const sched::Scheduler* scheduler, Config config);
  ~L7Redirector() override { *alive_ = false; }

  /// Starts the periodic window task.
  void start(SimTime first_window);

  // RedirectorBase:
  void on_client_request(const Request& request, RequestSource* from) override;

  /// Combining-tree provider: this node's current local demand estimate
  /// (requests/sec per principal).
  std::vector<double> local_demand() const;

  /// Combining-tree receiver: a fresh global aggregate arrived.
  void receive_global(const std::vector<double>& aggregate);

  const sched::WindowScheduler& window_scheduler() const { return window_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t self_redirects() const { return self_redirects_; }

 private:
  void begin_window();
  void admit_and_redirect(const Request& request, RequestSource* from,
                          core::PrincipalId owner);

  sim::Simulator* sim_;
  Metrics* metrics_;
  ServerPool* servers_;
  Config config_;
  sched::WindowScheduler window_;
  std::vector<sched::ArrivalEstimator> estimators_;
  std::vector<double> arrivals_this_window_;
  sched::GlobalDemand global_;
  std::unique_ptr<sim::PeriodicTask> window_task_;

  // Explicit-queue mode state.
  struct Held {
    Request request;
    RequestSource* from;
  };
  std::vector<std::deque<Held>> held_;

  std::uint64_t admitted_ = 0;
  std::uint64_t self_redirects_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace sharegrid::nodes
