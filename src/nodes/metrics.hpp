// Central measurement hub for simulated experiments.
//
// Records the same quantities the paper plots: per-principal served
// requests/second over time (every figure), offered load, rejections
// (self-redirects / queue drops), response latency, and reply bandwidth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/principal.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"
#include "util/time_series.hpp"

namespace sharegrid::nodes {

/// Per-principal time-series metrics; one instance per experiment.
class Metrics {
 public:
  explicit Metrics(std::size_t principal_count,
                   SimDuration bin_width = kSecond);

  std::size_t principal_count() const { return served_.size(); }

  void on_offered(core::PrincipalId p, SimTime t);
  void on_served(core::PrincipalId p, SimTime t);
  void on_rejected(core::PrincipalId p, SimTime t);
  void on_latency(core::PrincipalId p, double seconds);
  void on_reply_bytes(core::PrincipalId p, SimTime t, double bytes);
  /// A window began on a stale plan because the LP solver hit its iteration
  /// budget (Plan::lp_fallback). Rare by construction; a nonzero rate in a
  /// steady experiment means the solver budget is undersized for the
  /// principal count.
  void on_plan_fallback() { ++plan_fallbacks_; }
  /// A demand spike triggered a mid-window re-plan on some control-plane
  /// member (ControlPlane::Member::spike_replan).
  void on_spike_replan() { ++spike_replans_; }
  /// A spike re-plan was requested but the per-window budget
  /// (ControlPlaneConfig::spike_replan_limit) was already spent; the request
  /// bounced on the existing quota instead of re-solving the LP.
  void on_replan_suppressed() { ++replans_suppressed_; }

  /// Folds another Metrics (same principal count and bin width) into this
  /// one — used by the cluster-partitioned scenarios to combine per-cluster
  /// measurement hubs into one global report. Rate series add integer bin
  /// counts (order-independent); latency stats use the parallel Welford
  /// combination, so callers merge clusters in index order to keep the
  /// floating-point result reproducible.
  void merge_from(const Metrics& other);

  const RateSeries& offered(core::PrincipalId p) const;
  const RateSeries& served(core::PrincipalId p) const;
  const RateSeries& rejected(core::PrincipalId p) const;
  const RunningStats& latency(core::PrincipalId p) const;
  /// Reply bytes/sec series (events weighted by size).
  const RateSeries& reply_bytes(core::PrincipalId p) const;
  /// Windows that started on a stale plan (LP iteration-limit fallbacks).
  std::uint64_t plan_fallbacks() const { return plan_fallbacks_; }
  /// Mid-window spike re-plans executed across the redirector fleet.
  std::uint64_t spike_replans() const { return spike_replans_; }
  /// Spike re-plans suppressed by the per-window budget.
  std::uint64_t replans_suppressed() const { return replans_suppressed_; }

 private:
  void check(core::PrincipalId p) const { SHAREGRID_EXPECTS(p < served_.size()); }

  std::vector<RateSeries> offered_;
  std::vector<RateSeries> served_;
  std::vector<RateSeries> rejected_;
  std::vector<RunningStats> latency_;
  std::vector<RateSeries> bytes_;
  std::uint64_t plan_fallbacks_ = 0;
  std::uint64_t spike_replans_ = 0;
  std::uint64_t replans_suppressed_ = 0;
};

}  // namespace sharegrid::nodes
