#include "nodes/window_trace.hpp"

#include "util/table.hpp"

namespace sharegrid::nodes {

void WindowTrace::write_csv(
    std::ostream& os, const std::vector<std::string>& principal_names) const {
  std::vector<std::string> headers{"time_s", "redirector", "theta"};
  for (const auto& name : principal_names) {
    headers.push_back(name + "_local");
    headers.push_back(name + "_global");
    headers.push_back(name + "_planned");
  }
  TextTable table(std::move(headers));

  for (const Row& row : rows_) {
    std::vector<std::string> cells{TextTable::num(to_seconds(row.window_start), 3),
                                   row.redirector,
                                   TextTable::num(row.theta, 3)};
    for (std::size_t p = 0; p < principal_names.size(); ++p) {
      cells.push_back(TextTable::num(
          p < row.local_demand.size() ? row.local_demand[p] : 0.0));
      cells.push_back(TextTable::num(
          p < row.global_demand.size() ? row.global_demand[p] : 0.0));
      cells.push_back(TextTable::num(
          p < row.planned_rate.size() ? row.planned_rate[p] : 0.0));
    }
    table.add_row(std::move(cells));
  }
  table.print_csv(os);
}

}  // namespace sharegrid::nodes
