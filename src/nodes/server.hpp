// Simulated server machine and per-owner server pools (§5 testbed: Apache on
// 1 GHz PCs; here a capacity-C requests/sec service queue, DESIGN.md §4).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/principal.hpp"
#include "l4/packet.hpp"
#include "nodes/metrics.hpp"
#include "nodes/request.hpp"
#include "sim/simulator.hpp"

namespace sharegrid::nodes {

/// A single server machine: processes requests in FIFO order at a fixed
/// capacity (weight units per second). Completion time for a request of
/// weight w arriving when the server frees at time f is max(now, f) + w/C.
class Server {
 public:
  struct Config {
    std::string name;
    core::PrincipalId owner = core::kNoPrincipal;  ///< resource owner
    double capacity = 320.0;                       ///< units (requests)/sec
    l4::Endpoint endpoint;                         ///< L4 address
  };

  Server(sim::Simulator* sim, Metrics* metrics, Config config);

  /// Enqueues a request; @p on_complete fires (same simulated instant the
  /// request finishes service) with the request. Serving is recorded in
  /// Metrics at completion time.
  void submit(const Request& request,
              std::function<void(const Request&)> on_complete);

  /// Seconds of queued work ahead of a new arrival.
  double backlog_seconds() const;

  /// Re-provisions the machine (degradation, recovery, upgrade). Applies to
  /// requests submitted from now on; already-queued work keeps its old
  /// completion schedule.
  void set_capacity(double capacity);

  /// Total weight units served so far.
  double units_served() const { return units_served_; }

  const Config& config() const { return config_; }

  ~Server() { *alive_ = false; }
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

 private:
  sim::Simulator* sim_;
  Metrics* metrics_;
  Config config_;
  SimTime next_free_ = 0;
  double units_served_ = 0.0;
  // Completion events may still sit in the simulator queue when a server is
  // destroyed mid-run; the shared flag makes them inert instead of dangling.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Maps resource-owning principals to their physical machines and picks a
/// machine for each admitted request (least backlog, then declaration order).
class ServerPool {
 public:
  /// Registers a machine (not owned).
  void add(Server* server);

  /// Least-backlogged machine owned by @p owner; null when the owner has no
  /// machines.
  Server* pick(core::PrincipalId owner) const;

  /// Machine with the given L4 endpoint; null when unknown.
  Server* find(const l4::Endpoint& endpoint) const;

  const std::vector<Server*>& machines(core::PrincipalId owner) const;

  /// Aggregate capacity owned by @p owner.
  double capacity(core::PrincipalId owner) const;

 private:
  std::vector<std::vector<Server*>> by_owner_;
  std::vector<Server*> all_;
  static const std::vector<Server*> kEmpty;
};

}  // namespace sharegrid::nodes
