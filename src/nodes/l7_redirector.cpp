#include "nodes/l7_redirector.hpp"

#include <utility>

#include "util/assert.hpp"

namespace sharegrid::nodes {

L7Redirector::L7Redirector(sim::Simulator* sim, Metrics* metrics,
                           ServerPool* servers,
                           coord::ControlPlane::Member* member, Config config)
    : sim_(sim),
      metrics_(metrics),
      servers_(servers),
      member_(member),
      config_(std::move(config)) {
  SHAREGRID_EXPECTS(sim != nullptr);
  SHAREGRID_EXPECTS(metrics != nullptr);
  SHAREGRID_EXPECTS(servers != nullptr);
  SHAREGRID_EXPECTS(member != nullptr);
  held_.resize(member_->size());

  coord::ControlPlane::MemberHooks hooks;
  if (config_.mode == Mode::kExplicitQueue) {
    // The real backlog expressed as a rate over one window (§4.1).
    hooks.extra_demand = [this](std::vector<double>& demand) {
      const double window_sec = to_seconds(member_->window());
      for (std::size_t i = 0; i < demand.size(); ++i)
        demand[i] += static_cast<double>(held_[i].size()) / window_sec;
    };
  }
  hooks.on_window_begun = [this](SimTime now) { on_window_begun(now); };
  member_->bind(std::move(hooks));
}

void L7Redirector::on_window_begun(SimTime now) {
  const sched::WindowScheduler& window = member_->window_scheduler();
  if (window.last_plan().lp_fallback) metrics_->on_plan_fallback();
  if (config_.trace != nullptr) {
    WindowTrace::Row row;
    row.window_start = now;
    row.redirector = config_.name;
    row.local_demand = member_->last_local_demand();
    if (member_->global().valid) row.global_demand = member_->global().demand;
    row.theta = window.last_plan().theta;
    for (std::size_t i = 0; i < held_.size(); ++i)
      row.planned_rate.push_back(window.last_plan().admitted(i));
    config_.trace->record(std::move(row));
  }

  if (config_.mode == Mode::kExplicitQueue) {
    // Release queued requests in a batch — intentionally bunchy (§4.1's
    // first design, reproduced for the ablation bench).
    for (std::size_t i = 0; i < held_.size(); ++i) {
      while (!held_[i].empty()) {
        const double weight =
            config_.weighted_admission ? held_[i].front().request.weight : 1.0;
        const auto owner = member_->try_admit(i, weight);
        if (!owner) break;
        Held h = std::move(held_[i].front());
        held_[i].pop_front();
        admit_and_redirect(h.request, h.from, *owner);
      }
    }
  }
}

void L7Redirector::on_client_request(const Request& request,
                                     RequestSource* from) {
  const core::PrincipalId p = request.principal;
  SHAREGRID_EXPECTS(p < held_.size());
  member_->record_arrival(p, config_.weighted_admission ? request.weight
                                                        : 1.0);

  if (config_.mode == Mode::kExplicitQueue) {
    held_[p].push_back({request, from});
    return;
  }

  const double weight = config_.weighted_admission ? request.weight : 1.0;
  if (const auto owner = member_->try_admit(p, weight)) {
    admit_and_redirect(request, from, *owner);
    return;
  }
  // Out of quota: 302 back to ourselves; the client retries (implicit
  // queuing — the queue lives at the clients, not here).
  ++self_redirects_;
  sim_->schedule_after(config_.net_delay, [from, request, alive = alive_] {
    if (!*alive) return;
    from->on_self_redirect(request);
  });
}

void L7Redirector::admit_and_redirect(const Request& request,
                                      RequestSource* from,
                                      core::PrincipalId owner) {
  Server* server = servers_->pick(owner);
  SHAREGRID_ASSERT(server != nullptr);
  ++admitted_;
  sim_->schedule_after(config_.net_delay,
                       [from, request, server, alive = alive_] {
                         if (!*alive) return;
                         from->on_redirect_to_server(request, server);
                       });
}

std::vector<double> L7Redirector::local_demand() const {
  return member_->local_demand();
}

}  // namespace sharegrid::nodes
