#include "nodes/l7_redirector.hpp"

#include <utility>

#include "util/assert.hpp"

namespace sharegrid::nodes {

L7Redirector::L7Redirector(sim::Simulator* sim, Metrics* metrics,
                           ServerPool* servers,
                           const sched::Scheduler* scheduler, Config config)
    : sim_(sim),
      metrics_(metrics),
      servers_(servers),
      config_(std::move(config)),
      window_(scheduler, config_.window, config_.redirector_count,
              config_.stale_policy) {
  SHAREGRID_EXPECTS(sim != nullptr);
  SHAREGRID_EXPECTS(metrics != nullptr);
  SHAREGRID_EXPECTS(servers != nullptr);
  const std::size_t n = scheduler->size();
  estimators_.assign(n, sched::ArrivalEstimator(config_.estimator_alpha));
  arrivals_this_window_.assign(n, 0.0);
  held_.resize(n);
}

void L7Redirector::start(SimTime first_window) {
  SHAREGRID_EXPECTS(window_task_ == nullptr);
  window_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, first_window, config_.window, [this] { begin_window(); });
}

void L7Redirector::begin_window() {
  const std::size_t n = estimators_.size();

  // Fold the last window's arrivals into the rate estimators.
  for (std::size_t i = 0; i < n; ++i) {
    estimators_[i].observe(arrivals_this_window_[i], config_.window);
    arrivals_this_window_[i] = 0.0;
  }

  const std::vector<double> demand = local_demand();
  window_.begin_window(demand, global_);
  if (window_.last_plan().lp_fallback) metrics_->on_plan_fallback();
  if (config_.trace != nullptr) {
    WindowTrace::Row row;
    row.window_start = sim_->now();
    row.redirector = config_.name;
    row.local_demand = demand;
    if (global_.valid) row.global_demand = global_.demand;
    row.theta = window_.last_plan().theta;
    for (std::size_t i = 0; i < n; ++i)
      row.planned_rate.push_back(window_.last_plan().admitted(i));
    config_.trace->record(std::move(row));
  }

  if (config_.mode == Mode::kExplicitQueue) {
    // Release queued requests in a batch — intentionally bunchy (§4.1's
    // first design, reproduced for the ablation bench).
    for (std::size_t i = 0; i < n; ++i) {
      while (!held_[i].empty()) {
        const double weight =
            config_.weighted_admission ? held_[i].front().request.weight : 1.0;
        const auto owner = window_.try_admit(i, weight);
        if (!owner) break;
        Held h = std::move(held_[i].front());
        held_[i].pop_front();
        admit_and_redirect(h.request, h.from, *owner);
      }
    }
  }
}

void L7Redirector::on_client_request(const Request& request,
                                     RequestSource* from) {
  const core::PrincipalId p = request.principal;
  SHAREGRID_EXPECTS(p < estimators_.size());
  arrivals_this_window_[p] +=
      config_.weighted_admission ? request.weight : 1.0;

  if (config_.mode == Mode::kExplicitQueue) {
    held_[p].push_back({request, from});
    return;
  }

  const double weight = config_.weighted_admission ? request.weight : 1.0;
  if (const auto owner = window_.try_admit(p, weight)) {
    admit_and_redirect(request, from, *owner);
    return;
  }
  // Out of quota: 302 back to ourselves; the client retries (implicit
  // queuing — the queue lives at the clients, not here).
  ++self_redirects_;
  sim_->schedule_after(config_.net_delay, [from, request, alive = alive_] {
    if (!*alive) return;
    from->on_self_redirect(request);
  });
}

void L7Redirector::admit_and_redirect(const Request& request,
                                      RequestSource* from,
                                      core::PrincipalId owner) {
  Server* server = servers_->pick(owner);
  SHAREGRID_ASSERT(server != nullptr);
  ++admitted_;
  sim_->schedule_after(config_.net_delay,
                       [from, request, server, alive = alive_] {
                         if (!*alive) return;
                         from->on_redirect_to_server(request, server);
                       });
}

std::vector<double> L7Redirector::local_demand() const {
  // Estimated queue lengths (§4.1): smoothed arrival rate plus, in explicit
  // mode, the real backlog expressed as a rate over one window.
  std::vector<double> demand(estimators_.size(), 0.0);
  const double window_sec = to_seconds(config_.window);
  for (std::size_t i = 0; i < demand.size(); ++i) {
    demand[i] = estimators_[i].rate();
    if (config_.mode == Mode::kExplicitQueue)
      demand[i] += static_cast<double>(held_[i].size()) / window_sec;
  }
  return demand;
}

void L7Redirector::receive_global(const std::vector<double>& aggregate) {
  global_.demand = aggregate;
  global_.valid = true;
}

}  // namespace sharegrid::nodes
