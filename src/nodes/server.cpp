#include "nodes/server.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace sharegrid::nodes {

Server::Server(sim::Simulator* sim, Metrics* metrics, Config config)
    : sim_(sim), metrics_(metrics), config_(std::move(config)) {
  SHAREGRID_EXPECTS(sim != nullptr);
  SHAREGRID_EXPECTS(metrics != nullptr);
  SHAREGRID_EXPECTS(config_.capacity > 0.0);
  SHAREGRID_EXPECTS(config_.owner != core::kNoPrincipal);
}

void Server::submit(const Request& request,
                    std::function<void(const Request&)> on_complete) {
  SHAREGRID_EXPECTS(request.weight > 0.0);
  const SimTime start = std::max(sim_->now(), next_free_);
  const auto service =
      static_cast<SimDuration>(request.weight / config_.capacity *
                               static_cast<double>(kSecond));
  next_free_ = start + std::max<SimDuration>(1, service);
  units_served_ += request.weight;

  sim_->schedule_at(
      next_free_,
      [this, alive = alive_, request, cb = std::move(on_complete)] {
        if (!*alive) return;
        metrics_->on_served(request.principal, sim_->now());
        metrics_->on_reply_bytes(request.principal, sim_->now(),
                                 request.reply_bytes);
        if (cb) cb(request);
      });
}

double Server::backlog_seconds() const {
  return std::max<double>(0.0, to_seconds(next_free_ - sim_->now()));
}

void Server::set_capacity(double capacity) {
  SHAREGRID_EXPECTS(capacity > 0.0);
  config_.capacity = capacity;
}

const std::vector<Server*> ServerPool::kEmpty;

void ServerPool::add(Server* server) {
  SHAREGRID_EXPECTS(server != nullptr);
  const core::PrincipalId owner = server->config().owner;
  if (owner >= by_owner_.size()) by_owner_.resize(owner + 1);
  by_owner_[owner].push_back(server);
  all_.push_back(server);
}

Server* ServerPool::pick(core::PrincipalId owner) const {
  if (owner >= by_owner_.size() || by_owner_[owner].empty()) return nullptr;
  Server* best = by_owner_[owner].front();
  for (Server* s : by_owner_[owner]) {
    if (s->backlog_seconds() < best->backlog_seconds()) best = s;
  }
  return best;
}

Server* ServerPool::find(const l4::Endpoint& endpoint) const {
  for (Server* s : all_) {
    if (s->config().endpoint == endpoint) return s;
  }
  return nullptr;
}

const std::vector<Server*>& ServerPool::machines(
    core::PrincipalId owner) const {
  if (owner >= by_owner_.size()) return kEmpty;
  return by_owner_[owner];
}

double ServerPool::capacity(core::PrincipalId owner) const {
  double total = 0.0;
  for (const Server* s : machines(owner)) total += s->config().capacity;
  return total;
}

}  // namespace sharegrid::nodes
