#include "experiments/paper_figures.hpp"

#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace sharegrid::experiments {
namespace {

/// L7 per-client generation limit (WebBench + redirect proxy, §5 footnote).
constexpr double kL7ClientRate = 135.0;
/// L4 per-client generation limit (raw WebBench).
constexpr double kL4ClientRate = 400.0;

core::AgreementGraph provider_graph(double lb_a, double ub_a, double lb_b,
                                    double ub_b) {
  core::AgreementGraph g;
  const auto s = g.add_principal("S", 0.0);
  const auto a = g.add_principal("A", 0.0);
  const auto b = g.add_principal("B", 0.0);
  g.set_agreement(s, a, lb_a, ub_a);
  g.set_agreement(s, b, lb_b, ub_b);
  return g;
}

}  // namespace

FigureExperiment figure6() {
  FigureExperiment fig;
  fig.id = "fig6";
  fig.title =
      "L7: sharing agreements respected (A [0.2,1] x2 clients, B [0.8,1] x1, "
      "V=320)";
  ScenarioConfig& c = fig.config;
  c.graph = provider_graph(0.2, 1.0, 0.8, 1.0);
  c.layer = Layer::kL7;
  c.scheduler = SchedulerKind::kResponseTime;
  c.redirector_count = 2;
  c.servers = {{"S", 320.0}};
  c.clients = {
      {"C1", "A", 0, kL7ClientRate, {{0.0, 360.0}}},
      {"C2", "A", 0, kL7ClientRate, {{0.0, 360.0}}},
      {"C3", "B", 1, kL7ClientRate, {{0.0, 120.0}, {240.0, 360.0}}},
  };
  c.phases = {{"phase1 (A+B)", 20.0, 115.0},
              {"phase2 (A only)", 145.0, 235.0},
              {"phase3 (A+B)", 265.0, 355.0}};
  c.duration_sec = 360.0;
  // Paper: phase1 B (one client, below its 256 mandatory) is fully served at
  // ~135; A absorbs the remainder (~185). Phase2: A alone, limited to ~270
  // by its two clients. Phase3 repeats phase1.
  fig.expectations = {
      {0, "A", 185.0, 0.12}, {0, "B", 135.0, 0.10},
      {1, "A", 270.0, 0.10}, {1, "B", 0.0, 0.0},
      {2, "A", 185.0, 0.12}, {2, "B", 135.0, 0.10},
  };
  return fig;
}

FigureExperiment figure7() {
  FigureExperiment fig;
  fig.id = "fig7";
  fig.title =
      "L7: minimize global response time (both [0.2,1], V=250; optional "
      "capacity splits in proportion to demand)";
  ScenarioConfig& c = fig.config;
  c.graph = provider_graph(0.2, 1.0, 0.2, 1.0);
  c.layer = Layer::kL7;
  c.scheduler = SchedulerKind::kResponseTime;
  c.redirector_count = 2;
  c.servers = {{"S", 250.0}};
  c.clients = {
      {"C1", "A", 0, kL7ClientRate, {{0.0, 150.0}}},
      {"C2", "A", 0, kL7ClientRate, {{0.0, 150.0}}},
      {"C3", "B", 1, kL7ClientRate, {{0.0, 150.0}}},
  };
  c.phases = {{"steady", 20.0, 145.0}};
  c.duration_sec = 150.0;
  // A has twice B's client population, so the max-min plan processes A's
  // requests at twice B's rate: 250 split 2:1.
  fig.expectations = {{0, "A", 166.7, 0.10}, {0, "B", 83.3, 0.10}};
  return fig;
}

FigureExperiment figure8() {
  FigureExperiment fig;
  fig.id = "fig8";
  fig.title =
      "L7 + 10 s combining-tree lag (A [0.8,1], B [0.2,1], V=320): "
      "conservative start, graceful adaptation";
  ScenarioConfig& c = fig.config;
  c.graph = provider_graph(0.8, 1.0, 0.2, 1.0);
  c.layer = Layer::kL7;
  c.scheduler = SchedulerKind::kResponseTime;
  c.redirector_count = 2;
  c.servers = {{"S", 320.0}};
  c.clients = {
      {"C1", "A", 0, kL7ClientRate, {{60.0, 160.0}}},
      {"C2", "A", 0, kL7ClientRate, {{60.0, 160.0}}},
      {"C3", "B", 1, kL7ClientRate, {{0.0, 250.0}}},
  };
  // Redirectors are leaves under a virtual root with 5 s links, so each
  // receives aggregates lagging 10 s (the paper's deliberate delay).
  c.tree_link_delay = 5 * kSecond;
  c.phases = {{"phase1 (no info: half mandatory)", 2.0, 9.0},
              {"phase2 (B alone, full server)", 15.0, 58.0},
              {"phase3 (contention during lag)", 61.0, 69.0},
              {"phase4 (agreements enforced)", 75.0, 158.0},
              {"phase5 (lag after A stops)", 161.0, 169.0},
              {"phase6 (B alone again)", 175.0, 248.0}};
  c.duration_sec = 250.0;
  // Phase1: B admits half its 64 req/s mandatory = ~32 until the first
  // aggregate lands (~10 s). Phase2: B limited only by its single client.
  // Phase4: A 80% of 320 = ~256, B ~64. Phase6: back to ~135.
  fig.expectations = {
      {0, "B", 32.0, 0.20},  {1, "B", 135.0, 0.10}, {3, "A", 256.0, 0.12},
      {3, "B", 64.0, 0.25},  {5, "B", 135.0, 0.10}, {5, "A", 0.0, 0.0},
  };
  return fig;
}

FigureExperiment figure9() {
  FigureExperiment fig;
  fig.id = "fig9";
  fig.title =
      "L4: community sharing (A and B own 320 each; B shares [0.5,0.5] "
      "with A; A runs 2/0/1/0 clients)";
  ScenarioConfig& c = fig.config;
  core::AgreementGraph g;
  const auto a = g.add_principal("A", 0.0);
  const auto b = g.add_principal("B", 0.0);
  g.set_agreement(b, a, 0.5, 0.5);
  c.graph = g;
  c.layer = Layer::kL4;
  c.scheduler = SchedulerKind::kResponseTime;
  c.redirector_count = 1;
  c.servers = {{"A", 320.0}, {"B", 320.0}};
  c.clients = {
      {"C1", "A", 0, kL4ClientRate, {{0.0, 125.0}, {250.0, 375.0}}},
      {"C2", "A", 0, kL4ClientRate, {{0.0, 125.0}}},
      {"C3", "B", 0, kL4ClientRate, {{0.0, 500.0}}},
  };
  c.phases = {{"phase1 (A x2)", 15.0, 120.0},
              {"phase2 (A off)", 140.0, 245.0},
              {"phase3 (A x1)", 265.0, 370.0},
              {"phase4 (A off)", 390.0, 495.0}};
  c.duration_sec = 500.0;
  // Phase1: A = own 320 + half of B's = 480; B = 160. Phase2: B = 320.
  // Phase3: A limited to ~400 by one client; B = 240 (its server only needs
  // to carry 80 of A's requests). Phase4: B = 320.
  fig.expectations = {
      {0, "A", 480.0, 0.10}, {0, "B", 160.0, 0.10}, {1, "B", 320.0, 0.10},
      {1, "A", 0.0, 0.0},    {2, "A", 400.0, 0.10}, {2, "B", 240.0, 0.10},
      {3, "B", 320.0, 0.10},
  };
  return fig;
}

FigureExperiment figure10() {
  FigureExperiment fig;
  fig.id = "fig10";
  fig.title =
      "L4: maximize provider income (two 320 servers; A [0.8,1] pays more "
      "than B [0.2,1])";
  ScenarioConfig& c = fig.config;
  c.graph = provider_graph(0.8, 1.0, 0.2, 1.0);
  c.layer = Layer::kL4;
  c.scheduler = SchedulerKind::kIncome;
  c.provider = "S";
  c.prices = {0.0, 2.0, 1.0};  // S, A, B — A pays more per extra request
  c.redirector_count = 1;
  c.servers = {{"S", 320.0}, {"S", 320.0}};
  c.clients = {
      {"C1", "A", 0, kL4ClientRate, {{0.0, 125.0}, {250.0, 375.0}}},
      {"C2", "A", 0, kL4ClientRate, {{0.0, 125.0}}},
      {"C3", "B", 0, kL4ClientRate, {{0.0, 500.0}}},
  };
  c.phases = {{"phase1 (A x2)", 15.0, 120.0},
              {"phase2 (A off)", 140.0, 245.0},
              {"phase3 (A x1)", 265.0, 370.0},
              {"phase4 (A off)", 390.0, 495.0}};
  c.duration_sec = 500.0;
  // Phase1: B held to its 20% mandatory (128); A takes the rest (512).
  // Phase2: B alone, limited to ~400 by one client. Phase3: A's 400 get
  // first preference; B absorbs the remaining 240. Phase4 repeats phase2.
  fig.expectations = {
      {0, "A", 512.0, 0.10}, {0, "B", 128.0, 0.10}, {1, "B", 400.0, 0.10},
      {2, "A", 400.0, 0.10}, {2, "B", 240.0, 0.10}, {3, "B", 400.0, 0.10},
  };
  return fig;
}

std::vector<FigureExperiment> all_figures() {
  return {figure6(), figure7(), figure8(), figure9(), figure10()};
}

bool check_figure(const FigureExperiment& figure, const ScenarioResult& result,
                  std::vector<std::string>* failures) {
  bool ok = true;
  for (const PhaseExpectation& e : figure.expectations) {
    std::size_t principal = result.principal_names.size();
    for (std::size_t p = 0; p < result.principal_names.size(); ++p)
      if (result.principal_names[p] == e.principal) principal = p;
    SHAREGRID_EXPECTS(principal < result.principal_names.size());

    const double measured = result.phase_served(e.phase, principal);
    // Zero expectations use a small absolute band instead of a relative one.
    const double allowed = e.expected_rate == 0.0
                               ? 5.0
                               : e.expected_rate * e.rel_tolerance;
    if (std::abs(measured - e.expected_rate) > allowed) {
      ok = false;
      if (failures != nullptr) {
        std::ostringstream os;
        os << figure.id << " " << figure.config.phases[e.phase].name << " "
           << e.principal << ": expected " << e.expected_rate << " +/- "
           << allowed << ", measured " << measured;
        failures->push_back(os.str());
      }
    }
  }
  return ok;
}

}  // namespace sharegrid::experiments
