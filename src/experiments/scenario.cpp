#include "experiments/scenario.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "coord/control_plane.hpp"
#include "coord/snapshot_transport.hpp"
#include "coord/window_driver.hpp"
#include "core/flow.hpp"
#include "nodes/client.hpp"
#include "nodes/l4_redirector.hpp"
#include "nodes/server.hpp"
#include "sched/income_scheduler.hpp"
#include "sched/multi_provider_scheduler.hpp"
#include "sched/response_time_scheduler.hpp"
#include "sched/swappable_scheduler.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/metrics_registry.hpp"
#include "util/rng.hpp"
#include "util/worker_pool.hpp"

namespace sharegrid::experiments {
namespace {

/// Resolves a principal name, failing loudly on typos in scenario specs.
core::PrincipalId resolve(const core::AgreementGraph& graph,
                          const std::string& name) {
  const core::PrincipalId id = graph.find(name);
  SHAREGRID_EXPECTS(id != core::kNoPrincipal);
  return id;
}

}  // namespace

double ScenarioResult::phase_served(std::size_t phase,
                                    std::size_t principal) const {
  SHAREGRID_EXPECTS(phase < phase_reports.size());
  SHAREGRID_EXPECTS(principal < phase_reports[phase].served_rate.size());
  return phase_reports[phase].served_rate[principal];
}

TextTable ScenarioResult::series_table(SimDuration bin) const {
  std::vector<std::string> headers{"time_s"};
  for (const auto& name : principal_names) headers.push_back(name + "_req_s");
  TextTable table(std::move(headers));

  std::size_t bins = 0;
  for (std::size_t p = 0; p < principal_names.size(); ++p)
    bins = std::max(bins, metrics.served(p).bin_count());
  for (std::size_t b = 0; b < bins; ++b) {
    std::vector<std::string> row;
    row.push_back(TextTable::num(
        to_seconds(static_cast<SimTime>(b) * bin), 0));
    for (std::size_t p = 0; p < principal_names.size(); ++p)
      row.push_back(TextTable::num(metrics.served(p).rate_in_bin(b)));
    table.add_row(std::move(row));
  }
  return table;
}

TextTable ScenarioResult::phase_table() const {
  std::vector<std::string> headers{"phase", "interval_s"};
  for (const auto& name : principal_names) {
    headers.push_back(name + "_served");
    headers.push_back(name + "_offered");
  }
  TextTable table(std::move(headers));
  for (const auto& report : phase_reports) {
    std::vector<std::string> row{
        report.name, TextTable::num(report.start_sec, 0) + "-" +
                         TextTable::num(report.end_sec, 0)};
    for (std::size_t p = 0; p < principal_names.size(); ++p) {
      row.push_back(TextTable::num(report.served_rate[p]));
      row.push_back(TextTable::num(report.offered_rate[p]));
    }
    table.add_row(std::move(row));
  }
  return table;
}

ScenarioResult run_scenario(const ScenarioConfig& config) {
  if (config.transport == ScenarioConfig::TransportKind::kSocket)
    throw ContractViolation(
        "scenario: control_plane.transport = socket describes a "
        "multi-process deployment (one OS process per redirector over "
        "loopback TCP) and cannot run under the simulator — drive it with "
        "examples/multi_process_demo, or use transport = sim_tree here");
  if (config.clusters > 0) return run_clustered_scenario(config);
  SHAREGRID_EXPECTS(!config.servers.empty());
  SHAREGRID_EXPECTS(!config.clients.empty());
  SHAREGRID_EXPECTS(config.redirector_count >= 1);
  SHAREGRID_EXPECTS(config.duration_sec > 0.0);

  // Always-on telemetry is reported per run: zero the process-wide registry
  // so the totals printed afterwards cover exactly this scenario.
  util::global_metrics().reset();

  // --- Agreement analysis ------------------------------------------------
  core::AgreementGraph graph = config.graph;
  const std::size_t n = graph.size();
  // Capacities come from the declared machines.
  for (core::PrincipalId p = 0; p < n; ++p) graph.set_capacity(p, 0.0);
  for (const auto& spec : config.servers) {
    const core::PrincipalId owner = resolve(graph, spec.owner);
    graph.set_capacity(owner, graph.capacity(owner) + spec.capacity);
  }
  // Scheduler factory: re-invoked whenever capacities change at runtime
  // (agreements are interpreted dynamically, §2.2). The worker pool is
  // shared across rebuilds so capacity events don't respawn threads.
  std::shared_ptr<WorkerPool> plan_pool;
  if (!config.providers.empty() && config.plan_solver_threads > 0)
    plan_pool = std::make_shared<WorkerPool>(config.plan_solver_threads);
  auto build_scheduler =
      [&config, n, &plan_pool](
          const core::AgreementGraph& g) -> std::unique_ptr<sched::Scheduler> {
    const core::AccessLevels levels = core::compute_access_levels(g);
    if (config.scheduler == SchedulerKind::kResponseTime) {
      sched::ResponseTimeOptions options;
      if (!config.locality_caps.empty()) {
        SHAREGRID_EXPECTS(config.locality_caps.size() == n);
        options.locality_caps = config.locality_caps;
      }
      return std::make_unique<sched::ResponseTimeScheduler>(g, levels,
                                                            options);
    }
    SHAREGRID_EXPECTS(config.prices.size() == n);
    if (!config.providers.empty()) {
      std::vector<core::PrincipalId> providers;
      providers.reserve(config.providers.size());
      for (const std::string& name : config.providers)
        providers.push_back(resolve(g, name));
      return std::make_unique<sched::MultiProviderScheduler>(
          g, levels, std::move(providers), config.prices, plan_pool);
    }
    return std::make_unique<sched::IncomeScheduler>(
        g, levels, resolve(g, config.provider), config.prices);
  };
  auto scheduler =
      std::make_unique<sched::SwappableScheduler>(build_scheduler(graph));

  // --- Nodes ---------------------------------------------------------------
  sim::Simulator sim;
  nodes::Metrics metrics(n);
  Rng master(config.seed);

  std::vector<std::unique_ptr<nodes::Server>> servers;
  nodes::ServerPool pool;
  for (std::size_t s = 0; s < config.servers.size(); ++s) {
    nodes::Server::Config sc;
    sc.name = "server-" + std::to_string(s);
    sc.owner = resolve(graph, config.servers[s].owner);
    sc.capacity = config.servers[s].capacity;
    sc.endpoint = {0x14000000u + static_cast<std::uint32_t>(s), 80};
    servers.push_back(std::make_unique<nodes::Server>(&sim, &metrics, sc));
    pool.add(servers.back().get());
  }

  // --- Control plane -------------------------------------------------------
  // One ControlPlane owns the full window loop (DESIGN.md D10); each
  // redirector node is a thin packet/HTTP shell around one of its members.
  coord::ControlPlaneConfig cp_config;
  cp_config.window = config.window;
  cp_config.redirector_count = config.redirector_count;
  cp_config.stale_policy = config.stale_policy;
  cp_config.spike_replan_limit = config.spike_replan_limit;
  cp_config.on_spike_replan = [&metrics] { metrics.on_spike_replan(); };
  cp_config.on_replan_suppressed = [&metrics] {
    metrics.on_replan_suppressed();
  };
  coord::ControlPlane plane(scheduler.get(), cp_config);

  nodes::WindowTrace trace;
  nodes::WindowTrace* trace_ptr = config.trace_windows ? &trace : nullptr;
  std::vector<std::unique_ptr<nodes::L7Redirector>> l7s;
  std::vector<std::unique_ptr<nodes::L4Redirector>> l4s;
  std::vector<nodes::RedirectorBase*> redirectors;
  for (std::size_t r = 0; r < config.redirector_count; ++r) {
    coord::ControlPlane::Member* member = plane.add_member();
    if (config.layer == Layer::kL7) {
      nodes::L7Redirector::Config rc;
      rc.name = "l7-" + std::to_string(r);
      rc.mode = config.l7_mode;
      rc.net_delay = config.net_delay;
      rc.weighted_admission = config.weighted_admission;
      rc.trace = trace_ptr;
      l7s.push_back(std::make_unique<nodes::L7Redirector>(
          &sim, &metrics, &pool, member, rc));
      redirectors.push_back(l7s.back().get());
    } else {
      nodes::L4Redirector::Config rc;
      rc.name = "l4-" + std::to_string(r);
      rc.net_delay = config.net_delay;
      rc.weighted_admission = config.weighted_admission;
      rc.trace = trace_ptr;
      l4s.push_back(std::make_unique<nodes::L4Redirector>(
          &sim, &metrics, &pool, member, rc));
      redirectors.push_back(l4s.back().get());
    }
  }

  // --- Snapshot transport + window driver ----------------------------------
  // Redirectors hang as leaves off a virtual root so every one of them sees
  // the same aggregate lag of 2 * link_delay.
  coord::SimTreeTransport::Options tree_options;
  tree_options.period =
      config.tree_period > 0 ? config.tree_period : config.window;
  tree_options.link_delay = config.tree_link_delay;
  tree_options.fanout = config.tree_fanout;
  // Aggregation rounds interleave halfway between scheduling windows so a
  // zero-delay tree still feeds each window the freshest possible snapshot.
  tree_options.first_round = config.window / 2;
  coord::SimTreeTransport transport(&sim, config.redirector_count, n,
                                    tree_options);
  plane.connect(&transport);
  // Task creation order is load-bearing (D4): the tree's periodic task must
  // exist before the member window tasks so equal-time events fire in the
  // historical order and figure output stays bit-identical.
  transport.start();
  coord::SimWindowDriver driver(&sim, &plane);
  driver.start(config.window);

  // --- Clients and phase schedule ------------------------------------------
  // One shared WebBench-style size model; per-client RNG streams keep runs
  // deterministic regardless of event interleaving.
  const workload::ReplySizeDistribution reply_sizes;
  SHAREGRID_EXPECTS(config.client_scale >= 1);
  std::vector<std::unique_ptr<nodes::ClientMachine>> clients;
  // client_scale replicates every declared machine; at the default of 1 the
  // loop degenerates to the historical one-machine-per-spec build (same
  // indices, same names, same RNG split order — byte-identical runs).
  for (std::size_t c = 0; c < config.clients.size(); ++c) {
    const ClientSpec& spec = config.clients[c];
    SHAREGRID_EXPECTS(spec.redirector < redirectors.size());
    for (std::size_t rep = 0; rep < config.client_scale; ++rep) {
      nodes::ClientMachine::Config cc;
      cc.name = config.client_scale == 1
                    ? spec.name
                    : spec.name + "#" + std::to_string(rep);
      cc.principal = resolve(graph, spec.principal);
      cc.index = clients.size();
      cc.rate = spec.rate;
      cc.retry_delay_sec = config.retry_delay_sec;
      cc.max_outstanding = config.max_outstanding;
      cc.exponential_arrivals = config.exponential_arrivals;
      cc.net_delay = config.net_delay;
      cc.weighted_requests = config.weighted_admission;
      clients.push_back(std::make_unique<nodes::ClientMachine>(
          &sim, &metrics, redirectors[spec.redirector], cc, master.split(),
          &reply_sizes));
      nodes::ClientMachine* machine = clients.back().get();
      for (const auto& [start, end] : spec.active_sec) {
        SHAREGRID_EXPECTS(end > start);
        sim.schedule_at(seconds(start), [machine] { machine->set_active(true); });
        sim.schedule_at(seconds(end), [machine] { machine->set_active(false); });
      }
    }
  }

  // --- Capacity events -------------------------------------------------------
  for (const CapacityEvent& event : config.capacity_events) {
    SHAREGRID_EXPECTS(event.server < servers.size());
    SHAREGRID_EXPECTS(event.capacity > 0.0);
    SHAREGRID_EXPECTS(event.time_sec >= 0.0);
    sim.schedule_at(seconds(event.time_sec), [&, event] {
      nodes::Server* machine = servers[event.server].get();
      const core::PrincipalId owner = machine->config().owner;
      // Shift the owner's aggregate capacity by the machine's delta, then
      // rebuild the flow analysis + scheduler against the new graph.
      const double delta = event.capacity - machine->config().capacity;
      machine->set_capacity(event.capacity);
      graph.set_capacity(owner, std::max(0.0, graph.capacity(owner) + delta));
      scheduler->replace(build_scheduler(graph));
    });
  }

  // --- Run -----------------------------------------------------------------
  // Sample the worst per-server backlog periodically: the overload signal.
  RunningStats backlog_samples;
  sim::PeriodicTask backlog_probe(&sim, 500 * kMillisecond,
                                  500 * kMillisecond, [&] {
                                    double worst = 0.0;
                                    for (const auto& s : servers)
                                      worst = std::max(worst,
                                                       s->backlog_seconds());
                                    backlog_samples.add(worst);
                                  });
  sim.run_until(seconds(config.duration_sec));
  transport.stop();
  driver.stop();
  backlog_probe.cancel();

  // --- Report ----------------------------------------------------------------
  ScenarioResult result{.principal_names = {},
                        .metrics = std::move(metrics),
                        .phase_reports = {},
                        .total_admitted = 0,
                        .total_rejected_or_queued = 0,
                        .coordination_messages = transport.messages_sent(),
                        .server_backlog_sec = backlog_samples,
                        .window_trace = std::move(trace)};
  for (core::PrincipalId p = 0; p < n; ++p)
    result.principal_names.push_back(graph.name(p));
  for (const auto& l7 : l7s) {
    result.total_admitted += l7->admitted();
    result.total_rejected_or_queued += l7->self_redirects();
  }
  for (const auto& l4 : l4s) {
    result.total_admitted += l4->admitted();
    for (core::PrincipalId p = 0; p < n; ++p)
      result.total_rejected_or_queued += l4->queue_length(p);
  }
  for (const auto& phase : config.phases) {
    PhaseReport report;
    report.name = phase.name;
    report.start_sec = phase.start_sec;
    report.end_sec = phase.end_sec;
    for (core::PrincipalId p = 0; p < n; ++p) {
      report.served_rate.push_back(result.metrics.served(p).average_rate(
          seconds(phase.start_sec), seconds(phase.end_sec)));
      report.offered_rate.push_back(result.metrics.offered(p).average_rate(
          seconds(phase.start_sec), seconds(phase.end_sec)));
    }
    result.phase_reports.push_back(std::move(report));
  }
  return result;
}

}  // namespace sharegrid::experiments
