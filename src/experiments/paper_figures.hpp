// Canned scenario configurations for every experiment in the paper's
// evaluation (§5), plus the expected shapes to check against. Used by both
// the figure benches (bench/fig*.cpp) and the integration tests, so the
// reproduction is asserted, not just printed.
#pragma once

#include <string>
#include <vector>

#include "experiments/scenario.hpp"

namespace sharegrid::experiments {

/// Expected average served rate for one principal in one phase, with a
/// relative tolerance. Shape checks, not absolute-number checks: our
/// substrate is a simulator, not the authors' testbed, but plateaus driven
/// by agreements and client limits should land on the paper's values.
struct PhaseExpectation {
  std::size_t phase = 0;
  std::string principal;
  double expected_rate = 0.0;
  double rel_tolerance = 0.15;
};

/// A figure reproduction: the scenario plus its expected plateaus.
struct FigureExperiment {
  std::string id;        ///< e.g. "fig6"
  std::string title;     ///< what the paper's figure demonstrates
  ScenarioConfig config;
  std::vector<PhaseExpectation> expectations;
};

/// Figure 6 — L7, sharing agreements in a service-provider context:
/// A [0.2,1] with two clients, B [0.8,1] with one, V=320, 3 phases.
FigureExperiment figure6();

/// Figure 7 — L7, community context, minimize global response time:
/// both [0.2,1], V=250; A (two clients) is served at twice B's rate.
FigureExperiment figure7();

/// Figure 8 — L7 with a 10-second combining-tree lag: conservative
/// mandatory-only admission before the first aggregate, graceful adaptation
/// afterwards. 6 phases.
FigureExperiment figure8();

/// Figure 9 — L4, community context: A and B each own a 320 req/s server,
/// B shares [0.5,0.5] with A; A runs 2 -> 0 -> 1 -> 0 clients.
FigureExperiment figure9();

/// Figure 10 — L4, provider context: two 320 req/s servers, A [0.8,1] pays
/// more than B [0.2,1]; income-maximizing admission.
FigureExperiment figure10();

/// All five simulated figures.
std::vector<FigureExperiment> all_figures();

/// Runs a figure's scenario and returns true when every expectation holds;
/// mismatches are appended to @p failures (one line each).
bool check_figure(const FigureExperiment& figure, const ScenarioResult& result,
                  std::vector<std::string>* failures);

}  // namespace sharegrid::experiments
