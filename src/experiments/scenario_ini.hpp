// Scenario files: describe a full experiment in a small INI dialect and run
// it without recompiling. Used by examples/run_scenario_file and handy for
// exploring agreement structures beyond the paper's figures.
//
// File format (see examples/scenarios/*.ini for complete files):
//
//   layer = l4                    # l4 | l7
//   scheduler = response_time     # response_time | income
//   provider = S                  # income scheduler only
//   duration = 120                # seconds
//   window_ms = 100
//   redirectors = 2
//   tree_link_delay = 5           # seconds, one-way per tree link
//   stale_policy = conservative   # conservative | optimistic
//   l7_mode = credit              # credit | explicit
//   seed = 42
//
//   [principal]                   # one block per principal, in id order
//   name = S
//   price = 0                     # income scheduler only (default 0)
//
//   [agreement]
//   owner = S
//   user = A
//   lower = 0.8
//   upper = 1.0
//
//   [server]                      # one block per machine
//   owner = S
//   capacity = 320
//
//   [client]
//   name = C1
//   principal = A
//   redirector = 0
//   rate = 400
//   active = 0-125, 250-375       # seconds; comma-separated ranges
//
//   [phase]                       # reporting intervals
//   name = phase1
//   start = 15
//   end = 120
#pragma once

#include <string>

#include "experiments/scenario.hpp"
#include "util/ini.hpp"

namespace sharegrid::experiments {

/// Builds a ScenarioConfig from a parsed INI document. Throws
/// ContractViolation with a descriptive message on any schema violation.
ScenarioConfig scenario_from_ini(const IniDocument& document);

/// Convenience: parse + build from a file path.
ScenarioConfig load_scenario_file(const std::string& path);

}  // namespace sharegrid::experiments
