#include "experiments/scenario_ini.hpp"

#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace sharegrid::experiments {
namespace {

[[noreturn]] void fail(const std::string& message) {
  throw ContractViolation("scenario: " + message);
}

/// Parses "0-125, 250-375" into second-ranges.
std::vector<std::pair<double, double>> parse_ranges(const std::string& text) {
  std::vector<std::pair<double, double>> out;
  std::stringstream ss(text);
  std::string token;
  while (std::getline(ss, token, ',')) {
    const std::size_t dash = token.find('-');
    if (dash == std::string::npos)
      fail("active range '" + token + "' must look like 'start-end'");
    double start = 0.0;
    double end = 0.0;
    try {
      start = std::stod(token.substr(0, dash));
      end = std::stod(token.substr(dash + 1));
    } catch (const std::exception&) {
      fail("active range '" + token + "' has non-numeric bounds");
    }
    if (end <= start) fail("active range '" + token + "' is empty");
    out.emplace_back(start, end);
  }
  if (out.empty()) fail("active range list is empty");
  return out;
}

}  // namespace

ScenarioConfig scenario_from_ini(const IniDocument& doc) {
  ScenarioConfig config;
  const IniSection& g = doc.global;

  // --- Global settings -----------------------------------------------------
  if (const auto layer = g.get_string("layer")) {
    if (*layer == "l4")
      config.layer = Layer::kL4;
    else if (*layer == "l7")
      config.layer = Layer::kL7;
    else
      fail("layer must be 'l4' or 'l7', got '" + *layer + "'");
  }
  if (const auto sched_kind = g.get_string("scheduler")) {
    if (*sched_kind == "response_time")
      config.scheduler = SchedulerKind::kResponseTime;
    else if (*sched_kind == "income")
      config.scheduler = SchedulerKind::kIncome;
    else
      fail("scheduler must be 'response_time' or 'income'");
  }
  if (const auto provider = g.get_string("provider"))
    config.provider = *provider;
  // Comma-separated principal names, e.g. "providers = S1, S2"; names are
  // validated against the [principal] sections below.
  if (const auto providers = g.get_string("providers")) {
    std::stringstream ss(*providers);
    std::string token;
    while (std::getline(ss, token, ',')) {
      const std::size_t first = token.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      const std::size_t last = token.find_last_not_of(" \t");
      config.providers.push_back(token.substr(first, last - first + 1));
    }
    if (config.providers.empty()) fail("providers list is empty");
  }
  if (const auto threads = g.get_double("plan_solver_threads"))
    config.plan_solver_threads = static_cast<std::size_t>(*threads);
  config.duration_sec = g.get_double("duration").value_or(100.0);
  if (const auto window_ms = g.get_double("window_ms"))
    config.window = milliseconds(*window_ms);
  if (const auto redirectors = g.get_double("redirectors"))
    config.redirector_count = static_cast<std::size_t>(*redirectors);
  if (const auto delay = g.get_double("tree_link_delay"))
    config.tree_link_delay = seconds(*delay);
  // Cluster-partitioned mode: replicate the declared site `clusters` times,
  // one simulation domain each, run on `sim_shards` worker lanes;
  // `client_scale` multiplies every declared client machine (both modes).
  if (const auto clusters = g.get_double("clusters")) {
    if (*clusters < 0.0) fail("clusters must be >= 0");
    config.clusters = static_cast<std::size_t>(*clusters);
  }
  if (const auto shards = g.get_double("sim_shards")) {
    if (*shards < 1.0) fail("sim_shards must be >= 1");
    config.sim_shards = static_cast<std::size_t>(*shards);
  }
  if (const auto scale = g.get_double("client_scale")) {
    if (*scale < 1.0) fail("client_scale must be >= 1");
    config.client_scale = static_cast<std::size_t>(*scale);
  }
  if (const auto policy = g.get_string("stale_policy")) {
    if (*policy == "conservative")
      config.stale_policy = sched::StalePolicy::kConservative;
    else if (*policy == "optimistic")
      config.stale_policy = sched::StalePolicy::kOptimistic;
    else
      fail("stale_policy must be 'conservative' or 'optimistic'");
  }
  if (const auto mode = g.get_string("l7_mode")) {
    if (*mode == "credit")
      config.l7_mode = nodes::L7Redirector::Mode::kCreditBased;
    else if (*mode == "explicit")
      config.l7_mode = nodes::L7Redirector::Mode::kExplicitQueue;
    else
      fail("l7_mode must be 'credit' or 'explicit'");
  }
  if (const auto seed = g.get_double("seed"))
    config.seed = static_cast<std::uint64_t>(*seed);
  if (const auto cap = g.get_double("max_outstanding"))
    config.max_outstanding = static_cast<std::size_t>(*cap);
  if (const auto weighted = g.get_bool("weighted_admission"))
    config.weighted_admission = *weighted;

  // --- Control plane ---------------------------------------------------------
  // Optional [control_plane] section: coordination knobs for the unified
  // window loop (docs/control-plane.md).
  const auto cp_sections = doc.all("control_plane");
  if (cp_sections.size() > 1)
    fail("at most one [control_plane] section is allowed");
  if (!cp_sections.empty()) {
    const IniSection& cp = *cp_sections.front();
    if (const auto fanout = cp.get_double("tree_fanout")) {
      if (*fanout != 0.0 && *fanout < 2.0)
        fail("control_plane.tree_fanout must be 0 (star) or >= 2, got " +
             std::to_string(*fanout));
      config.tree_fanout = static_cast<std::size_t>(*fanout);
    }
    if (const auto period_ms = cp.get_double("snapshot_period_ms")) {
      if (!(*period_ms > 0.0))
        fail("control_plane.snapshot_period_ms must be > 0, got " +
             std::to_string(*period_ms));
      config.tree_period = milliseconds(*period_ms);
    }
    if (const auto limit = cp.get_double("spike_replan_limit")) {
      if (!std::isfinite(*limit) || *limit < 0.0)
        fail("control_plane.spike_replan_limit must be finite and >= 0, "
             "got " +
             std::to_string(*limit));
      config.spike_replan_limit = *limit;
    }
    if (const auto transport = cp.get_string("transport")) {
      if (*transport == "sim_tree")
        config.transport = ScenarioConfig::TransportKind::kSimTree;
      else if (*transport == "socket")
        config.transport = ScenarioConfig::TransportKind::kSocket;
      else
        fail("control_plane.transport must be 'sim_tree' or 'socket', got '" +
             *transport + "'");
    }
    // Comma-separated host:port list, index-aligned with the redirector
    // processes; entry 0 is the aggregation root.
    if (const auto peers = cp.get_string("peers")) {
      std::stringstream ss(*peers);
      std::string token;
      while (std::getline(ss, token, ',')) {
        const std::size_t first = token.find_first_not_of(" \t");
        if (first == std::string::npos) continue;
        const std::size_t last = token.find_last_not_of(" \t");
        const std::string peer = token.substr(first, last - first + 1);
        if (peer.find(':') == std::string::npos)
          fail("control_plane.peers entry '" + peer +
               "' must look like 'host:port'");
        config.socket_peers.push_back(peer);
      }
      if (config.socket_peers.empty()) fail("control_plane.peers is empty");
    }
    if (const auto ttl = cp.get_double("lease_ttl_ms")) {
      if (!std::isfinite(*ttl) || *ttl <= 0.0)
        fail("control_plane.lease_ttl_ms must be finite and > 0, got " +
             std::to_string(*ttl));
      config.lease_ttl_ms = *ttl;
    }
    if (const auto beat = cp.get_double("heartbeat_ms")) {
      if (!std::isfinite(*beat) || *beat < 0.0)
        fail("control_plane.heartbeat_ms must be finite and >= 0, got " +
             std::to_string(*beat));
      config.heartbeat_ms = *beat;
    }
    if (const auto base = cp.get_double("reconnect_base_ms")) {
      if (!std::isfinite(*base) || *base <= 0.0)
        fail("control_plane.reconnect_base_ms must be finite and > 0, got " +
             std::to_string(*base));
      config.reconnect_base_ms = *base;
    }
    if (const auto cap = cp.get_double("reconnect_max_ms")) {
      if (!std::isfinite(*cap) || *cap <= 0.0)
        fail("control_plane.reconnect_max_ms must be finite and > 0, got " +
             std::to_string(*cap));
      config.reconnect_max_ms = *cap;
    }
    if (const auto elect = cp.get_bool("election_enabled"))
      config.election_enabled = *elect;
    if (const auto nonlocal = cp.get_bool("allow_nonlocal"))
      config.allow_nonlocal = *nonlocal;
  }
  if (config.reconnect_max_ms < config.reconnect_base_ms)
    fail("control_plane.reconnect_max_ms (" +
         std::to_string(config.reconnect_max_ms) +
         ") must be >= reconnect_base_ms (" +
         std::to_string(config.reconnect_base_ms) + ")");
  if (config.transport == ScenarioConfig::TransportKind::kSocket) {
    if (config.socket_peers.empty())
      fail("control_plane.transport = socket requires control_plane.peers");
    if (config.socket_peers.size() != config.redirector_count)
      fail("control_plane.peers lists " +
           std::to_string(config.socket_peers.size()) +
           " process(es) but redirectors = " +
           std::to_string(config.redirector_count) +
           "; the socket control plane runs one process per redirector");
  }

  // --- Principals + prices --------------------------------------------------
  const auto principals = doc.all("principal");
  if (principals.empty()) fail("at least one [principal] is required");
  bool any_locality = false;
  for (const IniSection* p : principals) {
    config.graph.add_principal(p->require_string("name"), 0.0);
    config.prices.push_back(p->get_double("price").value_or(0.0));
    const auto cap = p->get_double("locality_cap");
    config.locality_caps.push_back(cap.value_or(1e18));
    any_locality = any_locality || cap.has_value();
  }
  if (!any_locality) config.locality_caps.clear();

  auto principal_id = [&](const std::string& name,
                          const IniSection& where) -> core::PrincipalId {
    const core::PrincipalId id = config.graph.find(name);
    if (id == core::kNoPrincipal)
      fail("section [" + where.name + "] (line " +
           std::to_string(where.line) + ") references unknown principal '" +
           name + "'");
    return id;
  };
  for (const std::string& name : config.providers)
    if (config.graph.find(name) == core::kNoPrincipal)
      fail("providers references unknown principal '" + name + "'");

  // --- Agreements ------------------------------------------------------------
  for (const IniSection* a : doc.all("agreement")) {
    config.graph.set_agreement(principal_id(a->require_string("owner"), *a),
                               principal_id(a->require_string("user"), *a),
                               a->require_double("lower"),
                               a->require_double("upper"));
  }

  // --- Servers ---------------------------------------------------------------
  for (const IniSection* s : doc.all("server")) {
    const std::string owner = s->require_string("owner");
    principal_id(owner, *s);  // validate
    config.servers.push_back({owner, s->require_double("capacity")});
  }
  if (config.servers.empty()) fail("at least one [server] is required");

  // --- Clients ---------------------------------------------------------------
  for (const IniSection* c : doc.all("client")) {
    ClientSpec spec;
    spec.name = c->require_string("name");
    spec.principal = c->require_string("principal");
    principal_id(spec.principal, *c);
    spec.redirector =
        static_cast<std::size_t>(c->get_double("redirector").value_or(0.0));
    spec.rate = c->require_double("rate");
    spec.active_sec = parse_ranges(c->require_string("active"));
    config.clients.push_back(std::move(spec));
  }
  if (config.clients.empty()) fail("at least one [client] is required");

  // --- Phases ------------------------------------------------------------------
  for (const IniSection* p : doc.all("phase")) {
    config.phases.push_back({p->require_string("name"),
                             p->require_double("start"),
                             p->require_double("end")});
  }

  // --- Capacity events -----------------------------------------------------
  for (const IniSection* e : doc.all("capacity_event")) {
    CapacityEvent event;
    event.time_sec = e->require_double("time");
    event.server = static_cast<std::size_t>(e->require_double("server"));
    event.capacity = e->require_double("capacity");
    if (event.server >= config.servers.size())
      fail("capacity_event (line " + std::to_string(e->line) +
           ") references server index " + std::to_string(event.server) +
           " but only " + std::to_string(config.servers.size()) +
           " servers are declared");
    config.capacity_events.push_back(event);
  }

  return config;
}

ScenarioConfig load_scenario_file(const std::string& path) {
  return scenario_from_ini(parse_ini_file(path));
}

}  // namespace sharegrid::experiments
