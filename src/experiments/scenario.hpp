// Declarative experiment scenarios: agreements + servers + redirectors +
// phased client load, run end-to-end on the simulator. Shared by the figure
// benches, the examples, and the integration tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/agreement_graph.hpp"
#include "nodes/l7_redirector.hpp"
#include "nodes/metrics.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace sharegrid::experiments {

/// Which prototype layer handles redirection (§4).
enum class Layer { kL7, kL4 };

/// Which optimization the windows solve (§3.1.2).
enum class SchedulerKind { kResponseTime, kIncome };

/// One physical server machine.
struct ServerSpec {
  std::string owner;  ///< principal name
  double capacity = 320.0;
};

/// One WebBench-style client machine.
struct ClientSpec {
  std::string name;
  std::string principal;        ///< whose service it requests
  std::size_t redirector = 0;   ///< which redirector it dials
  double rate = 400.0;          ///< max generation rate (req/s)
  /// Active intervals in seconds, e.g. {{0, 100}, {200, 300}}.
  std::vector<std::pair<double, double>> active_sec;
};

/// Named reporting phase (seconds).
struct PhaseSpec {
  std::string name;
  double start_sec = 0.0;
  double end_sec = 0.0;
};

/// Runtime re-provisioning of one server machine (degradation, recovery,
/// upgrade). Agreements are interpreted dynamically (§2.2): at event time
/// the flow analysis and scheduler are rebuilt against the new capacities,
/// so every principal's entitlement shifts with the physical resources.
struct CapacityEvent {
  double time_sec = 0.0;
  std::size_t server = 0;  ///< index into ScenarioConfig::servers
  double capacity = 0.0;   ///< new capacity (> 0)
};

/// Full experiment description.
struct ScenarioConfig {
  core::AgreementGraph graph;  ///< capacities are overwritten from `servers`
  Layer layer = Layer::kL4;
  SchedulerKind scheduler = SchedulerKind::kResponseTime;
  /// Income scheduler inputs (ignored for response-time).
  std::string provider;
  std::vector<double> prices;
  /// Multi-provider income mode: when non-empty, each named principal runs
  /// its own per-window income LP over its entitlement columns and the plans
  /// are merged (src/sched/multi_provider_scheduler.hpp); `provider` is then
  /// ignored. Plans are identical whatever `plan_solver_threads` is.
  std::vector<std::string> providers;
  /// Worker threads for the per-provider plan solves (0 = solve serially).
  std::size_t plan_solver_threads = 0;

  /// Locality caps c_k (§3.1.2 extension): at most this many requests/sec
  /// may be pushed to principal k's servers per window, modeling forwarding
  /// cost. Empty = unconstrained. Response-time scheduler only.
  std::vector<double> locality_caps;

  std::size_t redirector_count = 1;
  std::vector<ServerSpec> servers;
  std::vector<ClientSpec> clients;

  /// Cluster-partitioned mode (DESIGN.md D13): when > 0, the declared
  /// servers/clients describe ONE cluster, replicated this many times. Each
  /// cluster runs in its own simulation domain with one redirector + one
  /// control-plane member planning a 1/clusters slice of the global
  /// agreements; the only cross-cluster traffic is the star snapshot
  /// exchange, whose `tree_link_delay` (required > 0) is the conservative
  /// lookahead the sharded engine steps by. 0 = classic single-domain path
  /// (byte-identical to previous behaviour).
  std::size_t clusters = 0;
  /// Worker lanes running the cluster domains (1 = serial oracle). Results
  /// are bitwise-identical for any value — audited against the serial rerun
  /// in SHAREGRID_AUDIT builds. Ignored when clusters == 0.
  std::size_t sim_shards = 1;
  /// Replicates every declared client machine this many times (applies in
  /// both modes) — the scale knob for the million-client scenarios.
  std::size_t client_scale = 1;
  std::vector<PhaseSpec> phases;
  std::vector<CapacityEvent> capacity_events;

  double duration_sec = 100.0;
  SimDuration window = 100 * kMillisecond;

  /// Combining-tree knobs: aggregation every `tree_period` (defaults to the
  /// window), each tree link adding `tree_link_delay` one-way — redirectors
  /// see aggregates lagging ~2x this (Figure 8 uses 5 s links for a 10 s lag).
  SimDuration tree_period = 0;  ///< 0 = use `window`
  SimDuration tree_link_delay = 0;
  /// Tree shape over the redirectors: 0 = flat star under a virtual root
  /// (depth 1); k >= 2 = balanced k-ary tree (redirectors at interior nodes
  /// both contribute and combine, as in the paper's §3.2).
  std::size_t tree_fanout = 0;

  /// Which SnapshotTransport the control plane rides on. kSimTree runs under
  /// the simulator (everything above); kSocket describes a multi-process
  /// deployment — one OS process per redirector exchanging round-tagged
  /// demand vectors over loopback TCP (coord::SocketTransport). Socket
  /// scenarios are driven by examples/multi_process_demo, not run_scenario.
  enum class TransportKind { kSimTree, kSocket };
  TransportKind transport = TransportKind::kSimTree;
  /// host:port per redirector process, index-aligned; entry 0 is the
  /// aggregation root. Required (and only meaningful) for kSocket.
  std::vector<std::string> socket_peers;
  /// Membership knobs for kSocket scenarios (SocketTransport::Options).
  /// Root-lease TTL: followers treat the root as dead — and, with election
  /// enabled, run for the lease — this long after its last refresh.
  double lease_ttl_ms = 500.0;
  /// Standalone lease-refresh spacing (0 = TTL / 3); every round start also
  /// refreshes, so this only matters when rounds are sparse vs the TTL.
  double heartbeat_ms = 0.0;
  /// Session re-dial backoff: first retry after reconnect_base_ms, doubling
  /// per refusal up to reconnect_max_ms, reset when a session establishes.
  double reconnect_base_ms = 20.0;
  double reconnect_max_ms = 320.0;
  /// When false, survivors of a root failure never elect a replacement;
  /// they degrade to the conservative 1/R regime via staleness instead.
  bool election_enabled = true;
  /// Lifts the loopback-only restriction on socket_peers so the processes
  /// may span hosts (numeric IPv4 only; the listener then binds 0.0.0.0).
  bool allow_nonlocal = false;

  // Client behaviour.
  double retry_delay_sec = 0.2;
  std::size_t max_outstanding = 128;
  bool exponential_arrivals = true;
  SimDuration net_delay = 500;

  nodes::L7Redirector::Mode l7_mode = nodes::L7Redirector::Mode::kCreditBased;
  bool weighted_admission = false;
  sched::StalePolicy stale_policy = sched::StalePolicy::kConservative;
  /// Mid-window spike re-plans allowed per redirector per window
  /// (ControlPlaneConfig::spike_replan_limit); fractional rates are
  /// error-carried across windows, 0 disables the fast path.
  double spike_replan_limit = 1.0;
  /// Record one WindowTrace row per redirector per window (see
  /// ScenarioResult::window_trace).
  bool trace_windows = false;

  std::uint64_t seed = 42;
};

/// Per-phase, per-principal average rates.
struct PhaseReport {
  std::string name;
  double start_sec = 0.0;
  double end_sec = 0.0;
  std::vector<double> served_rate;   ///< req/s, by principal
  std::vector<double> offered_rate;  ///< req/s, by principal
};

/// Everything measured in one run.
struct ScenarioResult {
  std::vector<std::string> principal_names;
  nodes::Metrics metrics;
  std::vector<PhaseReport> phase_reports;
  std::uint64_t total_admitted = 0;
  std::uint64_t total_rejected_or_queued = 0;
  std::uint64_t coordination_messages = 0;
  /// Worst per-server backlog (seconds of queued work), sampled every 500 ms
  /// across the run — the overload indicator: a redirector fleet that
  /// respects capacity keeps this near zero.
  RunningStats server_backlog_sec;
  /// Per-window decision log (populated when ScenarioConfig::trace_windows).
  nodes::WindowTrace window_trace;

  /// Average served rate for `principal` during phase `phase` (by index).
  double phase_served(std::size_t phase, std::size_t principal) const;

  /// Per-second served-rate table ("time A B ..." — the paper's plot data).
  TextTable series_table(SimDuration bin = kSecond) const;

  /// Per-phase average table.
  TextTable phase_table() const;
};

/// Builds every node, wires the combining tree, applies the client phase
/// schedule, runs the simulation for `duration_sec`, and reports. Dispatches
/// to run_clustered_scenario() when `config.clusters > 0`.
ScenarioResult run_scenario(const ScenarioConfig& config);

/// Cluster-partitioned runner (sharded_scenario.cpp): one simulation domain
/// per cluster on a conservatively synchronized ShardedSimulator, metrics
/// merged in cluster order. Requires layer == kL4, redirector_count == 1,
/// tree_link_delay > 0, tree_fanout == 0, no capacity events, and serial
/// plan solves; see ScenarioConfig::clusters.
ScenarioResult run_clustered_scenario(const ScenarioConfig& config);

}  // namespace sharegrid::experiments
