// Cluster-partitioned scenario runner (DESIGN.md D13).
//
// The declared servers/clients describe ONE cluster; `clusters` replicas of
// it run side by side, each in its own simulation domain of a conservatively
// synchronized ShardedSimulator. Every cluster owns a full vertical slice —
// servers, one L4 redirector, one control-plane member, clients, its own
// Metrics hub — so domains share no mutable state and the worker lanes never
// contend. The agreement graph is global (declared capacity x clusters) and
// each member plans a 1/clusters slice of it, exactly the paper's
// multi-redirector mode with the fleet spread across sites.
//
// The ONLY cross-domain traffic is the star snapshot exchange
// (coord::ShardedStarTransport); its one-way link delay doubles as the
// engine's lookahead, so the physics of the modeled network IS the
// synchronization bound. Results are bitwise-invariant to `sim_shards` by
// construction, and SHAREGRID_AUDIT builds prove it per run by re-running
// serially and comparing every metric bin (audit_shard_merge_match).
#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "coord/control_plane.hpp"
#include "coord/sharded_transport.hpp"
#include "coord/window_driver.hpp"
#include "experiments/scenario.hpp"
#include "nodes/client.hpp"
#include "nodes/l4_redirector.hpp"
#include "nodes/server.hpp"
#include "sched/income_scheduler.hpp"
#include "sched/multi_provider_scheduler.hpp"
#include "sched/response_time_scheduler.hpp"
#include "sim/sharded_simulator.hpp"
#include "util/assert.hpp"
#include "util/metrics_registry.hpp"
#include "util/rng.hpp"

namespace sharegrid::experiments {
namespace {

core::PrincipalId resolve(const core::AgreementGraph& graph,
                          const std::string& name) {
  const core::PrincipalId id = graph.find(name);
  SHAREGRID_EXPECTS(id != core::kNoPrincipal);
  return id;
}

/// One cluster's full vertical slice. Everything here is touched only by
/// events of the cluster's own domain, so lanes never share mutable state.
struct Cluster {
  explicit Cluster(std::size_t principal_count) : metrics(principal_count) {}

  std::unique_ptr<sched::Scheduler> scheduler;
  nodes::Metrics metrics;
  std::vector<std::unique_ptr<nodes::Server>> servers;
  nodes::ServerPool pool;
  std::unique_ptr<coord::ControlPlane> plane;
  nodes::WindowTrace trace;
  std::unique_ptr<nodes::L4Redirector> redirector;
  std::unique_ptr<coord::SimWindowDriver> driver;
  std::vector<std::unique_ptr<nodes::ClientMachine>> clients;
  RunningStats backlog;
  std::unique_ptr<sim::PeriodicTask> backlog_probe;
};

}  // namespace

ScenarioResult run_clustered_scenario(const ScenarioConfig& config) {
  SHAREGRID_EXPECTS(config.clusters >= 1);
  SHAREGRID_EXPECTS(config.sim_shards >= 1);
  SHAREGRID_EXPECTS(config.client_scale >= 1);
  SHAREGRID_EXPECTS(!config.servers.empty());
  SHAREGRID_EXPECTS(!config.clients.empty());
  SHAREGRID_EXPECTS(config.duration_sec > 0.0);
  // The partitioning contract: one L4 redirector per cluster, a star
  // exchange whose link delay is the lookahead, and no mid-run capacity
  // rewires (those would need their own cross-domain channel).
  SHAREGRID_EXPECTS(config.layer == Layer::kL4);
  SHAREGRID_EXPECTS(config.redirector_count == 1);
  SHAREGRID_EXPECTS(config.tree_link_delay > 0);
  SHAREGRID_EXPECTS(config.tree_fanout == 0);
  SHAREGRID_EXPECTS(config.capacity_events.empty());
  // Plan solves stay serial inside each cluster: the parallelism budget is
  // already spent on the cluster lanes, and a WorkerPool shared by
  // concurrently-solving clusters would race.
  SHAREGRID_EXPECTS(config.plan_solver_threads == 0);

  util::global_metrics().reset();

  // --- Global agreement analysis ------------------------------------------
  // Capacities are global: every cluster hosts one replica of the declared
  // machines, so each owner's entitlement is `clusters` times the declared
  // sum, and a 1/clusters plan slice matches one cluster's local hardware.
  core::AgreementGraph graph = config.graph;
  const std::size_t n = graph.size();
  for (core::PrincipalId p = 0; p < n; ++p) graph.set_capacity(p, 0.0);
  for (const auto& spec : config.servers) {
    const core::PrincipalId owner = resolve(graph, spec.owner);
    graph.set_capacity(owner,
                       graph.capacity(owner) +
                           spec.capacity * static_cast<double>(config.clusters));
  }
  auto build_scheduler = [&config, &graph,
                          n]() -> std::unique_ptr<sched::Scheduler> {
    const core::AccessLevels levels = core::compute_access_levels(graph);
    if (config.scheduler == SchedulerKind::kResponseTime) {
      sched::ResponseTimeOptions options;
      if (!config.locality_caps.empty()) {
        SHAREGRID_EXPECTS(config.locality_caps.size() == n);
        options.locality_caps = config.locality_caps;
      }
      return std::make_unique<sched::ResponseTimeScheduler>(graph, levels,
                                                            options);
    }
    SHAREGRID_EXPECTS(config.prices.size() == n);
    if (!config.providers.empty()) {
      std::vector<core::PrincipalId> providers;
      providers.reserve(config.providers.size());
      for (const std::string& name : config.providers)
        providers.push_back(resolve(graph, name));
      return std::make_unique<sched::MultiProviderScheduler>(
          graph, levels, std::move(providers), config.prices, nullptr);
    }
    return std::make_unique<sched::IncomeScheduler>(
        graph, levels, resolve(graph, config.provider), config.prices);
  };

  // --- Engine + per-cluster slices ----------------------------------------
  sim::ShardedSimulator::Options engine;
  engine.lookahead = config.tree_link_delay;
  engine.shards = config.sim_shards;
  sim::ShardedSimulator sharded(config.clusters, engine);

  Rng master(config.seed);
  const workload::ReplySizeDistribution reply_sizes;  // immutable, shared
  std::vector<std::unique_ptr<Cluster>> clusters;
  clusters.reserve(config.clusters);

  // Phase 1, cluster order: nodes and control planes (no periodic tasks yet;
  // per-domain task creation order is fixed in phases 2-4 below to mirror
  // the classic path: snapshot task, then window task, then clients).
  for (std::size_t c = 0; c < config.clusters; ++c) {
    sim::Simulator& sim = sharded.domain(c);
    auto cluster = std::make_unique<Cluster>(n);
    cluster->scheduler = build_scheduler();

    for (std::size_t s = 0; s < config.servers.size(); ++s) {
      nodes::Server::Config sc;
      sc.name = "c" + std::to_string(c) + "-server-" + std::to_string(s);
      sc.owner = resolve(graph, config.servers[s].owner);
      sc.capacity = config.servers[s].capacity;
      sc.endpoint = {0x14000000u + (static_cast<std::uint32_t>(c) << 12) +
                         static_cast<std::uint32_t>(s),
                     80};
      cluster->servers.push_back(
          std::make_unique<nodes::Server>(&sim, &cluster->metrics, sc));
      cluster->pool.add(cluster->servers.back().get());
    }

    coord::ControlPlaneConfig cp_config;
    cp_config.window = config.window;
    // The member slices the GLOBAL plan: 1/clusters of it is this cluster's
    // share, the same conservative split the multi-redirector mode uses.
    cp_config.redirector_count = config.clusters;
    cp_config.stale_policy = config.stale_policy;
    cp_config.spike_replan_limit = config.spike_replan_limit;
    nodes::Metrics* metrics = &cluster->metrics;
    cp_config.on_spike_replan = [metrics] { metrics->on_spike_replan(); };
    cp_config.on_replan_suppressed = [metrics] {
      metrics->on_replan_suppressed();
    };
    cluster->plane = std::make_unique<coord::ControlPlane>(
        cluster->scheduler.get(), cp_config);
    coord::ControlPlane::Member* member = cluster->plane->add_member();

    nodes::L4Redirector::Config rc;
    rc.name = "l4-c" + std::to_string(c);
    rc.net_delay = config.net_delay;
    rc.weighted_admission = config.weighted_admission;
    rc.trace = config.trace_windows ? &cluster->trace : nullptr;
    cluster->redirector = std::make_unique<nodes::L4Redirector>(
        &sim, &cluster->metrics, &cluster->pool, member, rc);
    clusters.push_back(std::move(cluster));
  }

  // Phase 2: the star exchange across clusters — one sampling task per
  // domain, created in cluster order.
  coord::ShardedStarTransport::Options star_options;
  star_options.period =
      config.tree_period > 0 ? config.tree_period : config.window;
  star_options.link_delay = config.tree_link_delay;
  star_options.first_round = config.window / 2;
  coord::ShardedStarTransport star(&sharded, n, star_options);
  for (std::size_t c = 0; c < config.clusters; ++c) {
    coord::ControlPlane::Member* member = clusters[c]->plane->member(0);
    star.attach(
        c, [member] { return member->local_demand(); },
        [member](std::uint64_t round, const std::vector<double>& aggregate) {
          member->receive_global(round, aggregate);
        });
  }
  star.start();

  // Phase 3: window drivers (after the snapshot task, as in the classic
  // path — creation order fixes equal-time event ordering, D4).
  for (std::size_t c = 0; c < config.clusters; ++c) {
    clusters[c]->driver = std::make_unique<coord::SimWindowDriver>(
        &sharded.domain(c), clusters[c]->plane.get());
    clusters[c]->driver->start(config.window);
  }

  // Phase 4: clients and probes. RNG streams split per cluster first, then
  // per machine, so every cluster's workload is an independent deterministic
  // stream whatever the lane assignment.
  for (std::size_t c = 0; c < config.clusters; ++c) {
    sim::Simulator& sim = sharded.domain(c);
    Cluster& cluster = *clusters[c];
    Rng cluster_rng = master.split();
    for (std::size_t i = 0; i < config.clients.size(); ++i) {
      const ClientSpec& spec = config.clients[i];
      SHAREGRID_EXPECTS(spec.redirector == 0);
      for (std::size_t rep = 0; rep < config.client_scale; ++rep) {
        nodes::ClientMachine::Config cc;
        cc.name = "c" + std::to_string(c) + "-" + spec.name +
                  (config.client_scale == 1 ? ""
                                            : "#" + std::to_string(rep));
        cc.principal = resolve(graph, spec.principal);
        cc.index = cluster.clients.size();
        cc.rate = spec.rate;
        cc.retry_delay_sec = config.retry_delay_sec;
        cc.max_outstanding = config.max_outstanding;
        cc.exponential_arrivals = config.exponential_arrivals;
        cc.net_delay = config.net_delay;
        cc.weighted_requests = config.weighted_admission;
        cluster.clients.push_back(std::make_unique<nodes::ClientMachine>(
            &sim, &cluster.metrics, cluster.redirector.get(), cc,
            cluster_rng.split(), &reply_sizes));
        nodes::ClientMachine* machine = cluster.clients.back().get();
        for (const auto& [start, end] : spec.active_sec) {
          SHAREGRID_EXPECTS(end > start);
          sim.schedule_at(seconds(start),
                          [machine] { machine->set_active(true); });
          sim.schedule_at(seconds(end),
                          [machine] { machine->set_active(false); });
        }
      }
    }
    cluster.backlog_probe = std::make_unique<sim::PeriodicTask>(
        &sim, 500 * kMillisecond, 500 * kMillisecond, [&cluster] {
          double worst = 0.0;
          for (const auto& s : cluster.servers)
            worst = std::max(worst, s->backlog_seconds());
          cluster.backlog.add(worst);
        });
  }

  // --- Run ----------------------------------------------------------------
  sharded.run_until(seconds(config.duration_sec));
  star.stop();
  for (auto& cluster : clusters) {
    cluster->driver->stop();
    cluster->backlog_probe->cancel();
  }

  // --- Merge + report ------------------------------------------------------
  // Per-cluster hubs fold into one global report in cluster index order —
  // the fixed order keeps the floating-point latency combination (and so
  // the whole result) reproducible and shard-count-invariant.
  nodes::Metrics merged(n);
  for (const auto& cluster : clusters) merged.merge_from(cluster->metrics);
  ScenarioResult result{.principal_names = {},
                        .metrics = std::move(merged),
                        .phase_reports = {},
                        .total_admitted = 0,
                        .total_rejected_or_queued = 0,
                        .coordination_messages = star.messages_sent(),
                        .server_backlog_sec = {},
                        .window_trace = nodes::WindowTrace()};
  for (const auto& cluster : clusters) {
    result.total_admitted += cluster->redirector->admitted();
    for (core::PrincipalId p = 0; p < n; ++p)
      result.total_rejected_or_queued += cluster->redirector->queue_length(p);
    result.server_backlog_sec.merge_from(cluster->backlog);
    for (const auto& row : cluster->trace.rows())
      result.window_trace.record(row);
  }
  for (core::PrincipalId p = 0; p < n; ++p)
    result.principal_names.push_back(graph.name(p));
  for (const auto& phase : config.phases) {
    PhaseReport report;
    report.name = phase.name;
    report.start_sec = phase.start_sec;
    report.end_sec = phase.end_sec;
    for (core::PrincipalId p = 0; p < n; ++p) {
      report.served_rate.push_back(result.metrics.served(p).average_rate(
          seconds(phase.start_sec), seconds(phase.end_sec)));
      report.offered_rate.push_back(result.metrics.offered(p).average_rate(
          seconds(phase.start_sec), seconds(phase.end_sec)));
    }
    result.phase_reports.push_back(std::move(report));
  }

  // Serial-as-oracle: in audit builds every parallel run re-runs with one
  // lane and must match bitwise. The rerun has sim_shards == 1, so it does
  // not recurse.
  if (config.sim_shards > 1) {
    SHAREGRID_AUDIT_HOOK([&] {
      ScenarioConfig oracle = config;
      oracle.sim_shards = 1;
      audit::audit_shard_merge_match(result, run_clustered_scenario(oracle));
    }());
  }
  return result;
}

}  // namespace sharegrid::experiments
