#include "sim/timing_wheel.hpp"

#include <string>

#include "audit/invariant_auditor.hpp"

namespace sharegrid::sim {

void TimingWheel::place(EventNode* node) {
  const int level = level_for(node->time, cursor_);
  if (level >= kLevels) {
    insert_overflow(node);
    return;
  }
  const std::size_t index = slot_index(node->time, level);
  append(slots_[level][index], node);
  occupied_[level] |= std::uint64_t{1} << index;
}

void TimingWheel::insert_overflow(EventNode* node) {
  append(overflow_, node);
  if (node->time < overflow_min_) overflow_min_ = node->time;
}

SimTime TimingWheel::deep_min() const {
  for (int level = 1; level < kLevels; ++level) {
    if (occupied_[level] == 0) continue;
    const int shift = kSlotBits * level;
    const SimTime span_mask =
        (static_cast<SimTime>(kSlots) << shift) - 1;  // level bucket group
    return (cursor_ & ~span_mask) +
           (static_cast<SimTime>(std::countr_zero(occupied_[level])) << shift);
  }
  return overflow_min_;
}

void TimingWheel::cascade(int level, std::size_t index) {
  Slot& slot = slots_[level][index];
  EventNode* node = slot.head;
  slot.head = nullptr;
  slot.tail = nullptr;
  occupied_[level] &= ~(std::uint64_t{1} << index);
  // Re-filing in list order keeps equal-time events in seq (FIFO) order:
  // every node lands at a strictly lower level because the cursor now
  // shares this bucket's high bits with each deadline.
  while (node != nullptr) {
    EventNode* next = node->next;
    place(node);
    node = next;
  }
}

void TimingWheel::rescan_overflow() {
  EventNode* node = overflow_.head;
  overflow_.head = nullptr;
  overflow_.tail = nullptr;
  overflow_min_ = kNoEvent;
  while (node != nullptr) {
    EventNode* next = node->next;
    if ((node->time >> kHorizonBits) == (cursor_ >> kHorizonBits)) {
      place(node);
    } else {
      append(overflow_, node);
      if (node->time < overflow_min_) overflow_min_ = node->time;
    }
    node = next;
  }
}

void TimingWheel::advance_to(SimTime t) {
  SHAREGRID_EXPECTS(t >= cursor_);
  if (t == cursor_) return;
  const SimTime previous = cursor_;
  cursor_ = t;
  if (overflow_.head != nullptr &&
      (previous >> kHorizonBits) != (t >> kHorizonBits)) {
    rescan_overflow();
  }
  // Only the bucket containing t can hold work this move exposes: buckets
  // behind it would hold past events (impossible — the caller never
  // advances past the earliest pending event) and buckets ahead are
  // untouched. A cascaded node never lands in t's bucket at a lower level
  // (its slot index differs from t's at the landing level by construction),
  // so one cascade per level suffices; top-down keeps the walk order
  // deterministic.
  for (int level = kLevels - 1; level >= 1; --level) {
    if (occupied_[level] == 0) continue;
    const std::size_t index = slot_index(t, level);
    if ((occupied_[level] >> index) & 1u) cascade(level, index);
  }
}

SimTime TimingWheel::next_due(SimTime limit) {
  for (;;) {
    if (occupied_[0] != 0) {
      // Level-0 slots bucket single microseconds of the cursor's current
      // 64-us span, so the earliest occupied slot IS the event time — and
      // level 0, when occupied, always holds the global minimum (deeper
      // starts lie at or past the cursor's 4096-us bucket boundary).
      const SimTime best = (cursor_ & ~static_cast<SimTime>(kSlots - 1)) +
                           std::countr_zero(occupied_[0]);
      return best <= limit ? best : kNoEvent;
    }
    if (size_ == 0) return kNoEvent;
    // A bucket start (or the overflow minimum), a lower bound on every
    // event in it: advance there and cascade, then look again.
    const SimTime best = deep_min();
    if (best > limit) return kNoEvent;
    advance_to(best);
  }
}

EventNode* TimingWheel::pop_at(SimTime t) {
  // Same 64-us span as the cursor, so no bucket boundary is crossed and no
  // cascade is needed.
  SHAREGRID_EXPECTS(t >= cursor_);
  SHAREGRID_EXPECTS((t ^ cursor_) < static_cast<SimTime>(kSlots));
  cursor_ = t;
  const std::size_t index = slot_index(t, 0);
  Slot& slot = slots_[0][index];
  EventNode* node = slot.head;
  SHAREGRID_EXPECTS(node != nullptr && node->time == t);
  slot.head = node->next;
  if (slot.head == nullptr) {
    slot.tail = nullptr;
    occupied_[0] &= ~(std::uint64_t{1} << index);
  }
  node->next = nullptr;
  --size_;
  return node;
}

void TimingWheel::audit_consistency(std::uint64_t inserted,
                                    std::uint64_t popped) const {
  std::uint64_t pending = 0;
  for (int level = 0; level < kLevels; ++level) {
    for (std::size_t index = 0; index < kSlots; ++index) {
      const EventNode* node = slots_[level][index].head;
      audit::require(
          ((occupied_[level] >> index) & 1u) == (node != nullptr ? 1u : 0u),
          "sim.wheel-bitmap", [&] {
            return "level " + std::to_string(level) + " slot " +
                   std::to_string(index) +
                   " occupancy bit disagrees with its list; a cascade "
                   "cleared or set the wrong bit";
          });
      const EventNode* prev = nullptr;
      for (; node != nullptr; node = node->next) {
        ++pending;
        audit::require(node->time >= cursor_, "sim.wheel-past-event", [&] {
          return "event seq " + std::to_string(node->seq) + " at t=" +
                 std::to_string(node->time) + " is behind the cursor " +
                 std::to_string(cursor_) + "; it was skipped, not executed";
        });
        audit::require(level_for(node->time, cursor_) == level &&
                           slot_index(node->time, level) == index,
                       "sim.wheel-misfiled-event", [&] {
                         return "event seq " + std::to_string(node->seq) +
                                " at t=" + std::to_string(node->time) +
                                " sits at level " + std::to_string(level) +
                                " slot " + std::to_string(index) +
                                " but belongs elsewhere for cursor " +
                                std::to_string(cursor_) +
                                "; a cascade was skipped";
                       });
        audit::require(prev == nullptr || prev->time != node->time ||
                           prev->seq < node->seq,
                       "sim.wheel-fifo-order", [&] {
                         return "equal-time events seq " +
                                std::to_string(prev->seq) + " and " +
                                std::to_string(node->seq) +
                                " are out of scheduling order at t=" +
                                std::to_string(node->time) +
                                "; a cascade reordered a slot list";
                       });
        prev = node;
      }
    }
  }
  for (const EventNode* node = overflow_.head; node != nullptr;
       node = node->next) {
    ++pending;
    audit::require((node->time >> kHorizonBits) != (cursor_ >> kHorizonBits),
                   "sim.wheel-overflow-stale", [&] {
                     return "overflow event seq " + std::to_string(node->seq) +
                            " at t=" + std::to_string(node->time) +
                            " is inside the wheel horizon for cursor " +
                            std::to_string(cursor_) +
                            "; a horizon crossing skipped the rescan";
                   });
  }
  audit::audit_sim_event_conservation(inserted, popped, size_, pending);
}

}  // namespace sharegrid::sim
