#include "sim/sharded_simulator.hpp"

#include <algorithm>
#include <utility>

#include "audit/invariant_auditor.hpp"
#include "util/metrics_registry.hpp"

namespace sharegrid::sim {

namespace {
util::MetricCounter& epochs_counter() {
  static util::MetricCounter& counter = util::global_metrics().counter(
      "sim.epochs", "lookahead epochs crossed by sharded runs");
  return counter;
}
util::MetricCounter& cross_posts_counter() {
  static util::MetricCounter& counter = util::global_metrics().counter(
      "sim.cross_posts", "cross-domain messages exchanged at barriers");
  return counter;
}
}  // namespace

ShardedSimulator::ShardedSimulator(std::size_t domains, Options options)
    : options_(options),
      outboxes_(domains),
      // `shards` counts lanes including the caller; run_indexed() has the
      // caller participate, so the pool itself holds shards - 1 threads.
      pool_(options.shards > 0 ? options.shards - 1 : 0) {
  SHAREGRID_EXPECTS(domains >= 1);
  SHAREGRID_EXPECTS(options.lookahead > 0);
  SHAREGRID_EXPECTS(options.shards >= 1);
  domains_.reserve(domains);
  for (std::size_t d = 0; d < domains; ++d)
    domains_.push_back(std::make_unique<Simulator>());
  util::global_metrics()
      .gauge("sim.shards", "parallel lanes of the sharded simulator")
      .set(static_cast<std::int64_t>(options.shards));
}

void ShardedSimulator::post(std::size_t src, std::size_t dst, SimTime when,
                            std::function<void()> fn) {
  SHAREGRID_EXPECTS(src < domains_.size());
  SHAREGRID_EXPECTS(dst < domains_.size());
  SHAREGRID_EXPECTS(fn != nullptr);
  // The conservative-lookahead contract, checked in EVERY build: a message
  // arriving before the running epoch's end could influence events the
  // destination domain has already executed this epoch — the declared link
  // delay (lookahead) was larger than the delay actually used.
  SHAREGRID_EXPECTS(when >= epoch_end_ &&
                    "cross-domain post violates the declared lookahead");
  posts_sent_.fetch_add(1, std::memory_order_relaxed);
  outboxes_[src].push_back(Pending{dst, when, std::move(fn)});
}

void ShardedSimulator::run_until(SimTime deadline) {
  SHAREGRID_EXPECTS(deadline >= now_);
  const std::uint64_t epochs_before = epochs_;
  const std::uint64_t delivered_before = posts_delivered_;
  while (now_ < deadline) {
    const SimTime target = std::min<SimTime>(now_ + options_.lookahead,
                                             deadline);
    epoch_end_ = target;
    // Deliver messages collected at the previous barrier (and setup-time
    // posts on the first epoch) before any domain advances: source domains
    // in index order, emission order within a source. This order — and
    // nothing about lanes or shard count — fixes every destination event's
    // sequence number, which is what makes shard counts interchangeable.
    for (std::vector<Pending>& outbox : outboxes_) {
      for (Pending& message : outbox) {
        SHAREGRID_ASSERT(message.when >= domains_[message.dst]->now());
        domains_[message.dst]->schedule_at(message.when,
                                           std::move(message.fn));
        ++posts_delivered_;
      }
      outbox.clear();
    }
    SHAREGRID_AUDIT_HOOK(audit_event_conservation());
    // Domains share no mutable state, so each lane runs its epoch
    // independently; a contract violation inside any domain surfaces here
    // (lowest domain index wins, matching the serial order).
    pool_.run_indexed(domains_.size(), [this, target](std::size_t d) {
      domains_[d]->run_until(target);
    });
    now_ = target;
    ++epochs_;
  }
  epoch_end_ = now_;
  epochs_counter().add(epochs_ - epochs_before);
  cross_posts_counter().add(posts_delivered_ - delivered_before);
  SHAREGRID_AUDIT_HOOK(audit_event_conservation());
}

std::uint64_t ShardedSimulator::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& domain : domains_) total += domain->events_processed();
  return total;
}

void ShardedSimulator::audit_event_conservation() const {
  std::uint64_t buffered = 0;
  for (const std::vector<Pending>& outbox : outboxes_) buffered += outbox.size();
  const std::uint64_t sent = posts_sent_.load(std::memory_order_relaxed);
  if (sent != posts_delivered_ + buffered) {
    throw ContractViolation(
        "[audit] shard.event-conservation: " + std::to_string(sent) +
        " cross-domain posts sent but " + std::to_string(posts_delivered_) +
        " delivered + " + std::to_string(buffered) +
        " buffered; a lane dropped or duplicated a barrier message and "
        "domains no longer agree on the event stream");
  }
}

}  // namespace sharegrid::sim
