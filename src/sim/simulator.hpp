// Deterministic discrete-event simulation engine.
//
// Substitute for the paper's physical testbed (DESIGN.md §4): every node —
// client machines, redirectors, servers, combining-tree links — advances by
// scheduling callbacks on one shared event store. Events at equal timestamps
// fire in scheduling order (a stable tie-break), so runs are bit-reproducible
// (DESIGN.md D4).
//
// The store is a hierarchical timing wheel (timing_wheel.hpp) rather than a
// binary heap: O(1) schedule and pop instead of O(log n), and — together
// with the small-buffer Callback (callback.hpp) and a freelist of recycled
// event nodes — zero allocations per event in the steady state. Design
// notes and measurements: docs/sim-performance.md, DESIGN.md D8.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/callback.hpp"
#include "sim/timing_wheel.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace sharegrid::sim {

/// Single-threaded event-driven simulator.
class Simulator {
 public:
  using Callback = sim::Callback;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules @p fn to run at absolute time @p t (>= now()). Raw callables
  /// are constructed directly into the event node's inline buffer — no
  /// intermediate Callback and no relocation on the way in.
  template <class F>
  void schedule_at(SimTime t, F&& fn) {
    SHAREGRID_EXPECTS(t >= now_);
    EventNode* node = free_;
    if (node == nullptr) [[unlikely]] node = grow();
    free_ = node->next;
    node->next = nullptr;
    node->time = t;
    node->seq = next_seq_++;
    node->fn = std::forward<F>(fn);
    SHAREGRID_EXPECTS(node->fn != nullptr);
    wheel_.insert(node);
  }

  /// Schedules @p fn to run @p delay after now().
  template <class F>
  void schedule_after(SimDuration delay, F&& fn) {
    SHAREGRID_EXPECTS(delay >= 0);
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Runs events until the store empties or simulated time would pass
  /// @p deadline; leaves now() == deadline.
  void run_until(SimTime deadline);

  /// Runs until the event store is empty; leaves now() at the last event.
  void run_all();

  /// True if no events remain.
  bool idle() const { return wheel_.empty(); }

  /// Total events executed so far (for the micro benches).
  std::uint64_t events_processed() const { return events_processed_; }

 private:
  /// Nodes are pool-allocated in chunks and recycled through a freelist, so
  /// the steady-state loop never touches the heap.
  static constexpr std::size_t kChunk = 64;

  /// Refills the freelist with a fresh chunk; returns its first node.
  EventNode* grow();
  void release(EventNode* node) {
    node->next = free_;
    free_ = node;
  }
  /// Runs the node's callback in place (a follow-up schedule draws a
  /// different node from the freelist), then recycles it.
  void dispatch(EventNode* node);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  TimingWheel wheel_;
  EventNode* free_ = nullptr;
  std::vector<std::unique_ptr<EventNode[]>> arena_;
};

/// Helper that reruns a callback at a fixed period until cancelled; the
/// backbone of window schedulers and combining-tree rounds.
class PeriodicTask {
 public:
  /// Starts firing at @p start and then every @p period. The callback runs
  /// while the task is live; destroying or cancel()ing stops future firings.
  PeriodicTask(Simulator* sim, SimTime start, SimDuration period,
               std::function<void()> body);
  ~PeriodicTask() { cancel(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void cancel() { *alive_ = false; }

 private:
  void arm(SimTime when);

  Simulator* sim_;
  SimDuration period_;
  std::function<void()> body_;  // stored once; rearming never re-wraps it
  std::shared_ptr<bool> alive_;
};

}  // namespace sharegrid::sim
