// Deterministic discrete-event simulation engine.
//
// Substitute for the paper's physical testbed (DESIGN.md §4): every node —
// client machines, redirectors, servers, combining-tree links — advances by
// scheduling callbacks on one shared event queue. Events at equal timestamps
// fire in scheduling order (a stable tie-break), so runs are bit-reproducible
// (DESIGN.md D4).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace sharegrid::sim {

/// Single-threaded event-driven simulator.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules @p fn to run at absolute time @p t (>= now()).
  void schedule_at(SimTime t, Callback fn);

  /// Schedules @p fn to run @p delay after now().
  void schedule_after(SimDuration delay, Callback fn) {
    SHAREGRID_EXPECTS(delay >= 0);
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue empties or simulated time would pass
  /// @p deadline; leaves now() == deadline.
  void run_until(SimTime deadline);

  /// Runs until the event queue is empty.
  void run_all();

  /// True if no events remain.
  bool idle() const { return queue_.empty(); }

  /// Total events executed so far (for the micro benches).
  std::uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // stable FIFO tie-break at equal times
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Helper that reruns a callback at a fixed period until cancelled; the
/// backbone of window schedulers and combining-tree rounds.
class PeriodicTask {
 public:
  /// Starts firing at @p start and then every @p period. The callback runs
  /// while the task is live; destroying or cancel()ing stops future firings.
  PeriodicTask(Simulator* sim, SimTime start, SimDuration period,
               std::function<void()> body);
  ~PeriodicTask() { cancel(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void cancel() { *alive_ = false; }

 private:
  void arm(SimTime when);

  Simulator* sim_;
  SimDuration period_;
  std::function<void()> body_;
  std::shared_ptr<bool> alive_;
};

}  // namespace sharegrid::sim
