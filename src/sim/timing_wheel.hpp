// Hierarchical timing wheel: the event store behind sim::Simulator.
//
// Eight levels of 64 slots each; level L buckets SimTime bits
// [6L, 6L+6), so the wheel spans 2^48 microseconds (~8.9 simulated years)
// before events spill into an overflow list. An event lives at the level of
// the highest bit in which its deadline still differs from the cursor
// ("how far out is it"), and cascades one or more levels down whenever the
// cursor enters its bucket — by the time it reaches level 0 its slot holds
// exactly one timestamp, so execution needs no comparisons at all.
//
// Determinism (DESIGN.md D4/D8): slot lists are appended in scheduling
// order and cascades re-insert in list order. Because an event's level is a
// non-increasing function of the cursor (the highest differing bit can only
// fall as the cursor closes in), an earlier-scheduled event can never be
// overtaken by a later-scheduled one at the same timestamp — equal-time
// FIFO order is structural, not enforced by comparisons. The audit build
// re-verifies this plus event conservation after every cascade.
//
// The wheel stores raw EventNode pointers and never allocates; nodes are
// owned, pooled, and recycled by the Simulator.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "sim/callback.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace sharegrid::sim {

/// One scheduled event. Pool-allocated by the Simulator, threaded through
/// wheel slot lists (or the freelist) via `next`.
struct EventNode {
  SimTime time = 0;
  std::uint64_t seq = 0;  ///< scheduling order; audits equal-time FIFO
  EventNode* next = nullptr;
  Callback fn;
};

/// Hierarchical timing wheel over EventNodes (see file comment).
class TimingWheel {
 public:
  static constexpr int kSlotBits = 6;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;  // 64
  static constexpr int kLevels = 8;
  static constexpr int kHorizonBits = kSlotBits * kLevels;  // 48
  static constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// The wheel's notion of current time; insert() requires time >= cursor.
  SimTime cursor() const { return cursor_; }

  /// Files @p node (time >= cursor(); unchecked — the Simulator validates
  /// against its clock, which never trails the cursor) into its level/slot.
  /// O(1).
  void insert(EventNode* node) {
    const int level = level_for(node->time, cursor_);
    if (level < kLevels) [[likely]] {
      const std::size_t index = slot_index(node->time, level);
      append(slots_[level][index], node);
      occupied_[level] |= std::uint64_t{1} << index;
    } else {
      insert_overflow(node);
    }
    ++size_;
  }

  /// Pops the earliest event if it is due at or before @p limit, advancing
  /// the cursor to its time; returns nullptr otherwise (the cursor then
  /// never passes min(limit, earliest event time)). The hot path: when
  /// level 0 is occupied its earliest slot is provably ahead of every
  /// deeper bucket and the overflow list, so no scan or cascade runs.
  EventNode* pop_next(SimTime limit) {
    for (;;) {
      if (occupied_[0] != 0) [[likely]] {
        const int slot = std::countr_zero(occupied_[0]);
        const SimTime t = (cursor_ & ~static_cast<SimTime>(kSlots - 1)) + slot;
        if (t > limit) return nullptr;
        cursor_ = t;
        Slot& s = slots_[0][static_cast<std::size_t>(slot)];
        EventNode* node = s.head;
        s.head = node->next;
        if (s.head == nullptr) {
          s.tail = nullptr;
          occupied_[0] &= occupied_[0] - 1;  // clear the lowest set bit
        }
        node->next = nullptr;
        --size_;
        return node;
      }
      if (size_ == 0) return nullptr;
      const SimTime best = deep_min();
      if (best > limit) return nullptr;
      advance_to(best);  // cascades; the next pass finds level 0 occupied
    }
  }

  /// Returns the earliest pending event time, or kNoEvent if none is due at
  /// or before @p limit. Cascades internally and may advance the cursor up
  /// to (never past) min(limit, earliest event time).
  SimTime next_due(SimTime limit);

  /// Pops the earliest event at time @p t, which the immediately preceding
  /// next_due() call must have returned; advances the cursor to @p t.
  EventNode* pop_at(SimTime t);

  /// Advances the cursor to @p t, which must not pass the earliest pending
  /// event; re-files events whose bucket the cursor enters.
  void advance_to(SimTime t);

  /// Walks every slot and the overflow list, checking event conservation
  /// (inserted == popped + pending) and that each node sits exactly where
  /// insert() would place it for the current cursor, with slot lists in
  /// seq (FIFO) order per timestamp. O(size); audit builds only.
  void audit_consistency(std::uint64_t inserted, std::uint64_t popped) const;

 private:
  struct Slot {
    EventNode* head = nullptr;
    EventNode* tail = nullptr;
  };

  static int level_for(SimTime time, SimTime cursor) {
    const auto delta = static_cast<std::uint64_t>(time ^ cursor);
    if (delta == 0) return 0;
    return (63 - std::countl_zero(delta)) / kSlotBits;
  }

  static std::size_t slot_index(SimTime time, int level) {
    return static_cast<std::size_t>(time >> (kSlotBits * level)) &
           (kSlots - 1);
  }

  void append(Slot& slot, EventNode* node) {
    node->next = nullptr;
    if (slot.tail != nullptr) {
      slot.tail->next = node;
    } else {
      slot.head = node;
    }
    slot.tail = node;
  }

  /// Files a node without touching size_ (shared by insert and cascades).
  void place(EventNode* node);

  /// Appends to the overflow list, maintaining overflow_min_.
  void insert_overflow(EventNode* node);

  /// Earliest bucket start among levels 1..7 (or the overflow minimum when
  /// the wheel proper is empty). The lowest occupied level always holds the
  /// minimum: a level-L start shares the cursor's bits above 6(L+1) while
  /// every deeper start sits at or past that boundary, so no cross-level
  /// comparison is needed. Callers guarantee size_ > 0 and level 0 empty.
  SimTime deep_min() const;

  /// Detaches level/slot and re-files every node against the current
  /// cursor; each lands at a strictly lower level (or is executed next).
  void cascade(int level, std::size_t index);

  /// Moves overflow events whose 2^48-group the cursor has entered into the
  /// wheel. Called when the cursor crosses a horizon boundary.
  void rescan_overflow();

  SimTime cursor_ = 0;
  std::size_t size_ = 0;
  std::uint64_t occupied_[kLevels] = {};  // bitmap per level
  Slot slots_[kLevels][kSlots];
  Slot overflow_;                  // beyond-horizon events, in seq order
  SimTime overflow_min_ = kNoEvent;
};

}  // namespace sharegrid::sim
