#include "sim/simulator.hpp"

#include <memory>
#include <utility>

namespace sharegrid::sim {

void Simulator::schedule_at(SimTime t, Callback fn) {
  SHAREGRID_EXPECTS(t >= now_);
  SHAREGRID_EXPECTS(fn != nullptr);
  queue_.push({t, next_seq_++, std::move(fn)});
}

void Simulator::run_until(SimTime deadline) {
  SHAREGRID_EXPECTS(deadline >= now_);
  while (!queue_.empty() && queue_.top().time <= deadline) {
    // Copy out before pop: the callback may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.fn();
  }
  now_ = deadline;
}

void Simulator::run_all() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.fn();
  }
}

PeriodicTask::PeriodicTask(Simulator* sim, SimTime start, SimDuration period,
                           std::function<void()> body)
    : sim_(sim),
      period_(period),
      body_(std::move(body)),
      alive_(std::make_shared<bool>(true)) {
  SHAREGRID_EXPECTS(sim != nullptr);
  SHAREGRID_EXPECTS(period > 0);
  SHAREGRID_EXPECTS(body_ != nullptr);
  arm(start);
}

void PeriodicTask::arm(SimTime when) {
  // The shared alive flag lets a cancelled/destroyed task leave its pending
  // event harmlessly in the queue.
  sim_->schedule_at(when, [this, alive = alive_, when] {
    if (!*alive) return;
    body_();
    if (*alive) arm(when + period_);
  });
}

}  // namespace sharegrid::sim
