#include "sim/simulator.hpp"

#include <utility>

#include "audit/invariant_auditor.hpp"
#include "util/metrics_registry.hpp"

namespace sharegrid::sim {

namespace {
/// Process-wide event counter (util/metrics_registry.hpp). Deltas are
/// flushed once per run_until/run_all call, not per event, so sharded lanes
/// don't contend on the counter's cache line in the dispatch loop.
util::MetricCounter& events_counter() {
  static util::MetricCounter& counter = util::global_metrics().counter(
      "sim.events", "events dispatched across all simulators");
  return counter;
}
}  // namespace

EventNode* Simulator::grow() {
  arena_.push_back(std::make_unique<EventNode[]>(kChunk));
  EventNode* chunk = arena_.back().get();
  for (std::size_t i = 0; i < kChunk; ++i) {
    chunk[i].next = free_;
    free_ = &chunk[i];
  }
  return free_;
}

void Simulator::dispatch(EventNode* node) {
  // Invoke in place: the closure never moves after schedule_at constructed
  // it. The node stays off the freelist during the call, so a follow-up
  // schedule cannot alias the storage still executing.
  ++events_processed_;
  node->fn();
  node->fn.reset();
  release(node);
}

void Simulator::run_until(SimTime deadline) {
  SHAREGRID_EXPECTS(deadline >= now_);
  const std::uint64_t before = events_processed_;
  while (EventNode* node = wheel_.pop_next(deadline)) {
    SHAREGRID_AUDIT_HOOK(audit::audit_sim_clock_monotone(now_, node->time));
    now_ = node->time;
    dispatch(node);
  }
  events_counter().add(events_processed_ - before);
  now_ = deadline;
  // Remaining events are strictly later than the deadline, so the cursor may
  // move all the way up without passing any of them.
  wheel_.advance_to(deadline);
  SHAREGRID_AUDIT_HOOK(wheel_.audit_consistency(next_seq_, events_processed_));
}

void Simulator::run_all() {
  const std::uint64_t before = events_processed_;
  while (EventNode* node = wheel_.pop_next(TimingWheel::kNoEvent)) {
    SHAREGRID_AUDIT_HOOK(audit::audit_sim_clock_monotone(now_, node->time));
    now_ = node->time;
    dispatch(node);
  }
  events_counter().add(events_processed_ - before);
  SHAREGRID_AUDIT_HOOK(wheel_.audit_consistency(next_seq_, events_processed_));
}

PeriodicTask::PeriodicTask(Simulator* sim, SimTime start, SimDuration period,
                           std::function<void()> body)
    : sim_(sim),
      period_(period),
      body_(std::move(body)),
      alive_(std::make_shared<bool>(true)) {
  SHAREGRID_EXPECTS(sim != nullptr);
  SHAREGRID_EXPECTS(period > 0);
  SHAREGRID_EXPECTS(body_ != nullptr);
  arm(start);
}

void PeriodicTask::arm(SimTime when) {
  // The shared alive flag lets a cancelled/destroyed task leave its pending
  // event harmlessly in the queue. The closure is {this, shared_ptr copy,
  // SimTime} = 32 bytes — inside Callback's inline buffer, so each firing
  // rearms without re-wrapping body_ or touching the heap.
  sim_->schedule_at(when, [this, alive = alive_, when] {
    if (!*alive) return;
    body_();
    if (*alive) arm(when + period_);
  });
}

}  // namespace sharegrid::sim
