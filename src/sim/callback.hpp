// Allocation-free callback type for the event engine.
//
// std::function pays a heap allocation for any capture larger than its tiny
// internal buffer, and the old simulator paid that price once per scheduled
// event. sim::Callback is a move-only callable wrapper with 48 bytes of
// inline storage — enough for every closure the node models schedule (a few
// pointers plus a SimTime) — that only falls back to the heap for oversized
// or throwing-move captures. Together with the freelist-recycled event nodes
// in timing_wheel.hpp this makes the steady-state event loop allocation-free
// (docs/sim-performance.md, DESIGN.md D8).
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/assert.hpp"

namespace sharegrid::sim {

/// Move-only `void()` callable with small-buffer optimization.
class Callback {
 public:
  /// Inline capture budget. Sized so the common closures — `this` plus a
  /// shared_ptr liveness flag plus a timestamp, or a std::function copy —
  /// stay allocation-free, while an EventNode still packs into one cache
  /// line pair.
  static constexpr std::size_t kInlineBytes = 48;

  Callback() noexcept = default;
  Callback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <class F,
            std::enable_if_t<!std::is_same_v<std::decay_t<F>, Callback> &&
                                 std::is_invocable_r_v<void, std::decay_t<F>&>,
                             int> = 0>
  Callback(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  Callback(Callback&& other) noexcept { move_from(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  /// Assigning a raw callable constructs it directly in the buffer — no
  /// intermediate Callback, no relocation. This is the per-event schedule
  /// path: the closure materializes once, in the event node.
  template <class F,
            std::enable_if_t<!std::is_same_v<std::decay_t<F>, Callback> &&
                                 std::is_invocable_r_v<void, std::decay_t<F>&>,
                             int> = 0>
  Callback& operator=(F&& fn) {
    reset();
    emplace(std::forward<F>(fn));
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  /// Invokes the wrapped callable; the callback must be non-empty.
  void operator()() {
    SHAREGRID_EXPECTS(ops_ != nullptr);
    ops_->invoke(storage_);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  friend bool operator==(const Callback& cb, std::nullptr_t) noexcept {
    return cb.ops_ == nullptr;
  }

  /// Destroys the wrapped callable, leaving the callback empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs into dst from src and destroys src's callable.
    // nullptr means the bytes may simply be copied (trivially relocatable).
    void (*relocate)(void* dst, void* src) noexcept;
    // nullptr means trivially destructible: nothing to do.
    void (*destroy)(void* storage) noexcept;
  };

  template <class F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= kInlineBytes &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <class F>
  static constexpr Ops kInlineOps = {
      [](void* storage) { (*std::launder(reinterpret_cast<F*>(storage)))(); },
      std::is_trivially_copyable_v<F> && std::is_trivially_destructible_v<F>
          ? nullptr  // raw byte copy suffices; move_from memcpys the buffer
          : +[](void* dst, void* src) noexcept {
              F* from = std::launder(reinterpret_cast<F*>(src));
              ::new (dst) F(std::move(*from));
              from->~F();
            },
      std::is_trivially_destructible_v<F>
          ? nullptr
          : +[](void* storage) noexcept {
              std::launder(reinterpret_cast<F*>(storage))->~F();
            }};

  template <class F>
  static constexpr Ops kHeapOps = {
      [](void* storage) {
        (**std::launder(reinterpret_cast<F**>(storage)))();
      },
      nullptr,  // the stored pointer relocates by byte copy
      [](void* storage) noexcept {
        delete *std::launder(reinterpret_cast<F**>(storage));
      }};

  template <class F>
  void emplace(F&& fn) {
    using Decayed = std::decay_t<F>;
    if constexpr (fits_inline<Decayed>()) {
      ::new (static_cast<void*>(storage_)) Decayed(std::forward<F>(fn));
      ops_ = &kInlineOps<Decayed>;
    } else {
      ::new (static_cast<void*>(storage_))
          Decayed*(new Decayed(std::forward<F>(fn)));
      ops_ = &kHeapOps<Decayed>;
    }
  }

  void move_from(Callback& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.ops_->relocate != nullptr) {
        other.ops_->relocate(storage_, other.storage_);
      } else {
        std::memcpy(storage_, other.storage_, kInlineBytes);
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace sharegrid::sim
