// Conservatively synchronized multi-domain simulation (DESIGN.md D13).
//
// The single-threaded Simulator tops out at one core; the ROADMAP's
// million-client scenarios partition naturally by cluster, with the only
// inter-cluster traffic being combining-tree snapshot messages whose links
// have a declared delay. That delay is classic conservative-PDES lookahead
// (Chandy/Misra): if every cross-domain message sent during epoch
// [T, T + L) arrives no earlier than T + L, each domain can run the whole
// epoch without hearing from its peers. The engine therefore:
//
//  1. gives every DOMAIN (cluster) its own Simulator — private timing
//     wheel, freelist, and clock — sharing no mutable state with peers;
//  2. steps all domains in lockstep epochs of length `lookahead`, fanning
//     the per-epoch runs out on a util::WorkerPool;
//  3. defers every cross-domain message into a per-source outbox and
//     delivers all of them at the epoch barrier, iterating source domains
//     in index order with per-source emission order preserved.
//
// Step 3 is what makes runs *bitwise* shard-count-invariant: delivery
// order — and hence every event sequence number in every destination
// domain — depends only on (source domain, emission order), never on which
// worker lane ran which domain or how many lanes existed. `shards` is pure
// parallelism; `shards = 1` IS the serial oracle, and the scenario-level
// audit (audit::audit_shard_merge_match) pins sharded metrics bitwise
// against it.
//
// The lookahead rule is enforced unconditionally (not only in audit
// builds): an under-declared link delay would otherwise silently change
// results, the one failure mode a PDES engine must never have.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"
#include "util/worker_pool.hpp"

namespace sharegrid::sim {

/// Epoch-stepped fleet of per-domain Simulators with conservative lookahead.
class ShardedSimulator {
 public:
  struct Options {
    /// Conservative lookahead bound: every cross-domain post made while an
    /// epoch [T, T + lookahead) runs must be for time >= T + lookahead.
    /// In the scenarios this is the combining tree's link delay.
    SimDuration lookahead = 0;
    /// Parallel lanes (worker threads incl. the caller). 1 = run domains
    /// serially in index order — the audit oracle. Results are identical
    /// for every value by construction.
    std::size_t shards = 1;
  };

  ShardedSimulator(std::size_t domains, Options options);

  std::size_t domain_count() const { return domains_.size(); }
  Simulator& domain(std::size_t d) {
    SHAREGRID_EXPECTS(d < domains_.size());
    return *domains_[d];
  }

  /// Barrier time: every domain has run to at least this point.
  SimTime now() const { return now_; }

  /// Sends fn to run at absolute time @p when in domain @p dst. Must be
  /// called either before run_until() (setup) or from an event executing in
  /// domain @p src — the per-source outboxes are single-writer by that
  /// contract. Enforces the lookahead rule unconditionally: @p when must
  /// not precede the current epoch's end.
  void post(std::size_t src, std::size_t dst, SimTime when,
            std::function<void()> fn);

  /// Runs every domain to @p deadline in lockstep epochs, exchanging
  /// cross-domain messages at each barrier.
  void run_until(SimTime deadline);

  /// Sum of events executed across all domains.
  std::uint64_t events_processed() const;
  /// Cross-domain messages posted / delivered so far (equal outside of an
  /// epoch — see audit_event_conservation).
  std::uint64_t posts_sent() const {
    return posts_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t posts_delivered() const { return posts_delivered_; }
  /// Epoch barriers crossed.
  std::uint64_t epochs() const { return epochs_; }

  /// Cross-shard event conservation: every message posted by a source
  /// domain was delivered into its destination's event stream — none
  /// dropped by a lane, none duplicated by a retry. Called at every barrier
  /// in audit builds; throws ContractViolation on mismatch.
  void audit_event_conservation() const;

 private:
  /// One deferred cross-domain message.
  struct Pending {
    std::size_t dst = 0;
    SimTime when = 0;
    std::function<void()> fn;
  };

  Options options_;
  std::vector<std::unique_ptr<Simulator>> domains_;
  /// outboxes_[src]: messages emitted by domain src this epoch, in emission
  /// order. Written only by the lane running src (or the caller before the
  /// run); drained single-threaded at the barrier.
  std::vector<std::vector<Pending>> outboxes_;
  WorkerPool pool_;
  SimTime now_ = 0;
  /// End of the epoch currently running (== now_ between epochs); the
  /// lookahead floor for post(). Written at the barrier, read by lanes —
  /// ordered by the pool's fan-out/join.
  SimTime epoch_end_ = 0;
  std::atomic<std::uint64_t> posts_sent_{0};
  std::uint64_t posts_delivered_ = 0;
  std::uint64_t epochs_ = 0;
};

}  // namespace sharegrid::sim
