// Ablation A1: explicit per-window queuing vs credit-based implicit queuing
// in the Layer-7 redirector (§4.1 and DESIGN.md D3).
//
// The paper's first L7 implementation held requests in explicit queues and
// released them in a batch each window; measured server rates then failed to
// grow linearly with client activity because the batching bunches requests
// and closed-loop clients stall waiting for the bunched replies. The final
// credit-based design forwards in-quota requests immediately. This bench
// sweeps the client count and reproduces that divergence.
#include <cstdlib>
#include <iostream>

#include "experiments/scenario.hpp"
#include "util/table.hpp"

using namespace sharegrid;
using namespace sharegrid::experiments;

namespace {

ScenarioConfig sweep_config(nodes::L7Redirector::Mode mode,
                            std::size_t client_count) {
  core::AgreementGraph g;
  const auto s = g.add_principal("S", 0.0);
  const auto a = g.add_principal("A", 0.0);
  g.set_agreement(s, a, 1.0, 1.0);  // one org owns the whole service

  ScenarioConfig c;
  c.graph = g;
  c.layer = Layer::kL7;
  c.l7_mode = mode;
  c.redirector_count = 1;
  c.servers = {{"S", 320.0}};
  for (std::size_t i = 0; i < client_count; ++i)
    c.clients.push_back({"C" + std::to_string(i), "A", 0, 135.0,
                         {{0.0, 30.0}}});
  c.phases = {{"steady", 5.0, 29.0}};
  c.duration_sec = 30.0;
  // WebBench-like closed loop: a handful of worker threads per machine.
  // This is what turns batching into lost throughput.
  c.max_outstanding = 8;
  return c;
}

}  // namespace

int main() {
  std::cout << "=== ablation: explicit per-window queuing vs credit-based "
               "admission (the paper's section 4.1 anomaly) ===\n\n";

  TextTable table({"clients", "offered (req/s)", "credit served",
                   "explicit served", "explicit/credit"});
  std::vector<double> credit_rates;
  std::vector<double> explicit_rates;
  for (std::size_t clients = 1; clients <= 4; ++clients) {
    const ScenarioResult credit = run_scenario(
        sweep_config(nodes::L7Redirector::Mode::kCreditBased, clients));
    const ScenarioResult explicit_q = run_scenario(
        sweep_config(nodes::L7Redirector::Mode::kExplicitQueue, clients));
    const double c = credit.phase_served(0, 1);
    const double e = explicit_q.phase_served(0, 1);
    credit_rates.push_back(c);
    explicit_rates.push_back(e);
    table.add_row({std::to_string(clients),
                   TextTable::num(135.0 * static_cast<double>(clients), 0),
                   TextTable::num(c), TextTable::num(e),
                   TextTable::num(e / c, 2)});
  }
  table.print(std::cout);
  std::cout << '\n';

  // Shape checks: credit-based tracks offered load linearly until the server
  // saturates at 320 (the paper: "server processing rates linearly increase
  // with client activity until the server saturates"); explicit queuing
  // falls measurably short at every load level. With only 8 closed-loop
  // workers per machine, even credit mode pays a small slot tax on startup
  // rejections (~10-15% below nominal), so the linearity check uses a 15%
  // band — the explicit/credit *gap* is the ablation's signal.
  bool ok = true;
  if (std::abs(credit_rates[0] - 135.0) > 0.15 * 135.0 ||
      std::abs(credit_rates[1] - 270.0) > 0.15 * 270.0) {
    std::cout << "MISMATCH: credit mode should scale linearly (got "
              << credit_rates[0] << ", " << credit_rates[1] << ")\n";
    ok = false;
  }
  if (credit_rates[3] < 290.0) {
    std::cout << "MISMATCH: credit mode should saturate near 320\n";
    ok = false;
  }
  for (std::size_t i = 0; i < 2; ++i) {
    if (explicit_rates[i] > 0.9 * credit_rates[i]) {
      std::cout << "MISMATCH: explicit queuing should lose throughput to "
                   "request bunching at "
                << (i + 1) << " client(s)\n";
      ok = false;
    }
  }
  std::cout << (ok ? "ablation: credit-based admission restores the linear "
                     "throughput curve, matching the paper's fix.\n"
                   : "ablation: SHAPE MISMATCH\n");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
