// Reproduces Figure 10 (§5.2): Layer-4 redirection maximizing provider
// income — the higher-paying customer gets first preference beyond the
// mandatory levels.
#include "figure_common.hpp"

int main() {
  return sharegrid::bench::run_figure(sharegrid::experiments::figure10());
}
