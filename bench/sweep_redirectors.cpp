// Extension sweep E-R: scaling the redirector fleet.
//
// The paper's prototypes use two redirectors. This sweep spreads the same
// community workload over 1..8 admission points (balanced binary combining
// tree beyond 4) and checks the two §3.2 claims at once: enforcement is
// redirector-count invariant (every node solves the same LP on the same
// aggregate), and coordination cost stays linear — 2(n-1) messages per
// round, not O(n^2).
#include <cstdlib>
#include <iostream>

#include "experiments/scenario.hpp"
#include "util/table.hpp"

using namespace sharegrid;
using namespace sharegrid::experiments;

namespace {

ScenarioConfig fleet_config(std::size_t redirectors) {
  core::AgreementGraph g;
  g.add_principal("A", 0.0);
  g.add_principal("B", 0.0);
  g.set_agreement(1, 0, 0.5, 0.5);

  ScenarioConfig c;
  c.graph = g;
  c.layer = Layer::kL4;
  c.redirector_count = redirectors;
  if (redirectors > 4) c.tree_fanout = 2;
  c.servers = {{"A", 320.0}, {"B", 320.0}};
  // 4 client machines for A, 2 for B, spread round-robin over the fleet.
  for (int k = 0; k < 4; ++k)
    c.clients.push_back({"A" + std::to_string(k), "A",
                         static_cast<std::size_t>(k) % redirectors, 200.0,
                         {{0.0, 60.0}}});
  for (int k = 0; k < 2; ++k)
    c.clients.push_back({"B" + std::to_string(k), "B",
                         static_cast<std::size_t>(k) % redirectors, 200.0,
                         {{0.0, 60.0}}});
  c.phases = {{"steady", 10.0, 58.0}};
  c.duration_sec = 60.0;
  return c;
}

}  // namespace

int main() {
  std::cout << "=== sweep: redirector fleet size (enforcement must be "
               "fleet-invariant; messages linear) ===\n\n";
  TextTable table({"redirectors", "A served (exp 480)", "B served (exp 160)",
                   "tree msgs/round", "2(n-1)"});
  bool ok = true;
  for (const std::size_t r : {1u, 2u, 4u, 8u}) {
    const ScenarioResult result = run_scenario(fleet_config(r));
    const double a = result.phase_served(0, 0);
    const double b = result.phase_served(0, 1);
    // Rounds = duration / window; tree has r+1 nodes.
    const double rounds = 60.0 / 0.1;
    const double msgs_per_round =
        static_cast<double>(result.coordination_messages) / rounds;
    table.add_row({std::to_string(r), TextTable::num(a), TextTable::num(b),
                   TextTable::num(msgs_per_round),
                   TextTable::num(2.0 * static_cast<double>(r))});
    if (std::abs(a - 480.0) > 48.0 || std::abs(b - 160.0) > 24.0) ok = false;
    if (std::abs(msgs_per_round - 2.0 * static_cast<double>(r)) > 0.5)
      ok = false;
  }
  table.print(std::cout);
  std::cout << "\n"
            << (ok ? "sweep: shares hold from 1 to 8 admission points and "
                     "coordination traffic grows linearly, as §3.2 argues.\n"
                   : "sweep: SHAPE MISMATCH\n");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
