// Ablation A3: agreement enforcement vs classic proportional sharing.
//
// The request-distribution front-ends the paper surveys (§6) divide
// capacity by weights over the *currently active* flows. That gets relative
// fairness right and contracts wrong, in both directions:
//   1. no ceiling — an organization alone on the system bursts past its
//      agreed upper bound;
//   2. no transitive/mandatory structure — entitlements that flow through
//      an agreement chain (Figure 3) are invisible to a weight vector.
// This bench quantifies both against the LP scheduler.
#include <cstdlib>
#include <iostream>

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "sched/response_time_scheduler.hpp"
#include "sched/weighted_fair_scheduler.hpp"
#include "util/table.hpp"

using namespace sharegrid;
using namespace sharegrid::sched;

int main() {
  std::cout << "=== ablation: LP agreement enforcement vs weighted fair "
               "sharing ===\n\n";
  bool ok = true;

  // --- 1. Upper bounds ------------------------------------------------------
  // bronze holds [0.1, 0.3] of a 320 req/s provider and is the only load.
  {
    core::AgreementGraph g;
    g.add_principal("S", 320.0);
    g.add_principal("bronze", 0.0);
    g.set_agreement(0, 1, 0.1, 0.3);
    const ResponseTimeScheduler lp(g, core::compute_access_levels(g));
    const WeightedFairScheduler wfq(320.0, {0.7, 0.3});

    const double lp_alone = lp.plan({0.0, 1000.0}).admitted(1);
    const double wfq_alone = wfq.plan({0.0, 1000.0}).admitted(1);

    TextTable t({"scheduler", "bronze alone (req/s)", "contract ceiling"});
    t.add_row({"LP (this paper)", TextTable::num(lp_alone), "96"});
    t.add_row({"weighted fair", TextTable::num(wfq_alone), "96"});
    t.print(std::cout);
    std::cout << '\n';
    if (std::abs(lp_alone - 96.0) > 1.0) ok = false;     // ub enforced
    if (wfq_alone < 300.0) ok = false;                   // ub ignored
  }

  // --- 2. Transitive entitlements -------------------------------------------
  // Figure 3's chain: C's 1140 u/s guarantee exists only through B. A
  // weight vector has no way to encode it; the obvious static weights
  // (normalized capacities) starve C completely.
  {
    core::AgreementGraph g;
    g.add_principal("A", 1000.0);
    g.add_principal("B", 1500.0);
    g.add_principal("C", 0.0);
    g.set_agreement(0, 1, 0.4, 0.6);
    g.set_agreement(1, 2, 0.6, 1.0);
    const ResponseTimeScheduler lp(g, core::compute_access_levels(g));
    const WeightedFairScheduler wfq(2500.0, {1000.0, 1500.0, 0.0});

    const std::vector<double> flood{5000.0, 5000.0, 5000.0};
    const double lp_c = lp.plan(flood).admitted(2);
    const double wfq_c = wfq.plan(flood).admitted(2);

    TextTable t({"scheduler", "C under full contention (u/s)",
                 "C's transitive guarantee"});
    t.add_row({"LP (this paper)", TextTable::num(lp_c), "1140"});
    t.add_row({"weighted fair (capacity weights)", TextTable::num(wfq_c),
               "1140"});
    t.print(std::cout);
    std::cout << '\n';
    if (std::abs(lp_c - 1140.0) > 5.0) ok = false;
    if (wfq_c > 5.0) ok = false;  // C owns nothing => weight 0 => starved
  }

  std::cout << (ok ? "ablation: weighted fair sharing violates both the "
                     "upper bound and the transitive mandatory guarantee "
                     "that the LP scheduler enforces.\n"
                   : "ablation: SHAPE MISMATCH\n");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
