// Micro-benchmark M4: combining-tree aggregation vs pairwise exchange.
//
// The paper's §3.2 scalability argument: a combining tree needs 2(n-1)
// messages per aggregation round against O(n^2) for pairwise exchange. This
// bench measures both the message counts (reported as counters) and the
// simulation cost of a round at increasing redirector counts.
#include <benchmark/benchmark.h>

#include <vector>

#include "coord/combining_tree.hpp"
#include "sim/simulator.hpp"

using namespace sharegrid;
using namespace sharegrid::coord;

namespace {

constexpr std::size_t kVectorSize = 4;  // principals per aggregate

void BM_CombiningTreeRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    TreeConfig cfg{.period = 100, .link_delay = 1, .vector_size = kVectorSize};
    CombiningTree tree(&sim, TreeTopology::balanced(n, 4), cfg);
    std::vector<double> local(kVectorSize, 1.0);
    std::size_t delivered = 0;
    for (std::size_t i = 0; i < n; ++i) {
      tree.attach(
          i, [&local] { return local; },
          [&delivered](std::uint64_t, const std::vector<double>&) {
            ++delivered;
          });
    }
    tree.start(0);
    sim.run_until(99);  // exactly one full round per fresh tree
    benchmark::DoNotOptimize(delivered);
    messages = tree.messages_sent();
    rounds = tree.rounds_completed();
  }
  state.counters["msgs_per_round"] =
      rounds > 0 ? static_cast<double>(messages) / static_cast<double>(rounds)
                 : 0.0;
  state.counters["expected_2(n-1)"] = static_cast<double>(2 * (n - 1));
}
BENCHMARK(BM_CombiningTreeRound)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_PairwiseExchangeRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    TreeConfig cfg{.period = 100, .link_delay = 1, .vector_size = kVectorSize};
    PairwiseExchange exchange(&sim, n, cfg);
    std::vector<double> local(kVectorSize, 1.0);
    std::size_t delivered = 0;
    for (std::size_t i = 0; i < n; ++i) {
      exchange.attach(
          i, [&local] { return local; },
          [&delivered](std::uint64_t, const std::vector<double>&) {
            ++delivered;
          });
    }
    exchange.start(0);
    sim.run_until(99);  // exactly one round per fresh exchange
    benchmark::DoNotOptimize(delivered);
    messages = exchange.messages_sent();
    rounds = 1;
  }
  state.counters["msgs_per_round"] =
      rounds > 0 ? static_cast<double>(messages) : 0.0;
  state.counters["expected_n(n-1)"] = static_cast<double>(n * (n - 1));
}
BENCHMARK(BM_PairwiseExchangeRound)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
