// Reproduces Figure 9 (§5.2): Layer-4 redirection in a community context —
// A and B each own a server, B shares half of its capacity with A.
#include "figure_common.hpp"

int main() {
  return sharegrid::bench::run_figure(sharegrid::experiments::figure9());
}
