// Extension sweep E-W: sensitivity to the scheduling window length.
//
// The paper fixes 100 ms windows without exploring the choice. The window
// trades enforcement granularity against reaction time: long-run shares are
// window-invariant (quota accounting carries fractions and debt), but the
// time to re-converge after a load change grows with the window.
#include <cstdlib>
#include <iostream>

#include "experiments/scenario.hpp"
#include "util/table.hpp"

using namespace sharegrid;
using namespace sharegrid::experiments;

namespace {

ScenarioConfig community_config(SimDuration window) {
  core::AgreementGraph g;
  g.add_principal("A", 0.0);
  g.add_principal("B", 0.0);
  g.set_agreement(1, 0, 0.5, 0.5);  // B shares half with A

  ScenarioConfig c;
  c.graph = g;
  c.layer = Layer::kL4;
  c.window = window;
  c.servers = {{"A", 320.0}, {"B", 320.0}};
  c.clients = {
      {"A1", "A", 0, 400.0, {{0.0, 60.0}}},
      {"A2", "A", 0, 400.0, {{0.0, 60.0}}},
      {"B1", "B", 0, 400.0, {{0.0, 120.0}}},
  };
  c.phases = {{"contended", 10.0, 58.0}, {"released", 70.0, 118.0}};
  c.duration_sec = 120.0;
  return c;
}

/// Seconds after t0 until B's per-second served rate first reaches
/// @p threshold (the re-convergence probe after A's departure at t=60).
double convergence_seconds(const ScenarioResult& result, double t0_sec,
                           double threshold) {
  const auto& series = result.metrics.served(1);
  for (std::size_t bin = static_cast<std::size_t>(t0_sec);
       bin < series.bin_count(); ++bin) {
    if (series.rate_in_bin(bin) >= threshold)
      return static_cast<double>(bin) - t0_sec;
  }
  return -1.0;
}

}  // namespace

int main() {
  std::cout << "=== sweep: scheduling window length (paper fixes 100 ms) "
               "===\n\n";
  TextTable table({"window (ms)", "A contended (exp 480)",
                   "B contended (exp 160)", "B released (exp 320)",
                   "B reconverge (s)"});
  bool ok = true;
  double previous_convergence = -1.0;
  for (const double window_ms : {25.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
    const ScenarioResult result =
        run_scenario(community_config(milliseconds(window_ms)));
    const double a1 = result.phase_served(0, 0);
    const double b1 = result.phase_served(0, 1);
    const double b2 = result.phase_served(1, 1);
    const double conv = convergence_seconds(result, 60.0, 0.9 * 320.0);
    table.add_row({TextTable::num(window_ms, 0), TextTable::num(a1),
                   TextTable::num(b1), TextTable::num(b2),
                   TextTable::num(conv)});
    // Long-run enforcement must hold at every window length.
    if (std::abs(a1 - 480.0) > 48.0 || std::abs(b1 - 160.0) > 24.0 ||
        std::abs(b2 - 320.0) > 32.0 || conv < 0.0) {
      ok = false;
    }
    previous_convergence = conv;
  }
  (void)previous_convergence;
  table.print(std::cout);
  std::cout << "\n"
            << (ok ? "sweep: long-run shares are window-invariant; only "
                     "reaction time varies — the paper's 100 ms sits "
                     "comfortably on the flat part of the curve.\n"
                   : "sweep: SHAPE MISMATCH (enforcement degraded at some "
                     "window length)\n");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
