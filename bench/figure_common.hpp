// Shared driver for the figure-reproduction benches: run the canned
// scenario, print the per-second series and phase table, check the shape
// expectations, and exit nonzero on mismatch.
#pragma once

#include <cstdlib>
#include <iostream>

#include "experiments/paper_figures.hpp"

namespace sharegrid::bench {

/// Runs one figure end-to-end; returns a process exit code.
inline int run_figure(const experiments::FigureExperiment& figure,
                      bool print_series = true) {
  std::cout << "=== " << figure.id << ": " << figure.title << " ===\n\n";
  const experiments::ScenarioResult result =
      experiments::run_scenario(figure.config);

  if (print_series) {
    std::cout << "Per-second served rates (req/s):\n";
    result.series_table().print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Phase averages:\n";
  result.phase_table().print(std::cout);
  std::cout << '\n';

  std::vector<std::string> failures;
  const bool ok = experiments::check_figure(figure, result, &failures);
  if (ok) {
    std::cout << figure.id << ": all " << figure.expectations.size()
              << " shape expectations hold.\n";
    return EXIT_SUCCESS;
  }
  std::cout << figure.id << ": SHAPE MISMATCH\n";
  for (const auto& f : failures) std::cout << "  " << f << '\n';
  return EXIT_FAILURE;
}

}  // namespace sharegrid::bench
