// Micro-benchmark M2: cost of the quasi-static flow/entitlement computation
// (§3.1.1) versus principal count and agreement density. This runs once per
// agreement change, not per window, but bounded-length paths matter on dense
// graphs — the max_path_length knob is measured too.
//
// Also home to the connection-table container pair (BM_FlowTable*): the NAT
// table was migrated from std::map to util::FlatHashMap for the
// million-client scenarios, and the before/after is recorded in
// BENCH_sim.json (tools/update_sim_bench.py).
#include <cstdint>
#include <map>
#include <utility>

#include <benchmark/benchmark.h>

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "l4/packet.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

using namespace sharegrid;

namespace {

core::AgreementGraph make_random_graph(std::size_t n, double density,
                                       Rng& rng) {
  core::AgreementGraph g;
  for (std::size_t i = 0; i < n; ++i)
    g.add_principal("P" + std::to_string(i), rng.uniform(10.0, 1000.0));
  for (core::PrincipalId i = 0; i < n; ++i) {
    double budget = 1.0;
    for (core::PrincipalId j = 0; j < n; ++j) {
      if (i == j || !rng.chance(density)) continue;
      const double lb = rng.uniform(0.0, budget * 0.3);
      g.set_agreement(i, j, lb, rng.uniform(lb, 1.0));
      budget -= lb;
    }
  }
  return g;
}

void BM_AccessLevelsSparse(benchmark::State& state) {
  Rng rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::AgreementGraph g = make_random_graph(n, 0.2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_access_levels(g));
  }
}
BENCHMARK(BM_AccessLevelsSparse)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_AccessLevelsDenseBoundedPaths(benchmark::State& state) {
  Rng rng(8);
  const core::AgreementGraph g = make_random_graph(12, 0.8, rng);
  core::FlowOptions opt;
  opt.max_path_length = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_access_levels(g, opt));
  }
}
BENCHMARK(BM_AccessLevelsDenseBoundedPaths)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

// --- Connection-table container pair -----------------------------------
//
// Mirrors l4::ConnectionTable's hot path: one lookup per packet, one
// insert + one affinity overwrite per admitted connection, one erase per
// FIN. Keys and endpoint layout match the redirector's synthesis
// (nodes/l4_redirector.cpp) so probe distributions are representative.

using FlowKey = std::pair<l4::Endpoint, l4::Endpoint>;  // (client, vip)

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& key) const {
    const auto pack = [](const l4::Endpoint& ep) {
      return (static_cast<std::uint64_t>(ep.host) << 16) | ep.port;
    };
    return static_cast<std::size_t>(
        util::hash_combine(util::mix64(pack(key.first)), pack(key.second)));
  }
};

FlowKey make_flow(std::uint64_t id) {
  const l4::Endpoint client{0x0C000000u + static_cast<std::uint32_t>(id / 4096),
                            static_cast<std::uint16_t>(1024 + (id & 0xFFF))};
  const l4::Endpoint vip{0x0A000000u + static_cast<std::uint32_t>(id % 4), 80};
  return {client, vip};
}

/// Establish/lookup/release churn over @p flows concurrent connections, with
/// 4 packet lookups per connection — the op mix the redirector generates.
template <class Table>
void flow_table_churn(benchmark::State& state) {
  const auto flows = static_cast<std::uint64_t>(state.range(0));
  const l4::Endpoint server{0x0B000000u, 8080};
  for (auto _ : state) {
    Table table;
    for (std::uint64_t id = 0; id < flows; ++id)
      table[make_flow(id)] = server;
    for (int pass = 0; pass < 4; ++pass) {
      for (std::uint64_t id = 0; id < flows; ++id) {
        auto it = table.find(make_flow(id));
        benchmark::DoNotOptimize(it->second);
      }
    }
    for (std::uint64_t id = 0; id < flows; ++id) table.erase(make_flow(id));
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(flows) * 6);
}

void BM_FlowTableMap(benchmark::State& state) {
  flow_table_churn<std::map<FlowKey, l4::Endpoint>>(state);
}
BENCHMARK(BM_FlowTableMap)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_FlowTableFlat(benchmark::State& state) {
  flow_table_churn<util::FlatHashMap<FlowKey, l4::Endpoint, FlowKeyHash>>(
      state);
}
BENCHMARK(BM_FlowTableFlat)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

}  // namespace
