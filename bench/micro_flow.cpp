// Micro-benchmark M2: cost of the quasi-static flow/entitlement computation
// (§3.1.1) versus principal count and agreement density. This runs once per
// agreement change, not per window, but bounded-length paths matter on dense
// graphs — the max_path_length knob is measured too.
#include <benchmark/benchmark.h>

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "util/rng.hpp"

using namespace sharegrid;

namespace {

core::AgreementGraph make_random_graph(std::size_t n, double density,
                                       Rng& rng) {
  core::AgreementGraph g;
  for (std::size_t i = 0; i < n; ++i)
    g.add_principal("P" + std::to_string(i), rng.uniform(10.0, 1000.0));
  for (core::PrincipalId i = 0; i < n; ++i) {
    double budget = 1.0;
    for (core::PrincipalId j = 0; j < n; ++j) {
      if (i == j || !rng.chance(density)) continue;
      const double lb = rng.uniform(0.0, budget * 0.3);
      g.set_agreement(i, j, lb, rng.uniform(lb, 1.0));
      budget -= lb;
    }
  }
  return g;
}

void BM_AccessLevelsSparse(benchmark::State& state) {
  Rng rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::AgreementGraph g = make_random_graph(n, 0.2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_access_levels(g));
  }
}
BENCHMARK(BM_AccessLevelsSparse)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_AccessLevelsDenseBoundedPaths(benchmark::State& state) {
  Rng rng(8);
  const core::AgreementGraph g = make_random_graph(12, 0.8, rng);
  core::FlowOptions opt;
  opt.max_path_length = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_access_levels(g, opt));
  }
}
BENCHMARK(BM_AccessLevelsDenseBoundedPaths)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

}  // namespace
