// Reproduces the paper's Figure 1 motivating example (§1): end-point SLA
// enforcement cannot handle distributed incoming requests.
//
// Setup: provider S runs servers S1 and S2 (50 req/s each) and has SLAs
// giving A 20% and B 80% of its aggregate resources. Two redirectors see
// loads (A:20, B:20) and (A:20, B:60) and split traffic 75/25 vs 25/75 for
// locality. Independent per-server enforcement yields (A:30, B:70) — B's
// 80% guarantee is violated; coordinated enforcement yields (A:20, B:80).
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "sched/endpoint_enforcer.hpp"
#include "sched/response_time_scheduler.hpp"
#include "util/table.hpp"

using namespace sharegrid;

int main() {
  std::cout << "=== fig1: end-point vs coordinated enforcement ===\n\n";

  // Redirector loads (req/s) and locality split.
  const double r1_a = 20.0, r1_b = 20.0, r2_a = 20.0, r2_b = 60.0;
  const double r1_to_s1 = 0.75, r2_to_s1 = 0.25;

  // Per-server demand implied by the locality-biased split.
  const double s1_a = r1_a * r1_to_s1 + r2_a * r2_to_s1;
  const double s1_b = r1_b * r1_to_s1 + r2_b * r2_to_s1;
  const double s2_a = (r1_a + r2_a) - s1_a;
  const double s2_b = (r1_b + r2_b) - s1_b;

  // --- End-point enforcement: each server alone, shares (0.2, 0.8). ------
  const sched::EndpointEnforcer s1(50.0, {0.2, 0.8});
  const sched::EndpointEnforcer s2(50.0, {0.2, 0.8});
  const std::vector<double> a1 = s1.allocate({s1_a, s1_b});
  const std::vector<double> a2 = s2.allocate({s2_a, s2_b});
  const double endpoint_a = a1[0] + a2[0];
  const double endpoint_b = a1[1] + a2[1];

  // --- Coordinated enforcement: one plan over global queues. -------------
  core::AgreementGraph g;
  const auto s = g.add_principal("S", 100.0);  // S1 + S2 aggregated
  const auto a = g.add_principal("A", 0.0);
  const auto b = g.add_principal("B", 0.0);
  g.set_agreement(s, a, 0.2, 1.0);
  g.set_agreement(s, b, 0.8, 1.0);
  sched::ResponseTimeScheduler scheduler(g, core::compute_access_levels(g));
  const sched::Plan plan =
      scheduler.plan({0.0, r1_a + r2_a, r1_b + r2_b});
  const double coord_a = plan.admitted(a);
  const double coord_b = plan.admitted(b);

  TextTable table({"scheme", "A_req_s", "B_req_s", "B_share"});
  table.add_row({"end-point (per server)", TextTable::num(endpoint_a),
                 TextTable::num(endpoint_b),
                 TextTable::num(endpoint_b / (endpoint_a + endpoint_b), 2)});
  table.add_row({"coordinated (this paper)", TextTable::num(coord_a),
                 TextTable::num(coord_b),
                 TextTable::num(coord_b / (coord_a + coord_b), 2)});
  table.print(std::cout);
  std::cout << '\n';

  // Shape checks: the paper's exact numbers.
  bool ok = true;
  auto expect = [&ok](const char* what, double got, double want) {
    if (std::abs(got - want) > 0.5) {
      std::cout << "MISMATCH " << what << ": got " << got << ", want " << want
                << '\n';
      ok = false;
    }
  };
  expect("endpoint A", endpoint_a, 30.0);
  expect("endpoint B", endpoint_b, 70.0);  // SLA violated: B < 80
  expect("coordinated A", coord_a, 20.0);
  expect("coordinated B", coord_b, 80.0);  // SLA honoured

  std::cout << (ok ? "fig1: end-point enforcement violates B's 80% "
                     "guarantee; coordinated enforcement restores it.\n"
                   : "fig1: SHAPE MISMATCH\n");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
