// Reproduces Figure 6 (§5.1): the Layer-7 redirectors enforce sharing
// agreements in a service-provider context across three load phases.
#include "figure_common.hpp"

int main() {
  return sharegrid::bench::run_figure(sharegrid::experiments::figure6());
}
