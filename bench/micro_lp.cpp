// Micro-benchmark M1: per-window LP solve cost as the number of principals
// grows. The paper argues the strategy's complexity "only depends on the
// number of principals involved in the agreements", expected to be small —
// these numbers quantify what "small" buys.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "sched/income_scheduler.hpp"
#include "sched/response_time_scheduler.hpp"
#include "util/rng.hpp"

using namespace sharegrid;

namespace {

/// Provider + (n-1) customers with random [lb, ub] SLAs.
core::AgreementGraph make_provider_graph(std::size_t n, Rng& rng) {
  core::AgreementGraph g;
  g.add_principal("S", 1000.0);
  double budget = 1.0;
  for (std::size_t i = 1; i < n; ++i) {
    g.add_principal("P" + std::to_string(i), 0.0);
    const double lb = rng.uniform(0.0, budget * 0.5);
    g.set_agreement(0, i, lb, rng.uniform(lb, 1.0));
    budget -= lb;
  }
  return g;
}

std::vector<double> make_demand(std::size_t n, Rng& rng) {
  std::vector<double> demand(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) demand[i] = rng.uniform(0.0, 500.0);
  return demand;
}

void BM_ResponseTimePlan(benchmark::State& state) {
  Rng rng(42);
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::AgreementGraph g = make_provider_graph(n, rng);
  const sched::ResponseTimeScheduler scheduler(
      g, core::compute_access_levels(g));
  const std::vector<double> demand = make_demand(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.plan(demand));
  }
  state.SetLabel(std::to_string(n * n + 1) + " vars");
}
BENCHMARK(BM_ResponseTimePlan)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_IncomePlan(benchmark::State& state) {
  Rng rng(43);
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::AgreementGraph g = make_provider_graph(n, rng);
  std::vector<double> prices(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) prices[i] = rng.uniform(0.5, 3.0);
  const sched::IncomeScheduler scheduler(g, core::compute_access_levels(g), 0,
                                         prices);
  const std::vector<double> demand = make_demand(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.plan(demand));
  }
}
BENCHMARK(BM_IncomePlan)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
