// Micro-benchmark M1: per-window LP solve cost as the number of principals
// grows. The paper argues the strategy's complexity "only depends on the
// number of principals involved in the agreements", expected to be small —
// these numbers quantify what "small" buys.
#include <benchmark/benchmark.h>

#include <memory>
#include <utility>
#include <vector>

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "lp/solve_context.hpp"
#include "sched/income_scheduler.hpp"
#include "sched/multi_provider_scheduler.hpp"
#include "sched/response_time_scheduler.hpp"
#include "util/rng.hpp"
#include "util/worker_pool.hpp"

using namespace sharegrid;

namespace {

/// Provider + (n-1) customers with random [lb, ub] SLAs.
core::AgreementGraph make_provider_graph(std::size_t n, Rng& rng) {
  core::AgreementGraph g;
  g.add_principal("S", 1000.0);
  double budget = 1.0;
  for (std::size_t i = 1; i < n; ++i) {
    g.add_principal("P" + std::to_string(i), 0.0);
    const double lb = rng.uniform(0.0, budget * 0.5);
    g.set_agreement(0, i, lb, rng.uniform(lb, 1.0));
    budget -= lb;
  }
  return g;
}

std::vector<double> make_demand(std::size_t n, Rng& rng) {
  std::vector<double> demand(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) demand[i] = rng.uniform(0.0, 500.0);
  return demand;
}

void BM_ResponseTimePlan(benchmark::State& state) {
  Rng rng(42);
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::AgreementGraph g = make_provider_graph(n, rng);
  const sched::ResponseTimeScheduler scheduler(
      g, core::compute_access_levels(g));
  const std::vector<double> demand = make_demand(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.plan(demand));
  }
  state.SetLabel(std::to_string(n * n + 1) + " vars");
}
BENCHMARK(BM_ResponseTimePlan)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_IncomePlan(benchmark::State& state) {
  Rng rng(43);
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::AgreementGraph g = make_provider_graph(n, rng);
  std::vector<double> prices(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) prices[i] = rng.uniform(0.5, 3.0);
  const sched::IncomeScheduler scheduler(g, core::compute_access_levels(g), 0,
                                         prices);
  const std::vector<double> demand = make_demand(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.plan(demand));
  }
}
BENCHMARK(BM_IncomePlan)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// -- M2: per-window plan re-solve, cold vs warm-started ----------------------
//
// The redirector's real per-window cost: ResponseTimeScheduler::plan over a
// sequence of windows whose demand estimates drift ±15% (right-hand sides and
// the theta column move; the agreement structure and objective stay fixed).
// "Cold" disables the warm-start pipeline through the solver options, which
// is exactly what every window cost before SolveContext; "Warm" is the
// default configuration, where the previous window's optimal basis re-enters
// phase 2 (falling back to dual-simplex recovery or a cold solve as needed).

std::vector<std::vector<double>> make_demand_sequence(std::size_t n, Rng& rng) {
  const std::vector<double> base = make_demand(n, rng);
  std::vector<std::vector<double>> windows(32, base);
  for (auto& demand : windows)
    for (std::size_t i = 1; i < n; ++i) demand[i] *= rng.uniform(0.85, 1.15);
  return windows;
}

void resolve_bench(benchmark::State& state, std::size_t warm_refresh_interval) {
  Rng rng(42);
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::AgreementGraph g = make_provider_graph(n, rng);
  sched::ResponseTimeScheduler scheduler(g, core::compute_access_levels(g));
  lp::SolverOptions options;
  options.warm_refresh_interval = warm_refresh_interval;
  scheduler.set_solver_options(options);
  const auto windows = make_demand_sequence(n, rng);
  std::size_t w = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.plan(windows[w]));
    w = (w + 1) % windows.size();
  }
  const lp::SolveStats stats = scheduler.solver_stats();
  state.SetLabel(std::to_string(stats.warm_solves) + "/" +
                 std::to_string(stats.solves) + " warm solves");
}

// The n = 64 and n = 128 points (4097- and 16385-variable programs) are the
// revised-simplex scaling targets: the dense tableau was O(rows · cols) per
// pivot and O(m²) per warm rhs recompute, which priced those sizes out of the
// 100 ms window budget entirely.
void BM_LpResolveCold(benchmark::State& state) { resolve_bench(state, 0); }
BENCHMARK(BM_LpResolveCold)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_LpResolveWarm(benchmark::State& state) {
  resolve_bench(state, lp::SolverOptions{}.warm_refresh_interval);
}
BENCHMARK(BM_LpResolveWarm)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

// -- M4: implicit upper bounds vs explicit bound rows -------------------------
//
// The bounded-variable ratio test keeps upper bounds out of the tableau
// entirely; the engine used to emit one `y_j <= hi_j - lo_j` row per finite
// bound. This pair solves the identical box-constrained program cold, once
// in its natural form and once reformulated with the explicit bound rows
// the old tableau carried, isolating the dense-tableau row-count win from
// everything else the pipeline does.

lp::Problem make_boxed_program(std::size_t n, bool explicit_rows, Rng& rng) {
  lp::Problem p(n, lp::Sense::kMaximize);
  std::vector<double> hi(n);
  for (std::size_t j = 0; j < n; ++j) {
    hi[j] = rng.uniform(1.0, 10.0);
    p.set_objective(j, rng.uniform(0.5, 3.0));
    if (!explicit_rows) p.set_bounds(j, 0.0, hi[j]);
  }
  for (std::size_t i = 0; i < n / 2; ++i) {
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t j = 0; j < n; ++j)
      terms.emplace_back(j, rng.uniform(0.0, 2.0));
    p.add_constraint(std::move(terms), lp::Relation::kLessEq,
                     rng.uniform(static_cast<double>(n) / 2.0,
                                 2.0 * static_cast<double>(n)));
  }
  if (explicit_rows) {
    for (std::size_t j = 0; j < n; ++j)
      p.add_constraint({{j, 1.0}}, lp::Relation::kLessEq, hi[j]);
  }
  return p;
}

void bounded_bench(benchmark::State& state, bool explicit_rows) {
  Rng rng(45);
  const auto n = static_cast<std::size_t>(state.range(0));
  const lp::Problem problem = make_boxed_program(n, explicit_rows, rng);
  for (auto _ : state) {
    lp::SolveContext context;  // fresh context: every solve runs cold
    benchmark::DoNotOptimize(context.solve(problem));
  }
  state.SetLabel(std::to_string(problem.num_constraints()) + " rows");
}

void BM_LpColdImplicitBounds(benchmark::State& state) {
  bounded_bench(state, false);
}
BENCHMARK(BM_LpColdImplicitBounds)
    ->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_LpColdExplicitRows(benchmark::State& state) {
  bounded_bench(state, true);
}
BENCHMARK(BM_LpColdExplicitRows)
    ->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

// -- M3: multi-provider plan, serial vs worker-pool ---------------------------
//
// One deployment hosting `p` providers solves `p` independent per-provider
// income programs each window (DESIGN.md D8). Serial runs them in sequence
// on the calling thread; Parallel fans them out on a WorkerPool. The plans
// are bitwise identical either way (tests/parallel_plan_test.cpp) — this
// measures only the dispatch cost/win.

void multi_provider_bench(benchmark::State& state,
                          std::shared_ptr<WorkerPool> pool) {
  Rng rng(44);
  const auto p = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kCustomers = 8;
  core::AgreementGraph g;
  std::vector<core::PrincipalId> providers;
  for (std::size_t s = 0; s < p; ++s)
    providers.push_back(g.add_principal("S" + std::to_string(s), 1000.0));
  for (std::size_t i = 0; i < kCustomers; ++i) {
    const auto c = g.add_principal("C" + std::to_string(i), 0.0);
    for (std::size_t s = 0; s < p; ++s) {
      const double lb = rng.uniform(0.0, 0.4 / static_cast<double>(kCustomers));
      g.set_agreement(providers[s], c, lb, rng.uniform(lb, 0.8));
    }
  }
  std::vector<double> prices(g.size(), 0.0);
  for (std::size_t i = p; i < g.size(); ++i) prices[i] = rng.uniform(0.5, 3.0);
  sched::MultiProviderScheduler scheduler(g, core::compute_access_levels(g),
                                          providers, prices, std::move(pool));
  auto windows = make_demand_sequence(g.size(), rng);
  for (auto& demand : windows)  // providers issue no demand of their own
    for (std::size_t s = 0; s < p; ++s) demand[s] = 0.0;
  std::size_t w = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.plan(windows[w]));
    w = (w + 1) % windows.size();
  }
}

void BM_MultiProviderPlanSerial(benchmark::State& state) {
  multi_provider_bench(state, nullptr);
}
BENCHMARK(BM_MultiProviderPlanSerial)
    ->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_MultiProviderPlanParallel(benchmark::State& state) {
  multi_provider_bench(state, std::make_shared<WorkerPool>(3));
}
BENCHMARK(BM_MultiProviderPlanParallel)
    ->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace
