// Reproduces Figure 8 (§5.1): behaviour under a 10-second combining-tree
// propagation delay — conservative start, transient contention, graceful
// convergence to the agreed shares.
#include "figure_common.hpp"

int main() {
  return sharegrid::bench::run_figure(sharegrid::experiments::figure8());
}
