// Extension sweep E-D: sensitivity to combining-tree propagation delay.
//
// Figure 8 demonstrates one lag (10 s). This sweep varies the lag and
// measures how long the system misallocates after a load change — the
// paper's claim is that coordination copes "as long as request patterns are
// stable for time scales longer than network delays", i.e. the disruption
// window should track the lag roughly one-for-one.
#include <cstdlib>
#include <iostream>

#include "experiments/scenario.hpp"
#include "util/table.hpp"

using namespace sharegrid;
using namespace sharegrid::experiments;

namespace {

ScenarioConfig delayed_config(SimDuration link_delay) {
  core::AgreementGraph g;
  g.add_principal("S", 0.0);
  g.add_principal("A", 0.0);
  g.add_principal("B", 0.0);
  g.set_agreement(0, 1, 0.8, 1.0);
  g.set_agreement(0, 2, 0.2, 1.0);

  ScenarioConfig c;
  c.graph = g;
  c.layer = Layer::kL7;
  c.redirector_count = 2;
  c.tree_link_delay = link_delay;
  c.servers = {{"S", 320.0}};
  c.clients = {
      {"A1", "A", 0, 135.0, {{40.0, 120.0}}},
      {"A2", "A", 0, 135.0, {{40.0, 120.0}}},
      {"B1", "B", 1, 135.0, {{0.0, 160.0}}},
  };
  c.phases = {{"steady", 80.0, 118.0}};
  c.duration_sec = 160.0;
  return c;
}

/// Seconds after A's arrival (t=40) until B's per-second rate first drops
/// to its enforced share (<= 1.3 * 64): the contention window.
double disruption_seconds(const ScenarioResult& result) {
  const auto& series = result.metrics.served(2);
  for (std::size_t bin = 41; bin < series.bin_count(); ++bin) {
    if (series.rate_in_bin(bin) <= 1.3 * 64.0)
      return static_cast<double>(bin) - 40.0;
  }
  return 999.0;
}

}  // namespace

int main() {
  std::cout << "=== sweep: combining-tree lag vs adaptation time (Figure 8 "
               "generalized) ===\n\n";
  TextTable table({"lag 2*delay (s)", "A steady (exp ~256)",
                   "B steady (exp ~64)", "disruption after A arrives (s)"});
  bool ok = true;
  double last_disruption = -1.0;
  for (const double delay_s : {0.0, 1.0, 2.5, 5.0, 10.0}) {
    const ScenarioResult result =
        run_scenario(delayed_config(seconds(delay_s)));
    const double a = result.phase_served(0, 1);
    const double b = result.phase_served(0, 2);
    const double disruption = disruption_seconds(result);
    table.add_row({TextTable::num(2.0 * delay_s), TextTable::num(a),
                   TextTable::num(b), TextTable::num(disruption, 0)});
    // Steady-state enforcement is delay-independent.
    if (std::abs(a - 256.0) > 32.0 || std::abs(b - 64.0) > 20.0) ok = false;
    // Disruption should track the lag: within (lag - 1, lag + 4) seconds.
    const double lag = 2.0 * delay_s;
    if (disruption < lag - 1.0 || disruption > lag + 4.0) ok = false;
    if (disruption + 0.5 < last_disruption) ok = false;  // ~monotone
    last_disruption = disruption;
  }
  table.print(std::cout);
  std::cout << "\n"
            << (ok ? "sweep: steady-state shares are delay-invariant and "
                     "the misallocation window tracks the aggregate lag, "
                     "as the paper's stability argument predicts.\n"
                   : "sweep: SHAPE MISMATCH\n");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
