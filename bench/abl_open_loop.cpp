// Ablation A4: end-to-end scheduler comparison on an identical open-loop
// trace.
//
// abl_baselines compares plans in isolation; this bench drives the full L4
// node stack — redirector, kernel queues, servers — with the *same*
// precomputed request trace (open loop: the workload cannot adapt to the
// scheduler), so measured service rates isolate exactly the admission
// policy. SLA: A [0.8, 1.0], B [0.2, 1.0] on a 320 req/s provider; offered
// load A 200 req/s (one fifth of its guarantee's worth of pressure) and
// B 600 req/s (flooding).
//
// Agreement enforcement serves all of A (its 200 req/s offer is under its
// 256 req/s floor) and hands B the remainder; equal-weight fair sharing
// splits the server down the middle (160/160), letting the flood push A
// below its contractual guarantee.
#include <cstdlib>
#include <iostream>
#include <memory>

#include "coord/control_plane.hpp"
#include "coord/window_driver.hpp"
#include "core/flow.hpp"
#include "nodes/l4_redirector.hpp"
#include "nodes/server.hpp"
#include "nodes/trace_client.hpp"
#include "sched/response_time_scheduler.hpp"
#include "sched/weighted_fair_scheduler.hpp"
#include "util/table.hpp"
#include "workload/trace.hpp"

using namespace sharegrid;

namespace {

struct Outcome {
  double a_served = 0.0;
  double b_served = 0.0;
};

/// Runs the trace through an L4 stack with the given scheduler.
Outcome run_with(const sched::Scheduler* scheduler,
                 const workload::RequestTrace& trace) {
  sim::Simulator sim;
  nodes::Metrics metrics(3);
  nodes::Server server(&sim, &metrics, {"s", 0, 320.0, {1, 80}});
  nodes::ServerPool pool;
  pool.add(&server);
  coord::ControlPlane plane(scheduler, {});
  coord::ControlPlane::Member* member = plane.add_member();
  nodes::L4Redirector redirector(&sim, &metrics, &pool, member, {});
  coord::SimWindowDriver driver(&sim, &plane);
  driver.start(100 * kMillisecond);
  // A lone redirector still needs its aggregation feedback (normally the
  // combining tree): without a snapshot it stays conservative forever.
  std::uint64_t round = 0;
  sim::PeriodicTask aggregator(&sim, 50 * kMillisecond, 100 * kMillisecond,
                               [member, &round] {
                                 member->receive_global(
                                     round++, member->local_demand());
                               });

  nodes::TraceClient client(&sim, &metrics, &redirector, &trace, {}, Rng(9));
  client.start();
  sim.run_until(seconds(40));

  return {metrics.served(1).average_rate(seconds(10), seconds(38)),
          metrics.served(2).average_rate(seconds(10), seconds(38))};
}

}  // namespace

int main() {
  std::cout << "=== ablation: schedulers head-to-head on one open-loop "
               "trace (A [0.8,1] offers 200, B [0.2,1] floods 600) ===\n\n";

  // Principals: S (provider, owns the server), A, B.
  core::AgreementGraph g;
  g.add_principal("S", 320.0);
  g.add_principal("A", 0.0);
  g.add_principal("B", 0.0);
  g.set_agreement(0, 1, 0.8, 1.0);
  g.set_agreement(0, 2, 0.2, 1.0);

  workload::ActivityPlan plan(2);
  plan.always_active(0, seconds(40));
  plan.always_active(1, seconds(40));
  const workload::ReplySizeDistribution sizes;
  const workload::RequestTrace trace =
      workload::RequestTrace::synthesize(plan, {1, 2}, {200.0, 600.0}, sizes,
                                         2026);

  const sched::ResponseTimeScheduler lp(g, core::compute_access_levels(g));
  const sched::WeightedFairScheduler wfq(320.0, {0.0, 0.5, 0.5});

  const Outcome lp_out = run_with(&lp, trace);
  const Outcome wfq_out = run_with(&wfq, trace);

  TextTable table({"scheduler", "A served (offers 200)",
                   "B served (floods 600)", "B bounded by agreement?"});
  table.add_row({"LP agreements (this paper)", TextTable::num(lp_out.a_served),
                 TextTable::num(lp_out.b_served),
                 lp_out.b_served <= 0.41 * 320.0 + 8.0 ? "yes" : "no"});
  table.add_row({"equal-weight fair share", TextTable::num(wfq_out.a_served),
                 TextTable::num(wfq_out.b_served), "n/a (no such concept)"});
  table.print(std::cout);
  std::cout << '\n';

  // LP: A fully served (200 < its 256 floor), B gets the remainder (~115,
  // a little less after queue-drain dynamics). WFQ: both flows backlogged
  // => equal 160/160 split, 40 req/s below A's offer and guarantee.
  bool ok = true;
  if (std::abs(lp_out.a_served - 200.0) > 20.0 ||
      std::abs(lp_out.b_served - 115.0) > 20.0) {
    std::cout << "MISMATCH: LP expected A~200 B~115, got " << lp_out.a_served
              << "/" << lp_out.b_served << "\n";
    ok = false;
  }
  if (std::abs(wfq_out.a_served - 160.0) > 16.0 ||
      std::abs(wfq_out.b_served - 160.0) > 16.0) {
    std::cout << "MISMATCH: WFQ expected the 160/160 split, got "
              << wfq_out.a_served << "/" << wfq_out.b_served << "\n";
    ok = false;
  }

  // Same trace, B's contract tightened to [0.2, 0.4]: the LP clamps B at
  // 128 and leaves capacity idle (the contract is the contract); WFQ cannot
  // express that and still hands B the slack.
  core::AgreementGraph tight = g;
  tight.set_agreement(0, 2, 0.2, 0.4);
  const sched::ResponseTimeScheduler lp_tight(
      tight, core::compute_access_levels(tight));
  const Outcome tight_out = run_with(&lp_tight, trace);
  std::cout << "With B tightened to [0.2, 0.4]: LP serves B at "
            << TextTable::num(tight_out.b_served)
            << " req/s (contract ceiling 128); fair share has no way to "
               "express this.\n";
  if (tight_out.b_served > 130.0) {
    std::cout << "MISMATCH: tightened ceiling not enforced\n";
    ok = false;
  }

  std::cout << (ok ? "\nablation: on identical input, fair sharing breaks "
                     "A's guarantee (160 < 200 offered under a 256 floor); "
                     "the LP scheduler enforces the [lb, ub] contract "
                     "structure exactly.\n"
                   : "\nablation: SHAPE MISMATCH\n");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
