// Micro-benchmark M3: simulator engine throughput and the relative cost of
// the two redirector implementations.
//
// The paper reports the L4 redirector "outperforms the application-level
// redirector in terms of its impact on request latency and bandwidth"
// (§5.2): the L7 path doubles the network round trips. In the simulator the
// same asymmetry appears as more events (hops) per request, measured here.
#include <benchmark/benchmark.h>

#include "experiments/scenario.hpp"
#include "sim/simulator.hpp"

using namespace sharegrid;
using namespace sharegrid::experiments;

namespace {

void BM_SimulatorEventThroughput(benchmark::State& state) {
  // Self-rescheduling event chains: the engine's core cost.
  const auto chains = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t fired = 0;
    std::function<void()> hop;
    for (std::size_t c = 0; c < chains; ++c) {
      std::function<void()> self = [&sim, &fired, &self] {
        if (++fired % 1000 != 0) sim.schedule_after(10, self);
      };
      sim.schedule_at(static_cast<SimTime>(c), self);
    }
    sim.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chains) * 1000);
}
BENCHMARK(BM_SimulatorEventThroughput)->Arg(1)->Arg(8)->Arg(64);

ScenarioConfig small_scenario(Layer layer) {
  core::AgreementGraph g;
  const auto s = g.add_principal("S", 0.0);
  const auto a = g.add_principal("A", 0.0);
  g.set_agreement(s, a, 1.0, 1.0);

  ScenarioConfig c;
  c.graph = g;
  c.layer = layer;
  c.servers = {{"S", 320.0}};
  c.clients = {{"C1", "A", 0, 200.0, {{0.0, 10.0}}}};
  c.phases = {{"steady", 1.0, 10.0}};
  c.duration_sec = 10.0;
  return c;
}

/// Wall-clock cost of simulating ~2000 requests end to end per layer. The
/// L7 path is costlier per request (redirect bounce = extra hops), mirroring
/// the paper's overhead comparison.
void BM_ScenarioL7(benchmark::State& state) {
  const ScenarioConfig config = small_scenario(Layer::kL7);
  for (auto _ : state) benchmark::DoNotOptimize(run_scenario(config));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_ScenarioL7);

void BM_ScenarioL4(benchmark::State& state) {
  const ScenarioConfig config = small_scenario(Layer::kL4);
  for (auto _ : state) benchmark::DoNotOptimize(run_scenario(config));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_ScenarioL4);

}  // namespace
