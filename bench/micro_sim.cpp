// Micro-benchmark M3: simulator engine throughput and the relative cost of
// the two redirector implementations.
//
// The paper reports the L4 redirector "outperforms the application-level
// redirector in terms of its impact on request latency and bandwidth"
// (§5.2): the L7 path doubles the network round trips. In the simulator the
// same asymmetry appears as more events (hops) per request, measured here.
//
// The engine workloads cover the timing wheel's regimes (see
// docs/sim-performance.md): dense near-future chains (level 0), mixed
// horizons that force cascades across levels, far-future one-shots that
// land in the overflow list, and cancellation churn where most wheel
// traffic is inert tombstone events from dead PeriodicTasks.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "experiments/scenario.hpp"
#include "sim/simulator.hpp"

using namespace sharegrid;
using namespace sharegrid::experiments;

namespace {

void BM_SimulatorEventThroughput(benchmark::State& state) {
  // Self-rescheduling event chains: the engine's core cost. The chain
  // closures live in a vector so the self-reference stays valid for the
  // whole run; the scheduled hop captures only one pointer, so the engine's
  // per-event storage cost is measured, not std::function copying.
  const auto chains = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t fired = 0;
    std::vector<std::function<void()>> hop(chains);
    for (std::size_t c = 0; c < chains; ++c) {
      std::function<void()>& self = hop[c];
      self = [&sim, &fired, &self] {
        if (++fired % 1000 != 0) sim.schedule_after(10, [&self] { self(); });
      };
      sim.schedule_at(static_cast<SimTime>(c), [&self] { self(); });
    }
    sim.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chains) * 1000);
}
BENCHMARK(BM_SimulatorEventThroughput)->Arg(1)->Arg(8)->Arg(64);

void BM_SimulatorMixedHorizon(benchmark::State& state) {
  // Chains that hop across wildly different horizons: 10 us, ~8 ms, ~0.5 s,
  // ~34 s. Far hops park events in high wheel levels and every firing drags
  // them down through cascades — the wheel's worst case relative to a heap,
  // which pays the same O(log n) regardless of horizon.
  static constexpr SimDuration kDeltas[] = {10, SimDuration{1} << 13,
                                            SimDuration{1} << 19,
                                            SimDuration{1} << 25};
  const auto chains = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kFiresPerChain = 200;
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t fired = 0;
    std::vector<std::function<void()>> hop(chains);
    for (std::size_t c = 0; c < chains; ++c) {
      std::function<void()>& self = hop[c];
      std::uint64_t step = c;  // stagger which horizon each chain starts on
      self = [&sim, &fired, &self, step]() mutable {
        ++fired;
        if (++step % kFiresPerChain != 0)
          sim.schedule_after(kDeltas[step % 4], [&self] { self(); });
      };
      sim.schedule_at(static_cast<SimTime>(c), [&self] { self(); });
    }
    sim.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(chains * kFiresPerChain));
}
BENCHMARK(BM_SimulatorMixedHorizon)->Arg(64);

void BM_SimulatorFarFuture(benchmark::State& state) {
  // One-shot events scattered up to ~2^42 us (= 52 days) ahead, plus a few
  // past the wheel horizon entirely: exercises deep-level insertion, the
  // multi-level cascade path, and the overflow list.
  constexpr std::size_t kEvents = 4096;
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t fired = 0;
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;  // deterministic xorshift
    for (std::size_t i = 0; i < kEvents; ++i) {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      const auto t = static_cast<SimTime>(rng & ((std::uint64_t{1} << 42) - 1));
      sim.schedule_at(t, [&fired] { ++fired; });
    }
    for (int i = 0; i < 8; ++i)  // beyond the 2^48-us wheel horizon
      sim.schedule_at((SimTime{1} << 50) + i, [&fired] { ++fired; });
    sim.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kEvents + 8));
}
BENCHMARK(BM_SimulatorFarFuture);

void BM_SimulatorCancellationChurn(benchmark::State& state) {
  // Periodic-task churn: a rolling fleet of tasks where the oldest is
  // cancelled and replaced every millisecond. Cancelled tasks leave inert
  // events behind, so a large share of wheel traffic is tombstones — the
  // pattern window schedulers and combining-tree rounds produce when nodes
  // are rebuilt mid-run.
  constexpr std::size_t kTasks = 64;
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t fired = 0;
    std::deque<std::unique_ptr<sim::PeriodicTask>> tasks;
    for (std::size_t i = 0; i < kTasks; ++i)
      tasks.push_back(std::make_unique<sim::PeriodicTask>(
          &sim, static_cast<SimTime>(i), 100, [&fired] { ++fired; }));
    sim::PeriodicTask churn(&sim, 500, 1000, [&] {
      tasks.pop_front();  // cancels via destructor; pending event goes inert
      tasks.push_back(std::make_unique<sim::PeriodicTask>(
          &sim, sim.now() + 1, 100, [&fired] { ++fired; }));
    });
    sim.run_until(seconds(1.0));
    churn.cancel();
    tasks.clear();
    benchmark::DoNotOptimize(fired);
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTasks) * 10000);
}
BENCHMARK(BM_SimulatorCancellationChurn);

ScenarioConfig small_scenario(Layer layer) {
  core::AgreementGraph g;
  const auto s = g.add_principal("S", 0.0);
  const auto a = g.add_principal("A", 0.0);
  g.set_agreement(s, a, 1.0, 1.0);

  ScenarioConfig c;
  c.graph = g;
  c.layer = layer;
  c.servers = {{"S", 320.0}};
  c.clients = {{"C1", "A", 0, 200.0, {{0.0, 10.0}}}};
  c.phases = {{"steady", 1.0, 10.0}};
  c.duration_sec = 10.0;
  return c;
}

/// Wall-clock cost of simulating ~2000 requests end to end per layer. The
/// L7 path is costlier per request (redirect bounce = extra hops), mirroring
/// the paper's overhead comparison.
void BM_ScenarioL7(benchmark::State& state) {
  const ScenarioConfig config = small_scenario(Layer::kL7);
  for (auto _ : state) benchmark::DoNotOptimize(run_scenario(config));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_ScenarioL7);

void BM_ScenarioL4(benchmark::State& state) {
  const ScenarioConfig config = small_scenario(Layer::kL4);
  for (auto _ : state) benchmark::DoNotOptimize(run_scenario(config));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_ScenarioL4);

/// Cluster-partitioned runner at 1/2/4/8 worker lanes: 8 clusters of the
/// community workload, ~26k requests per run, with the star exchange on
/// 50 ms links. The /1 point is the serial oracle every other point must
/// match bitwise (and does — audited); on multi-core hosts the others show
/// the lane speedup, on a single hardware thread they show the lanes
/// timeslicing (barrier + handoff overhead only). See
/// docs/sim-performance.md for the recorded ratios.
void BM_ScenarioSharded(benchmark::State& state) {
  core::AgreementGraph g;
  const auto a = g.add_principal("A", 0.0);
  const auto b = g.add_principal("B", 0.0);
  g.set_agreement(a, b, 0.3, 1.0);
  g.set_agreement(b, a, 0.3, 1.0);

  ScenarioConfig c;
  c.graph = g;
  c.layer = Layer::kL4;
  c.servers = {{"A", 200.0}, {"B", 200.0}};
  c.clients = {{"CA", "A", 0, 240.0, {{0.0, 10.0}}},
               {"CB", "B", 0, 160.0, {{2.0, 9.0}}}};
  c.phases = {{"steady", 1.0, 10.0}};
  c.duration_sec = 10.0;
  c.tree_link_delay = 50 * kMillisecond;
  c.clusters = 8;
  c.sim_shards = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(run_scenario(c));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          8 * 3280);
}
// Wall-clock, not per-thread CPU: the work runs on pool lanes the harness's
// CPU counter never sees, so CPU-time rates would overstate lane scaling.
BENCHMARK(BM_ScenarioSharded)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace
