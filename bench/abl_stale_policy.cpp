// Ablation A2: what a redirector assumes before the first combining-tree
// aggregate arrives (DESIGN.md).
//
// The paper's redirectors are conservative: with no global information each
// admits only a 1/R slice of the mandatory levels (Figure 8 phase 1's 30
// req/s). The obvious alternative — act as if the local view is the whole
// system — uses an idle cluster fully but over-admits under real load. This
// bench runs both policies through a 10-second information blackout with
// both organizations active and quantifies the trade: utilization during
// the blackout vs response-time damage from the overload backlog.
#include <cstdlib>
#include <iostream>

#include "experiments/scenario.hpp"
#include "util/table.hpp"

using namespace sharegrid;
using namespace sharegrid::experiments;

namespace {

ScenarioConfig blackout_config(sched::StalePolicy policy) {
  core::AgreementGraph g;
  const auto s = g.add_principal("S", 0.0);
  const auto a = g.add_principal("A", 0.0);
  const auto b = g.add_principal("B", 0.0);
  g.set_agreement(s, a, 0.8, 1.0);
  g.set_agreement(s, b, 0.2, 1.0);

  ScenarioConfig c;
  c.graph = g;
  c.layer = Layer::kL7;
  c.scheduler = SchedulerKind::kResponseTime;
  c.redirector_count = 2;
  c.servers = {{"S", 320.0}};
  c.clients = {
      {"C1", "A", 0, 135.0, {{0.0, 14.0}}},
      {"C2", "A", 0, 135.0, {{0.0, 14.0}}},
      {"C3", "B", 1, 135.0, {{0.0, 14.0}}},
  };
  // The blackout: aggregates take 2 x 5 s to come back, so the first 10 s
  // run on the stale policy alone.
  c.tree_link_delay = 5 * kSecond;
  c.phases = {{"blackout", 1.0, 9.0}, {"informed", 11.0, 14.0}};
  c.duration_sec = 14.0;
  c.stale_policy = policy;
  return c;
}

}  // namespace

int main() {
  std::cout << "=== ablation: stale-information policy during a 10 s "
               "aggregate blackout ===\n\n";

  const ScenarioResult conservative =
      run_scenario(blackout_config(sched::StalePolicy::kConservative));
  const ScenarioResult optimistic =
      run_scenario(blackout_config(sched::StalePolicy::kOptimistic));

  auto blackout_served = [](const ScenarioResult& r) {
    return r.phase_served(0, 1) + r.phase_served(0, 2);  // A + B
  };

  TextTable table({"policy", "blackout served (req/s)", "utilization",
                   "peak server backlog (s)"});
  table.add_row({"conservative (paper)",
                 TextTable::num(blackout_served(conservative)),
                 TextTable::num(blackout_served(conservative) / 320.0, 2),
                 TextTable::num(conservative.server_backlog_sec.max(), 2)});
  table.add_row({"optimistic",
                 TextTable::num(blackout_served(optimistic)),
                 TextTable::num(blackout_served(optimistic) / 320.0, 2),
                 TextTable::num(optimistic.server_backlog_sec.max(), 2)});
  table.print(std::cout);
  std::cout << '\n';

  // Shape checks. Conservative: half the mandatory levels = (256 + 64)/2 =
  // 160 req/s but the server's queue stays essentially empty — admissions
  // never exceed capacity, so every admitted request is served promptly.
  // Optimistic: full utilization, but the two redirectors jointly admit
  // ~405 req/s against 320 of capacity, piling up seconds of server backlog
  // that the agreements can no longer shape (the server, not the
  // scheduler, decides who is served during the blackout).
  bool ok = true;
  const double cons = blackout_served(conservative);
  const double opti = blackout_served(optimistic);
  if (std::abs(cons - 160.0) > 24.0) {
    std::cout << "MISMATCH: conservative blackout throughput " << cons
              << ", expected ~160\n";
    ok = false;
  }
  if (opti < 280.0) {
    std::cout << "MISMATCH: optimistic blackout throughput " << opti
              << ", expected near capacity\n";
    ok = false;
  }
  if (conservative.server_backlog_sec.max() > 0.2) {
    std::cout << "MISMATCH: conservative must keep the server queue short\n";
    ok = false;
  }
  if (optimistic.server_backlog_sec.max() < 1.0) {
    std::cout << "MISMATCH: optimistic should overload the server during "
                 "the blackout\n";
    ok = false;
  }
  std::cout << (ok ? "ablation: conservative admission keeps the server "
                     "inside capacity (agreements stay enforceable) at the "
                     "cost of blackout utilization.\n"
                   : "ablation: SHAPE MISMATCH\n");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
