// Reproduces Figure 7 (§5.1): optional tickets are allocated in proportion
// to incoming request rates, minimizing community-wide response time.
#include "figure_common.hpp"

int main() {
  return sharegrid::bench::run_figure(sharegrid::experiments::figure7());
}
