// Reproduces Figure 3 (§2.3): tickets, currencies and agreements — the
// worked valuation example whose final currency values the paper states.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "core/ticket.hpp"
#include "util/table.hpp"

using namespace sharegrid;

int main() {
  std::cout << "=== fig3: ticket/currency valuation ===\n\n";

  core::AgreementGraph g;
  const auto a = g.add_principal("A", 1000.0);
  const auto b = g.add_principal("B", 1500.0);
  const auto c = g.add_principal("C", 0.0);
  g.set_agreement(a, b, 0.4, 0.6);
  g.set_agreement(b, c, 0.6, 1.0);

  const core::TicketLedger ledger = core::TicketLedger::from_agreements(g);
  TextTable tickets({"ticket", "kind", "issuer", "holder", "face"});
  int idx = 1;
  for (const core::Ticket& t : ledger.tickets()) {
    tickets.add_row({"Ticket" + std::to_string(idx++),
                     t.kind == core::TicketKind::kMandatory ? "mandatory"
                                                            : "optional",
                     g.name(t.issuer), g.name(t.holder),
                     TextTable::num(t.face_value, 0)});
  }
  tickets.print(std::cout);
  std::cout << '\n';

  const core::AccessLevels levels = core::compute_access_levels(g);
  TextTable values({"principal", "capacity", "M_currency", "final_MC",
                    "final_OC"});
  for (core::PrincipalId p = 0; p < g.size(); ++p) {
    values.add_row({g.name(p), TextTable::num(g.capacity(p), 0),
                    TextTable::num(levels.mandatory_value[p], 0),
                    TextTable::num(levels.mandatory_capacity[p], 0),
                    TextTable::num(levels.optional_capacity[p], 0)});
  }
  values.print(std::cout);
  std::cout << '\n';

  // The paper's stated final values: A (600,400), B (760,1340), C (1140,960).
  const double expected[3][2] = {{600, 400}, {760, 1340}, {1140, 960}};
  bool ok = true;
  for (core::PrincipalId p = 0; p < 3; ++p) {
    if (std::abs(levels.mandatory_capacity[p] - expected[p][0]) > 1e-6 ||
        std::abs(levels.optional_capacity[p] - expected[p][1]) > 1e-6) {
      std::cout << "MISMATCH at principal " << g.name(p) << '\n';
      ok = false;
    }
  }
  std::cout << (ok ? "fig3: all currency values match the paper exactly.\n"
                   : "fig3: SHAPE MISMATCH\n");
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
