// Tests for the sharegrid_analyze rule library (tools/analyze/): every rule
// gets one passing and one firing fixture, plus regressions for the
// comment/literal stripper, the baseline workflow, and the JSON renderer.
// Fixtures are in-memory SourceFiles — no filesystem involved — so each
// case pins exactly one behaviour of the analyzer.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "analyze/include_graph.hpp"

namespace sharegrid::analyze {
namespace {

/// Runs the full analyzer over @p files and returns the violations that
/// match @p rule ("" = all).
std::vector<Violation> violations_of(const std::vector<SourceFile>& files,
                                     const std::string& rule = "") {
  const Report report = analyze(files);
  std::vector<Violation> out;
  for (const Violation& v : report.violations)
    if (rule.empty() || v.rule == rule) out.push_back(v);
  return out;
}

/// A minimal clean header body; fixtures append the line under test.
SourceFile header(const std::string& path, const std::string& body) {
  return {path, "#pragma once\n" + body + "\n"};
}

// ---------------------------------------------------------------------------
// Comment/literal stripper (satellite: raw strings + spliced comments)

TEST(AnalyzeStrip, BlanksLineAndBlockComments) {
  const auto lines = strip_comments_and_literals(
      "int a; // assert(x)\nint /* abort() */ b;\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].find("assert"), std::string::npos);
  EXPECT_EQ(lines[1].find("abort"), std::string::npos);
  EXPECT_NE(lines[0].find("int a;"), std::string::npos);
  EXPECT_NE(lines[1].find("b;"), std::string::npos);
}

TEST(AnalyzeStrip, BlanksStringAndCharLiteralContents) {
  const auto lines =
      strip_comments_and_literals("f(\"assert(1)\", '\\'', \"\\\"abort()\");");
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0].find("assert"), std::string::npos);
  EXPECT_EQ(lines[0].find("abort"), std::string::npos);
}

TEST(AnalyzeStrip, RawStringContentsAreBlankedToTheRealTerminator) {
  // A naive '"'-scan would end the literal at the inner quote and leak
  // `assert(x);` into the code stream.
  const auto lines = strip_comments_and_literals(
      "auto s = R\"sg(quote \" then assert(x);)sg\";\nassert(y);\n");
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0].find("assert"), std::string::npos);
  EXPECT_NE(lines[1].find("assert(y);"), std::string::npos);
}

TEST(AnalyzeStrip, RawStringEncodingPrefixesAreRecognised) {
  const auto lines = strip_comments_and_literals(
      "auto s = u8R\"(assert(a))\"; auto t = LR\"(abort())\";");
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0].find("assert"), std::string::npos);
  EXPECT_EQ(lines[0].find("abort"), std::string::npos);
}

TEST(AnalyzeStrip, MultiLineRawStringKeepsLineNumbering) {
  const auto lines = strip_comments_and_literals(
      "auto s = R\"(line one assert(x)\nline two abort()\n)\";\nint z;\n");
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0].find("assert"), std::string::npos);
  EXPECT_EQ(lines[1].find("abort"), std::string::npos);
  EXPECT_NE(lines[3].find("int z;"), std::string::npos);
}

TEST(AnalyzeStrip, SplicedLineCommentContinuesOntoNextPhysicalLine) {
  // The backslash-newline splice makes the second physical line part of the
  // comment; scanning it as code would flag the assert.
  const auto lines = strip_comments_and_literals(
      "// a comment that continues \\\nassert(x);\nassert(y);\n");
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[1].find("assert"), std::string::npos);
  EXPECT_NE(lines[2].find("assert(y);"), std::string::npos);
}

TEST(AnalyzeStrip, IdentifierEndingInRIsNotARawStringOpener) {
  const auto lines =
      strip_comments_and_literals("LOG_ERROR(\"abort() happened\");");
  ASSERT_FALSE(lines.empty());
  // The literal is a plain string: its contents are blanked normally...
  EXPECT_EQ(lines[0].find("abort"), std::string::npos);
  // ...and the statement's closing tokens survive (a raw-string
  // misparse would swallow the rest of the line looking for )delim").
  EXPECT_NE(lines[0].find(");"), std::string::npos);
}

TEST(AnalyzeCanonicalPath, TakesComponentsAfterLastSrc) {
  EXPECT_EQ(canonical_path("/root/repo/src/net/tcp.hpp"), "net/tcp.hpp");
  EXPECT_EQ(canonical_path("src/util/time.hpp"), "util/time.hpp");
  EXPECT_EQ(canonical_path("sched/a.hpp"), "sched/a.hpp");  // fixture form
}

// ---------------------------------------------------------------------------
// Ported per-line rules

TEST(AnalyzeRules, NoRawAssertFiresOnAssertCall) {
  const auto v =
      violations_of({header("core/a.hpp", "void f() { assert(1); }")},
                    "no-raw-assert");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 2u);
  EXPECT_NE(v[0].message.find("ContractViolation"), std::string::npos);
}

TEST(AnalyzeRules, NoRawAssertPassesOnContractMacroAndComment) {
  EXPECT_TRUE(violations_of({header("core/a.hpp",
                                    "void f() { SHAREGRID_EXPECTS(1); }\n"
                                    "// assert(1) in a comment is fine")},
                            "no-raw-assert")
                  .empty());
}

TEST(AnalyzeRules, NoStdoutFiresAndInlineAllowSuppresses) {
  EXPECT_EQ(violations_of({header("core/a.hpp", "void f() { std::cout << 1; }")},
                          "no-stdout")
                .size(),
            1u);
  EXPECT_TRUE(
      violations_of(
          {header("core/a.hpp",
                  "void f() { std::cout << 1; }  "
                  "// sharegrid-analyze: allow(no-stdout)")},
          "no-stdout")
          .empty());
  // The historical sharegrid-lint spelling keeps working.
  EXPECT_TRUE(violations_of({header("core/a.hpp",
                                    "void f() { std::cout << 1; }  "
                                    "// sharegrid-lint: allow(no-stdout)")},
                            "no-stdout")
                  .empty());
}

TEST(AnalyzeRules, NoRawRngFiresOnRandPassesOnRng) {
  EXPECT_EQ(violations_of({header("sim/a.hpp", "int f() { return rand(); }")},
                          "no-raw-rng")
                .size(),
            1u);
  EXPECT_TRUE(violations_of({header("sim/a.hpp",
                                    "int f(Rng& rng) { return rng.next(); }")},
                            "no-raw-rng")
                  .empty());
}

TEST(AnalyzeRules, PragmaOnceFiresOnHeaderWithoutGuard) {
  const auto v = violations_of({{"core/a.hpp", "int x;\n"}}, "pragma-once");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 1u);
  // .cpp files need no guard.
  EXPECT_TRUE(violations_of({{"core/a.cpp", "int x;\n"}}, "pragma-once").empty());
}

TEST(AnalyzeRules, CoordOwnsWindowsFiresOutsideCoordPassesInside) {
  const std::string decl = "class X { WindowScheduler sched_; };";
  EXPECT_EQ(violations_of({header("live/a.hpp", decl)}, "coord-owns-windows")
                .size(),
            1u);
  EXPECT_TRUE(violations_of({header("coord/a.hpp", decl)}, "coord-owns-windows")
                  .empty());
  // References don't own.
  EXPECT_TRUE(violations_of({header("live/a.hpp",
                                    "class X { WindowScheduler& sched_; };")},
                            "coord-owns-windows")
                  .empty());
}

TEST(AnalyzeRules, WarningsLinkedFiresOnUnlinkedCompiledTarget) {
  const auto fire = violations_of(
      {{"src/foo/CMakeLists.txt",
        "add_executable(foo foo.cpp)\ntarget_link_libraries(foo PRIVATE bar)\n"}},
      "warnings-linked");
  ASSERT_EQ(fire.size(), 1u);
  EXPECT_NE(fire[0].message.find("sharegrid_warnings"), std::string::npos);
  EXPECT_TRUE(
      violations_of(
          {{"src/foo/CMakeLists.txt",
            "add_executable(foo foo.cpp)\n"
            "target_link_libraries(foo PRIVATE sharegrid_warnings)\n"}},
          "warnings-linked")
          .empty());
  // Header-only targets compile nothing and are exempt.
  EXPECT_TRUE(violations_of({{"src/foo/CMakeLists.txt",
                              "add_library(foo INTERFACE)\n"}},
                            "warnings-linked")
                  .empty());
}

// ---------------------------------------------------------------------------
// New rules

TEST(AnalyzeRules, NoUnorderedIterationFiresOnUnorderedMapPassesOnMap) {
  const auto v = violations_of(
      {header("core/a.hpp", "std::unordered_map<int, int> m_;")},
      "no-unordered-iteration");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].message.find("hash order"), std::string::npos);
  EXPECT_TRUE(violations_of({header("core/a.hpp", "std::map<int, int> m_;")},
                            "no-unordered-iteration")
                  .empty());
}

TEST(AnalyzeRules, NoWallClockFiresOutsideLive) {
  const auto v = violations_of(
      {header("sched/a.hpp",
              "auto t() { return std::chrono::steady_clock::now(); }")},
      "no-wall-clock");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].message.find("SimTime"), std::string::npos);
}

TEST(AnalyzeRules, NoWallClockExemptsLiveAndUtilTime) {
  const std::string body =
      "auto t() { return std::chrono::steady_clock::now(); }";
  EXPECT_TRUE(violations_of({header("live/a.hpp", body)}, "no-wall-clock")
                  .empty());
  EXPECT_TRUE(
      violations_of({header("/root/repo/src/util/time.hpp", body)},
                    "no-wall-clock")
          .empty());
}

TEST(AnalyzeRules, NoWallClockSkipsMemberTimeCalls) {
  // `event.time()` and `e->time()` are accessors, not the C library clock.
  EXPECT_TRUE(violations_of({header("sim/a.hpp",
                                    "auto f(Event e) { return e.time(); }\n"
                                    "auto g(Event* e) { return e->time(); }")},
                            "no-wall-clock")
                  .empty());
  EXPECT_EQ(violations_of({header("sim/a.hpp",
                                  "auto f() { return time(nullptr); }")},
                          "no-wall-clock")
                .size(),
            1u);
}

TEST(AnalyzeRules, MutexAnnotatedFiresOnBareMutexMember) {
  const auto v = violations_of(
      {header("core/a.hpp", "class X {\n  int n_ = 0;\n  std::mutex mutex_;\n};")},
      "mutex-annotated");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 4u);
  EXPECT_NE(v[0].message.find("SHAREGRID_GUARDED_BY"), std::string::npos);
}

TEST(AnalyzeRules, MutexAnnotatedPassesWhenAnnotationNamesTheMutex) {
  EXPECT_TRUE(
      violations_of(
          {header("core/a.hpp",
                  "class X {\n"
                  "  int n_ SHAREGRID_GUARDED_BY(mutex_) = 0;\n"
                  "  util::Mutex mutex_;\n};")},
          "mutex-annotated")
          .empty());
  // EXCLUDES on a method also counts (a mutex can guard nothing directly).
  EXPECT_TRUE(
      violations_of(
          {header("core/a.hpp",
                  "class X {\n"
                  "  void run() SHAREGRID_EXCLUDES(mutex_);\n"
                  "  util::Mutex mutex_;\n};")},
          "mutex-annotated")
          .empty());
  // lock_guard<std::mutex> is a use, not a member declaration.
  EXPECT_TRUE(violations_of({header("core/a.hpp",
                                    "void f(std::mutex& m) {\n"
                                    "  const std::lock_guard<std::mutex> l(m);\n"
                                    "}")},
                            "mutex-annotated")
                  .empty());
}

TEST(AnalyzeRules, NodiscardStatusFiresOnUnmarkedDeclaration) {
  const auto v = violations_of(
      {header("lp/a.hpp", "class S {\n  Status solve(Problem& p);\n};")},
      "nodiscard-status");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 3u);
  EXPECT_NE(v[0].message.find("[[nodiscard]]"), std::string::npos);
}

TEST(AnalyzeRules, NodiscardStatusPassesWhenMarkedSameOrPreviousLine) {
  EXPECT_TRUE(
      violations_of(
          {header("lp/a.hpp",
                  "class S {\n  [[nodiscard]] Status solve(Problem& p);\n};")},
          "nodiscard-status")
          .empty());
  EXPECT_TRUE(violations_of({header("lp/a.hpp",
                                    "class S {\n  [[nodiscard]]\n"
                                    "  Status solve(Problem& p);\n};")},
                            "nodiscard-status")
                  .empty());
  // Status used as a value or scope, not a return type.
  EXPECT_TRUE(violations_of({header("lp/a.hpp",
                                    "Status s = Status::kOptimal;\n"
                                    "bool ok(Status s);")},
                            "nodiscard-status")
                  .empty());
}

// ---------------------------------------------------------------------------
// Include-graph rules

TEST(AnalyzeLayerDag, UpwardIncludeFiresWithChainAndAllowedSet) {
  const auto v = violations_of(
      {header("util/bad.hpp", "#include \"sched/thing.hpp\"")}, "layer-dag");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].line, 2u);
  EXPECT_NE(v[0].message.find("util/bad.hpp -> sched/thing.hpp"),
            std::string::npos);
  EXPECT_NE(v[0].message.find("DESIGN.md D11"), std::string::npos);
}

TEST(AnalyzeLayerDag, DownwardAndSameLayerIncludesPass) {
  EXPECT_TRUE(
      violations_of(
          {header("sched/a.hpp",
                  "#include \"core/capacity.hpp\"\n#include \"lp/solver.hpp\"\n"
                  "#include \"sched/b.hpp\"\n#include \"util/time.hpp\""),
           header("sched/b.hpp", "int x;")},
          "layer-dag")
          .empty());
}

TEST(AnalyzeLayerDag, SidewaysPeerIncludeFires) {
  // sim and core are peers: neither may include the other.
  EXPECT_EQ(violations_of({header("sim/a.hpp", "#include \"sched/b.hpp\"")},
                          "layer-dag")
                .size(),
            1u);
}

TEST(AnalyzeLayerDag, IncludeCycleReportsFullChain) {
  const auto v = violations_of(
      {header("sched/a.hpp", "#include \"sched/b.hpp\""),
       header("sched/b.hpp", "#include \"sched/c.hpp\""),
       header("sched/c.hpp", "#include \"sched/a.hpp\"")},
      "layer-dag");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].message.find("include cycle"), std::string::npos);
  // The full chain names every participant, ending where it started.
  EXPECT_NE(v[0].message.find("sched/a.hpp"), std::string::npos);
  EXPECT_NE(v[0].message.find("sched/b.hpp"), std::string::npos);
  EXPECT_NE(v[0].message.find("sched/c.hpp"), std::string::npos);
}

TEST(AnalyzeLayerDag, EveryLayerMayDependOnItselfAndTableIsClosed) {
  // The allowed-deps table is the single source of truth for DESIGN.md D11;
  // sanity-pin its shape: self-edges everywhere, and every named dependency
  // is itself a known layer.
  for (const auto& [layer, deps] : allowed_layer_deps()) {
    EXPECT_EQ(deps.count(layer), 1u) << layer;
    for (const std::string& dep : deps)
      EXPECT_EQ(allowed_layer_deps().count(dep), 1u)
          << layer << " -> " << dep;
  }
  EXPECT_EQ(layer_of("util/time.hpp"), "util");
  EXPECT_EQ(layer_of("not_a_layer/x.hpp"), "");
}

// ---------------------------------------------------------------------------
// Baseline workflow and output formats

TEST(AnalyzeBaseline, EntrySuppressesMatchingViolation) {
  const std::vector<SourceFile> files = {
      header("core/a.hpp", "void f() { assert(1); }")};
  const auto baseline = parse_baseline(
      "# tolerated while the port lands\nno-raw-assert core/a.hpp\n");
  const Report report = analyze(files, baseline);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.suppressed, 1u);
  EXPECT_TRUE(report.stale.empty());
}

TEST(AnalyzeBaseline, EntryOnlySuppressesItsOwnRule) {
  const std::vector<SourceFile> files = {
      header("core/a.hpp", "void f() { assert(1); std::cout << 1; }")};
  const Report report =
      analyze(files, parse_baseline("no-raw-assert core/a.hpp\n"));
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].rule, "no-stdout");
}

TEST(AnalyzeBaseline, StaleEntryFailsTheRun) {
  const std::vector<SourceFile> files = {header("core/a.hpp", "int x;")};
  const Report report =
      analyze(files, parse_baseline("no-raw-assert core/gone.hpp\n"));
  EXPECT_TRUE(report.violations.empty());
  ASSERT_EQ(report.stale.size(), 1u);
  EXPECT_EQ(report.stale[0].rule, "no-raw-assert");
  EXPECT_EQ(report.stale[0].path, "core/gone.hpp");
  EXPECT_FALSE(report.clean());
}

TEST(AnalyzeBaseline, MatchesOnCanonicalPath) {
  // The scan may run from anywhere; baseline entries use src-relative paths.
  const std::vector<SourceFile> files = {
      header("/root/repo/src/core/a.hpp", "void f() { assert(1); }")};
  const Report report =
      analyze(files, parse_baseline("no-raw-assert core/a.hpp\n"));
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.suppressed, 1u);
}

TEST(AnalyzeReport, TextFormatShowsPathLineRuleAndSummary) {
  const Report report =
      analyze({header("core/a.hpp", "void f() { assert(1); }")});
  std::ostringstream out;
  write_text(report, out);
  EXPECT_NE(out.str().find("core/a.hpp:2: [no-raw-assert]"),
            std::string::npos);
  EXPECT_NE(out.str().find("1 violation(s)"), std::string::npos);
}

TEST(AnalyzeReport, JsonFormatIsWellFormedAndEscaped) {
  const Report report = analyze(
      {header("core/a.hpp", "void f() { assert(1); }")});
  std::ostringstream out;
  write_json(report, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"violations\":[{\"file\":\"core/a.hpp\",\"line\":2,"
                      "\"rule\":\"no-raw-assert\""),
            std::string::npos);
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
  // Clean runs render an empty list, not a missing key.
  const Report ok = analyze({header("core/a.hpp", "int x;")});
  std::ostringstream out_ok;
  write_json(ok, out_ok);
  EXPECT_NE(out_ok.str().find("\"violations\":[]"), std::string::npos);
  EXPECT_NE(out_ok.str().find("\"clean\":true"), std::string::npos);
}

TEST(AnalyzeReport, JsonEscapesQuotesAndBackslashes) {
  std::ostringstream out;
  Report report;
  report.violations.push_back({"a\"b\\c.hpp", 1, "r", "line1\nline2\ttab"});
  write_json(report, out);
  EXPECT_NE(out.str().find("a\\\"b\\\\c.hpp"), std::string::npos);
  EXPECT_NE(out.str().find("line1\\nline2\\ttab"), std::string::npos);
}

}  // namespace
}  // namespace sharegrid::analyze
