// Unit tests for the node layer: server machines, pools, client machines,
// and both redirector implementations.
#include <gtest/gtest.h>

#include <vector>

#include "coord/control_plane.hpp"
#include "coord/window_driver.hpp"
#include "nodes/client.hpp"
#include "nodes/l4_redirector.hpp"
#include "nodes/l7_redirector.hpp"
#include "nodes/metrics.hpp"
#include "nodes/server.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"

namespace sharegrid::nodes {
namespace {

using test::FixedRateScheduler;

Request make_request(core::PrincipalId p, std::uint64_t id, SimTime created,
                     std::size_t client = 0) {
  Request r;
  r.id = id;
  r.principal = p;
  r.created = created;
  r.client = client;
  return r;
}

// --- Server ------------------------------------------------------------------

TEST(Server, ServesAtConfiguredCapacity) {
  sim::Simulator sim;
  Metrics metrics(1);
  Server server(&sim, &metrics, {"s", 0, 100.0, {1, 80}});

  int completions = 0;
  for (int i = 0; i < 50; ++i) {
    server.submit(make_request(0, static_cast<std::uint64_t>(i), 0),
                  [&](const Request&) { ++completions; });
  }
  // 50 requests at 100/s take 0.5 s of busy time.
  sim.run_until(seconds(0.25));
  EXPECT_NEAR(completions, 25, 1);
  sim.run_until(seconds(1.0));
  EXPECT_EQ(completions, 50);
  EXPECT_DOUBLE_EQ(server.units_served(), 50.0);
}

TEST(Server, WeightScalesServiceTime) {
  sim::Simulator sim;
  Metrics metrics(1);
  Server server(&sim, &metrics, {"s", 0, 100.0, {1, 80}});

  Request big = make_request(0, 1, 0);
  big.weight = 10.0;  // a 10x request takes 0.1 s at 100 units/s
  SimTime done = -1;
  server.submit(big, [&](const Request&) { done = sim.now(); });
  sim.run_all();
  EXPECT_EQ(done, seconds(0.1));
}

TEST(Server, BacklogReflectsQueuedWork) {
  sim::Simulator sim;
  Metrics metrics(1);
  Server server(&sim, &metrics, {"s", 0, 100.0, {1, 80}});
  EXPECT_DOUBLE_EQ(server.backlog_seconds(), 0.0);
  for (int i = 0; i < 10; ++i)
    server.submit(make_request(0, static_cast<std::uint64_t>(i), 0),
                  nullptr);
  EXPECT_NEAR(server.backlog_seconds(), 0.1, 1e-6);
}

TEST(Server, RecordsServedMetrics) {
  sim::Simulator sim;
  Metrics metrics(2);
  Server server(&sim, &metrics, {"s", 0, 100.0, {1, 80}});
  server.submit(make_request(1, 1, 0), nullptr);
  sim.run_all();
  EXPECT_EQ(metrics.served(1).total_events(), 1u);
  EXPECT_EQ(metrics.served(0).total_events(), 0u);
}

TEST(ServerPool, PicksLeastBackloggedMachineOfOwner) {
  sim::Simulator sim;
  Metrics metrics(2);
  Server s1(&sim, &metrics, {"s1", 0, 100.0, {1, 80}});
  Server s2(&sim, &metrics, {"s2", 0, 100.0, {2, 80}});
  Server other(&sim, &metrics, {"s3", 1, 100.0, {3, 80}});
  ServerPool pool;
  pool.add(&s1);
  pool.add(&s2);
  pool.add(&other);

  EXPECT_EQ(pool.pick(0), &s1);  // tie broken by declaration order
  s1.submit(make_request(0, 1, 0), nullptr);
  EXPECT_EQ(pool.pick(0), &s2);  // s1 now has backlog
  EXPECT_EQ(pool.pick(1), &other);
  EXPECT_EQ(pool.pick(5), nullptr);
  EXPECT_DOUBLE_EQ(pool.capacity(0), 200.0);
  EXPECT_EQ(pool.find({2, 80}), &s2);
  EXPECT_EQ(pool.find({9, 9}), nullptr);
}

// --- ClientMachine -------------------------------------------------------------

/// Records everything a redirector would see.
class RecordingRedirector final : public RedirectorBase {
 public:
  void on_client_request(const Request& request, RequestSource* from) override {
    requests.push_back(request);
    froms.push_back(from);
  }
  std::vector<Request> requests;
  std::vector<RequestSource*> froms;
};

ClientMachine::Config client_config(double rate, std::size_t max_outstanding,
                                    bool exponential = false) {
  ClientMachine::Config c;
  c.name = "c";
  c.principal = 0;
  c.index = 0;
  c.rate = rate;
  c.max_outstanding = max_outstanding;
  c.exponential_arrivals = exponential;
  c.net_delay = 100;
  return c;
}

TEST(ClientMachine, GeneratesAtConfiguredRate) {
  sim::Simulator sim;
  Metrics metrics(1);
  RecordingRedirector redirector;
  ClientMachine client(&sim, &metrics, &redirector, client_config(100.0, 1000),
                       Rng(1));
  client.set_active(true);
  sim.run_until(seconds(10.0));
  EXPECT_NEAR(static_cast<double>(redirector.requests.size()), 1000.0, 5.0);
}

TEST(ClientMachine, DeactivationStopsGeneration) {
  sim::Simulator sim;
  Metrics metrics(1);
  RecordingRedirector redirector;
  ClientMachine client(&sim, &metrics, &redirector, client_config(100.0, 1000),
                       Rng(2));
  client.set_active(true);
  sim.run_until(seconds(1.0));
  client.set_active(false);
  const auto count = redirector.requests.size();
  sim.run_until(seconds(5.0));
  EXPECT_LE(redirector.requests.size(), count + 1);  // at most one in flight
}

TEST(ClientMachine, OutstandingCapThrottlesGeneration) {
  sim::Simulator sim;
  Metrics metrics(1);
  RecordingRedirector redirector;  // never responds => slots never free
  ClientMachine client(&sim, &metrics, &redirector, client_config(100.0, 7),
                       Rng(3));
  client.set_active(true);
  sim.run_until(seconds(5.0));
  EXPECT_EQ(redirector.requests.size(), 7u);
  EXPECT_EQ(client.outstanding(), 7u);
}

TEST(ClientMachine, SelfRedirectRetriesSameRequest) {
  sim::Simulator sim;
  Metrics metrics(1);
  RecordingRedirector redirector;
  auto config = client_config(100.0, 10);
  config.retry_delay_sec = 0.5;
  ClientMachine client(&sim, &metrics, &redirector, config, Rng(4));
  client.set_active(true);
  sim.run_until(seconds(0.02));  // one request out
  ASSERT_GE(redirector.requests.size(), 1u);
  const Request first = redirector.requests[0];

  client.set_active(false);
  client.on_self_redirect(first);
  sim.run_until(seconds(2.0));
  // The retry arrives with the same id and original creation time.
  const Request& retried = redirector.requests.back();
  EXPECT_EQ(retried.id, first.id);
  EXPECT_EQ(retried.created, first.created);
  EXPECT_EQ(metrics.rejected(0).total_events(), 1u);
}

TEST(ClientMachine, ResponseFreesSlotAndRecordsLatency) {
  sim::Simulator sim;
  Metrics metrics(1);
  RecordingRedirector redirector;
  ClientMachine client(&sim, &metrics, &redirector, client_config(100.0, 5),
                       Rng(5));
  client.set_active(true);
  sim.run_until(seconds(0.05));
  ASSERT_GE(client.outstanding(), 1u);
  const std::size_t before = client.outstanding();

  Request done = redirector.requests[0];
  sim.run_until(seconds(1.0) + 1);  // move time forward for latency
  client.on_response(done);
  EXPECT_EQ(client.outstanding(), before - 1);
  EXPECT_EQ(metrics.latency(0).count(), 1u);
  EXPECT_GT(metrics.latency(0).mean(), 0.9);
}

// --- L7Redirector ---------------------------------------------------------------

struct L7Fixture {
  sim::Simulator sim;
  Metrics metrics{2};
  FixedRateScheduler scheduler;
  std::unique_ptr<coord::ControlPlane> plane;
  std::unique_ptr<coord::SimWindowDriver> driver;
  std::unique_ptr<Server> server0;
  std::unique_ptr<Server> server1;
  ServerPool pool;
  std::unique_ptr<L7Redirector> redirector;
  std::unique_ptr<ClientMachine> client;

  explicit L7Fixture(std::vector<double> rates,
                     L7Redirector::Mode mode = L7Redirector::Mode::kCreditBased)
      : scheduler(std::move(rates)) {
    plane = std::make_unique<coord::ControlPlane>(&scheduler,
                                                  coord::ControlPlaneConfig{});
    server0 = std::make_unique<Server>(&sim, &metrics,
                                       Server::Config{"s0", 0, 1000.0, {1, 80}});
    server1 = std::make_unique<Server>(&sim, &metrics,
                                       Server::Config{"s1", 1, 1000.0, {2, 80}});
    pool.add(server0.get());
    pool.add(server1.get());
    L7Redirector::Config rc;
    rc.name = "r";
    rc.mode = mode;
    redirector = std::make_unique<L7Redirector>(&sim, &metrics, &pool,
                                                plane->add_member(), rc);
    ClientMachine::Config cc;
    cc.name = "c";
    cc.principal = 0;
    cc.rate = 100.0;
    cc.max_outstanding = 1000;
    cc.exponential_arrivals = false;
    client = std::make_unique<ClientMachine>(&sim, &metrics, redirector.get(),
                                             cc, Rng(6));
    driver = std::make_unique<coord::SimWindowDriver>(&sim, plane.get());
    driver->start(100 * kMillisecond);
  }
};

TEST(L7Redirector, AdmitsWithinQuotaServesViaServer) {
  L7Fixture f({200.0, 0.0});  // plenty of quota for principal 0
  f.client->set_active(true);
  f.sim.run_until(seconds(5.0));
  // ~500 requests generated, all should be admitted and served — except the
  // handful arriving before the first scheduling window opens any quota.
  EXPECT_NEAR(static_cast<double>(f.metrics.served(0).total_events()), 490.0,
              20.0);
  EXPECT_LE(f.redirector->self_redirects(), 15u);
}

TEST(L7Redirector, OverQuotaRequestsSelfRedirect) {
  L7Fixture f({40.0, 0.0});  // quota 40/s against 100/s offered
  f.client->set_active(true);
  f.sim.run_until(seconds(10.0));
  const double served = f.metrics.served(0).average_rate(seconds(2),
                                                          seconds(10));
  EXPECT_NEAR(served, 40.0, 4.0);
  EXPECT_GT(f.redirector->self_redirects(), 100u);
  EXPECT_GT(f.metrics.rejected(0).total_events(), 100u);
}

TEST(L7Redirector, ExplicitQueueModeHoldsAndReleasesPerWindow) {
  L7Fixture f({40.0, 0.0}, L7Redirector::Mode::kExplicitQueue);
  f.client->set_active(true);
  f.sim.run_until(seconds(10.0));
  // Same long-run service rate, but no self-redirects: the queue is real.
  const double served = f.metrics.served(0).average_rate(seconds(2),
                                                          seconds(10));
  EXPECT_NEAR(served, 40.0, 4.0);
  EXPECT_EQ(f.redirector->self_redirects(), 0u);
}

TEST(L7Redirector, LocalDemandTracksArrivals) {
  L7Fixture f({200.0, 0.0});
  f.client->set_active(true);
  f.sim.run_until(seconds(5.0));
  const std::vector<double> demand = f.redirector->local_demand();
  EXPECT_NEAR(demand[0], 100.0, 10.0);
  EXPECT_NEAR(demand[1], 0.0, 1e-9);
}

// --- L4Redirector ---------------------------------------------------------------

struct L4Fixture {
  sim::Simulator sim;
  Metrics metrics{2};
  FixedRateScheduler scheduler;
  std::unique_ptr<coord::ControlPlane> plane;
  std::unique_ptr<coord::SimWindowDriver> driver;
  std::unique_ptr<Server> server0;
  std::unique_ptr<Server> server1;
  ServerPool pool;
  std::unique_ptr<L4Redirector> redirector;
  std::unique_ptr<ClientMachine> client;

  explicit L4Fixture(std::vector<double> rates, std::size_t max_queue = 1 << 16)
      : scheduler(std::move(rates)) {
    plane = std::make_unique<coord::ControlPlane>(&scheduler,
                                                  coord::ControlPlaneConfig{});
    server0 = std::make_unique<Server>(&sim, &metrics,
                                       Server::Config{"s0", 0, 1000.0, {1, 80}});
    server1 = std::make_unique<Server>(&sim, &metrics,
                                       Server::Config{"s1", 0, 1000.0, {2, 80}});
    pool.add(server0.get());
    pool.add(server1.get());
    L4Redirector::Config rc;
    rc.name = "r";
    rc.max_queue = max_queue;
    redirector = std::make_unique<L4Redirector>(&sim, &metrics, &pool,
                                                plane->add_member(), rc);
    ClientMachine::Config cc;
    cc.name = "c";
    cc.principal = 0;
    cc.rate = 100.0;
    cc.max_outstanding = 1000;
    cc.exponential_arrivals = false;
    client = std::make_unique<ClientMachine>(&sim, &metrics, redirector.get(),
                                             cc, Rng(7));
    driver = std::make_unique<coord::SimWindowDriver>(&sim, plane.get());
    driver->start(100 * kMillisecond);
  }
};

TEST(L4Redirector, ForwardsAdmittedSynsEndToEnd) {
  L4Fixture f({200.0, 0.0});
  f.client->set_active(true);
  f.sim.run_until(seconds(5.0));
  EXPECT_NEAR(static_cast<double>(f.metrics.served(0).total_events()), 490.0,
              20.0);
  // Responses flowed back through the NAT path to the client.
  EXPECT_NEAR(static_cast<double>(f.metrics.latency(0).count()), 490.0, 20.0);
  EXPECT_EQ(f.redirector->queue_length(0), 0u);
}

TEST(L4Redirector, QueuesOverQuotaAndReinjectsNextWindows) {
  L4Fixture f({40.0, 0.0});
  f.client->set_active(true);
  f.sim.run_until(seconds(10.0));
  const double served =
      f.metrics.served(0).average_rate(seconds(2), seconds(10));
  EXPECT_NEAR(served, 40.0, 4.0);
  EXPECT_GT(f.redirector->queue_length(0), 50u);  // backlog is real
  EXPECT_EQ(f.redirector->drops(), 0u);
}

TEST(L4Redirector, BoundedQueueDropsWhenFull) {
  L4Fixture f({1.0, 0.0}, /*max_queue=*/10);
  f.client->set_active(true);
  f.sim.run_until(seconds(5.0));
  EXPECT_EQ(f.redirector->queue_length(0), 10u);
  EXPECT_GT(f.redirector->drops(), 0u);
  EXPECT_GT(f.metrics.rejected(0).total_events(), 0u);
}

TEST(L4Redirector, ConnectionsDrainAfterService) {
  L4Fixture f({200.0, 0.0});
  f.client->set_active(true);
  f.sim.run_until(seconds(2.0));
  f.client->set_active(false);
  f.sim.run_until(seconds(4.0));
  // All connections released once replies went back.
  EXPECT_EQ(f.redirector->connections().active_connections(), 0u);
}

TEST(L4Redirector, VipMapsPrincipals) {
  EXPECT_EQ(L4Redirector::vip(0).host, 0x0A000000u);
  EXPECT_EQ(L4Redirector::vip(3).host, 0x0A000003u);
  EXPECT_EQ(L4Redirector::vip(0).port, 80);
}

}  // namespace
}  // namespace sharegrid::nodes
