// Determinism suite for the timing-wheel event engine (DESIGN.md D4/D8).
//
// The wheel must be observationally identical to a (time, seq)-ordered
// priority queue: equal-timestamp FIFO even when events reach level 0
// through different cascade paths, exact deadline semantics, and correct
// ordering across bucket edges, level boundaries, and the 2^48-us overflow
// horizon. Violations here would silently change every figure bench.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "sim/simulator.hpp"
#include "sim/timing_wheel.hpp"
#include "util/assert.hpp"

namespace sharegrid::sim {
namespace {

TEST(TimingWheel, EqualTimestampFifoAcrossCascadeDepths) {
  // Three events at the same instant, scheduled from ever-closer cursors so
  // each enters the wheel at a different level; cascades must still deliver
  // them in scheduling order.
  constexpr SimTime kT = 1'000'000;  // level 3 seen from t=0
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(kT, [&] { order.push_back(0); });
  sim.run_until(900'000);  // kT now differs in bits [6, 18) -> level 2
  sim.schedule_at(kT, [&] { order.push_back(1); });
  sim.run_until(999'999);  // kT now differs only in bits [0, 6) -> level 1
  sim.schedule_at(kT, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sim.now(), kT);
}

TEST(TimingWheel, BucketEdgeTimesExecuteInOrder) {
  // Event times straddling every level's bucket edge, scheduled in a
  // scrambled order; execution must sort by time with FIFO ties.
  const std::vector<SimTime> edges = {
      0,       1,        63,       64,        65,       4095,
      4096,    4097,     262143,   262144,    262145,   (SimTime{1} << 24) - 1,
      SimTime{1} << 24, (SimTime{1} << 24) + 1};
  Simulator sim;
  std::vector<SimTime> fired;
  // Schedule back-to-front, then front-to-back duplicates: per timestamp the
  // back-to-front copy has the lower seq and must fire first.
  std::vector<int> copy_order;
  for (auto it = edges.rbegin(); it != edges.rend(); ++it) {
    const SimTime t = *it;
    sim.schedule_at(t, [&, t] {
      fired.push_back(t);
      copy_order.push_back(0);
    });
  }
  for (const SimTime t : edges) {
    sim.schedule_at(t, [&, t] {
      fired.push_back(t);
      copy_order.push_back(1);
    });
  }
  sim.run_all();
  ASSERT_EQ(fired.size(), 2 * edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(fired[2 * i], edges[i]);
    EXPECT_EQ(fired[2 * i + 1], edges[i]);
    EXPECT_EQ(copy_order[2 * i], 0) << "seq order lost at t=" << edges[i];
    EXPECT_EQ(copy_order[2 * i + 1], 1);
  }
}

TEST(TimingWheel, RunUntilLandsExactlyOnDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime{1} << 30, [&] { ++fired; });
  // Deadlines that cross several level boundaries without reaching the
  // event; each must leave now() == deadline and the event pending.
  for (const SimTime deadline :
       {SimTime{63}, SimTime{64}, SimTime{4096}, SimTime{1} << 20,
        (SimTime{1} << 30) - 1}) {
    sim.run_until(deadline);
    EXPECT_EQ(sim.now(), deadline);
    EXPECT_EQ(fired, 0);
    EXPECT_FALSE(sim.idle());
    // The engine must accept new work exactly at the deadline.
    sim.schedule_at(deadline, [] {});
    sim.run_until(deadline);
  }
  sim.run_until(SimTime{1} << 30);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime{1} << 30);
  EXPECT_TRUE(sim.idle());
}

TEST(TimingWheel, EventsBeyondHorizonExecuteInOrder) {
  // 2^48 us is the wheel span; events past it live in the overflow list
  // until the cursor crosses into their horizon group.
  constexpr SimTime kHorizon = SimTime{1} << 48;
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(kHorizon + 10, [&] { order.push_back(2); });
  sim.schedule_at(kHorizon - 1, [&] { order.push_back(0); });
  sim.schedule_at(kHorizon, [&] { order.push_back(1); });
  sim.schedule_at(3 * kHorizon + 5, [&] { order.push_back(3); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.now(), 3 * kHorizon + 5);
}

TEST(TimingWheel, OverflowFifoAtEqualTimes) {
  constexpr SimTime kFar = (SimTime{1} << 49) + 123;
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i)
    sim.schedule_at(kFar, [&order, i] { order.push_back(i); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TimingWheel, RandomizedOrderMatchesStableSortReference) {
  // 4096 events at xorshift-random times across all wheel levels plus the
  // overflow, with deliberate collisions (times masked coarsely). Execution
  // order must equal a stable sort by time — the old heap's contract.
  Simulator sim;
  std::vector<std::pair<SimTime, int>> reference;
  std::vector<int> fired;
  std::uint64_t rng = 0x243f6a8885a308d3ull;
  for (int i = 0; i < 4096; ++i) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    // Coarse masks force equal-time groups; the top branch exceeds 2^48.
    const SimTime t = (i % 7 == 0)
                          ? (SimTime{1} << 48) + static_cast<SimTime>(rng & 0xff)
                          : static_cast<SimTime>(rng & 0x3ffffffffffc0ull);
    reference.emplace_back(t, i);
    sim.schedule_at(t, [&fired, i] { fired.push_back(i); });
  }
  std::stable_sort(reference.begin(), reference.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  sim.run_all();
  ASSERT_EQ(fired.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i)
    EXPECT_EQ(fired[i], reference[i].second) << "at position " << i;
}

TEST(TimingWheel, AuditConsistencyAcceptsCascadedState) {
  // Drive the wheel directly through inserts and cursor motion; the audit
  // walk must agree with the counters at every step.
  TimingWheel wheel;
  std::vector<EventNode> nodes(64);
  std::uint64_t seq = 0;
  auto insert_at = [&](SimTime t) {
    EventNode& node = nodes[static_cast<std::size_t>(seq)];
    node.time = t;
    node.seq = seq++;
    node.fn = [] {};
    wheel.insert(&node);
  };
  insert_at(5);
  insert_at(70);       // level 1
  insert_at(70);       // same slot, FIFO behind
  insert_at(5000);     // level 2
  insert_at(SimTime{1} << 30);
  insert_at((SimTime{1} << 48) + 7);  // overflow
  wheel.audit_consistency(seq, 0);

  std::uint64_t popped = 0;
  SimTime last = -1;
  for (;;) {
    const SimTime due = wheel.next_due(TimingWheel::kNoEvent);
    if (due == TimingWheel::kNoEvent) break;
    EXPECT_GE(due, last);
    last = due;
    EventNode* node = wheel.pop_at(due);
    EXPECT_EQ(node->time, due);
    ++popped;
    wheel.audit_consistency(seq, popped);
  }
  EXPECT_EQ(popped, seq);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheel, AuditDetectsLostEvent) {
  TimingWheel wheel;
  EventNode node;
  node.time = 100;
  node.seq = 0;
  node.fn = [] {};
  wheel.insert(&node);
  // Claim two were inserted: the walk finds one, conservation must fail.
  EXPECT_THROW(wheel.audit_consistency(2, 0), ContractViolation);
}

TEST(Callback, InlineAndHeapCapturesBothInvoke) {
  int hits = 0;
  Callback small([&hits] { ++hits; });
  small();
  EXPECT_EQ(hits, 1);

  // Oversized capture (> 48 bytes) forces the heap path; behaviour must be
  // identical.
  struct Big {
    double payload[16] = {};
  } big;
  big.payload[3] = 7.0;
  double sum = 0.0;
  Callback large([big, &sum] { sum += big.payload[3]; });
  large();
  EXPECT_EQ(sum, 7.0);
}

TEST(Callback, MoveTransfersAndEmptiesSource) {
  int hits = 0;
  Callback a([&hits] { ++hits; });
  Callback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  a = std::move(b);
  a();
  EXPECT_EQ(hits, 2);
  a.reset();
  EXPECT_TRUE(a == nullptr);
}

TEST(Callback, DestroysCaptureExactlyOnce) {
  struct Counted {
    int* live;
    explicit Counted(int* l) : live(l) { ++*live; }
    Counted(const Counted& o) : live(o.live) { ++*live; }
    Counted(Counted&& o) noexcept : live(o.live) { o.live = nullptr; }
    ~Counted() {
      if (live != nullptr) --*live;
    }
    void operator()() const {}
  };
  int live = 0;
  {
    Callback cb{Counted(&live)};
    EXPECT_EQ(live, 1);
    Callback moved(std::move(cb));
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(live, 0);
}

TEST(Simulator, NodeRecyclingSurvivesChurn) {
  // Many schedule/run rounds on one engine: the freelist must hand back
  // nodes without corrupting pending state (asan/ubsan builds check the
  // lifetime story; this checks the accounting).
  Simulator sim;
  std::uint64_t fired = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 37; ++i)
      sim.schedule_after(static_cast<SimDuration>(i % 11), [&] { ++fired; });
    sim.run_until(sim.now() + 20);
  }
  sim.run_all();
  EXPECT_EQ(fired, 100u * 37u);
  EXPECT_EQ(sim.events_processed(), fired);
}

}  // namespace
}  // namespace sharegrid::sim
