// Tests for the conservatively synchronized multi-domain engine
// (sim/sharded_simulator.hpp): epoch stepping, deterministic barrier
// delivery, shard-count invariance of the per-domain event streams, the
// unconditional lookahead-violation check, and event conservation.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/sharded_simulator.hpp"
#include "util/assert.hpp"

namespace sharegrid {
namespace {

using sim::ShardedSimulator;

ShardedSimulator::Options options(SimDuration lookahead, std::size_t shards) {
  ShardedSimulator::Options o;
  o.lookahead = lookahead;
  o.shards = shards;
  return o;
}

TEST(ShardedSimulator, RunsLocalEventsPerDomain) {
  ShardedSimulator sharded(3, options(100, 2));
  std::vector<int> fired(3, 0);
  for (std::size_t d = 0; d < 3; ++d) {
    for (int i = 0; i < 5; ++i)
      sharded.domain(d).schedule_at(10 * (i + 1),
                                    [&fired, d] { ++fired[d]; });
  }
  sharded.run_until(1000);
  EXPECT_EQ(sharded.now(), 1000);
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_EQ(fired[d], 5);
    EXPECT_EQ(sharded.domain(d).now(), 1000);
  }
  EXPECT_EQ(sharded.events_processed(), 15u);
  EXPECT_EQ(sharded.epochs(), 10u);
}

TEST(ShardedSimulator, SetupPostsDeliverAtFirstBarrier) {
  ShardedSimulator sharded(2, options(50, 1));
  std::vector<SimTime> seen;
  sharded.post(0, 1, 75, [&sharded, &seen] { seen.push_back(sharded.domain(1).now()); });
  sharded.post(1, 0, 0, [&sharded, &seen] { seen.push_back(sharded.domain(0).now()); });
  sharded.run_until(200);
  ASSERT_EQ(seen.size(), 2u);
  // Domain 0's message at t=0, domain 1's at t=75 (delivery order is by
  // source; execution order is by event time inside each domain).
  EXPECT_EQ(seen[0], 0);
  EXPECT_EQ(seen[1], 75);
  EXPECT_EQ(sharded.posts_sent(), 2u);
  EXPECT_EQ(sharded.posts_delivered(), 2u);
  sharded.audit_event_conservation();  // posts all accounted for
}

TEST(ShardedSimulator, LookaheadViolationThrowsInEveryBuild) {
  ShardedSimulator sharded(2, options(100, 1));
  // An event running in epoch [0, 100) posts for t = 50 < 100: the link
  // delay this post models is shorter than the declared lookahead, which
  // would let domain 1 miss a message for time it already executed.
  sharded.domain(0).schedule_at(10, [&sharded] {
    sharded.post(0, 1, 50, [] {});
  });
  EXPECT_THROW(sharded.run_until(1000), ContractViolation);
}

TEST(ShardedSimulator, PostAtEpochEndIsLegal) {
  ShardedSimulator sharded(2, options(100, 2));
  int delivered = 0;
  sharded.domain(0).schedule_at(10, [&sharded, &delivered] {
    sharded.post(0, 1, 100, [&delivered] { ++delivered; });
  });
  sharded.run_until(300);
  EXPECT_EQ(delivered, 1);
}

/// Ping-pong workload: every domain keeps local periodic work and relays a
/// token to the next domain with exactly-lookahead delay. The recorded
/// per-domain trace (time, tag) is the full observable event stream.
std::vector<std::vector<std::pair<SimTime, std::string>>> run_ring_workload(
    std::size_t domains, std::size_t shards) {
  constexpr SimDuration kLookahead = 100;
  ShardedSimulator sharded(domains, options(kLookahead, shards));
  std::vector<std::vector<std::pair<SimTime, std::string>>> traces(domains);

  // Local periodic work, two tasks per domain to create equal-time events.
  std::vector<std::unique_ptr<sim::PeriodicTask>> tasks;
  for (std::size_t d = 0; d < domains; ++d) {
    sim::Simulator& local = sharded.domain(d);
    for (int t = 0; t < 2; ++t) {
      tasks.push_back(std::make_unique<sim::PeriodicTask>(
          &local, 30, 60, [&local, &traces, d, t] {
            traces[d].push_back({local.now(), "local" + std::to_string(t)});
          }));
    }
  }

  // Token relays: domain d -> d+1 with the link delay == lookahead. The
  // relay function must live long enough; keep it on the heap via a shared
  // recursive lambda structure.
  struct Relay {
    ShardedSimulator* sharded;
    std::vector<std::vector<std::pair<SimTime, std::string>>>* traces;
    std::size_t domains;
    void hop(std::size_t d, int hops_left) {
      sim::Simulator& local = sharded->domain(d);
      (*traces)[d].push_back({local.now(), "token"});
      if (hops_left == 0) return;
      const std::size_t next = (d + 1) % domains;
      sharded->post(d, next, local.now() + 100,
                    [this, next, hops_left] { hop(next, hops_left - 1); });
    }
  };
  Relay relay{&sharded, &traces, domains};
  for (std::size_t d = 0; d < domains; ++d) {
    sharded.domain(d).schedule_at(5 + static_cast<SimTime>(d),
                                  [&relay, d] { relay.hop(d, 12); });
  }

  sharded.run_until(2000);
  sharded.audit_event_conservation();
  return traces;
}

TEST(ShardedSimulator, EventStreamsInvariantToShardCount) {
  const auto serial = run_ring_workload(5, 1);
  for (const std::size_t shards : {2u, 4u, 8u}) {
    const auto parallel = run_ring_workload(5, shards);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t d = 0; d < serial.size(); ++d) {
      EXPECT_EQ(parallel[d], serial[d])
          << "domain " << d << " diverged at shards=" << shards;
    }
  }
}

TEST(ShardedSimulator, RepeatedRunUntilContinues) {
  ShardedSimulator sharded(2, options(10, 2));
  int count = 0;
  sim::PeriodicTask tick(&sharded.domain(0), 5, 10,
                         [&count] { ++count; });
  sharded.run_until(100);
  const int after_first = count;
  sharded.run_until(200);
  EXPECT_GT(count, after_first);
  EXPECT_EQ(sharded.now(), 200);
  tick.cancel();
}

}  // namespace
}  // namespace sharegrid
