// Serial/parallel equivalence for the multi-provider plan solves.
//
// The contract (DESIGN.md D8): per-provider income LPs are independent, so
// solving them on a worker pool must produce *bitwise* the same plans as
// solving them one after another — across many windows, with warm-started
// solver contexts carrying state window to window. These tests randomize
// demand sequences and compare serial vs pooled schedulers exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "audit/invariant_auditor.hpp"
#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "sched/multi_provider_scheduler.hpp"
#include "util/assert.hpp"
#include "util/worker_pool.hpp"

namespace sharegrid::sched {
namespace {

/// Two providers, three customers, asymmetric agreements and prices.
core::AgreementGraph make_graph() {
  core::AgreementGraph g;
  const auto s1 = g.add_principal("S1", 300.0);
  const auto s2 = g.add_principal("S2", 500.0);
  const auto a = g.add_principal("A", 0.0);
  const auto b = g.add_principal("B", 0.0);
  const auto c = g.add_principal("C", 0.0);
  g.set_agreement(s1, a, 0.3, 0.6);
  g.set_agreement(s1, b, 0.2, 0.7);
  g.set_agreement(s2, b, 0.4, 0.8);
  g.set_agreement(s2, c, 0.3, 0.5);
  return g;
}

std::vector<double> prices() { return {0.0, 0.0, 2.0, 1.0, 3.0}; }

/// Deterministic demand sequence with idle principals, spikes, and ties.
std::vector<std::vector<double>> demand_windows(std::size_t n,
                                                std::size_t windows) {
  std::vector<std::vector<double>> out;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  for (std::size_t w = 0; w < windows; ++w) {
    std::vector<double> demand(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      const auto bucket = rng % 5;
      demand[i] = bucket == 0 ? 0.0
                              : static_cast<double>(rng % 4000) / 7.0;
    }
    out.push_back(std::move(demand));
  }
  return out;
}

TEST(MultiProviderScheduler, SerialAndPooledPlansAreBitwiseEqual) {
  const core::AgreementGraph graph = make_graph();
  const core::AccessLevels levels = core::compute_access_levels(graph);
  const std::vector<core::PrincipalId> providers = {0, 1};

  MultiProviderScheduler serial(graph, levels, providers, prices(), nullptr);
  MultiProviderScheduler pooled(graph, levels, providers, prices(),
                                std::make_shared<WorkerPool>(3));

  for (const auto& demand : demand_windows(graph.size(), 40)) {
    const Plan a = serial.plan(demand);
    const Plan b = pooled.plan(demand);
    ASSERT_EQ(a.rate.rows(), b.rate.rows());
    for (std::size_t i = 0; i < a.rate.rows(); ++i)
      for (std::size_t k = 0; k < a.rate.cols(); ++k)
        ASSERT_EQ(a.rate(i, k), b.rate(i, k))
            << "rate(" << i << ", " << k << ") diverged";
    ASSERT_EQ(a.lp_fallback, b.lp_fallback);
    ASSERT_DOUBLE_EQ(serial.income(a), pooled.income(b));
  }
}

TEST(MultiProviderScheduler, PoolSizeNeverChangesThePlan) {
  const core::AgreementGraph graph = make_graph();
  const core::AccessLevels levels = core::compute_access_levels(graph);
  const std::vector<core::PrincipalId> providers = {0, 1};
  const auto windows = demand_windows(graph.size(), 15);

  std::vector<Plan> reference;
  MultiProviderScheduler serial(graph, levels, providers, prices(), nullptr);
  for (const auto& demand : windows) reference.push_back(serial.plan(demand));

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    MultiProviderScheduler pooled(graph, levels, providers, prices(),
                                  std::make_shared<WorkerPool>(threads));
    for (std::size_t w = 0; w < windows.size(); ++w) {
      const Plan p = pooled.plan(windows[w]);
      for (std::size_t i = 0; i < p.rate.rows(); ++i)
        for (std::size_t k = 0; k < p.rate.cols(); ++k)
          ASSERT_EQ(p.rate(i, k), reference[w].rate(i, k))
              << "threads=" << threads << " window=" << w;
    }
  }
}

TEST(MultiProviderScheduler, PlansRespectEntitlementColumns) {
  // No provider may admit beyond its own capacity, and plans only fill
  // provider columns.
  const core::AgreementGraph graph = make_graph();
  const core::AccessLevels levels = core::compute_access_levels(graph);
  MultiProviderScheduler scheduler(graph, levels, {0, 1}, prices(), nullptr);
  const std::vector<double> demand = {0.0, 0.0, 500.0, 500.0, 500.0};
  const Plan plan = scheduler.plan(demand);
  EXPECT_LE(plan.server_load(0), graph.capacity(0) + 1e-7);
  EXPECT_LE(plan.server_load(1), graph.capacity(1) + 1e-7);
  for (std::size_t i = 0; i < plan.rate.rows(); ++i)
    for (std::size_t k = 2; k < plan.rate.cols(); ++k)
      EXPECT_EQ(plan.rate(i, k), 0.0);
  // With saturated paying demand both pools should fill completely.
  EXPECT_NEAR(plan.server_load(0) + plan.server_load(1),
              graph.capacity(0) + graph.capacity(1), 1e-6);
}

TEST(AuditParallelPlanMatch, DetectsDivergence) {
  Plan a;
  a.rate = Matrix(2, 2, 1.0);
  a.demand = {1.0, 2.0};
  Plan b = a;
  audit::audit_parallel_plan_match(a, b, 0);  // identical: passes
  b.rate(1, 0) += 1e-12;  // any bit of drift must throw
  EXPECT_THROW(audit::audit_parallel_plan_match(a, b, 0), ContractViolation);
}

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  std::vector<int> counts(257, 0);
  pool.run_indexed(counts.size(),
                   [&](std::size_t i) { ++counts[i]; });  // disjoint slots
  for (std::size_t i = 0; i < counts.size(); ++i) EXPECT_EQ(counts[i], 1);
  // Reuse across runs, including an empty one.
  pool.run_indexed(0, [&](std::size_t) { ADD_FAILURE(); });
  pool.run_indexed(counts.size(), [&](std::size_t i) { ++counts[i]; });
  for (std::size_t i = 0; i < counts.size(); ++i) EXPECT_EQ(counts[i], 2);
}

TEST(WorkerPool, ZeroThreadsRunsInline) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  std::vector<int> counts(16, 0);
  pool.run_indexed(counts.size(), [&](std::size_t i) { ++counts[i]; });
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(WorkerPool, RethrowsLowestIndexException) {
  WorkerPool pool(4);
  // Indexes 3 and 9 throw; every index must still run, and the reported
  // error must be index 3's regardless of which thread hit which first.
  for (int attempt = 0; attempt < 20; ++attempt) {
    std::vector<int> ran(16, 0);
    try {
      pool.run_indexed(ran.size(), [&](std::size_t i) {
        ++ran[i];
        if (i == 3 || i == 9)
          throw ContractViolation("boom " + std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const ContractViolation& e) {
      EXPECT_STREQ(e.what(), "boom 3");
    }
    for (int r : ran) EXPECT_EQ(r, 1);
  }
}

}  // namespace
}  // namespace sharegrid::sched
