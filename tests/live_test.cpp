// Tests for the live (real-socket) Layer-7 redirector service: actual HTTP
// over loopback TCP, driven by the same scheduling stack as the simulator.
#include <gtest/gtest.h>

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "http/message.hpp"
#include "live/l7_service.hpp"
#include "net/tcp.hpp"
#include "sched/response_time_scheduler.hpp"
#include "test_helpers.hpp"

namespace sharegrid::live {
namespace {

/// One HTTP GET over a fresh loopback connection; returns the raw response.
std::string http_get(std::uint16_t port, const std::string& target) {
  net::Socket conn = net::Socket::connect_loopback(port);
  http::Request req;
  req.target = target;
  req.headers["host"] = "127.0.0.1";
  conn.write_all(req.serialize());
  return conn.read_http_head();
}

core::AgreementGraph one_org_graph() {
  core::AgreementGraph g;
  g.add_principal("S", 1000.0);
  g.add_principal("acme", 0.0);
  g.set_agreement(0, 1, 0.5, 1.0);
  return g;
}

// The plain Tcp.* socket tests moved to tests/net_tcp_test.cpp with the
// sockets themselves (live/tcp -> net/tcp); this file keeps the L7 service.

TEST(L7Service, RedirectsAdmittedRequestsToBackend) {
  const core::AgreementGraph graph = one_org_graph();
  test::FixedRateScheduler scheduler({0.0, 10000.0});
  L7Service::Config config;
  config.backends = {{"127.0.0.1:9001", 1}};
  L7Service service(&scheduler, graph, config);
  service.start();

  const std::string reply = http_get(service.port(), "/org/acme/index.html");
  const auto parsed = http::parse_response(reply);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 302);
  EXPECT_EQ(parsed->headers.at("location"),
            "http://127.0.0.1:9001/org/acme/index.html");
  EXPECT_EQ(service.admitted(), 1u);
  service.stop();
}

TEST(L7Service, OutOfQuotaSelfRedirects) {
  const core::AgreementGraph graph = one_org_graph();
  // 10 req/s => one request per 100 ms window; the second immediate request
  // in the same window must bounce back to the redirector itself.
  test::FixedRateScheduler scheduler({0.0, 10.0});
  L7Service::Config config;
  config.backends = {{"127.0.0.1:9001", 1}};
  L7Service service(&scheduler, graph, config);
  service.start();

  const std::string first = http_get(service.port(), "/org/acme/a");
  const std::string second = http_get(service.port(), "/org/acme/b");
  const auto r1 = http::parse_response(first);
  const auto r2 = http::parse_response(second);
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(r1->headers.at("location"), "http://127.0.0.1:9001/org/acme/a");
  const std::string self = "http://127.0.0.1:" +
                           std::to_string(service.port()) + "/org/acme/b";
  EXPECT_EQ(r2->headers.at("location"), self);
  EXPECT_EQ(service.admitted(), 1u);
  EXPECT_EQ(service.self_redirected(), 1u);
  service.stop();
}

TEST(L7Service, RejectsMalformedAndUnknown) {
  const core::AgreementGraph graph = one_org_graph();
  test::FixedRateScheduler scheduler({0.0, 100.0});
  L7Service::Config config;
  config.backends = {{"127.0.0.1:9001", 1}};
  L7Service service(&scheduler, graph, config);
  service.start();

  {
    net::Socket conn = net::Socket::connect_loopback(service.port());
    conn.write_all("NOT-HTTP\r\n\r\n");
    const auto resp = http::parse_response(conn.read_http_head());
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, 400);
  }
  {
    const auto resp =
        http::parse_response(http_get(service.port(), "/org/nobody/x"));
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, 404);
  }
  EXPECT_EQ(service.bad_requests(), 2u);
  service.stop();
}

TEST(L7Service, WorksWithTheRealScheduler) {
  // End-to-end with the actual response-time LP instead of a test stub.
  core::AgreementGraph graph = one_org_graph();
  const sched::ResponseTimeScheduler scheduler(
      graph, core::compute_access_levels(graph));
  L7Service::Config config;
  config.backends = {{"127.0.0.1:9001", 0}};  // S owns the hardware
  L7Service service(&scheduler, graph, config);
  service.start();

  int redirected_to_backend = 0;
  for (int i = 0; i < 20; ++i) {
    const auto resp =
        http::parse_response(http_get(service.port(), "/org/acme/page"));
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status, 302);
    if (resp->headers.at("location").find("9001") != std::string::npos)
      ++redirected_to_backend;
  }
  // acme is entitled to half of S's 1000 req/s — 20 quick requests all fit.
  EXPECT_EQ(redirected_to_backend, 20);
  service.stop();
}

TEST(L7Service, StopIsIdempotentAndRestartable) {
  const core::AgreementGraph graph = one_org_graph();
  test::FixedRateScheduler scheduler({0.0, 100.0});
  L7Service::Config config;
  config.backends = {{"127.0.0.1:9001", 1}};
  {
    L7Service service(&scheduler, graph, config);
    service.start();
    service.stop();
    service.stop();  // no-op
  }                  // destructor also calls stop()
}

}  // namespace
}  // namespace sharegrid::live
