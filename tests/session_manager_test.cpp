// Tests for the per-peer session layer (coord/session_manager.hpp): peer
// address validation, the HELLO handshake in both directions, zombie-
// incarnation rejection vs rejoin replacement, refusal-driven exponential
// backoff with a cap, and the kDialRefused semantics the election layer
// builds on. Real loopback sockets, fake poll clocks — same contract as the
// transport tests.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "coord/session_manager.hpp"
#include "coord/snapshot_wire.hpp"
#include "net/tcp.hpp"
#include "util/assert.hpp"

namespace sharegrid {
namespace {

using coord::SessionManager;

SessionManager::Options base_options(std::vector<std::string> peers,
                                     std::size_t self) {
  SessionManager::Options options;
  options.peers = std::move(peers);
  options.self_index = self;
  options.reconnect_base_usec = 1000;
  options.reconnect_max_usec = 4000;
  options.io_timeout_ms = 10;
  return options;
}

/// Polls both managers against a shared fake clock, collecting events per
/// manager, until @p done or the iteration budget runs out.
bool pump(std::vector<SessionManager*> managers,
          std::vector<std::vector<SessionManager::Event>*> sinks,
          std::int64_t* now, std::int64_t step,
          const std::function<bool()>& done) {
  for (int i = 0; i < 1000 && !done(); ++i) {
    for (std::size_t m = 0; m < managers.size(); ++m) {
      managers[m]->poll(*now);
      for (SessionManager::Event& e : managers[m]->take_events())
        sinks[m]->push_back(std::move(e));
    }
    *now += step;
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  return done();
}

TEST(SessionManager, ParsePeerValidatesAndSplits) {
  const auto local = SessionManager::parse_peer("127.0.0.1:7000", false);
  EXPECT_EQ(local.host, "127.0.0.1");
  EXPECT_EQ(local.port, 7000);
  // "localhost" is normalized, not resolved — no DNS in the fleet map.
  const auto named = SessionManager::parse_peer("localhost:80", false);
  EXPECT_EQ(named.host, "127.0.0.1");

  // Non-loopback peers are a deliberate opt-in.
  try {
    SessionManager::parse_peer("10.0.0.1:7000", false);
    FAIL() << "non-loopback peer accepted without allow_nonlocal";
  } catch (const ContractViolation& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("loopback"), std::string::npos) << msg;
    EXPECT_NE(msg.find("allow_nonlocal"), std::string::npos) << msg;
  }
  const auto remote = SessionManager::parse_peer("10.0.0.1:7000", true);
  EXPECT_EQ(remote.host, "10.0.0.1");
  EXPECT_EQ(remote.port, 7000);

  EXPECT_THROW(SessionManager::parse_peer("no-port-here", false),
               ContractViolation);
  EXPECT_THROW(SessionManager::parse_peer("127.0.0.1:65536", false),
               ContractViolation);
  EXPECT_THROW(SessionManager::parse_peer("127.0.0.1:x", false),
               ContractViolation);
}

TEST(SessionManager, HandshakeEstablishesBothSidesAndCarriesFrames) {
  // A listens on an ephemeral port; B (inbound-only entry, port 0) dials it.
  SessionManager a(base_options({"127.0.0.1:0", "127.0.0.1:0"}, 0));
  a.start();
  auto b_options =
      base_options({"127.0.0.1:" + std::to_string(a.listen_port()),
                    "127.0.0.1:0"},
                   1);
  b_options.incarnation = 7;
  b_options.hello_aux = (1ULL << 32) | 1ULL;
  SessionManager b(b_options);
  b.start();
  b.want(0, true);

  std::vector<SessionManager::Event> a_events, b_events;
  std::int64_t now = 0;
  ASSERT_TRUE(pump({&a, &b}, {&a_events, &b_events}, &now, 500, [&] {
    return a.established(1) && b.established(0);
  }));
  EXPECT_EQ(a.state(1), SessionManager::SessionState::kEstablished);
  EXPECT_EQ(b.state(0), SessionManager::SessionState::kEstablished);
  // The HELLO's identity claims surfaced on A's side of the session.
  EXPECT_EQ(a.peer_incarnation(1), 7u);
  EXPECT_EQ(a.peer_aux(1), (1ULL << 32) | 1ULL);
  ASSERT_FALSE(a_events.empty());
  EXPECT_EQ(a_events.front().kind, SessionManager::Event::Kind::kPeerUp);
  EXPECT_EQ(a_events.front().peer, 1u);
  EXPECT_EQ(a_events.front().incarnation, 7u);

  // Frames flow both ways once established, tagged with the peer index.
  coord::wire::Frame ping;
  ping.type = coord::wire::FrameType::kRoundStart;
  ping.round = 42;
  a.send(1, coord::wire::encode(ping));
  b_events.clear();
  ASSERT_TRUE(pump({&a, &b}, {&a_events, &b_events}, &now, 500, [&] {
    for (const SessionManager::Event& e : b_events)
      if (e.kind == SessionManager::Event::Kind::kFrame && e.peer == 0 &&
          e.frame.round == 42)
        return true;
    return false;
  }));

  a.stop();
  b.stop();
}

TEST(SessionManager, ZombieHelloIsRejectedAndRejoinReplaces) {
  std::vector<std::string> rejects;
  SessionManager::Options a_options =
      base_options({"127.0.0.1:0", "127.0.0.1:0"}, 0);
  // on_reject may fire from reader threads in general; in this test all the
  // rejected frames are protocol-level (handled in poll), so a plain vector
  // is safe.
  a_options.on_reject = [&rejects](const char* why) {
    rejects.push_back(why);
  };
  SessionManager a(a_options);
  a.start();

  auto peer_options =
      base_options({"127.0.0.1:" + std::to_string(a.listen_port()),
                    "127.0.0.1:0"},
                   1);
  peer_options.incarnation = 2;
  auto b = std::make_unique<SessionManager>(peer_options);
  b->start();
  b->want(0, true);
  std::vector<SessionManager::Event> a_events, b_events;
  std::int64_t now = 0;
  ASSERT_TRUE(pump({&a, b.get()}, {&a_events, &b_events}, &now, 500,
                   [&] { return a.established(1); }));
  EXPECT_EQ(a.peer_incarnation(1), 2u);

  // A zombie instance of process 1 (incarnation 1 < 2) dials in: its HELLO
  // must be rejected and the live session left untouched.
  net::Socket zombie = net::Socket::connect_loopback(a.listen_port());
  coord::wire::Frame hello;
  hello.type = coord::wire::FrameType::kHello;
  hello.member = 1;
  hello.incarnation = 1;
  zombie.write_frame(coord::wire::encode(hello));
  ASSERT_TRUE(pump({&a, b.get()}, {&a_events, &b_events}, &now, 500, [&] {
    return !rejects.empty();
  }));
  EXPECT_EQ(rejects.back(), "stale incarnation hello");
  EXPECT_TRUE(a.established(1));
  EXPECT_EQ(a.peer_incarnation(1), 2u);

  // A *restarted* process 1 (incarnation 3) replaces the session instead:
  // kPeerUp with the new incarnation and a counted reconnect, no spurious
  // kPeerDown from the displaced connection.
  b->stop();
  b.reset();
  ASSERT_TRUE(pump({&a}, {&a_events}, &now, 500,
                   [&] { return !a.established(1); }));
  peer_options.incarnation = 3;
  SessionManager b2(peer_options);
  b2.start();
  b2.want(0, true);
  a_events.clear();
  ASSERT_TRUE(pump({&a, &b2}, {&a_events, &b_events}, &now, 500,
                   [&] { return a.established(1); }));
  EXPECT_EQ(a.peer_incarnation(1), 3u);
  EXPECT_GE(a.reconnects(), 1u);
  bool saw_up = false;
  for (const SessionManager::Event& e : a_events) {
    EXPECT_NE(e.kind, SessionManager::Event::Kind::kPeerDown)
        << "rejoin must not read as a fresh peer loss";
    if (e.kind == SessionManager::Event::Kind::kPeerUp) {
      EXPECT_EQ(e.incarnation, 3u);
      saw_up = true;
    }
  }
  EXPECT_TRUE(saw_up);

  a.stop();
  b2.stop();
}

TEST(SessionManager, RefusedDialsBackOffExponentiallyUpToTheCap) {
  // Grab a port with no listener behind it: every dial is refused.
  std::uint16_t dead_port = 0;
  {
    const net::Socket probe = net::Socket::listen_on_loopback(0);
    dead_port = probe.local_port();
  }
  SessionManager a(base_options(
      {"127.0.0.1:0", "127.0.0.1:" + std::to_string(dead_port)}, 0));
  a.start();
  a.want(1, true);

  // Fake clock, fine steps: refusal timestamps expose the dial cadence.
  std::vector<std::int64_t> refusal_times;
  std::int64_t now = 0;
  for (; now <= 20'000; now += 250) {
    a.poll(now);
    for (const SessionManager::Event& e : a.take_events()) {
      if (e.kind == SessionManager::Event::Kind::kDialRefused)
        refusal_times.push_back(now);
      ASSERT_NE(e.kind, SessionManager::Event::Kind::kPeerUp);
    }
  }
  // base 1000 doubling to cap 4000 over 20 ms: dials land near t = 0, 1000,
  // 3000, 7000, 11000, 15000, 19000 — seven refusals, +/- scheduling slop.
  ASSERT_GE(refusal_times.size(), 5u);
  EXPECT_LE(refusal_times.size(), 9u);
  for (std::size_t i = 1; i < refusal_times.size(); ++i) {
    const std::int64_t gap = refusal_times[i] - refusal_times[i - 1];
    EXPECT_GE(gap, 1000) << "dial " << i << " ignored the backoff";
    EXPECT_LE(gap, 4000 + 250) << "dial " << i << " exceeded the cap";
  }
  // The last gaps sit at the cap — backoff stopped doubling.
  const std::size_t n = refusal_times.size();
  EXPECT_GE(refusal_times[n - 1] - refusal_times[n - 2], 4000 - 250);
  EXPECT_EQ(a.state(1), SessionManager::SessionState::kConnecting);
  EXPECT_EQ(a.peers_ever_established(), 0u);

  // Unwanting the peer stops the dial loop.
  a.want(1, false);
  const std::size_t before = refusal_times.size();
  for (; now <= 40'000; now += 250) {
    a.poll(now);
    for (const SessionManager::Event& e : a.take_events())
      ASSERT_NE(e.kind, SessionManager::Event::Kind::kDialRefused);
  }
  EXPECT_EQ(refusal_times.size(), before);
  EXPECT_EQ(a.state(1), SessionManager::SessionState::kIdle);
  a.stop();
}

}  // namespace
}  // namespace sharegrid
