// Unit tests for the LP schedulers and the end-point baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "core/agreement_graph.hpp"
#include "core/flow.hpp"
#include "sched/endpoint_enforcer.hpp"
#include "sched/income_scheduler.hpp"
#include "sched/response_time_scheduler.hpp"
#include "util/rng.hpp"

namespace sharegrid::sched {
namespace {

/// Provider S with capacity `v` and agreements [lb_a,ub_a] / [lb_b,ub_b].
core::AgreementGraph two_customer_graph(double v, double lb_a, double ub_a,
                                        double lb_b, double ub_b) {
  core::AgreementGraph g;
  const auto s = g.add_principal("S", v);
  const auto a = g.add_principal("A", 0.0);
  const auto b = g.add_principal("B", 0.0);
  g.set_agreement(s, a, lb_a, ub_a);
  g.set_agreement(s, b, lb_b, ub_b);
  return g;
}

ResponseTimeScheduler make_rts(const core::AgreementGraph& g,
                               ResponseTimeOptions opt = {}) {
  return ResponseTimeScheduler(g, core::compute_access_levels(g),
                               std::move(opt));
}

// --- ResponseTimeScheduler -------------------------------------------------

TEST(ResponseTimeScheduler, Figure1CoordinatedAllocation) {
  // Global demand (A:40, B:80) against 100 req/s with shares 20%/80%
  // must yield exactly (20, 80) — the coordinated half of Figure 1.
  const auto g = two_customer_graph(100.0, 0.2, 1.0, 0.8, 1.0);
  const Plan plan = make_rts(g).plan({0.0, 40.0, 80.0});
  EXPECT_NEAR(plan.admitted(1), 20.0, 1e-6);
  EXPECT_NEAR(plan.admitted(2), 80.0, 1e-6);
}

TEST(ResponseTimeScheduler, MandatoryFloorProtectsLightPrincipal) {
  // Figure 6 arithmetic: B's one-client demand (135) is under its 256
  // mandatory, so B is fully served and A takes the remainder.
  const auto g = two_customer_graph(320.0, 0.2, 1.0, 0.8, 1.0);
  const Plan plan = make_rts(g).plan({0.0, 270.0, 135.0});
  EXPECT_NEAR(plan.admitted(2), 135.0, 1e-6);
  EXPECT_NEAR(plan.admitted(1), 185.0, 1e-6);
}

TEST(ResponseTimeScheduler, OptionalSplitsProportionallyToDemand) {
  // Figure 7 arithmetic: equal agreements, A demands twice B => A is served
  // at twice B's rate.
  const auto g = two_customer_graph(250.0, 0.2, 1.0, 0.2, 1.0);
  const Plan plan = make_rts(g).plan({0.0, 270.0, 135.0});
  EXPECT_NEAR(plan.admitted(1), 2.0 * plan.admitted(2), 1e-6);
  EXPECT_NEAR(plan.admitted(1) + plan.admitted(2), 250.0, 1e-6);
}

TEST(ResponseTimeScheduler, CommunityOverflowUsesPartnerServer) {
  // Figure 9 arithmetic, phase 3: A's own 320 plus B's ceded half; work
  // conservation hands B the slack A's one client leaves.
  core::AgreementGraph g;
  const auto a = g.add_principal("A", 320.0);
  const auto b = g.add_principal("B", 320.0);
  g.set_agreement(b, a, 0.5, 0.5);
  const Plan plan = make_rts(g).plan({400.0, 400.0});
  EXPECT_NEAR(plan.admitted(a), 400.0, 1e-6);
  EXPECT_NEAR(plan.admitted(b), 240.0, 1e-6);
  // B's requests can only run on B's server.
  EXPECT_NEAR(plan.rate(b, a), 0.0, 1e-9);
}

TEST(ResponseTimeScheduler, ZeroDemandYieldsEmptyPlan) {
  const auto g = two_customer_graph(320.0, 0.2, 1.0, 0.8, 1.0);
  const Plan plan = make_rts(g).plan({0.0, 0.0, 0.0});
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(plan.admitted(i), 0.0, 1e-9);
}

TEST(ResponseTimeScheduler, UnderloadServesEverything) {
  const auto g = two_customer_graph(320.0, 0.2, 1.0, 0.8, 1.0);
  const Plan plan = make_rts(g).plan({0.0, 50.0, 60.0});
  EXPECT_NEAR(plan.admitted(1), 50.0, 1e-6);
  EXPECT_NEAR(plan.admitted(2), 60.0, 1e-6);
  EXPECT_NEAR(plan.theta, 1.0, 1e-6);
}

TEST(ResponseTimeScheduler, ServerCapacityNeverExceeded) {
  const auto g = two_customer_graph(320.0, 0.2, 1.0, 0.8, 1.0);
  const Plan plan = make_rts(g).plan({0.0, 1000.0, 1000.0});
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_LE(plan.server_load(k), g.capacity(k) + 1e-6);
}

TEST(ResponseTimeScheduler, UpperBoundsRespected) {
  // B's agreement caps at 0.5 even with the server otherwise idle.
  const auto g = two_customer_graph(100.0, 0.1, 0.2, 0.1, 0.5);
  const Plan plan = make_rts(g).plan({0.0, 1000.0, 1000.0});
  EXPECT_LE(plan.admitted(1), 20.0 + 1e-6);
  EXPECT_LE(plan.admitted(2), 50.0 + 1e-6);
}

TEST(ResponseTimeScheduler, LocalityCapsLimitPerServerPush) {
  core::AgreementGraph g;
  const auto a = g.add_principal("A", 100.0);
  const auto b = g.add_principal("B", 100.0);
  g.set_agreement(b, a, 0.5, 0.5);
  ResponseTimeOptions opt;
  opt.locality_caps = {100.0, 30.0};  // only 30 req/s may go to B's server
  const Plan plan = ResponseTimeScheduler(g, core::compute_access_levels(g),
                                          opt)
                        .plan({200.0, 0.0});
  EXPECT_LE(plan.server_load(b), 30.0 + 1e-6);
  EXPECT_NEAR(plan.admitted(a), 130.0, 1e-6);
}

TEST(ResponseTimeScheduler, WorkConservationCanBeDisabled) {
  const auto g = two_customer_graph(320.0, 0.2, 1.0, 0.8, 1.0);
  ResponseTimeOptions opt;
  opt.work_conserving = false;
  const Plan plan = ResponseTimeScheduler(g, core::compute_access_levels(g),
                                          opt)
                        .plan({0.0, 270.0, 135.0});
  // Theta itself is unchanged; only the surplus distribution may differ.
  EXPECT_NEAR(plan.theta, 185.0 / 270.0, 1e-6);
}

TEST(ResponseTimeScheduler, RejectsWrongDemandSize) {
  const auto g = two_customer_graph(320.0, 0.2, 1.0, 0.8, 1.0);
  EXPECT_THROW(make_rts(g).plan({1.0, 2.0}), ContractViolation);
  EXPECT_THROW(make_rts(g).plan({1.0, 2.0, -3.0}), ContractViolation);
}

// Property sweep: random demands against a fixed provider graph must always
// respect capacity, entitlement ceilings, and the mandatory floor.
class ResponseTimePropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResponseTimePropertyTest, PlansAreAlwaysAgreementCompliant) {
  Rng rng(GetParam());
  core::AgreementGraph g;
  const std::size_t n = 3 + rng.bounded(3);
  for (std::size_t i = 0; i < n; ++i)
    g.add_principal("P" + std::to_string(i), rng.uniform(50.0, 500.0));
  for (core::PrincipalId i = 0; i < n; ++i) {
    double budget = 1.0;
    for (core::PrincipalId j = 0; j < n; ++j) {
      if (i == j || !rng.chance(0.4)) continue;
      const double lb = rng.uniform(0.0, budget * 0.5);
      g.set_agreement(i, j, lb, rng.uniform(lb, 1.0));
      budget -= lb;
    }
  }
  const core::AccessLevels levels = core::compute_access_levels(g);
  const ResponseTimeScheduler scheduler(g, levels);

  for (int round = 0; round < 5; ++round) {
    std::vector<double> demand(n);
    for (auto& d : demand) d = rng.uniform(0.0, 800.0);
    const Plan plan = scheduler.plan(demand);

    for (core::PrincipalId i = 0; i < n; ++i) {
      // Admitted never exceeds demand.
      EXPECT_LE(plan.admitted(i), demand[i] + 1e-6);
      // Mandatory floor: every principal gets min(MC, demand).
      EXPECT_GE(plan.admitted(i),
                std::min(levels.mandatory_capacity[i], demand[i]) - 1e-5);
      for (core::PrincipalId k = 0; k < n; ++k) {
        // Per-pair ceiling.
        EXPECT_LE(plan.rate(i, k), levels.mandatory_entitlement(i, k) +
                                       levels.optional_entitlement(i, k) +
                                       1e-6);
        EXPECT_GE(plan.rate(i, k), -1e-9);
      }
    }
    for (core::PrincipalId k = 0; k < n; ++k)
      EXPECT_LE(plan.server_load(k), g.capacity(k) + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResponseTimePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 25));

// --- IncomeScheduler -------------------------------------------------------

TEST(IncomeScheduler, HigherPayingCustomerGetsPreference) {
  // Figure 10 arithmetic, phase 1.
  const auto g = two_customer_graph(640.0, 0.8, 1.0, 0.2, 1.0);
  const IncomeScheduler scheduler(g, core::compute_access_levels(g), 0,
                                  {0.0, 2.0, 1.0});
  const Plan plan = scheduler.plan({0.0, 800.0, 400.0});
  EXPECT_NEAR(plan.admitted(1), 512.0, 1e-6);
  EXPECT_NEAR(plan.admitted(2), 128.0, 1e-6);
}

TEST(IncomeScheduler, MandatoryLevelIsHonouredEvenForCheapCustomer) {
  const auto g = two_customer_graph(640.0, 0.8, 1.0, 0.2, 1.0);
  const IncomeScheduler scheduler(g, core::compute_access_levels(g), 0,
                                  {0.0, 100.0, 0.01});
  const Plan plan = scheduler.plan({0.0, 10000.0, 10000.0});
  EXPECT_NEAR(plan.admitted(2), 128.0, 1e-6);  // never below mandatory
}

TEST(IncomeScheduler, IdleExpensiveCustomerFreesCapacity) {
  // Figure 10 phase 2: A idle, B takes everything its upper bound allows.
  const auto g = two_customer_graph(640.0, 0.8, 1.0, 0.2, 1.0);
  const IncomeScheduler scheduler(g, core::compute_access_levels(g), 0,
                                  {0.0, 2.0, 1.0});
  const Plan plan = scheduler.plan({0.0, 0.0, 400.0});
  EXPECT_NEAR(plan.admitted(1), 0.0, 1e-9);
  EXPECT_NEAR(plan.admitted(2), 400.0, 1e-6);
}

TEST(IncomeScheduler, UpperBoundCapsGreedyCustomer) {
  const auto g = two_customer_graph(640.0, 0.1, 0.3, 0.1, 0.3);
  const IncomeScheduler scheduler(g, core::compute_access_levels(g), 0,
                                  {0.0, 5.0, 1.0});
  const Plan plan = scheduler.plan({0.0, 10000.0, 0.0});
  EXPECT_NEAR(plan.admitted(1), 0.3 * 640.0, 1e-6);
}

TEST(IncomeScheduler, WorkConservationServesFreeTraffic) {
  // The provider itself (price 0) has demand; with the paying customers
  // idle, stage 2 lets the free traffic use the capacity.
  const auto g = two_customer_graph(640.0, 0.5, 0.8, 0.2, 0.4);
  const IncomeScheduler scheduler(g, core::compute_access_levels(g), 0,
                                  {0.0, 2.0, 1.0});
  const Plan plan = scheduler.plan({300.0, 0.0, 0.0});
  EXPECT_NEAR(plan.admitted(0), 300.0, 1e-6);

  // Work conservation never costs income: with everyone loaded, every
  // mandatory floor binds first (S retains 192 = 30% of 640, B holds 128)
  // and A buys all the remaining capacity.
  const Plan loaded = scheduler.plan({1000.0, 1000.0, 1000.0});
  EXPECT_NEAR(loaded.admitted(0), 192.0, 1e-4);
  EXPECT_NEAR(loaded.admitted(1), 320.0, 1e-4);
  EXPECT_NEAR(loaded.admitted(2), 128.0, 1e-4);
}

TEST(IncomeScheduler, NonWorkConservingLeavesFreeTrafficAtFloor) {
  const auto g = two_customer_graph(640.0, 0.5, 0.8, 0.2, 0.4);
  const IncomeScheduler scheduler(g, core::compute_access_levels(g), 0,
                                  {0.0, 2.0, 1.0},
                                  /*work_conserving=*/false);
  const Plan plan = scheduler.plan({300.0, 0.0, 0.0});
  // Provider's own zero-price traffic gains nothing beyond its floor.
  EXPECT_NEAR(plan.admitted(0), std::min(300.0,
                                         core::compute_access_levels(g)
                                             .mandatory_capacity[0]),
              1e-5);
}

TEST(IncomeScheduler, IncomeComputation) {
  const auto g = two_customer_graph(640.0, 0.8, 1.0, 0.2, 1.0);
  const core::AccessLevels levels = core::compute_access_levels(g);
  const IncomeScheduler scheduler(g, levels, 0, {0.0, 2.0, 1.0});
  const Plan plan = scheduler.plan({0.0, 800.0, 400.0});
  // A: (512 - 512) * 2 = 0 extra; B: (128 - 128) * 1 = 0 extra.
  EXPECT_NEAR(scheduler.income(plan), 0.0, 1e-6);
  // With A idle, B's 400 is 272 beyond its 128 mandatory.
  const Plan plan2 = scheduler.plan({0.0, 0.0, 400.0});
  EXPECT_NEAR(scheduler.income(plan2), 272.0, 1e-6);
}

TEST(IncomeScheduler, IncomeAtLeastMatchesGreedyBaseline) {
  // Property: LP income >= a simple greedy fill by descending price.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    core::AgreementGraph g;
    g.add_principal("S", 500.0);
    const std::size_t customers = 2 + rng.bounded(4);
    std::vector<double> prices{0.0};
    double budget = 1.0;
    for (std::size_t i = 1; i <= customers; ++i) {
      g.add_principal("C" + std::to_string(i), 0.0);
      const double lb = rng.uniform(0.0, budget * 0.4);
      g.set_agreement(0, i, lb, rng.uniform(lb, 1.0));
      budget -= lb;
      prices.push_back(rng.uniform(0.1, 3.0));
    }
    const core::AccessLevels levels = core::compute_access_levels(g);
    const IncomeScheduler scheduler(g, levels, 0, prices);

    std::vector<double> demand(customers + 1, 0.0);
    for (std::size_t i = 1; i <= customers; ++i)
      demand[i] = rng.uniform(0.0, 400.0);
    const Plan plan = scheduler.plan(demand);

    // Greedy baseline: grant mandatory to all, then fill by price.
    std::vector<double> x(customers + 1, 0.0);
    double used = 0.0;
    for (std::size_t i = 1; i <= customers; ++i) {
      x[i] = std::min(levels.mandatory_capacity[i], demand[i]);
      used += x[i];
    }
    std::vector<std::size_t> order;
    for (std::size_t i = 1; i <= customers; ++i) order.push_back(i);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return prices[a] > prices[b]; });
    for (std::size_t i : order) {
      const double cap = std::min(
          demand[i], levels.mandatory_capacity[i] + levels.optional_capacity[i]);
      const double extra = std::min(cap - x[i], 500.0 - used);
      if (extra > 0) {
        x[i] += extra;
        used += extra;
      }
    }
    double greedy_income = 0.0;
    for (std::size_t i = 1; i <= customers; ++i)
      greedy_income +=
          prices[i] * std::max(0.0, x[i] - levels.mandatory_capacity[i]);
    // Slack covers the work-conserving stage's epsilon on the income bound.
    EXPECT_GE(scheduler.income(plan),
              greedy_income - 1e-4 * (1.0 + greedy_income));
  }
}

// --- EndpointEnforcer -------------------------------------------------------

TEST(EndpointEnforcer, Figure1ServerAllocations) {
  const EndpointEnforcer s1(50.0, {0.2, 0.8});
  const auto a1 = s1.allocate({20.0, 30.0});
  EXPECT_NEAR(a1[0], 20.0, 1e-9);  // under capacity: everyone served
  EXPECT_NEAR(a1[1], 30.0, 1e-9);

  const auto a2 = s1.allocate({20.0, 50.0});  // the overloaded S2 case
  EXPECT_NEAR(a2[0], 10.0, 1e-9);
  EXPECT_NEAR(a2[1], 40.0, 1e-9);
}

TEST(EndpointEnforcer, RedistributesUnusedShare) {
  const EndpointEnforcer e(100.0, {0.5, 0.5});
  const auto a = e.allocate({10.0, 500.0});
  EXPECT_NEAR(a[0], 10.0, 1e-9);
  EXPECT_NEAR(a[1], 90.0, 1e-9);  // B absorbs A's unused half
}

TEST(EndpointEnforcer, NeverExceedsCapacityOrDemand) {
  Rng rng(5);
  const EndpointEnforcer e(100.0, {0.1, 0.2, 0.3, 0.4});
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> demand(4);
    for (auto& d : demand) d = rng.uniform(0.0, 200.0);
    const auto alloc = e.allocate(demand);
    double total = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_LE(alloc[i], demand[i] + 1e-9);
      EXPECT_GE(alloc[i], -1e-9);
      total += alloc[i];
    }
    EXPECT_LE(total, 100.0 + 1e-6);
  }
}

TEST(EndpointEnforcer, GuaranteesShareUnderOverload) {
  const EndpointEnforcer e(100.0, {0.25, 0.75});
  const auto a = e.allocate({1000.0, 1000.0});
  EXPECT_NEAR(a[0], 25.0, 1e-9);
  EXPECT_NEAR(a[1], 75.0, 1e-9);
}

TEST(EndpointEnforcer, RejectsBadShares) {
  EXPECT_THROW(EndpointEnforcer(100.0, {0.6, 0.6}), ContractViolation);
  EXPECT_THROW(EndpointEnforcer(0.0, {0.5}), ContractViolation);
  EXPECT_THROW(EndpointEnforcer(10.0, {-0.1}), ContractViolation);
}

}  // namespace
}  // namespace sharegrid::sched
