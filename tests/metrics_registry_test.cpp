// Tests for the always-on metrics registry (util/metrics_registry.hpp):
// lookup-or-create semantics, reference stability, registration-order
// reporting, reset, and concurrent updates from worker threads.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "util/metrics_registry.hpp"
#include "util/worker_pool.hpp"

namespace sharegrid {
namespace {

TEST(MetricsRegistry, CounterLookupOrCreateIsIdempotent) {
  util::MetricsRegistry registry;
  util::MetricCounter& a = registry.counter("sim.events", "events run");
  util::MetricCounter& b = registry.counter("sim.events");
  EXPECT_EQ(&a, &b);  // same name -> same counter
  EXPECT_EQ(registry.size(), 1u);

  a.add();
  a.add(41);
  EXPECT_EQ(b.value(), 42u);
}

TEST(MetricsRegistry, ReferencesSurviveLaterRegistrations) {
  util::MetricsRegistry registry;
  util::MetricCounter& first = registry.counter("first");
  for (int i = 0; i < 100; ++i)
    registry.counter("extra." + std::to_string(i));
  first.add(7);
  EXPECT_EQ(registry.counter("first").value(), 7u);
}

TEST(MetricsRegistry, GaugeSetAndRatchet) {
  util::MetricsRegistry registry;
  util::MetricGauge& g = registry.gauge("queue.depth", "current depth");
  g.set(5);
  EXPECT_EQ(g.value(), 5);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  g.set_max(10);
  g.set_max(2);  // lower value does not ratchet down
  EXPECT_EQ(g.value(), 10);
}

TEST(MetricsRegistry, ReportInRegistrationOrder) {
  util::MetricsRegistry registry;
  registry.counter("zeta", "last alphabetically, first registered").add(1);
  registry.gauge("alpha", "gauge").set(-3);
  registry.counter("mid").add(2);

  const TextTable table = registry.to_table();
  EXPECT_EQ(table.row_count(), 3u);
  std::ostringstream os;
  registry.report(os);
  const std::string text = os.str();
  // Registration order, not name order.
  EXPECT_LT(text.find("zeta"), text.find("alpha"));
  EXPECT_LT(text.find("alpha"), text.find("mid"));
  EXPECT_NE(text.find("-3"), std::string::npos);
}

TEST(MetricsRegistry, EmptyRegistryReportsNothing) {
  util::MetricsRegistry registry;
  std::ostringstream os;
  registry.report(os);
  EXPECT_TRUE(os.str().empty());
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsNames) {
  util::MetricsRegistry registry;
  registry.counter("c").add(9);
  registry.gauge("g").set(4);
  registry.reset();
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.counter("c").value(), 0u);
  EXPECT_EQ(registry.gauge("g").value(), 0);
}

TEST(MetricsRegistry, ConcurrentAddsAreLossless) {
  util::MetricsRegistry registry;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerLane = 10000;
  WorkerPool pool(kThreads);
  // Lanes both register (lookup path) and bump (atomic path) concurrently.
  pool.run_indexed(kThreads, [&registry](std::size_t lane) {
    util::MetricCounter& shared = registry.counter("shared", "all lanes");
    for (std::uint64_t i = 0; i < kPerLane; ++i) shared.add();
    registry.counter("lane." + std::to_string(lane)).add(lane);
  });
  EXPECT_EQ(registry.counter("shared").value(), kThreads * kPerLane);
  EXPECT_EQ(registry.size(), 1u + kThreads);
}

TEST(MetricsRegistry, GlobalRegistryIsSingleInstance) {
  EXPECT_EQ(&util::global_metrics(), &util::global_metrics());
}

}  // namespace
}  // namespace sharegrid
