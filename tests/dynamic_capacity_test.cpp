// Tests for dynamic agreement interpretation: swappable schedulers and
// runtime capacity events (§2.2).
#include <gtest/gtest.h>

#include "experiments/scenario.hpp"
#include "experiments/scenario_ini.hpp"
#include "sched/swappable_scheduler.hpp"
#include "test_helpers.hpp"

namespace sharegrid {
namespace {

TEST(SwappableScheduler, ForwardsAndReplaces) {
  auto swap = sched::SwappableScheduler(
      std::make_unique<test::FixedRateScheduler>(std::vector<double>{10.0}));
  EXPECT_EQ(swap.size(), 1u);
  EXPECT_NEAR(swap.plan({100.0}).admitted(0), 10.0, 1e-9);

  swap.replace(
      std::make_unique<test::FixedRateScheduler>(std::vector<double>{25.0}));
  EXPECT_NEAR(swap.plan({100.0}).admitted(0), 25.0, 1e-9);
}

TEST(SwappableScheduler, RejectsSizeChangeAndNull) {
  auto swap = sched::SwappableScheduler(
      std::make_unique<test::FixedRateScheduler>(std::vector<double>{1.0}));
  EXPECT_THROW(swap.replace(std::make_unique<test::FixedRateScheduler>(
                   std::vector<double>{1.0, 2.0})),
               ContractViolation);
  EXPECT_THROW(swap.replace(nullptr), ContractViolation);
}

experiments::ScenarioConfig brownout_config() {
  using namespace experiments;
  core::AgreementGraph graph;
  graph.add_principal("A", 0.0);
  graph.add_principal("B", 0.0);
  graph.set_agreement(1, 0, 0.5, 0.5);  // B shares half with A

  ScenarioConfig config;
  config.graph = graph;
  config.layer = Layer::kL4;
  config.servers = {{"A", 320.0}, {"B", 320.0}};
  config.clients = {
      {"A1", "A", 0, 400.0, {{0.0, 90.0}}},
      {"A2", "A", 0, 400.0, {{0.0, 90.0}}},
      {"B1", "B", 0, 400.0, {{0.0, 90.0}}},
  };
  config.capacity_events = {{30.0, 1, 160.0}, {60.0, 1, 320.0}};
  config.phases = {{"healthy", 8.0, 28.0},
                   {"brownout", 35.0, 58.0},
                   {"recovered", 65.0, 88.0}};
  config.duration_sec = 90.0;
  return config;
}

TEST(CapacityEvents, EntitlementsTrackDegradationAndRecovery) {
  const auto result = experiments::run_scenario(brownout_config());
  // Healthy: A = 480, B = 160. Brownout (B's server at 160): A = 400,
  // B = 80. Recovery restores the original split.
  EXPECT_NEAR(result.phase_served(0, 0), 480.0, 25.0);
  EXPECT_NEAR(result.phase_served(0, 1), 160.0, 16.0);
  EXPECT_NEAR(result.phase_served(1, 0), 400.0, 20.0);
  EXPECT_NEAR(result.phase_served(1, 1), 80.0, 10.0);
  EXPECT_NEAR(result.phase_served(2, 0), 480.0, 25.0);
  EXPECT_NEAR(result.phase_served(2, 1), 160.0, 16.0);
}

TEST(CapacityEvents, ValidateInputs) {
  auto config = brownout_config();
  config.capacity_events = {{10.0, 9, 100.0}};  // bad server index
  EXPECT_THROW(experiments::run_scenario(config), ContractViolation);

  config = brownout_config();
  config.capacity_events = {{10.0, 0, -5.0}};  // bad capacity
  EXPECT_THROW(experiments::run_scenario(config), ContractViolation);
}

TEST(CapacityEvents, ParseFromIni) {
  const std::string text = R"ini(
layer = l4
duration = 20
[principal]
name = A
[server]
owner = A
capacity = 320
[client]
name = C
principal = A
rate = 100
active = 0-20
[capacity_event]
time = 10
server = 0
capacity = 160
)ini";
  const auto config = experiments::scenario_from_ini(parse_ini(text));
  ASSERT_EQ(config.capacity_events.size(), 1u);
  EXPECT_DOUBLE_EQ(config.capacity_events[0].time_sec, 10.0);
  EXPECT_EQ(config.capacity_events[0].server, 0u);
  EXPECT_DOUBLE_EQ(config.capacity_events[0].capacity, 160.0);

  const std::string bad = text + "[capacity_event]\ntime=1\nserver=7\ncapacity=1\n";
  EXPECT_THROW(experiments::scenario_from_ini(parse_ini(bad)),
               ContractViolation);
}

}  // namespace
}  // namespace sharegrid
