// Fuzz-style robustness tests: hostile or random inputs must produce clean
// failures (nullopt / ContractViolation), never crashes, hangs, or silent
// acceptance of garbage.
#include <gtest/gtest.h>

#include <string>

#include "core/flow.hpp"
#include "http/message.hpp"
#include "lp/solve_context.hpp"
#include "util/ini.hpp"
#include "util/rng.hpp"

namespace sharegrid {
namespace {

/// Random printable-ish text with embedded structure characters.
std::string random_text(Rng& rng, std::size_t max_len) {
  static const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz /:=[]#;\r\n\t\"0123456789-_.";
  std::string out;
  const std::size_t len = rng.bounded(max_len);
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    out.push_back(alphabet[rng.bounded(sizeof(alphabet) - 1)]);
  return out;
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, HttpParsersNeverCrash) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const std::string text = random_text(rng, 512);
    const auto req = http::parse_request(text);
    const auto resp = http::parse_response(text);
    // If something parsed, it must round-trip to something parseable.
    if (req) {
      EXPECT_TRUE(http::parse_request(req->serialize()).has_value());
    }
    if (resp) {
      EXPECT_TRUE(http::parse_response(resp->serialize()).has_value());
    }
  }
}

TEST_P(FuzzTest, IniParserNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const std::string text = random_text(rng, 512);
    try {
      const IniDocument doc = parse_ini(text);
      // Parsed documents are navigable without surprises.
      for (const auto& section : doc.sections) (void)doc.all(section.name);
    } catch (const ContractViolation&) {
      // clean rejection is the expected failure mode
    }
  }
}

TEST_P(FuzzTest, PrincipalExtractionNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i)
    (void)http::principal_from_target(random_text(rng, 64));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Robustness, SimplexSurvivesDegenerateCoefficients) {
  // Tiny, huge, and zero coefficients in one program: the solver must
  // terminate with a definite status, not loop or crash.
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    lp::Problem p(3, lp::Sense::kMaximize);
    for (std::size_t j = 0; j < 3; ++j) {
      p.set_objective(j, rng.uniform(-1.0, 1.0));
      p.set_bounds(j, 0.0, rng.chance(0.5) ? lp::kInfinity : 1e9);
    }
    for (int c = 0; c < 4; ++c) {
      std::vector<std::pair<std::size_t, double>> terms;
      for (std::size_t j = 0; j < 3; ++j) {
        const double magnitude =
            rng.chance(0.3) ? 0.0
                            : (rng.chance(0.5) ? 1e-8 : rng.uniform(0.0, 1e6));
        terms.emplace_back(j, magnitude);
      }
      p.add_constraint(std::move(terms),
                       rng.chance(0.5) ? lp::Relation::kLessEq
                                       : lp::Relation::kGreaterEq,
                       rng.uniform(0.0, 1e6));
    }
    const lp::Solution s = lp::solve(p);
    EXPECT_TRUE(s.status == lp::Status::kOptimal ||
                s.status == lp::Status::kInfeasible ||
                s.status == lp::Status::kUnbounded);
  }
}

TEST(Robustness, FlowAnalysisOnDenseCyclicGraphTerminates) {
  // A fully-connected 8-principal graph with cycles everywhere: simple-path
  // enumeration is exponential but bounded; the parallel variant must agree
  // with the serial one bit-for-bit (disjoint row writes + deterministic
  // per-row accumulation order).
  core::AgreementGraph g;
  for (int i = 0; i < 8; ++i)
    g.add_principal("P" + std::to_string(i), 100.0);
  for (core::PrincipalId i = 0; i < 8; ++i)
    for (core::PrincipalId j = 0; j < 8; ++j)
      if (i != j) g.set_agreement(i, j, 0.1, 0.2);

  const core::AccessLevels serial = core::compute_access_levels(g);
  core::FlowOptions parallel;
  parallel.num_threads = 4;
  const core::AccessLevels threaded = core::compute_access_levels(g, parallel);
  for (core::PrincipalId i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(serial.mandatory_capacity[i],
                     threaded.mandatory_capacity[i]);
    EXPECT_DOUBLE_EQ(serial.optional_capacity[i],
                     threaded.optional_capacity[i]);
  }
}

TEST(Robustness, ParallelFlowMatchesSerialOnRandomGraphs) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    core::AgreementGraph g;
    const std::size_t n = 3 + rng.bounded(6);
    for (std::size_t i = 0; i < n; ++i)
      g.add_principal("P" + std::to_string(i), rng.uniform(1.0, 100.0));
    for (core::PrincipalId i = 0; i < n; ++i) {
      double budget = 1.0;
      for (core::PrincipalId j = 0; j < n; ++j) {
        if (i == j || !rng.chance(0.4)) continue;
        const double lb = rng.uniform(0.0, budget * 0.4);
        g.set_agreement(i, j, lb, rng.uniform(lb, 1.0));
        budget -= lb;
      }
    }
    core::FlowOptions threaded;
    threaded.num_threads = 0;  // hardware concurrency
    const auto serial = core::compute_access_levels(g);
    const auto parallel = core::compute_access_levels(g, threaded);
    EXPECT_EQ(serial.mandatory_transfer, parallel.mandatory_transfer);
    EXPECT_EQ(serial.optional_transfer, parallel.optional_transfer);
  }
}

}  // namespace
}  // namespace sharegrid
